//! Property-based tests over core invariants (proptest).

use polardb_imci::common::{Rid, Row, RowDiff, Value, Vid};
use polardb_imci::imci::{row_visible, ColumnData, Pack, RidLocator, VID_UNSET};
use proptest::prelude::*;

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<i64>().prop_map(Value::Int),
        (-1e12f64..1e12).prop_map(Value::Double),
        "[a-z0-9 ]{0,24}".prop_map(Value::Str),
        (-100_000i64..100_000).prop_map(Value::Date),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn row_codec_roundtrips(values in prop::collection::vec(arb_value(), 0..12)) {
        let row = Row::new(values);
        let decoded = Row::decode(&row.encode()).unwrap();
        prop_assert_eq!(row, decoded);
    }

    #[test]
    fn row_diff_reconstructs_new_image(
        a in prop::collection::vec(arb_value(), 1..8),
        b in prop::collection::vec(arb_value(), 1..8),
    ) {
        let (ra, rb) = (Row::new(a).encode(), Row::new(b).encode());
        let diff = RowDiff::between(&ra, &rb);
        prop_assert_eq!(diff.apply(&ra).unwrap(), rb);
    }

    #[test]
    fn pack_seal_preserves_values(values in prop::collection::vec(arb_value(), 1..200)) {
        // Packs are typed; test per-type by filtering to one type.
        let ints: Vec<Value> = values.iter()
            .map(|v| match v { Value::Int(x) => Value::Int(*x), _ => Value::Null })
            .collect();
        let mut col = ColumnData::new(polardb_imci::common::DataType::Int);
        for (i, v) in ints.iter().enumerate() {
            col.set(i, v).unwrap();
        }
        let pack = Pack::seal(&col);
        for (i, v) in ints.iter().enumerate() {
            prop_assert_eq!(&pack.get(i), v);
        }
        // And the checkpoint codec roundtrips too.
        let restored = Pack::decode_bytes(&pack.encode()).unwrap();
        for (i, v) in ints.iter().enumerate() {
            prop_assert_eq!(&restored.get(i), v);
        }
    }

    #[test]
    fn visibility_rule_is_a_window(insert in 0u64..1000, delete in 0u64..1000, csn in 0u64..1000) {
        let delete = delete.max(insert); // deletes happen after inserts
        let visible = row_visible(insert, delete, csn);
        prop_assert_eq!(visible, insert <= csn && csn < delete);
        // Unset insert is never visible; unset delete means "live".
        prop_assert!(!row_visible(VID_UNSET, delete, csn));
        prop_assert_eq!(row_visible(insert, VID_UNSET, csn), insert <= csn);
    }

    #[test]
    fn locator_acts_like_a_map(ops in prop::collection::vec((0i64..200, prop::option::of(0u64..10_000)), 1..300)) {
        let loc = RidLocator::new(32); // tiny memtable: force runs + merges
        let mut model = std::collections::HashMap::new();
        for (pk, rid) in &ops {
            match rid {
                Some(r) => { loc.insert(*pk, Rid(*r)); model.insert(*pk, Some(Rid(*r))); }
                None => { loc.remove(*pk); model.insert(*pk, None); }
            }
        }
        for (pk, expect) in &model {
            prop_assert_eq!(loc.get(*pk), *expect);
        }
    }

    #[test]
    fn column_index_updates_converge(updates in prop::collection::vec((0i64..20, 0i64..1000), 1..100)) {
        use polardb_imci::common::{ColumnDef, DataType, IndexDef, IndexKind, Schema, TableId};
        let schema = Schema::new(
            TableId(1), "t",
            vec![ColumnDef::not_null("id", DataType::Int), ColumnDef::new("v", DataType::Int)],
            vec![
                IndexDef { kind: IndexKind::Primary, name: "PRIMARY".into(), columns: vec![0] },
                IndexDef { kind: IndexKind::Column, name: "ci".into(), columns: vec![0, 1] },
            ],
        ).unwrap();
        let idx = polardb_imci::imci::ColumnIndex::for_schema(&schema, 8);
        let mut model = std::collections::HashMap::new();
        let mut vid = 1u64;
        for (pk, v) in &updates {
            if model.contains_key(pk) {
                idx.update(Vid(vid), *pk, &[Value::Int(*pk), Value::Int(*v)]).unwrap();
            } else {
                idx.insert(Vid(vid), &[Value::Int(*pk), Value::Int(*v)]).unwrap();
            }
            model.insert(*pk, *v);
            vid += 1;
        }
        idx.advance_visible(Vid(vid));
        let snap = idx.snapshot();
        for (pk, v) in &model {
            let row = snap.get_by_pk(*pk).unwrap();
            prop_assert_eq!(&row[1], &Value::Int(*v));
        }
    }
}
