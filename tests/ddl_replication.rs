//! Versioned catalog replication: DDL ships through the REDO stream and
//! is applied by RO nodes in LSN order with the data changes. These
//! tests pin the end-to-end guarantees that replaced the lazy
//! catalog-refresh paths (which had DML-loss and stale-sibling races).

use polardb_imci::{Cluster, ClusterConfig, Consistency, Error, ExecOpts, Value};
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::time::Duration;

fn strong() -> ExecOpts {
    ExecOpts {
        consistency: Some(Consistency::Strong),
        ..Default::default()
    }
}

/// The headline regression: `CREATE TABLE; INSERT; SELECT @strong` must
/// never lose the row, on any RO node, no matter how soon the read
/// follows the DDL. Before DDL-in-log, the pipeline picked the table up
/// lazily mid-apply (`let _ = refresh_catalog()`), silently dropping
/// committed DMLs that raced the pickup, and the proxy's catalog-miss
/// retry repaired only the routed node.
#[test]
fn create_insert_strong_select_never_loses_rows() {
    let c = Cluster::start(ClusterConfig {
        n_ro: 3,
        group_cap: 64,
        ..Default::default()
    });
    for round in 0..8i64 {
        let t = format!("churn_{round}");
        c.execute(&format!(
            "CREATE TABLE {t} (id INT NOT NULL, v INT, PRIMARY KEY(id),
             KEY COLUMN_INDEX(id, v))"
        ))
        .unwrap();
        c.execute(&format!(
            "INSERT INTO {t} VALUES (1, {round}), (2, {round})"
        ))
        .unwrap();
        // Immediately round-robin strong reads across the replicas.
        for i in 0..6 {
            let res = c
                .execute_opts(&format!("SELECT v FROM {t} WHERE id = 1"), strong())
                .unwrap_or_else(|e| panic!("round {round} read {i}: {e}"));
            assert_eq!(res.rows.len(), 1, "round {round} read {i}: lost row");
            assert_eq!(res.rows[0][0], Value::Int(round));
        }
        // And every sibling replica individually — not just whichever
        // node the proxy happened to route. Siblings converge through
        // the log (the old design left them stale until they were
        // routed a failing query), so after a sync all must agree.
        assert!(c.wait_sync(Duration::from_secs(20)));
        for ro in c.ros.read().iter() {
            assert_eq!(
                ro.engine.row_count(&t).unwrap(),
                2,
                "round {round}: {} is stale",
                ro.name
            );
        }
    }
    for ro in c.ros.read().iter() {
        assert_eq!(ro.pipeline.error_count(), 0, "{}", ro.name);
    }
    c.shutdown();
}

/// `DROP TABLE` → strong reads error with a catalog failure on every RO
/// node, and never return stale rows.
#[test]
fn drop_then_strong_select_errors_everywhere() {
    let c = Cluster::start(ClusterConfig {
        n_ro: 2,
        group_cap: 64,
        ..Default::default()
    });
    c.execute(
        "CREATE TABLE gone (id INT NOT NULL, v INT, PRIMARY KEY(id),
         KEY COLUMN_INDEX(id, v))",
    )
    .unwrap();
    c.execute("INSERT INTO gone VALUES (1, 1)").unwrap();
    c.execute("DROP TABLE gone").unwrap();
    assert!(c.wait_sync(Duration::from_secs(20)));
    for _ in 0..4 {
        match c.execute_opts("SELECT v FROM gone WHERE id = 1", strong()) {
            Err(Error::Catalog(_)) => {}
            other => panic!("expected catalog error after DROP, got {other:?}"),
        }
    }
    c.shutdown();
}

// ---- randomized interleavings vs. a single-node oracle ----

const N_TABLES: usize = 3;

#[derive(Debug, Clone, Copy)]
enum Op {
    Create(usize),
    Drop(usize),
    Insert(usize, i64, i64),
    Update(usize, i64, i64),
    Delete(usize, i64),
    ScaleOut,
}

fn decode_op((kind, t, pk, v): (u8, u8, i64, i64)) -> Op {
    let t = t as usize % N_TABLES;
    match kind {
        0 => Op::Create(t),
        1 => Op::Drop(t),
        2..=5 => Op::Insert(t, pk, v),
        6..=8 => Op::Update(t, pk, v),
        9 => Op::Delete(t, pk),
        _ => Op::ScaleOut,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Random CREATE/DROP/INSERT/UPDATE/DELETE/scale-out schedules,
    /// executed through the proxy; the oracle is a plain in-process map
    /// of what each live table must contain. After the schedule, every
    /// RO node (including any scaled-out mid-schedule) must agree with
    /// the oracle on row counts and contents, with zero pipeline
    /// errors. Invalid ops (inserting into a dropped table, duplicate
    /// CREATE, ...) are skipped — every executed statement is expected
    /// to succeed, so any error is a real regression.
    #[test]
    fn random_ddl_dml_schedules_converge(
        raw in prop::collection::vec((0u8..11, 0u8..4, 0i64..30, -999i64..999), 1..40)
    ) {
        let c = Cluster::start(ClusterConfig {
            n_ro: 2,
            group_cap: 32,
            ..Default::default()
        });
        // Oracle: per-slot live table contents; None = dropped/never
        // created. Table names get a generation suffix so a re-created
        // slot is a genuinely new table (fresh table id on the RW too).
        let mut oracle: Vec<Option<BTreeMap<i64, i64>>> = vec![None; N_TABLES];
        let mut names: Vec<String> = (0..N_TABLES).map(|t| format!("p{t}_g0")).collect();
        let mut gen = [0usize; N_TABLES];
        let mut scaled = false;
        for op in raw.into_iter().map(decode_op) {
            match op {
                Op::Create(t) => {
                    if oracle[t].is_none() {
                        gen[t] += 1;
                        names[t] = format!("p{t}_g{}", gen[t]);
                        c.execute(&format!(
                            "CREATE TABLE {} (id INT NOT NULL, v INT, PRIMARY KEY(id),
                             KEY COLUMN_INDEX(id, v))",
                            names[t]
                        ))
                        .unwrap();
                        oracle[t] = Some(BTreeMap::new());
                    }
                }
                Op::Drop(t) => {
                    if oracle[t].is_some() {
                        c.execute(&format!("DROP TABLE {}", names[t])).unwrap();
                        oracle[t] = None;
                    }
                }
                Op::Insert(t, pk, v) => {
                    if let Some(rows) = oracle[t].as_mut() {
                        if let std::collections::btree_map::Entry::Vacant(slot) = rows.entry(pk) {
                            c.execute(&format!("INSERT INTO {} VALUES ({pk}, {v})", names[t]))
                                .unwrap();
                            slot.insert(v);
                        }
                    }
                }
                Op::Update(t, pk, v) => {
                    if let Some(rows) = oracle[t].as_mut() {
                        if rows.contains_key(&pk) {
                            c.execute(&format!(
                                "UPDATE {} SET v = {v} WHERE id = {pk}",
                                names[t]
                            ))
                            .unwrap();
                            rows.insert(pk, v);
                        }
                    }
                }
                Op::Delete(t, pk) => {
                    if let Some(rows) = oracle[t].as_mut() {
                        if rows.remove(&pk).is_some() {
                            c.execute(&format!(
                                "DELETE FROM {} WHERE id = {pk}",
                                names[t]
                            ))
                            .unwrap();
                        }
                    }
                }
                Op::ScaleOut => {
                    // At most one mid-schedule scale-out per case keeps
                    // the test cheap; the new node must replay all DDL
                    // from the log (no checkpoint exists here).
                    if !scaled {
                        c.scale_out().unwrap();
                        scaled = true;
                    }
                }
            }
        }
        prop_assert!(c.wait_sync(Duration::from_secs(30)), "replicas must catch up");
        for (t, slot) in oracle.iter().enumerate() {
            match slot {
                Some(rows) => {
                    // Through the proxy, strong.
                    let res = c
                        .execute_opts(&format!("SELECT COUNT(*) FROM {}", names[t]), strong())
                        .unwrap();
                    prop_assert_eq!(res.rows[0][0].clone(), Value::Int(rows.len() as i64));
                    // On every node directly, contents included.
                    for ro in c.ros.read().iter() {
                        prop_assert_eq!(
                            ro.engine.row_count(&names[t]).unwrap(),
                            rows.len(),
                            "{} row count for {}", ro.name, names[t]
                        );
                        for (&pk, &v) in rows {
                            let row = ro.engine.get_row(&names[t], pk).unwrap();
                            let row = row.unwrap_or_else(|| {
                                panic!("{}: {} lost pk {pk}", ro.name, names[t])
                            });
                            prop_assert_eq!(row.values[1].clone(), Value::Int(v));
                        }
                    }
                }
                None => {
                    for ro in c.ros.read().iter() {
                        prop_assert!(
                            ro.engine.table(&names[t]).is_err(),
                            "{}: dropped table {} still visible", ro.name, names[t]
                        );
                    }
                }
            }
        }
        for ro in c.ros.read().iter() {
            prop_assert_eq!(ro.pipeline.error_count(), 0, "{} had pipeline errors", ro.name);
        }
        c.shutdown();
    }
}
