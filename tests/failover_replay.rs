//! Transparent statement replay across automatic failover, end to end
//! through the server tier.
//!
//! The contract (paper §7 + the availability design in DESIGN.md): with
//! the cluster supervisor running and replay enabled, a client driving
//! pipelined traffic through an RW kill never observes the `failover`
//! error category — reads are transparently re-executed, `STMT`-tagged
//! writes are replayed exactly-once against the promoted writer, and
//! the promoted writer comes back serving **both** engines (`STATUS`
//! role `rw+imci`).

use polardb_imci::{
    Client, Cluster, ClusterConfig, Consistency, EngineChoice, Server, ServerConfig,
    SupervisorConfig, Value,
};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;

fn supervised_cluster() -> Arc<Cluster> {
    Cluster::start(ClusterConfig {
        n_ro: 2,
        group_cap: 64,
        heartbeat_interval: Duration::from_millis(5),
        supervisor: Some(SupervisorConfig {
            lease_timeout: Duration::from_millis(60),
            jitter: Duration::from_millis(20),
            seed: 0x5eed_f011,
        }),
        ..Default::default()
    })
}

#[test]
fn pipelined_client_sees_zero_errors_across_kill_promote() {
    let cluster = supervised_cluster();
    let server = Server::start(cluster.clone(), ServerConfig::default()).unwrap();
    let mut c = Client::connect(server.local_addr()).unwrap();
    c.execute(
        "CREATE TABLE r (id INT NOT NULL, v INT, PRIMARY KEY(id),
         KEY COLUMN_INDEX(id, v))",
    )
    .unwrap();
    for i in 0..100 {
        c.execute(&format!("INSERT INTO r VALUES ({i}, {i})"))
            .unwrap();
    }

    // STATUS before the kill: a plain row-only writer, no promotions.
    let before = c.status().unwrap();
    assert_eq!(before.rows[0][0], Value::Str("rw".into()));
    assert_eq!(before.rows[0][4], Value::Int(0), "no auto-failovers yet");

    // Kill the writer, then drive a pipelined mix of tagged writes and
    // reads straight through the vacancy. Nobody calls failover(): the
    // supervisor must detect the silent lease and promote while these
    // statements are queued, and the server must replay them against
    // the new writer. The client recv loop asserts zero errors.
    cluster.crash_rw();
    for i in 0..40u64 {
        c.send(&format!("STMT {i} INSERT INTO r VALUES ({}, 1)", 100 + i))
            .unwrap();
        c.send("SELECT COUNT(*) FROM r").unwrap();
    }
    for k in 0..40 {
        let w = c.recv().unwrap_or_else(|e| panic!("tagged write {k}: {e}"));
        assert_eq!(w.affected, 1, "tagged write {k}");
        let r = c
            .recv()
            .unwrap_or_else(|e| panic!("pipelined read {k}: {e}"));
        assert_eq!(r.rows.len(), 1, "pipelined read {k}");
    }
    assert_eq!(cluster.auto_failovers(), 1, "promotion must be automatic");
    assert!(
        server.stats().replayed_stmts.load(Ordering::Relaxed) > 0,
        "at least the first in-flight statement must have been replayed"
    );

    // Exactly-once: resending an already-journaled id answers from the
    // journal without re-executing (the count below would drift by one
    // otherwise — or the insert would fail on the duplicate key).
    let again = c
        .execute_tagged(0, "INSERT INTO r VALUES (100, 1)")
        .unwrap();
    assert_eq!(again.affected, 1);
    c.set_consistency(Consistency::Strong).unwrap();
    let count = c.execute("SELECT COUNT(*) FROM r").unwrap();
    assert_eq!(count.rows[0][0], Value::Int(140));

    // Full HTAP after promotion: the STATUS role says the new writer
    // carries a rebuilt column attachment, and a forced-column plan
    // executes on the column engine.
    let after = c.status().unwrap();
    assert_eq!(after.rows[0][0], Value::Str("rw+imci".into()));
    assert_eq!(after.rows[0][4], Value::Int(1), "one auto-failover");
    c.set_force_engine(Some(EngineChoice::Column)).unwrap();
    let agg = c.execute("SELECT v, COUNT(*) FROM r GROUP BY v").unwrap();
    assert_eq!(agg.engine, EngineChoice::Column);

    server.shutdown();
    cluster.shutdown();
}

#[test]
fn status_reports_vacancy_and_journal_survives_errors() {
    let cluster = supervised_cluster();
    cluster.stop_supervisor();
    let server = Server::start(cluster.clone(), ServerConfig::default()).unwrap();
    let mut c = Client::connect(server.local_addr()).unwrap();
    c.execute(
        "CREATE TABLE j (id INT NOT NULL, v INT, PRIMARY KEY(id),
         KEY COLUMN_INDEX(id, v))",
    )
    .unwrap();

    // A decided error (duplicate key) is journaled too: the resend
    // replays the same constraint error instead of re-executing.
    c.execute_tagged(1, "INSERT INTO j VALUES (1, 1)").unwrap();
    let e1 = c
        .execute_tagged(2, "INSERT INTO j VALUES (1, 2)")
        .unwrap_err();
    let e2 = c
        .execute_tagged(2, "INSERT INTO j VALUES (1, 2)")
        .unwrap_err();
    assert_eq!(e1.kind(), "constraint");
    assert_eq!(e2.kind(), "constraint");

    // With the supervisor stopped and the writer down, STATUS still
    // answers (zero admission cost) and reports the vacancy.
    cluster.crash_rw();
    let status = c.status().unwrap();
    assert_eq!(status.rows[0][0], Value::Str("vacant".into()));
    assert_eq!(status.rows[0][3], Value::Str("off".into()));

    // An untagged write during the vacancy keeps surfacing the
    // retryable failover category — only tagged/read statements are
    // transparently replayed while no writer is installed.
    let err = c.execute("INSERT INTO j VALUES (9, 9)").unwrap_err();
    assert_eq!(err.kind(), "failover");

    cluster.failover().unwrap();
    // The journal survives the promotion: the duplicate-key outcome is
    // still replayed, and fresh tagged writes work on the new writer.
    let e3 = c
        .execute_tagged(2, "INSERT INTO j VALUES (1, 2)")
        .unwrap_err();
    assert_eq!(e3.kind(), "constraint");
    c.execute_tagged(3, "INSERT INTO j VALUES (2, 2)").unwrap();
    c.set_consistency(Consistency::Strong).unwrap();
    let count = c.execute("SELECT COUNT(*) FROM j").unwrap();
    assert_eq!(count.rows[0][0], Value::Int(2));

    server.shutdown();
    cluster.shutdown();
}
