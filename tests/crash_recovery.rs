//! Crash recovery and RO→RW failover, pinned against a map oracle.
//!
//! The contract under test (paper §2.2/§7): because the REDO log,
//! pages, and checkpoints all live in shared storage, an RW crash loses
//! **nothing committed** and **nothing uncommitted survives** — whether
//! the cluster restarts the RW in place (`recover_rw`) or promotes an
//! RO (`failover`). The proptest runs a random workload prefix
//! (CREATE/DROP/INSERT/UPDATE/DELETE/checkpoint), crashes at a random
//! point — with transactions left in flight, right after DDL, and with
//! a torn (meta-less) checkpoint on storage — recovers either way, and
//! verifies against a plain map of what was committed:
//!
//! * every committed write is present, on the new RW and on every RO;
//! * no uncommitted write is visible anywhere;
//! * the catalog version never regresses;
//! * the cluster serves reads and writes afterwards, with zero
//!   replication errors.

use polardb_imci::{Cluster, ClusterConfig, Consistency, Error, ExecOpts, SupervisorConfig, Value};
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn strong() -> ExecOpts {
    ExecOpts {
        consistency: Some(Consistency::Strong),
        ..Default::default()
    }
}

const N_TABLES: usize = 3;

#[derive(Debug, Clone, Copy)]
enum Op {
    Create(usize),
    Drop(usize),
    Insert(usize, i64, i64),
    Update(usize, i64, i64),
    Delete(usize, i64),
    Checkpoint,
}

fn decode_op((kind, t, pk, v): (u8, u8, i64, i64)) -> Op {
    let t = t as usize % N_TABLES;
    match kind {
        0 => Op::Create(t),
        1 => Op::Drop(t),
        2..=5 => Op::Insert(t, pk, v),
        6..=8 => Op::Update(t, pk, v),
        9 => Op::Delete(t, pk),
        _ => Op::Checkpoint,
    }
}

/// Shared verification: the new RW and every RO agree with the oracle.
#[allow(clippy::type_complexity)]
fn verify_against_oracle(
    c: &Arc<Cluster>,
    oracle: &[Option<BTreeMap<i64, i64>>],
    names: &[String],
) {
    let rw = c.rw().expect("writer role filled after recovery");
    for (t, slot) in oracle.iter().enumerate() {
        match slot {
            Some(rows) => {
                assert_eq!(
                    rw.row_count(&names[t]).unwrap(),
                    rows.len(),
                    "row count of {} on the recovered RW",
                    names[t]
                );
                for (&pk, &v) in rows {
                    let row = rw
                        .get_row(&names[t], pk)
                        .unwrap()
                        .unwrap_or_else(|| panic!("{}: committed pk {pk} lost", names[t]));
                    assert_eq!(row.values[1], Value::Int(v), "{} pk {pk}", names[t]);
                }
            }
            None => assert!(
                rw.table(&names[t]).is_err(),
                "dropped table {} resurrected",
                names[t]
            ),
        }
    }
    // Replicas converge through the log (including the recovery's
    // compensation records) to the same committed state.
    assert!(c.wait_sync(Duration::from_secs(30)), "ROs must catch up");
    for ro in c.ros.read().iter() {
        for (t, slot) in oracle.iter().enumerate() {
            match slot {
                Some(rows) => {
                    assert_eq!(
                        ro.engine.row_count(&names[t]).unwrap(),
                        rows.len(),
                        "{}: {} diverged",
                        ro.name,
                        names[t]
                    );
                    for (&pk, &v) in rows {
                        let row = ro
                            .engine
                            .get_row(&names[t], pk)
                            .unwrap()
                            .unwrap_or_else(|| {
                                panic!("{}: {} lost committed pk {pk}", ro.name, names[t])
                            });
                        assert_eq!(row.values[1], Value::Int(v));
                    }
                }
                None => assert!(ro.engine.table(&names[t]).is_err(), "{}", ro.name),
            }
        }
        assert_eq!(ro.pipeline.error_count(), 0, "{} pipeline errors", ro.name);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn random_workload_survives_crash_and_failover(
        raw in prop::collection::vec((0u8..12, 0u8..4, 0i64..30, -999i64..999), 1..40),
        promote in any::<bool>(),
        torn_checkpoint in any::<bool>(),
        inflight_ops in 0usize..4,
    ) {
        let c = Cluster::start(ClusterConfig {
            n_ro: 2,
            group_cap: 32,
            ..Default::default()
        });
        // Oracle: per-slot live table contents; None = dropped/never
        // created. Generation suffixes make re-created slots new tables.
        let mut oracle: Vec<Option<BTreeMap<i64, i64>>> = vec![None; N_TABLES];
        let mut names: Vec<String> = (0..N_TABLES).map(|t| format!("c{t}_g0")).collect();
        let mut gen = [0usize; N_TABLES];
        for op in raw.into_iter().map(decode_op) {
            match op {
                Op::Create(t) => {
                    if oracle[t].is_none() {
                        gen[t] += 1;
                        names[t] = format!("c{t}_g{}", gen[t]);
                        c.execute(&format!(
                            "CREATE TABLE {} (id INT NOT NULL, v INT, PRIMARY KEY(id),
                             KEY COLUMN_INDEX(id, v))",
                            names[t]
                        ))
                        .unwrap();
                        oracle[t] = Some(BTreeMap::new());
                    }
                }
                Op::Drop(t) => {
                    if oracle[t].is_some() {
                        c.execute(&format!("DROP TABLE {}", names[t])).unwrap();
                        oracle[t] = None;
                    }
                }
                Op::Insert(t, pk, v) => {
                    if let Some(rows) = oracle[t].as_mut() {
                        if let std::collections::btree_map::Entry::Vacant(slot) = rows.entry(pk) {
                            c.execute(&format!("INSERT INTO {} VALUES ({pk}, {v})", names[t]))
                                .unwrap();
                            slot.insert(v);
                        }
                    }
                }
                Op::Update(t, pk, v) => {
                    if let Some(rows) = oracle[t].as_mut() {
                        if rows.contains_key(&pk) {
                            c.execute(&format!("UPDATE {} SET v = {v} WHERE id = {pk}", names[t]))
                                .unwrap();
                            rows.insert(pk, v);
                        }
                    }
                }
                Op::Delete(t, pk) => {
                    if let Some(rows) = oracle[t].as_mut() {
                        if rows.remove(&pk).is_some() {
                            c.execute(&format!("DELETE FROM {} WHERE id = {pk}", names[t]))
                                .unwrap();
                        }
                    }
                }
                Op::Checkpoint => {
                    c.checkpoint_now().unwrap();
                }
            }
        }

        // Leave a transaction in flight at the crash: its CALS-shipped
        // entries are in the log and on the replicas, but no commit
        // record exists — nothing of it may survive recovery.
        let rw = c.rw().unwrap();
        let live: Vec<usize> = (0..N_TABLES).filter(|&t| oracle[t].is_some()).collect();
        let mut doomed = rw.begin();
        let mut doomed_pks: Vec<(usize, i64)> = Vec::new();
        if !live.is_empty() {
            for i in 0..inflight_ops {
                let t = live[i % live.len()];
                // PKs outside the oracle's 0..30 range: unambiguous.
                let pk = 1_000 + i as i64;
                rw.insert(&mut doomed, &names[t], vec![Value::Int(pk), Value::Int(-1)])
                    .unwrap();
                doomed_pks.push((t, pk));
            }
        }
        // A torn checkpoint (crash mid-checkpoint: objects written,
        // meta — which is written last — missing) must be ignored.
        if torn_checkpoint {
            c.fs.put_object(
                "ckpt/999999999990/rowpages/00000000000000000001",
                bytes::Bytes::from_static(b"torn"),
            );
            c.fs.put_object("ckpt/999999999990/catalog", bytes::Bytes::from_static(b"torn"));
        }
        let catalog_version_before = rw.catalog_version();
        let written_before = c.written_lsn();
        drop((rw, doomed));

        // Crash, then recover in place or promote an RO.
        let zombie = c.crash_rw().expect("RW was up");
        assert!(matches!(
            c.execute("INSERT INTO nowhere VALUES (1, 1)").unwrap_err(),
            Error::Failover(_)
        ));
        if promote {
            let report = c.failover().unwrap();
            prop_assert!(report.epoch >= 1);
        } else {
            c.recover_rw().unwrap();
        }

        // The zombie is fenced out of shared storage for good.
        if let Some(t) = live.first() {
            let mut ztxn = zombie.begin();
            let zerr = zombie
                .insert(&mut ztxn, &names[*t], vec![Value::Int(5_000), Value::Int(0)])
                .unwrap_err();
            prop_assert!(zerr.is_retryable(), "zombie write must be fenced: {zerr}");
        }

        // Catalog version is monotonic across the ownership change, and
        // the strong-consistency fence never regressed.
        let rw = c.rw().unwrap();
        prop_assert!(
            rw.catalog_version() >= catalog_version_before,
            "catalog version regressed: {} < {catalog_version_before}",
            rw.catalog_version()
        );
        prop_assert!(c.written_lsn() >= written_before);

        // The cluster serves writes again. This also acts as a fence:
        // recovery's compensation + abort records advance no commit
        // watermark (nothing committed!), so one committed statement
        // pushes the written LSN past them and `wait_sync` then covers
        // the rollback when we inspect the replicas below.
        if let Some(t) = live.first() {
            c.execute(&format!("INSERT INTO {} VALUES (2000, 7)", names[*t]))
                .unwrap();
            oracle[*t].as_mut().unwrap().insert(2000, 7);
        } else {
            c.execute("CREATE TABLE fence (id INT NOT NULL, PRIMARY KEY(id))")
                .unwrap();
        }

        // No committed write lost, no uncommitted write visible.
        verify_against_oracle(&c, &oracle, &names);
        for (t, pk) in &doomed_pks {
            if oracle[*t].is_some() {
                prop_assert!(
                    rw.get_row(&names[*t], *pk).unwrap().is_none(),
                    "in-flight pk {pk} of {} survived the crash",
                    names[*t]
                );
                for ro in c.ros.read().iter() {
                    prop_assert!(
                        ro.engine.get_row(&names[*t], *pk).unwrap().is_none(),
                        "{}: in-flight pk {pk} of {} survived on the replica",
                        ro.name,
                        names[*t]
                    );
                }
            }
        }

        // Strong reads work end to end on whatever RO remains (or the
        // RW directly if the promotion consumed the last one).
        if let Some(t) = live.first() {
            let res = c
                .execute_opts(
                    &format!("SELECT v FROM {} WHERE id = 2000", names[*t]),
                    strong(),
                )
                .unwrap();
            prop_assert_eq!(res.rows.len(), 1);
            prop_assert_eq!(res.rows[0][0].clone(), Value::Int(7));
        }
        c.shutdown();
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Auto-detection schedules: with the supervisor running, either
    /// the writer dies (lease expiry — the supervisor must detect and
    /// promote with **no caller invoking `failover()`**) or the writer
    /// is merely slow (heartbeat interval a large fraction of the lease
    /// — the supervisor must NOT depose a live writer, for any jitter
    /// seed). Both schedules end with the cluster serving reads and
    /// writes with nothing lost.
    #[test]
    fn supervisor_detection_schedules_promote_only_dead_writers(
        kill in any::<bool>(),
        lease_ms in 50u64..90,
        seed in any::<u64>(),
    ) {
        // Dead-writer schedules beat fast (the lease expires because
        // nobody beats); slow-writer schedules beat at half the lease,
        // so every expiry check sees a fresh-enough beat.
        let hb_ms = if kill { 4 } else { lease_ms / 2 };
        let c = Cluster::start(ClusterConfig {
            n_ro: 2,
            group_cap: 32,
            heartbeat_interval: Duration::from_millis(hb_ms),
            supervisor: Some(SupervisorConfig {
                lease_timeout: Duration::from_millis(lease_ms),
                jitter: Duration::from_millis(lease_ms / 4),
                seed,
            }),
            ..Default::default()
        });
        c.execute(
            "CREATE TABLE sched (id INT NOT NULL, v INT, PRIMARY KEY(id),
             KEY COLUMN_INDEX(id, v))",
        )
        .unwrap();
        for i in 0..50 {
            c.execute(&format!("INSERT INTO sched VALUES ({i}, {i})")).unwrap();
        }
        if kill {
            c.crash_rw();
            let deadline = Instant::now() + Duration::from_secs(30);
            while c.auto_failovers() == 0 {
                prop_assert!(Instant::now() < deadline, "supervisor never promoted");
                std::thread::sleep(Duration::from_millis(5));
            }
            prop_assert!(c.wait_for_writer(Duration::from_secs(30)), "no writer after promotion");
            // Detection can't be faster than the lease itself.
            prop_assert!(
                c.detection_ms_last() as u128 >= Duration::from_millis(lease_ms).as_millis(),
                "detection {}ms under the {lease_ms}ms lease",
                c.detection_ms_last()
            );
        } else {
            // Three lease periods of grace: plenty of chances to flap.
            std::thread::sleep(Duration::from_millis(lease_ms * 3));
            prop_assert_eq!(c.auto_failovers(), 0, "deposed a live writer");
        }
        c.execute("INSERT INTO sched VALUES (100, 100)").unwrap();
        let res = c.execute_opts("SELECT COUNT(*) FROM sched", strong()).unwrap();
        prop_assert_eq!(res.rows[0][0].clone(), Value::Int(51));
        // Whatever the schedule, exactly one writer epoch history: no
        // further promotions happen once the cluster is stable again.
        let before = c.auto_failovers();
        std::thread::sleep(Duration::from_millis(lease_ms * 2));
        prop_assert_eq!(c.auto_failovers(), before, "supervisor flapped after recovery");
        c.shutdown();
    }
}

/// Crash immediately after a DDL statement (commit record in the log):
/// the created table must survive recovery even with no checkpoint, on
/// both recovery paths.
#[test]
fn crash_right_after_ddl_keeps_the_table() {
    for promote in [false, true] {
        let c = Cluster::start(ClusterConfig {
            n_ro: 1,
            group_cap: 32,
            ..Default::default()
        });
        c.execute(
            "CREATE TABLE fresh (id INT NOT NULL, v INT, PRIMARY KEY(id),
             KEY COLUMN_INDEX(id, v))",
        )
        .unwrap();
        c.crash_rw();
        if promote {
            c.failover().unwrap();
        } else {
            c.recover_rw().unwrap();
        }
        c.execute("INSERT INTO fresh VALUES (1, 1)").unwrap();
        let res = c
            .execute_opts("SELECT COUNT(*) FROM fresh", strong())
            .unwrap();
        assert_eq!(res.rows[0][0], Value::Int(1), "promote={promote}");
        c.shutdown();
    }
}

/// Back-to-back crash cycles with traffic in between: state survives an
/// arbitrary chain of ownership changes (recover → crash → promote).
#[test]
fn repeated_crash_cycles_accumulate_no_loss() {
    let c = Cluster::start(ClusterConfig {
        n_ro: 2,
        group_cap: 32,
        ..Default::default()
    });
    c.execute(
        "CREATE TABLE walk (id INT NOT NULL, v INT, PRIMARY KEY(id),
         KEY COLUMN_INDEX(id, v))",
    )
    .unwrap();
    let mut expected = 0i64;
    for cycle in 0..4 {
        for i in 0..25 {
            c.execute(&format!(
                "INSERT INTO walk VALUES ({}, {cycle})",
                expected + i
            ))
            .unwrap();
        }
        expected += 25;
        if cycle == 1 {
            c.checkpoint_now().unwrap();
        }
        c.crash_rw();
        if cycle % 2 == 0 {
            c.recover_rw().unwrap();
        } else {
            c.failover().unwrap();
        }
        assert_eq!(
            c.rw().unwrap().row_count("walk").unwrap() as i64,
            expected,
            "cycle {cycle}"
        );
    }
    let res = c
        .execute_opts("SELECT COUNT(*) FROM walk", strong())
        .unwrap();
    assert_eq!(res.rows[0][0], Value::Int(expected));
    c.shutdown();
}
