//! Concurrent multi-client sessions over `imci-server` (paper §6.1/§6.4).
//!
//! Two scenarios:
//! * ≥4 writers + ≥4 readers under `SET CONSISTENCY STRONG`, asserting
//!   read-your-writes on every write, and that ≥8 sessions really were
//!   being served simultaneously;
//! * writers under eventual consistency, asserting no committed update
//!   is lost once replication catches up, while eventual readers only
//!   ever observe committed states.

use polardb_imci::cluster::{Cluster, ClusterConfig, Consistency};
use polardb_imci::common::Value;
use polardb_imci::server::{Client, Server, ServerConfig};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Barrier};
use std::time::Duration;

const WRITERS: usize = 4;
const READERS: usize = 4;

fn boot() -> (Server, Arc<Cluster>) {
    let cluster = Cluster::start(ClusterConfig {
        n_ro: 2,
        group_cap: 64,
        ..Default::default()
    });
    let server = Server::start(
        cluster.clone(),
        ServerConfig {
            workers: 2 * (WRITERS + READERS),
            ..Default::default()
        },
    )
    .unwrap();
    (server, cluster)
}

#[test]
fn strong_sessions_read_their_writes_concurrently() {
    let (server, cluster) = boot();
    let addr = server.local_addr();
    let mut admin = Client::connect(addr).unwrap();
    admin
        .execute(
            "CREATE TABLE acct (id INT NOT NULL, bal INT, owner INT,
             PRIMARY KEY(id), KEY COLUMN_INDEX(id, bal, owner))",
        )
        .unwrap();

    // All sessions connect, then start together so they overlap.
    let barrier = Arc::new(Barrier::new(WRITERS + READERS + 1));
    let max_active = Arc::new(AtomicUsize::new(0));
    let mut handles = Vec::new();

    for w in 0..WRITERS as i64 {
        let barrier = barrier.clone();
        let mut c = Client::connect(addr).unwrap();
        handles.push(std::thread::spawn(move || {
            c.set_consistency(Consistency::Strong).unwrap();
            barrier.wait();
            for i in 0..25i64 {
                let id = w * 1000 + i;
                c.execute(&format!("INSERT INTO acct VALUES ({id}, {i}, {w})"))
                    .unwrap();
                // §6.4: a strong read right after the write must see it,
                // even though it is served by an RO node.
                let res = c
                    .execute(&format!("SELECT bal FROM acct WHERE id = {id}"))
                    .unwrap();
                assert_eq!(
                    res.rows,
                    vec![vec![Value::Int(i)]],
                    "writer {w} lost read-your-writes on id {id}"
                );
            }
        }));
    }
    for _ in 0..READERS {
        let barrier = barrier.clone();
        let mut c = Client::connect(addr).unwrap();
        handles.push(std::thread::spawn(move || {
            c.set_consistency(Consistency::Strong).unwrap();
            barrier.wait();
            for _ in 0..20 {
                let res = c.execute("SELECT COUNT(*) FROM acct").unwrap();
                assert_eq!(res.rows.len(), 1);
            }
        }));
    }

    // Watch concurrency from the outside while the sessions run.
    barrier.wait();
    let watcher = {
        let max_active = max_active.clone();
        let stats = server.stats_handle();
        std::thread::spawn(move || loop {
            let a = stats.active_sessions.load(Ordering::SeqCst);
            max_active.fetch_max(a, Ordering::SeqCst);
            if a == 0 {
                break;
            }
            std::thread::sleep(Duration::from_millis(1));
        })
    };
    for h in handles {
        h.join().unwrap();
    }

    // Final state: every write visible under strong consistency.
    let res = admin.execute("SELECT COUNT(*) FROM acct").unwrap();
    assert_eq!(res.rows[0][0], Value::Int((WRITERS * 25) as i64));
    drop(admin);
    watcher.join().unwrap();
    assert!(
        max_active.load(Ordering::SeqCst) >= WRITERS + READERS,
        "expected >= {} simultaneous sessions, saw {}",
        WRITERS + READERS,
        max_active.load(Ordering::SeqCst)
    );
    assert!(server.stats().connections.load(Ordering::Relaxed) >= (WRITERS + READERS) as u64);
    server.shutdown();
    cluster.shutdown();
}

#[test]
fn pipelined_and_batched_sessions_interleave() {
    // Protocol v2 exercise under concurrency: half the sessions stream
    // deep pipelines (many requests in flight before the first read),
    // half issue BATCH frames, all against the same table. Responses
    // must stay strictly ordered per connection.
    let (server, cluster) = boot();
    let addr = server.local_addr();
    let mut admin = Client::connect(addr).unwrap();
    admin
        .execute(
            "CREATE TABLE pl (id INT NOT NULL, v INT,
             PRIMARY KEY(id), KEY COLUMN_INDEX(id, v))",
        )
        .unwrap();

    const SESSIONS: i64 = 4;
    const PER_SESSION: i64 = 40;
    let barrier = Arc::new(Barrier::new(2 * SESSIONS as usize));
    let mut handles = Vec::new();
    for s in 0..SESSIONS {
        // Pipelining session: 2 * PER_SESSION requests in flight.
        let pipe_barrier = barrier.clone();
        let mut c = Client::connect(addr).unwrap();
        handles.push(std::thread::spawn(move || {
            c.set_consistency(Consistency::Strong).unwrap();
            pipe_barrier.wait();
            for i in 0..PER_SESSION {
                let id = s * 10_000 + i;
                c.send(&format!("INSERT INTO pl VALUES ({id}, {i})"))
                    .unwrap();
                c.send(&format!("SELECT v FROM pl WHERE id = {id}"))
                    .unwrap();
            }
            for i in 0..PER_SESSION {
                assert_eq!(c.recv().unwrap().affected, 1, "insert {i}");
                let res = c.recv().unwrap();
                assert_eq!(res.rows, vec![vec![Value::Int(i)]], "session {s} id {i}");
            }
        }));
        // Batching session.
        let barrier = barrier.clone();
        let mut c = Client::connect(addr).unwrap();
        handles.push(std::thread::spawn(move || {
            barrier.wait();
            let mut stmts: Vec<String> = vec!["SET CONSISTENCY STRONG".into()];
            for i in 0..PER_SESSION {
                let id = (s + SESSIONS) * 10_000 + i;
                stmts.push(format!("INSERT INTO pl VALUES ({id}, {i})"));
            }
            stmts.push(format!(
                "SELECT COUNT(*) FROM pl WHERE id >= {} AND id < {}",
                (s + SESSIONS) * 10_000,
                (s + SESSIONS) * 10_000 + PER_SESSION
            ));
            let results = c.execute_batch(&stmts).unwrap();
            assert_eq!(results.len(), stmts.len());
            // Batch-local read-your-writes: the trailing count sees all
            // of this batch's inserts.
            let count = results.last().unwrap().as_ref().unwrap();
            assert_eq!(count.rows, vec![vec![Value::Int(PER_SESSION)]]);
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    admin.set_consistency(Consistency::Strong).unwrap();
    let res = admin.execute("SELECT COUNT(*) FROM pl").unwrap();
    assert_eq!(res.rows[0][0], Value::Int(2 * SESSIONS * PER_SESSION));
    server.shutdown();
    cluster.shutdown();
}

#[test]
fn eventual_sessions_lose_no_updates() {
    let (server, cluster) = boot();
    let addr = server.local_addr();
    let mut admin = Client::connect(addr).unwrap();
    admin
        .execute(
            "CREATE TABLE ctr (id INT NOT NULL, v INT,
             PRIMARY KEY(id), KEY COLUMN_INDEX(id, v))",
        )
        .unwrap();

    const ROWS_PER_WRITER: i64 = 5;
    const UPDATES: i64 = 20;
    let barrier = Arc::new(Barrier::new(WRITERS + READERS));
    let mut handles = Vec::new();
    for w in 0..WRITERS as i64 {
        let barrier = barrier.clone();
        let mut c = Client::connect(addr).unwrap();
        handles.push(std::thread::spawn(move || {
            // Default consistency: eventual.
            barrier.wait();
            for r in 0..ROWS_PER_WRITER {
                let id = w * 100 + r;
                c.execute(&format!("INSERT INTO ctr VALUES ({id}, 0)"))
                    .unwrap();
                for k in 1..=UPDATES {
                    c.execute(&format!("UPDATE ctr SET v = {k} WHERE id = {id}"))
                        .unwrap();
                }
            }
        }));
    }
    for _ in 0..READERS {
        let barrier = barrier.clone();
        let mut c = Client::connect(addr).unwrap();
        handles.push(std::thread::spawn(move || {
            c.set_consistency(Consistency::Eventual).unwrap();
            barrier.wait();
            for _ in 0..30 {
                // Stale reads are fine (possibly even the empty table);
                // observed values must still be ones some transaction
                // committed (0..=UPDATES).
                let res = c.execute("SELECT MAX(v) FROM ctr").unwrap();
                if let Some(Value::Int(v)) = res.rows.first().map(|r| r[0].clone()) {
                    assert!((0..=UPDATES).contains(&v), "impossible value {v}");
                }
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }

    // Once the ROs catch up, *every* committed update must be there:
    // all rows exist and each carries its last update (no lost writes).
    assert!(
        cluster.wait_sync(Duration::from_secs(30)),
        "ROs never caught up"
    );
    admin.set_consistency(Consistency::Strong).unwrap();
    let res = admin.execute("SELECT COUNT(*) FROM ctr").unwrap();
    assert_eq!(
        res.rows[0][0],
        Value::Int(WRITERS as i64 * ROWS_PER_WRITER),
        "missing rows after catch-up"
    );
    let res = admin.execute("SELECT MIN(v), MAX(v) FROM ctr").unwrap();
    assert_eq!(
        res.rows[0],
        vec![Value::Int(UPDATES), Value::Int(UPDATES)],
        "a committed update was lost"
    );
    server.shutdown();
    cluster.shutdown();
}

#[test]
fn ddl_lifecycle_surfaces_errors_over_the_wire() {
    // CREATE → INSERT → strong SELECT works immediately through the
    // service tier; after DROP the same SELECT must come back as a
    // `catalog` error (category preserved across the wire, not a
    // generic execution failure), on a session pinned to strong
    // consistency so the drop's replication is fenced, with no
    // lazy-refresh retry anywhere in the path.
    let (server, cluster) = boot();
    let addr = server.local_addr();
    let mut c = Client::connect(addr).unwrap();
    c.set_consistency(Consistency::Strong).unwrap();
    c.execute(
        "CREATE TABLE tenants (id INT NOT NULL, v INT,
         PRIMARY KEY(id), KEY COLUMN_INDEX(id, v))",
    )
    .unwrap();
    c.execute("INSERT INTO tenants VALUES (1, 10)").unwrap();
    let res = c.execute("SELECT v FROM tenants WHERE id = 1").unwrap();
    assert_eq!(res.rows, vec![vec![Value::Int(10)]]);

    c.execute("DROP TABLE tenants").unwrap();
    let err = c
        .execute("SELECT v FROM tenants WHERE id = 1")
        .expect_err("dropped table must error");
    assert_eq!(
        err.kind(),
        "catalog",
        "wire must preserve the category: {err}"
    );
    // A second session sees the same state (no per-session catalog).
    let mut c2 = Client::connect(addr).unwrap();
    c2.set_consistency(Consistency::Strong).unwrap();
    let err = c2
        .execute("SELECT COUNT(*) FROM tenants")
        .expect_err("dropped table must error on fresh sessions too");
    assert_eq!(err.kind(), "catalog");
    // And the name is reusable.
    c2.execute("CREATE TABLE tenants (id INT NOT NULL, v INT, PRIMARY KEY(id))")
        .unwrap();
    c2.execute("INSERT INTO tenants VALUES (1, 77)").unwrap();
    let res = c2.execute("SELECT v FROM tenants WHERE id = 1").unwrap();
    assert_eq!(res.rows, vec![vec![Value::Int(77)]]);
    server.shutdown();
    cluster.shutdown();
}
