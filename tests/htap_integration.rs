//! Cross-crate integration tests: full HTAP paths through the cluster.

use polardb_imci::sql::QueryOptions;
use polardb_imci::{Cluster, ClusterConfig, Consistency, EngineChoice, Value};
use std::time::Duration;

/// Compare result sets, treating doubles as equal within a relative
/// epsilon (parallel aggregation sums in a different order than the
/// row-at-a-time engine, so last-bit differences are expected).
fn assert_rows_approx_eq(a: &[Vec<Value>], b: &[Vec<Value>], ctx: &str) {
    assert_eq!(a.len(), b.len(), "{ctx}: row counts differ");
    for (ra, rb) in a.iter().zip(b) {
        assert_eq!(ra.len(), rb.len(), "{ctx}: widths differ");
        for (va, vb) in ra.iter().zip(rb) {
            match (va, vb) {
                (Value::Double(x), Value::Double(y)) => {
                    let scale = x.abs().max(y.abs()).max(1.0);
                    assert!((x - y).abs() / scale < 1e-9, "{ctx}: {x} vs {y}");
                }
                _ => assert_eq!(va, vb, "{ctx}"),
            }
        }
    }
}

fn cluster() -> std::sync::Arc<Cluster> {
    Cluster::start(ClusterConfig {
        group_cap: 128,
        ..Default::default()
    })
}

#[test]
fn tpch_mini_engines_agree_on_all_22_queries() {
    let c = cluster();
    polardb_imci::workloads::tpch::load(&c, 0.0005, 11).unwrap();
    assert!(c.wait_sync(Duration::from_secs(120)));
    let node = c.ros.read()[0].clone();
    for (name, sql) in polardb_imci::workloads::tpch::queries() {
        let col = node
            .query
            .run(&sql, &QueryOptions::forced(Some(EngineChoice::Column)))
            .unwrap();
        assert_eq!(col.engine, EngineChoice::Column, "{name}");
        let row = node
            .query
            .run(&sql, &QueryOptions::forced(Some(EngineChoice::Row)))
            .unwrap();
        assert_rows_approx_eq(&col.rows, &row.rows, name);
    }
    c.shutdown();
}

#[test]
fn mixed_workload_stays_consistent() {
    let c = cluster();
    c.execute(
        "CREATE TABLE acct (id INT NOT NULL, bal DOUBLE, tag VARCHAR(8),
         PRIMARY KEY(id), KEY COLUMN_INDEX(id, bal, tag))",
    )
    .unwrap();
    for i in 0..500 {
        c.execute(&format!(
            "INSERT INTO acct VALUES ({i}, 100.0, 't{}')",
            i % 4
        ))
        .unwrap();
    }
    // Transfer-style updates: total balance must be invariant.
    for i in 0..200 {
        let a = i % 500;
        let b = (i * 7 + 1) % 500;
        if a == b {
            continue;
        }
        let rw = c.rw().expect("RW node is up");
        let mut txn = rw.begin();
        let mut ra = rw.get_row("acct", a).unwrap().unwrap();
        let mut rb = rw.get_row("acct", b).unwrap().unwrap();
        ra.values[1] = Value::Double(ra.values[1].as_f64().unwrap() - 5.0);
        rb.values[1] = Value::Double(rb.values[1].as_f64().unwrap() + 5.0);
        rw.update(&mut txn, "acct", a, ra.values).unwrap();
        rw.update(&mut txn, "acct", b, rb.values).unwrap();
        rw.commit(txn).unwrap();
    }
    assert!(c.wait_sync(Duration::from_secs(60)));
    let res = c.execute("SELECT SUM(bal), COUNT(*) FROM acct").unwrap();
    assert_eq!(res.rows[0][1], Value::Int(500));
    let total = res.rows[0][0].as_f64().unwrap();
    assert!((total - 50_000.0).abs() < 1e-6, "money conserved: {total}");
    c.shutdown();
}

#[test]
fn aborted_transfer_leaves_no_trace_in_analytics() {
    let c = cluster();
    c.execute("CREATE TABLE t (id INT NOT NULL, v INT, PRIMARY KEY(id), KEY COLUMN_INDEX(id, v))")
        .unwrap();
    c.execute("INSERT INTO t VALUES (1, 10), (2, 20)").unwrap();
    let rw = c.rw().expect("RW node is up");
    let mut bad = rw.begin();
    let mut row = rw.get_row("t", 1).unwrap().unwrap();
    row.values[1] = Value::Int(-999);
    rw.update(&mut bad, "t", 1, row.values).unwrap();
    rw.abort(bad).unwrap();
    c.execute("INSERT INTO t VALUES (3, 30)").unwrap();
    assert!(c.wait_sync(Duration::from_secs(30)));
    let res = c.execute("SELECT SUM(v) FROM t").unwrap();
    assert_eq!(res.rows[0][0], Value::Int(60));
    c.shutdown();
}

#[test]
fn strong_consistency_end_to_end() {
    let c = Cluster::start(ClusterConfig {
        group_cap: 128,
        consistency: Consistency::Strong,
        ..Default::default()
    });
    c.execute("CREATE TABLE kv (id INT NOT NULL, v INT, PRIMARY KEY(id), KEY COLUMN_INDEX(id, v))")
        .unwrap();
    for i in 0..100 {
        c.execute(&format!("INSERT INTO kv VALUES ({i}, {i})"))
            .unwrap();
        let res = c
            .execute(&format!("SELECT v FROM kv WHERE id = {i}"))
            .unwrap();
        assert_eq!(res.rows[0][0], Value::Int(i), "read-your-write at {i}");
    }
    c.shutdown();
}

#[test]
fn scale_out_preserves_query_results() {
    let c = cluster();
    c.execute("CREATE TABLE s (id INT NOT NULL, g INT, PRIMARY KEY(id), KEY COLUMN_INDEX(id, g))")
        .unwrap();
    for i in 0..400 {
        c.execute(&format!("INSERT INTO s VALUES ({i}, {})", i % 4))
            .unwrap();
    }
    assert!(c.wait_sync(Duration::from_secs(30)));
    c.checkpoint_now().unwrap();
    for i in 400..500 {
        c.execute(&format!("INSERT INTO s VALUES ({i}, {})", i % 4))
            .unwrap();
    }
    let report = c.scale_out().unwrap();
    assert!(report.from_checkpoint);
    // Route enough queries that both nodes serve some.
    for _ in 0..8 {
        let res = c.execute("SELECT COUNT(*) FROM s").unwrap();
        assert_eq!(res.rows[0][0], Value::Int(500));
    }
    c.shutdown();
}
