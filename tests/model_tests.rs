//! Model-based tests: the storage structures against reference models,
//! and a randomized end-to-end replication equivalence check.

use polardb_imci::common::{ColumnDef, DataType, IndexDef, IndexKind, Value};
use polardb_imci::polarfs::PolarFs;
use polardb_imci::rowstore::RowEngine;
use polardb_imci::wal::{LogWriter, PropagationMode};
use proptest::prelude::*;
use std::collections::BTreeMap;

fn table_parts() -> (Vec<ColumnDef>, Vec<IndexDef>) {
    (
        vec![
            ColumnDef::not_null("id", DataType::Int),
            ColumnDef::new("v", DataType::Int),
            ColumnDef::new("s", DataType::Str),
        ],
        vec![
            IndexDef {
                kind: IndexKind::Primary,
                name: "PRIMARY".into(),
                columns: vec![0],
            },
            IndexDef {
                kind: IndexKind::Secondary,
                name: "v_idx".into(),
                columns: vec![1],
            },
            IndexDef {
                kind: IndexKind::Column,
                name: "ci".into(),
                columns: vec![0, 1, 2],
            },
        ],
    )
}

#[derive(Debug, Clone)]
enum Op {
    Insert(i64, i64),
    Update(i64, i64),
    Delete(i64),
    Abort(Vec<(i64, i64)>),
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0i64..400, any::<i64>()).prop_map(|(k, v)| Op::Insert(k, v)),
        (0i64..400, any::<i64>()).prop_map(|(k, v)| Op::Update(k, v)),
        (0i64..400).prop_map(Op::Delete),
        prop::collection::vec((400i64..500, any::<i64>()), 1..4).prop_map(Op::Abort),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The row engine behaves like a BTreeMap under random DML (incl.
    /// splits from large payloads), and a replica replaying its REDO log
    /// converges to identical content — the §5 end-to-end invariant.
    #[test]
    fn rowstore_matches_model_and_replica_converges(
        ops in prop::collection::vec(arb_op(), 1..150)
    ) {
        let fs = PolarFs::instant();
        let log = LogWriter::new(fs.clone(), PropagationMode::ReuseRedo);
        let rw = RowEngine::new_rw(fs.clone(), log, 1 << 20);
        let (cols, idxs) = table_parts();
        rw.create_table("t", cols, idxs).unwrap();
        let mut model: BTreeMap<i64, i64> = BTreeMap::new();
        let payload = "p".repeat(64); // forces leaf splits

        for op in &ops {
            let mut txn = rw.begin();
            match op {
                Op::Insert(k, v) => {
                    let r = rw.insert(&mut txn, "t", vec![
                        Value::Int(*k), Value::Int(*v), Value::Str(payload.clone()),
                    ]);
                    if model.contains_key(k) {
                        prop_assert!(r.is_err(), "duplicate pk {k} must fail");
                        rw.abort(txn).unwrap();
                        continue;
                    }
                    prop_assert!(r.is_ok());
                    model.insert(*k, *v);
                }
                Op::Update(k, v) => {
                    let r = rw.update(&mut txn, "t", *k, vec![
                        Value::Int(*k), Value::Int(*v), Value::Str(payload.clone()),
                    ]);
                    if model.contains_key(k) {
                        prop_assert!(r.is_ok());
                        model.insert(*k, *v);
                    } else {
                        prop_assert!(r.is_err());
                        rw.abort(txn).unwrap();
                        continue;
                    }
                }
                Op::Delete(k) => {
                    let r = rw.delete(&mut txn, "t", *k);
                    prop_assert_eq!(r.is_ok(), model.remove(k).is_some());
                    if r.is_err() {
                        rw.abort(txn).unwrap();
                        continue;
                    }
                }
                Op::Abort(rows) => {
                    for (k, v) in rows {
                        if !model.contains_key(k) {
                            let _ = rw.insert(&mut txn, "t", vec![
                                Value::Int(*k), Value::Int(*v), Value::Null,
                            ]);
                        }
                    }
                    rw.abort(txn).unwrap();
                    continue;
                }
            }
            rw.commit(txn).unwrap();
        }

        // RW content == model.
        let mut got = BTreeMap::new();
        rw.scan("t", i64::MIN, i64::MAX, |pk, row| {
            got.insert(pk, row.values[1].as_int().unwrap());
        }).unwrap();
        prop_assert_eq!(&got, &model);

        // Replica replay == model (pages, secondaries, and extraction).
        let state = polardb_imci::replication::replay_log_sync(
            &fs, None, 64, usize::MAX / 2,
        ).unwrap();
        let mut replica = BTreeMap::new();
        state.engine.scan("t", i64::MIN, i64::MAX, |pk, row| {
            replica.insert(pk, row.values[1].as_int().unwrap());
        }).unwrap();
        prop_assert_eq!(&replica, &model);

        // Column index content == model (via PK lookups at the final
        // watermark).
        let idx = state.store.index(polardb_imci::common::TableId(1)).unwrap();
        let snap = idx.snapshot();
        for (k, v) in &model {
            let row = snap.get_by_pk(*k);
            prop_assert!(row.is_some(), "pk {k} missing from column index");
            prop_assert_eq!(&row.unwrap()[1], &Value::Int(*v));
        }
        // And nothing extra is visible.
        let visible: usize = idx.groups().iter()
            .map(|g| g.visible_offsets(snap.csn).len()).sum();
        prop_assert_eq!(visible, model.len());
    }

    /// REDO entries survive arbitrary chunked framing (reader never
    /// tears an entry regardless of chunk boundaries).
    #[test]
    fn redo_frames_survive_any_chunking(
        n_entries in 1usize..40,
        chunk in 1usize..64,
    ) {
        use polardb_imci::wal::{RedoEntry, RedoPayload};
        use polardb_imci::common::{Lsn, PageId, TableId, Tid};
        let mut buf = Vec::new();
        let mut expect = Vec::new();
        for i in 0..n_entries {
            let e = RedoEntry {
                lsn: Lsn(i as u64 + 1),
                prev_lsn: Lsn(i as u64),
                tid: Tid(i as u64 % 5),
                table_id: TableId(1),
                page_id: PageId(i as u64 % 7),
                slot_id: i as u32,
                payload: RedoPayload::Insert { pk: i as i64, image: vec![i as u8; i % 11] },
            };
            buf.extend_from_slice(&e.encode());
            expect.push(e);
        }
        // Feed the decoder in fixed-size chunks.
        let mut pending = Vec::new();
        let mut decoded = Vec::new();
        for piece in buf.chunks(chunk) {
            pending.extend_from_slice(piece);
            let mut pos = 0;
            while let Some((e, used)) = RedoEntry::decode(&pending[pos..]).unwrap() {
                decoded.push(e);
                pos += used;
            }
            pending.drain(..pos);
        }
        prop_assert_eq!(decoded, expect);
        prop_assert!(pending.is_empty());
    }
}
