//! Overload, churn, and lifecycle behaviour of the reactor service
//! tier, exercised end-to-end through the SQL server (PR 6 tentpole).
//!
//! The `imci_net` crate pins the same properties against a toy echo
//! protocol; these tests prove they survive the real protocol stack:
//! slow-loris writers cannot stall other sessions, connection churn
//! leaks neither sessions nor file descriptors, a saturated statement
//! queue sheds retryable `busy` errors while accepts keep working, the
//! connection budget refuses at accept with a readable frame, idle
//! sessions are reaped while active ones are not, and graceful
//! shutdown says goodbye with a retryable error.

use polardb_imci::cluster::{Cluster, ClusterConfig, Consistency};
use polardb_imci::common::Value;
use polardb_imci::server::{Client, RetryPolicy, Server, ServerConfig};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn boot(config: ServerConfig) -> (Server, Arc<Cluster>) {
    let cluster = Cluster::start(ClusterConfig {
        group_cap: 64,
        ..Default::default()
    });
    let server = Server::start(cluster.clone(), config).unwrap();
    (server, cluster)
}

/// Open file descriptors of this process (0 where /proc is missing,
/// which skips the fd-leak assertions).
fn open_fds() -> usize {
    std::fs::read_dir("/proc/self/fd")
        .map(|d| d.count())
        .unwrap_or(0)
}

fn wait_until(what: &str, timeout: Duration, mut done: impl FnMut() -> bool) {
    let t0 = Instant::now();
    while !done() {
        assert!(t0.elapsed() < timeout, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(5));
    }
}

#[test]
fn slow_loris_writers_do_not_stall_other_sessions() {
    let (server, cluster) = boot(ServerConfig {
        reactors: 1,
        workers: 2,
        ..Default::default()
    });
    let addr = server.local_addr();
    let mut c = Client::connect(addr).unwrap();
    c.execute(
        "CREATE TABLE kv (id INT NOT NULL, v INT, PRIMARY KEY(id),
         KEY COLUMN_INDEX(id, v))",
    )
    .unwrap();
    c.execute("INSERT INTO kv VALUES (1, 10)").unwrap();
    c.set_consistency(Consistency::Strong).unwrap();

    // Eight sessions dribble a request one byte every 20ms. Under the
    // old thread-per-connection design each of these pinned a thread
    // in a blocking read; on the reactor they cost one fd and an
    // occasional readiness event.
    const LORIS: usize = 8;
    let mut handles = Vec::new();
    for _ in 0..LORIS {
        handles.push(std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            s.set_nodelay(true).unwrap();
            for b in b"SET CONSISTENCY STRONG\n" {
                s.write_all(&[*b]).unwrap();
                std::thread::sleep(Duration::from_millis(20));
            }
            // The dribbled line, once complete, is served normally.
            let mut line = String::new();
            BufReader::new(&s).read_line(&mut line).unwrap();
            assert_eq!(line.trim(), "OK 0");
        }));
    }

    // Meanwhile a well-behaved session gets normal service: its reads
    // must finish long before the loris sessions finish dribbling.
    std::thread::sleep(Duration::from_millis(50));
    let t0 = Instant::now();
    for _ in 0..100 {
        let res = c.execute("SELECT v FROM kv WHERE id = 1").unwrap();
        assert_eq!(res.rows, vec![vec![Value::Int(10)]]);
    }
    assert!(
        t0.elapsed() < Duration::from_secs(10),
        "100 point reads took {:?} behind {LORIS} slow-loris writers",
        t0.elapsed()
    );
    for h in handles {
        h.join().unwrap();
    }
    server.shutdown();
    cluster.shutdown();
}

#[test]
fn connection_churn_storm_leaks_no_sessions_or_fds() {
    let (server, cluster) = boot(ServerConfig {
        reactors: 1,
        workers: 2,
        ..Default::default()
    });
    let addr = server.local_addr();
    let stats = server.stats_handle();
    let mut admin = Client::connect(addr).unwrap();
    admin
        .execute("CREATE TABLE churn (id INT NOT NULL, PRIMARY KEY(id))")
        .unwrap();
    admin.set_consistency(Consistency::Strong).unwrap();
    let baseline = open_fds();

    const ROUNDS: usize = 120;
    for i in 0..ROUNDS {
        match i % 3 {
            // A full session: handshake, one statement, abrupt drop.
            0 => {
                let mut c = Client::connect(addr).unwrap();
                c.execute(&format!("INSERT INTO churn VALUES ({i})"))
                    .unwrap();
            }
            // Connect and slam the door without sending a byte.
            1 => {
                let _ = TcpStream::connect(addr).unwrap();
            }
            // Half a request line, then vanish mid-frame.
            _ => {
                let mut s = TcpStream::connect(addr).unwrap();
                let _ = s.write_all(b"SELECT count");
            }
        }
    }

    // Every server-side session is reaped...
    wait_until("sessions to drain", Duration::from_secs(10), || {
        stats.active_sessions.load(Ordering::SeqCst) <= 1 // admin stays
    });
    // ...and with the client ends dropped, so is every fd.
    if baseline > 0 {
        wait_until("fds to return to baseline", Duration::from_secs(10), || {
            open_fds() <= baseline + 4
        });
    }
    assert!(stats.connections.load(Ordering::SeqCst) >= ROUNDS as u64);

    // The server is still perfectly serviceable afterwards.
    let res = admin.execute("SELECT COUNT(*) FROM churn").unwrap();
    assert_eq!(res.rows, vec![vec![Value::Int((ROUNDS / 3) as i64)]]);
    server.shutdown();
    cluster.shutdown();
}

#[test]
fn saturated_statement_queue_sheds_retryable_busy_and_keeps_accepting() {
    // Two workers: the heavy batch occupies one; the other keeps
    // serving zero-cost control units (HELLO, SET), so new sessions
    // can still handshake while the statement budget is exhausted.
    let (server, cluster) = boot(ServerConfig {
        reactors: 1,
        workers: 2,
        max_queued_statements: 2,
        ..Default::default()
    });
    let addr = server.local_addr();
    let stats = server.stats_handle();
    let mut admin = Client::connect(addr).unwrap();
    admin
        .execute(
            "CREATE TABLE big (id INT NOT NULL, v INT, PRIMARY KEY(id),
             KEY COLUMN_INDEX(id, v))",
        )
        .unwrap();
    const ROWS: i64 = 20_000;
    for chunk in 0..20i64 {
        let vals: Vec<String> = (0..1000)
            .map(|i| {
                let id = chunk * 1000 + i;
                format!("({id}, {i})")
            })
            .collect();
        admin
            .execute(&format!("INSERT INTO big VALUES {}", vals.join(", ")))
            .unwrap();
    }
    admin.set_consistency(Consistency::Strong).unwrap();
    let queries_before = stats.queries.load(Ordering::SeqCst);

    // One oversized batch (admittable from an empty queue even though
    // it dwarfs the cap) occupies the single worker for a while and
    // holds 1500 statement slots of a 2-slot budget the whole time.
    let heavy = std::thread::spawn(move || {
        let mut c = Client::connect(addr).unwrap();
        let stmts: Vec<String> = (0..1500)
            .map(|_| "SELECT COUNT(*), SUM(v) FROM big".to_string())
            .collect();
        let results = c.execute_batch(&stmts).unwrap();
        assert_eq!(results.len(), stmts.len());
        for r in results {
            r.unwrap();
        }
    });
    // The queries counter jumps when the worker *starts* the batch;
    // its admission cost is held until the batch finishes, so from
    // here until then every new statement is deterministically shed.
    wait_until("the heavy batch to start", Duration::from_secs(30), || {
        stats.queries.load(Ordering::SeqCst) > queries_before
    });

    // Accepts keep working under saturation (HELLO and SET are free),
    // and the statement comes back as a retryable `busy` in its
    // response slot — the session is NOT closed.
    let mut c = Client::connect(addr).unwrap();
    let err = c.execute("SELECT COUNT(*) FROM big").unwrap_err();
    assert_eq!(err.kind(), "busy", "expected shed, got: {err}");
    assert!(err.is_retryable());

    // Same connection, with a retry policy: the statement eventually
    // lands once the batch drains, transparently.
    c.set_retry_policy(Some(RetryPolicy {
        max_retries: 1000,
        base_backoff: Duration::from_millis(10),
        max_backoff: Duration::from_millis(100),
    }));
    c.set_consistency(Consistency::Strong).unwrap();
    let res = c.execute("SELECT COUNT(*) FROM big").unwrap();
    assert_eq!(res.rows, vec![vec![Value::Int(ROWS)]]);

    heavy.join().unwrap();
    assert!(
        stats.busy_rejected_stmts.load(Ordering::SeqCst) >= 1,
        "shed counter never moved"
    );
    server.shutdown();
    cluster.shutdown();
}

#[test]
fn connection_budget_refusal_is_a_readable_busy_frame() {
    let (server, cluster) = boot(ServerConfig {
        reactors: 1,
        workers: 1,
        max_connections: 2,
        ..Default::default()
    });
    let addr = server.local_addr();
    let stats = server.stats_handle();
    let c1 = Client::connect(addr).unwrap();
    let _c2 = Client::connect(addr).unwrap();

    // The third connection is accepted at the socket level, answered
    // with one retryable `busy` line (v1 text: no session exists, so
    // no negotiated encoding), then closed — never left hanging.
    let s = TcpStream::connect(addr).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    let mut r = BufReader::new(s);
    let mut line = String::new();
    r.read_line(&mut line).unwrap();
    assert!(line.starts_with("ERR busy "), "refusal frame: {line:?}");
    line.clear();
    assert_eq!(r.read_line(&mut line).unwrap(), 0, "EOF after refusal");
    assert!(stats.busy_rejected_conns.load(Ordering::SeqCst) >= 1);

    // Dropping a session frees its budget slot (after the reactor
    // notices the close, so poll).
    drop(c1);
    let t0 = Instant::now();
    loop {
        match Client::connect(addr) {
            Ok(_) => break,
            Err(_) => assert!(
                t0.elapsed() < Duration::from_secs(10),
                "slot never freed after session close"
            ),
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    server.shutdown();
    cluster.shutdown();
}

#[test]
fn idle_sessions_are_reaped_and_active_ones_are_not() {
    let (server, cluster) = boot(ServerConfig {
        reactors: 1,
        workers: 2,
        idle_timeout: Some(Duration::from_millis(200)),
        ..Default::default()
    });
    let addr = server.local_addr();
    let stats = server.stats_handle();

    // An idle raw connection never writes, so the goodbye frame can't
    // be lost to a reset: it must arrive as a v1 error line, followed
    // by EOF, and not before the timeout.
    let s = TcpStream::connect(addr).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    let t0 = Instant::now();
    let mut r = BufReader::new(s);
    let mut line = String::new();
    r.read_line(&mut line).unwrap();
    assert!(
        line.starts_with("ERR execution idle"),
        "idle goodbye: {line:?}"
    );
    assert!(
        t0.elapsed() >= Duration::from_millis(150),
        "reaped too early: {:?}",
        t0.elapsed()
    );
    line.clear();
    assert_eq!(r.read_line(&mut line).unwrap(), 0, "EOF after goodbye");
    assert!(stats.idle_closed.load(Ordering::SeqCst) >= 1);

    // A session ticking every 60ms sails through many 200ms spans.
    let mut c = Client::connect(addr).unwrap();
    c.execute("CREATE TABLE tick (id INT NOT NULL, PRIMARY KEY(id))")
        .unwrap();
    c.set_consistency(Consistency::Strong).unwrap();
    for _ in 0..10 {
        std::thread::sleep(Duration::from_millis(60));
        c.execute("SELECT COUNT(*) FROM tick").unwrap();
    }
    server.shutdown();
    cluster.shutdown();
}

#[test]
fn light_tenant_is_served_while_heavy_tenant_still_pipelines() {
    let (server, cluster) = boot(ServerConfig {
        reactors: 1,
        workers: 1,
        ..Default::default()
    });
    let addr = server.local_addr();
    let stats = server.stats_handle();
    let mut admin = Client::connect(addr).unwrap();
    admin
        .execute(
            "CREATE TABLE fair (id INT NOT NULL, v INT, PRIMARY KEY(id),
             KEY COLUMN_INDEX(id, v))",
        )
        .unwrap();
    let vals: Vec<String> = (0..20_000).map(|i| format!("({i}, {i})")).collect();
    admin
        .execute(&format!("INSERT INTO fair VALUES {}", vals.join(", ")))
        .unwrap();
    admin.set_consistency(Consistency::Strong).unwrap();
    let queries_before = stats.queries.load(Ordering::SeqCst);

    // The heavy tenant pipelines 800 scans through the single worker.
    let heavy_done = Arc::new(AtomicBool::new(false));
    let heavy = {
        let heavy_done = heavy_done.clone();
        std::thread::spawn(move || {
            let mut c = Client::connect(addr).unwrap();
            c.set_consistency(Consistency::Strong).unwrap();
            for _ in 0..800 {
                c.send("SELECT COUNT(*), SUM(v), MIN(v), MAX(v) FROM fair")
                    .unwrap();
            }
            for _ in 0..800 {
                c.recv().unwrap();
            }
            heavy_done.store(true, Ordering::SeqCst);
        })
    };
    wait_until(
        "the heavy pipeline to start",
        Duration::from_secs(30),
        || stats.queries.load(Ordering::SeqCst) > queries_before,
    );

    // The light tenant's handful of point reads must be interleaved by
    // the round-robin tenant lanes, not parked behind all 800 scans.
    let mut c = Client::connect(addr).unwrap();
    c.set_tenant("light").unwrap();
    c.set_consistency(Consistency::Strong).unwrap();
    for _ in 0..3 {
        let res = c.execute("SELECT v FROM fair WHERE id = 5").unwrap();
        assert_eq!(res.rows, vec![vec![Value::Int(5)]]);
    }
    assert!(
        !heavy_done.load(Ordering::SeqCst),
        "light tenant finished only after the whole heavy pipeline — no fairness"
    );
    heavy.join().unwrap();
    server.shutdown();
    cluster.shutdown();
}

#[test]
fn graceful_shutdown_says_goodbye_with_retryable_busy() {
    let (server, cluster) = boot(ServerConfig {
        reactors: 1,
        workers: 2,
        ..Default::default()
    });
    let addr = server.local_addr();
    let stats = server.stats_handle();

    // A quiet connection present at shutdown must get a final frame
    // telling it why (retryable: reconnect-and-retry is safe), then a
    // clean EOF — not an abrupt reset.
    let s = TcpStream::connect(addr).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    let shutter = std::thread::spawn(move || server.shutdown());
    let mut r = BufReader::new(s);
    let mut line = String::new();
    r.read_line(&mut line).unwrap();
    assert!(line.starts_with("ERR busy "), "drain goodbye: {line:?}");
    line.clear();
    assert_eq!(r.read_line(&mut line).unwrap(), 0, "EOF after goodbye");
    shutter.join().unwrap();
    assert!(stats.drained.load(Ordering::SeqCst) >= 1);

    // The listener is gone: new connections are refused, not hung.
    assert!(TcpStream::connect(addr).is_err());
    cluster.shutdown();
}
