//! Property-based roundtrip tests for the `imci-server` wire layer:
//! the v2 binary row encoding, the v1 text encoding (typed cells +
//! escaping), and the request escape path — over arbitrary [`Value`]
//! rows including backslash/tab/newline strings and non-finite doubles.
//!
//! `Value` equality uses `f64::total_cmp`, so `NaN == NaN` here and
//! plain `prop_assert_eq!` checks exact (bit-level) double roundtrips.

use polardb_imci::common::Value;
use polardb_imci::server::protocol::{
    escape_request, read_response, read_response_v2, unescape_request, write_response,
    write_response_v2, Response,
};
use polardb_imci::server::wire;
use polardb_imci::EngineChoice;
use proptest::prelude::*;
use std::io::BufReader;

fn arb_string() -> impl Strategy<Value = String> {
    // Base text spiced with the characters the v1 framing must escape:
    // backslash, tab, newline, carriage return.
    ("[a-z0-9 ]{0,16}", 0u8..16).prop_map(|(mut s, spice)| {
        if spice & 1 != 0 {
            s.push('\\');
        }
        if spice & 2 != 0 {
            s.insert(0, '\t');
        }
        if spice & 4 != 0 {
            s.push('\n');
        }
        if spice & 8 != 0 {
            s.push('\r');
        }
        s
    })
}

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<i64>().prop_map(Value::Int),
        (-1e12f64..1e12).prop_map(Value::Double),
        Just(Value::Double(f64::NAN)),
        Just(Value::Double(f64::INFINITY)),
        Just(Value::Double(f64::NEG_INFINITY)),
        Just(Value::Double(-0.0)),
        Just(Value::Double(f64::MIN_POSITIVE)),
        (-100_000i64..100_000).prop_map(Value::Date),
        arb_string().prop_map(Value::Str),
    ]
}

fn rows_response(ncols: usize, names: &[String], cells: &[Value], column_engine: bool) -> Response {
    Response::Rows {
        columns: names[..ncols].to_vec(),
        rows: cells.chunks_exact(ncols).map(|c| c.to_vec()).collect(),
        engine: if column_engine {
            EngineChoice::Column
        } else {
            EngineChoice::Row
        },
    }
}

fn roundtrip_v1(resp: &Response) -> Response {
    let mut buf = Vec::new();
    write_response(&mut buf, resp).unwrap();
    read_response(&mut BufReader::new(&buf[..])).unwrap()
}

fn roundtrip_v2(resp: &Response) -> Response {
    let mut buf = Vec::new();
    write_response_v2(&mut buf, resp).unwrap();
    read_response_v2(&mut BufReader::new(&buf[..])).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn v2_values_roundtrip(values in prop::collection::vec(arb_value(), 0..24)) {
        let mut buf = Vec::new();
        for v in &values {
            wire::put_value(&mut buf, v);
        }
        let mut r = &buf[..];
        for v in &values {
            prop_assert_eq!(&wire::get_value(&mut r, 1 << 20).unwrap(), v);
        }
        prop_assert!(r.is_empty(), "trailing bytes after decode");
    }

    #[test]
    fn v2_varints_roundtrip(u in any::<i64>()) {
        let mut buf = Vec::new();
        wire::put_uvarint(&mut buf, u as u64);
        prop_assert_eq!(wire::get_uvarint(&mut &buf[..]).unwrap(), u as u64);
        buf.clear();
        wire::put_ivarint(&mut buf, u);
        prop_assert_eq!(wire::get_ivarint(&mut &buf[..]).unwrap(), u);
    }

    #[test]
    fn v2_result_sets_roundtrip(
        ncols in 1usize..6,
        names in prop::collection::vec("[a-z_]{1,10}", 6),
        cells in prop::collection::vec(arb_value(), 0..60),
        column_engine in any::<bool>(),
    ) {
        let resp = rows_response(ncols, &names, &cells, column_engine);
        prop_assert_eq!(roundtrip_v2(&resp), resp);
    }

    #[test]
    fn v1_result_sets_roundtrip(
        ncols in 1usize..6,
        names in prop::collection::vec("[a-z_]{1,10}", 6),
        cells in prop::collection::vec(arb_value(), 0..60),
        column_engine in any::<bool>(),
    ) {
        // The v1 escape/unescape path must survive tabs, newlines and
        // backslashes inside string cells, and non-finite doubles
        // (shipped as hex bit patterns).
        let resp = rows_response(ncols, &names, &cells, column_engine);
        prop_assert_eq!(roundtrip_v1(&resp), resp);
    }

    #[test]
    fn v1_batch_responses_roundtrip(
        affected in prop::collection::vec(0usize..1000, 0..10),
    ) {
        let parts: Vec<Response> =
            affected.iter().map(|&a| Response::Ok { affected: a }).collect();
        let resp = Response::Batch(parts);
        prop_assert_eq!(roundtrip_v1(&resp), resp.clone());
        prop_assert_eq!(roundtrip_v2(&resp), resp);
    }

    #[test]
    fn request_escaping_roundtrips(s in arb_string()) {
        // Client-side escape / server-side unescape is the identity on
        // arbitrary SQL text, and the escaped form is always one line.
        let escaped = escape_request(&s);
        prop_assert!(!escaped.contains('\n'));
        prop_assert!(!escaped.contains('\t'));
        prop_assert_eq!(unescape_request(&escaped), s);
    }

    #[test]
    fn error_responses_roundtrip(msg in arb_string(), kind_idx in 0usize..4) {
        let kind = ["parse", "constraint", "execution", "catalog"][kind_idx];
        let resp = Response::Err { kind: kind.to_string(), msg };
        prop_assert_eq!(roundtrip_v1(&resp), resp.clone());
        prop_assert_eq!(roundtrip_v2(&resp), resp);
    }
}
