//! Start an `imci-server` over a small HTAP cluster and drive it
//! through the client library: protocol v2 negotiation, `BATCH`
//! loading, pipelined point reads, and per-session engine pinning.
//!
//! ```sh
//! cargo run --release --example serve
//! ```

use polardb_imci::cluster::{Cluster, ClusterConfig};
use polardb_imci::server::{Client, Server, ServerConfig};
use polardb_imci::{Consistency, EngineChoice};
use std::time::Instant;

fn main() {
    // One RW node + two RO nodes over shared storage (paper Fig. 2),
    // fronted by the epoll-reactor SQL service.
    let cluster = Cluster::start(ClusterConfig {
        n_ro: 2,
        group_cap: 1024,
        ..Default::default()
    });
    let server = Server::start(cluster.clone(), ServerConfig::default()).unwrap();
    println!("imci-server listening on {}", server.local_addr());

    // `connect` negotiates the newest protocol via the HELLO handshake;
    // netcat users (and `Client::connect_v1`) keep the v1 text protocol.
    let mut session = Client::connect(server.local_addr()).unwrap();
    println!("negotiated protocol v{}", session.protocol_version());
    session
        .execute(
            "CREATE TABLE orders (id INT NOT NULL, grp INT, amount DOUBLE, note VARCHAR(32),
             PRIMARY KEY(id), KEY COLUMN_INDEX(id, grp, amount, note))",
        )
        .unwrap();

    // Bulk load with BATCH framing: 1000 inserts, 4 roundtrips.
    let t0 = Instant::now();
    for chunk in (0..1_000).collect::<Vec<i64>>().chunks(250) {
        let stmts: Vec<String> = chunk
            .iter()
            .map(|i| {
                format!(
                    "INSERT INTO orders VALUES ({i}, {}, {}, 'order-{}')",
                    i % 4,
                    *i as f64 * 1.25,
                    i % 10
                )
            })
            .collect();
        for r in session.execute_batch(&stmts).unwrap() {
            r.unwrap();
        }
    }
    println!("loaded 1000 orders via BATCH in {:?}", t0.elapsed());

    // Strong consistency: this read waits until an RO node has applied
    // our last write (§6.4), so it always sees all 1000 rows.
    session.set_consistency(Consistency::Strong).unwrap();
    let res = session.execute("SELECT COUNT(*) FROM orders").unwrap();
    println!(
        "strong COUNT(*) -> {:?} (engine: {:?})",
        res.rows[0][0], res.engine
    );

    // Pin the analytical aggregate to the column engine for this
    // session only.
    session
        .set_force_engine(Some(EngineChoice::Column))
        .unwrap();
    let res = session
        .execute("SELECT grp, COUNT(*), SUM(amount) FROM orders GROUP BY grp ORDER BY grp")
        .unwrap();
    println!(
        "per-group aggregate on the {} engine:",
        match res.engine {
            EngineChoice::Column => "COLUMN",
            EngineChoice::Row => "ROW",
        }
    );
    for row in &res.rows {
        println!("  {row:?}");
    }

    // Pipelined point reads: 100 requests in flight, responses read
    // afterwards in order — no per-query roundtrip.
    session.set_force_engine(None).unwrap();
    let t0 = Instant::now();
    for i in 0..100 {
        session
            .send(&format!("SELECT note FROM orders WHERE id = {}", i * 7))
            .unwrap();
    }
    let mut last = None;
    for _ in 0..100 {
        last = Some(session.recv().unwrap());
    }
    let last = last.unwrap();
    println!(
        "100 pipelined point reads in {:?}; last -> {:?} (engine: {:?})",
        t0.elapsed(),
        last.rows[0][0],
        last.engine
    );

    server.shutdown();
    cluster.shutdown();
}
