//! Start an `imci-server` over a small HTAP cluster and run a few
//! queries through the client library.
//!
//! ```sh
//! cargo run --release --example serve
//! ```

use polardb_imci::cluster::{Cluster, ClusterConfig};
use polardb_imci::server::{Client, Server, ServerConfig};
use polardb_imci::{Consistency, EngineChoice};

fn main() {
    // One RW node + two RO nodes over shared storage (paper Fig. 2),
    // fronted by the thread-pool SQL service.
    let cluster = Cluster::start(ClusterConfig {
        n_ro: 2,
        group_cap: 1024,
        ..Default::default()
    });
    let server = Server::start(cluster.clone(), ServerConfig::default()).unwrap();
    println!("imci-server listening on {}", server.local_addr());

    let mut session = Client::connect(server.local_addr()).unwrap();
    session
        .execute(
            "CREATE TABLE orders (id INT NOT NULL, grp INT, amount DOUBLE, note VARCHAR(32),
             PRIMARY KEY(id), KEY COLUMN_INDEX(id, grp, amount, note))",
        )
        .unwrap();
    for i in 0..1_000 {
        session
            .execute(&format!(
                "INSERT INTO orders VALUES ({i}, {}, {}, 'order-{}')",
                i % 4,
                i as f64 * 1.25,
                i % 10
            ))
            .unwrap();
    }
    println!("loaded 1000 orders through the writer session");

    // Strong consistency: this read waits until an RO node has applied
    // our last write (§6.4), so it always sees all 1000 rows.
    session.set_consistency(Consistency::Strong).unwrap();
    let res = session.execute("SELECT COUNT(*) FROM orders").unwrap();
    println!("strong COUNT(*) -> {:?} (engine: {:?})", res.rows[0][0], res.engine);

    // Pin the analytical aggregate to the column engine for this
    // session only.
    session.set_force_engine(Some(EngineChoice::Column)).unwrap();
    let res = session
        .execute("SELECT grp, COUNT(*), SUM(amount) FROM orders GROUP BY grp ORDER BY grp")
        .unwrap();
    println!("per-group aggregate on the {} engine:", match res.engine {
        EngineChoice::Column => "COLUMN",
        EngineChoice::Row => "ROW",
    });
    for row in &res.rows {
        println!("  {row:?}");
    }

    // Point read: even with AUTO routing this stays on the row engine.
    session.set_force_engine(None).unwrap();
    let res = session
        .execute("SELECT note FROM orders WHERE id = 42")
        .unwrap();
    println!("point read id=42 -> {:?} (engine: {:?})", res.rows[0][0], res.engine);

    server.shutdown();
    cluster.shutdown();
}
