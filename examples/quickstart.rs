//! Quickstart: boot a cluster, create a table with a column index
//! (the Figure 3 DDL), run transactional and analytical SQL.
//!
//! Run with: `cargo run --release --example quickstart`

use polardb_imci::{Cluster, ClusterConfig};
use std::time::Duration;

fn main() {
    // One RW node + one RO node over simulated shared storage.
    let cluster = Cluster::start(ClusterConfig::default());

    // The paper's Figure 3 demo table: PK on c1, secondary on c2,
    // column index on c3/c4/c5.
    cluster
        .execute(
            "CREATE TABLE demo_table (
                c1 INT NOT NULL, c2 INT, c3 INT, c4 INT, c5 LONGTEXT,
                PRIMARY KEY(c1), KEY sec_index(c2), KEY column_index(c3, c4, c5))",
        )
        .unwrap();

    // OLTP: inserts route to the RW node.
    for i in 0..10_000 {
        cluster
            .execute(&format!(
                "INSERT INTO demo_table VALUES ({i}, {}, {}, {}, 'payload-{}')",
                i % 100,
                i % 7,
                i * 3,
                i % 13
            ))
            .unwrap();
    }
    cluster
        .execute("UPDATE demo_table SET c3 = 999 WHERE c1 = 5")
        .unwrap();
    cluster
        .execute("DELETE FROM demo_table WHERE c1 = 6")
        .unwrap();

    // Wait for the replication pipeline to catch up (or use
    // Consistency::Strong to have the proxy do it per query).
    assert!(cluster.wait_sync(Duration::from_secs(30)));

    // OLAP: analytical SELECTs route to the RO node; big scans run on
    // the column index, point queries on the row store.
    let res = cluster
        .execute("SELECT c3, COUNT(*), SUM(c4) FROM demo_table GROUP BY c3 ORDER BY c3 LIMIT 5")
        .unwrap();
    println!("analytical result via {:?} engine:", res.engine);
    for row in &res.rows {
        println!("  c3={} count={} sum_c4={}", row[0], row[1], row[2]);
    }

    let point = cluster
        .execute("SELECT c5 FROM demo_table WHERE c1 = 42")
        .unwrap();
    println!(
        "point lookup via {:?} engine: {}",
        point.engine, point.rows[0][0]
    );

    cluster.shutdown();
    println!("done");
}
