//! TPC-H-style analytics: load the 8-table schema at a small scale
//! factor and run all 22 dialect-adapted queries on both engines.
//!
//! Run with: `cargo run --release --example analytics_tpch`

use polardb_imci::sql::{EngineChoice, QueryOptions};
use polardb_imci::{Cluster, ClusterConfig};
use std::time::{Duration, Instant};

fn main() {
    let cluster = Cluster::start(ClusterConfig::default());
    let rows = polardb_imci::workloads::tpch::load(&cluster, 0.001, 42).unwrap();
    assert!(cluster.wait_sync(Duration::from_secs(120)));
    println!("loaded {rows} rows");

    let node = cluster.ros.read()[0].clone();
    for (name, sql) in polardb_imci::workloads::tpch::queries() {
        let t = Instant::now();
        let col = node
            .query
            .run(&sql, &QueryOptions::forced(Some(EngineChoice::Column)))
            .unwrap();
        let t_col = t.elapsed();
        let t = Instant::now();
        let row = node
            .query
            .run(&sql, &QueryOptions::forced(Some(EngineChoice::Row)))
            .unwrap();
        let t_row = t.elapsed();
        assert_eq!(col.rows.len(), row.rows.len(), "{name}: engines must agree");
        println!(
            "{name}: column {:>8.2} ms | row {:>8.2} ms | {} rows | speedup {:.1}x",
            t_col.as_secs_f64() * 1e3,
            t_row.as_secs_f64() * 1e3,
            col.rows.len(),
            t_row.as_secs_f64() / t_col.as_secs_f64().max(1e-9)
        );
    }
    cluster.shutdown();
}
