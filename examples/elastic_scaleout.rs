//! Elasticity demo (paper §7 / Fig. 14): checkpoint the column indexes,
//! then add RO nodes that fast-start from the checkpoint and catch up.
//!
//! Run with: `cargo run --release --example elastic_scaleout`

use polardb_imci::{Cluster, ClusterConfig};
use std::time::Duration;

fn main() {
    let cluster = Cluster::start(ClusterConfig::default());
    polardb_imci::workloads::tpch::load(&cluster, 0.001, 1).unwrap();
    assert!(cluster.wait_sync(Duration::from_secs(60)));
    println!("cluster up with {} RO node(s)", cluster.ros.read().len());

    // RO-leader duty: persist a checkpoint to shared storage.
    let seq = cluster.checkpoint_now().unwrap();
    println!("checkpoint {seq} written to shared storage");

    // More OLTP traffic lands after the checkpoint...
    for i in 0..2_000 {
        cluster
            .execute(&format!(
                "INSERT INTO supplier VALUES ({}, 'Supplier#new{i}', {}, 0.0)",
                1_000_000 + i,
                i % 25
            ))
            .unwrap();
    }

    // ...and a new node still starts in a fraction of a full rebuild:
    // checkpoint load + REDO suffix catch-up.
    let report = cluster.scale_out().unwrap();
    println!(
        "scale-out {}: from_checkpoint={} load={:?} catchup={:?}",
        report.name, report.from_checkpoint, report.load_time, report.catchup_time
    );

    // The new node serves immediately and sees the post-checkpoint rows.
    let res = cluster.execute("SELECT COUNT(*) FROM supplier").unwrap();
    println!("suppliers visible cluster-wide: {}", res.rows[0][0]);

    let full_rebuild = {
        // Compare: a cold rebuild (no newer checkpoint) replays the log.
        let t = std::time::Instant::now();
        cluster.scale_out().unwrap();
        t.elapsed()
    };
    println!("second scale-out (same checkpoint): {full_rebuild:?}");
    cluster.shutdown();
    println!("done");
}
