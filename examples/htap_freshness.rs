//! HTAP freshness demo: run an OLTP write stream while measuring the
//! visibility delay (paper G#4) of the analytics view, then show that
//! strong consistency reads-your-writes through the proxy.
//!
//! Run with: `cargo run --release --example htap_freshness`

use polardb_imci::{Cluster, ClusterConfig, Consistency};
use rand::{rngs::StdRng, SeedableRng};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn main() {
    let cluster = Cluster::start(ClusterConfig {
        consistency: Consistency::Strong,
        ..Default::default()
    });
    let wl =
        Arc::new(polardb_imci::workloads::sysbench::Sysbench::setup(&cluster, 4, 1_000).unwrap());
    assert!(cluster.wait_sync(Duration::from_secs(30)));

    // Background OLTP writers.
    let stop = Arc::new(AtomicBool::new(false));
    let mut handles = Vec::new();
    for t in 0..4u64 {
        let (c, wl, stop) = (cluster.clone(), wl.clone(), stop.clone());
        handles.push(std::thread::spawn(move || {
            let mut rng = StdRng::seed_from_u64(t);
            while !stop.load(Ordering::Relaxed) {
                let _ = wl.insert_one(&c, &mut rng);
                let _ = wl.update_one(&c, &mut rng);
            }
        }));
    }

    // Sample the visibility delay while the writers run.
    println!("visibility delay under load (commit on RW -> visible on RO):");
    for i in 0..10 {
        let vd = cluster.measure_visibility_delay().unwrap();
        println!("  sample {i}: {:.3} ms", vd.as_secs_f64() * 1e3);
        std::thread::sleep(Duration::from_millis(100));
    }

    // Strong consistency: a SELECT routed through the proxy always sees
    // the rows committed before it was issued.
    let before = cluster
        .execute("SELECT COUNT(*) FROM sbtest1")
        .unwrap()
        .rows[0][0]
        .as_int()
        .unwrap();
    println!("rows visible under strong consistency: {before}");
    stop.store(true, Ordering::SeqCst);
    for h in handles {
        let _ = h.join();
    }
    cluster.shutdown();
    println!("done");
}
