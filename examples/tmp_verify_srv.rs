use imci_cluster::{Cluster, ClusterConfig};
use imci_server::{Server, ServerConfig};

fn main() {
    let cluster = Cluster::start(ClusterConfig::default());
    let srv = Server::start(
        cluster,
        ServerConfig {
            addr: "127.0.0.1:7878".into(),
            ..Default::default()
        },
    )
    .unwrap();
    println!("READY {}", srv.local_addr());
    std::thread::sleep(std::time::Duration::from_secs(60));
}
