//! PolarDB-IMCI reproduction — facade crate.
//!
//! Re-exports the public API of the workspace so examples, integration
//! tests, and downstream users can depend on one crate. See README.md
//! for the architecture overview and DESIGN.md for the paper mapping.

pub use imci_cluster as cluster;
pub use imci_common as common;
pub use imci_core as imci;
pub use imci_executor as executor;
pub use imci_replication as replication;
pub use imci_server as server;
pub use imci_sql as sql;
pub use imci_wal as wal;
pub use imci_workloads as workloads;
pub use polarfs_sim as polarfs;
pub use rowstore;

pub use imci_cluster::{Cluster, ClusterConfig, Consistency, ExecOpts, SupervisorConfig};
pub use imci_common::{Error, Result, Value};
pub use imci_server::{Client, Server, ServerConfig};
pub use imci_sql::{EngineChoice, QueryResult};
