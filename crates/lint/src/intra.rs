//! Intra-procedural facts: lock-guard live ranges and discarded
//! `Result` values.
//!
//! Both passes work on one fn body at a time, over tokens plus brace
//! structure. Like the resolver, they prefer missing a fact to
//! inventing one: a guard bound through a helper (`let g =
//! self.guard();`) is invisible, but `let g = m.lock();` — the idiom
//! this workspace actually uses everywhere — is tracked exactly.

use crate::lexer::TokKind;
use crate::SourceFile;

/// A lock guard binding and the token range it is live over.
#[derive(Debug)]
pub struct GuardLive {
    /// The bound identifier (`g` in `let g = m.lock();`).
    pub name: String,
    /// `lock` / `read` / `write`.
    pub acquire: String,
    /// 1-based line of the binding.
    pub line: u32,
    /// Token index just after the binding's `;`.
    pub start: usize,
    /// Token index where the guard dies: matching `}` of the
    /// enclosing block, or the `drop(name)` call, whichever first.
    pub end: usize,
}

/// Guard bindings in the fn spanning tokens `[start, end]`.
///
/// Recognized shape: `let [mut] NAME = ... .lock();` and the
/// `.read()` / `.write()` zero-argument forms (argument-taking
/// `read(&mut buf)` is io::Read, not a lock). The acquire call must
/// be the *final* call of the initializer — in
/// `let out = map.read().get(k).cloned();` or
/// `match force.or(*self.force.lock())` the guard is a temporary that
/// dies at the end of the statement, and NAME (if any) binds the
/// extracted value, not the guard. `let (a, b) = ...` patterns and
/// `if let` are skipped — none bind bare guards in this workspace.
pub fn guards(f: &SourceFile, start: usize, end: usize) -> Vec<GuardLive> {
    let toks = &f.toks;
    let mut out = Vec::new();
    let mut i = start;
    while i <= end.min(toks.len().saturating_sub(1)) {
        if !toks[i].is_ident("let") {
            i += 1;
            continue;
        }
        // Reject `if let` / `while let`.
        if f.prev_code(i.wrapping_sub(1))
            .is_some_and(|p| toks[p].is_ident("if") || toks[p].is_ident("while"))
        {
            i += 1;
            continue;
        }
        let mut j = match f.next_code(i + 1) {
            Some(j) => j,
            None => break,
        };
        if toks[j].is_ident("mut") {
            j = match f.next_code(j + 1) {
                Some(j) => j,
                None => break,
            };
        }
        if toks[j].kind != TokKind::Ident || toks[j].text == "_" {
            i += 1;
            continue;
        }
        let name = toks[j].text.clone();
        let Some(eq) = f.next_code(j + 1).filter(|&k| toks[k].is_punct('=')) else {
            i += 1;
            continue;
        };
        // Scan the initializer to its `;` (depth-tracked), looking for
        // a dotted zero-or-any-arg `.lock()` / zero-arg `.read()` /
        // `.write()` call.
        let mut k = eq + 1;
        let mut depth = 0i32;
        let mut acquire: Option<String> = None;
        let stmt_end = loop {
            let Some(t) = toks.get(k) else {
                break None;
            };
            if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
                depth += 1;
            } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
                depth -= 1;
            } else if t.is_punct(';') && depth == 0 {
                break Some(k);
            } else if t.kind == TokKind::Ident
                && matches!(t.text.as_str(), "lock" | "read" | "write")
                && f.prev_code(k.wrapping_sub(1))
                    .is_some_and(|p| toks[p].is_punct('.'))
            {
                if let Some(open) = f.next_code(k + 1).filter(|&o| toks[o].is_punct('(')) {
                    let zero_arg = f.next_code(open + 1).is_some_and(|c| toks[c].is_punct(')'));
                    // The guard only outlives the statement when the
                    // acquire call ends the initializer (`...lock();`).
                    let terminal = match_paren_from(f, open)
                        .and_then(|close| f.next_code(close + 1))
                        .is_some_and(|after| toks[after].is_punct(';'));
                    if (t.text == "lock" || zero_arg) && terminal {
                        acquire = Some(t.text.clone());
                    }
                }
            }
            k += 1;
        };
        let Some(stmt_end) = stmt_end else {
            break;
        };
        if let Some(acquire) = acquire {
            let live_end = guard_death(f, &name, stmt_end + 1, end);
            out.push(GuardLive {
                name,
                acquire,
                line: toks[i].line,
                start: stmt_end + 1,
                end: live_end,
            });
        }
        i = stmt_end + 1;
    }
    out
}

/// Where the guard named `name` dies: `drop(name)`, or the `}` closing
/// the block it was bound in (tracked by brace depth), capped at `end`.
fn guard_death(f: &SourceFile, name: &str, from: usize, end: usize) -> usize {
    let toks = &f.toks;
    let mut depth = 0i32;
    let mut i = from;
    while i <= end.min(toks.len().saturating_sub(1)) {
        let t = &toks[i];
        if t.is_punct('{') {
            depth += 1;
        } else if t.is_punct('}') {
            depth -= 1;
            if depth < 0 {
                return i;
            }
        } else if t.is_ident("drop")
            && f.next_code(i + 1).is_some_and(|o| toks[o].is_punct('('))
            && f.next_code(i + 1)
                .and_then(|o| f.next_code(o + 1))
                .is_some_and(|a| toks[a].is_ident(name))
        {
            return i;
        }
        i += 1;
    }
    end.min(toks.len().saturating_sub(1))
}

/// A call whose `Result` is discarded.
#[derive(Debug)]
pub struct Discard {
    /// Token index of the callee name (aligns with
    /// [`crate::resolve::RawCall::tok`]).
    pub tok: usize,
    pub line: u32,
    /// `"let _ ="` or `"statement position"`.
    pub how: &'static str,
}

/// Call sites in `[start, end]` whose value is syntactically dropped:
/// `let _ = call(...)` (without a `?` anywhere in the initializer) or
/// a call in statement position (`call(...);` where the token before
/// the callee path begins a statement).
pub fn discards(f: &SourceFile, start: usize, end: usize) -> Vec<Discard> {
    let toks = &f.toks;
    let mut out = Vec::new();
    let last = end.min(toks.len().saturating_sub(1));
    for i in start..=last {
        let t = &toks[i];
        if t.kind != TokKind::Ident {
            continue;
        }
        let Some(open) = f.next_code(i + 1).filter(|&j| toks[j].is_punct('(')) else {
            continue;
        };
        // Must be a call, not a macro or definition.
        if f.prev_code(i.wrapping_sub(1))
            .is_some_and(|p| toks[p].is_ident("fn") || toks[p].is_punct('!'))
        {
            continue;
        }
        let Some(close) = match_paren_from(f, open) else {
            continue;
        };
        // Only the *outermost* call of the statement counts: its close
        // paren must be followed by `;` (possibly through more dotted
        // calls — keep it simple: require `;` directly or `?;`).
        let Some(after) = f.next_code(close + 1) else {
            continue;
        };
        if toks[after].is_punct('?') {
            continue; // propagated, not discarded
        }
        if !toks[after].is_punct(';') {
            continue;
        }
        // Back-scan from the callee through only path/receiver tokens
        // (`ident`, `.`, `:`): hitting `;`/`{`/`}` first means the call
        // starts a statement; hitting `= _ let` means `let _ = ...`.
        let mut j = i;
        let verdict = loop {
            let Some(p) = f.prev_code(j.wrapping_sub(1)) else {
                break Some("statement position");
            };
            let pt = &toks[p];
            if pt.kind == TokKind::Ident {
                // `return f();` / `break f();` consume the value.
                if matches!(pt.text.as_str(), "let" | "return" | "break" | "yield") {
                    break None;
                }
                j = p;
                continue;
            }
            if pt.is_punct('.') || pt.is_punct(':') || pt.is_punct('&') {
                j = p;
                continue;
            }
            if pt.is_punct(';') || pt.is_punct('{') || pt.is_punct('}') {
                break Some("statement position");
            }
            if pt.is_punct('=') {
                // `let _ = ...` — require the `_` and `let` behind it.
                let underscore = f.prev_code(p.wrapping_sub(1));
                let letk = underscore.and_then(|u| f.prev_code(u.wrapping_sub(1)));
                if underscore.is_some_and(|u| toks[u].is_ident("_"))
                    && letk.is_some_and(|l| toks[l].is_ident("let"))
                {
                    break Some("let _ =");
                }
                break None;
            }
            break None;
        };
        if let Some(how) = verdict {
            out.push(Discard {
                tok: i,
                line: t.line,
                how,
            });
        }
    }
    out
}

fn match_paren_from(f: &SourceFile, open: usize) -> Option<usize> {
    let mut depth = 0i32;
    for (j, t) in f.toks.iter().enumerate().skip(open) {
        if t.is_punct('(') {
            depth += 1;
        } else if t.is_punct(')') {
            depth -= 1;
            if depth == 0 {
                return Some(j);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(src: &str) -> SourceFile {
        SourceFile::new("crates/x/src/a.rs".into(), src.into())
    }

    #[test]
    fn guard_live_range_ends_at_block_close_or_drop() {
        let f = file(
            "fn a() {\n  let g = m.lock();\n  use_it(&g);\n}\n\
             fn b() {\n  {\n    let h = m.lock();\n  }\n  after();\n}\n\
             fn c() {\n  let k = m.lock();\n  drop(k);\n  after();\n}\n",
        );
        let all: Vec<GuardLive> = f
            .fns
            .iter()
            .flat_map(|s| guards(&f, s.start, s.end))
            .collect();
        assert_eq!(all.len(), 3, "{all:?}");
        let use_it = f.toks.iter().position(|t| t.is_ident("use_it")).unwrap();
        assert!(all[0].start <= use_it && use_it <= all[0].end);
        // b: dies at the inner `}`, before after().
        let after_b = f.toks.iter().position(|t| t.is_ident("after")).unwrap();
        assert!(all[1].end < after_b);
        // c: dies at drop(k), before after().
        let after_c = f.toks.iter().rposition(|t| t.is_ident("after")).unwrap();
        assert!(all[2].end < after_c);
    }

    #[test]
    fn read_write_guards_need_zero_args_lock_does_not() {
        let f = file(
            "fn a() {\n  let g = rw.read();\n  let n = io.read(&mut buf);\n  \
             let w = rw.write();\n  let m = io.write(&buf);\n  let l = mu.lock();\n}\n",
        );
        let gs = guards(&f, f.fns[0].start, f.fns[0].end);
        let names: Vec<&str> = gs.iter().map(|g| g.name.as_str()).collect();
        assert_eq!(names, vec!["g", "w", "l"], "{gs:?}");
    }

    #[test]
    fn discards_catch_let_underscore_and_statement_position() {
        let f = file(
            "fn a() {\n  let _ = fallible();\n  let _ = fallible()?;\n  \
             self.log.append(e);\n  let x = fallible();\n  outer(fallible());\n  \
             fallible()?;\n}\n",
        );
        let ds = discards(&f, f.fns[0].start, f.fns[0].end);
        let hows: Vec<(&str, u32)> = ds.iter().map(|d| (d.how, d.line)).collect();
        // Line 6: the *outer* call's result is dropped (the inner
        // `fallible()` is consumed as its argument, so only `outer`
        // registers).
        assert_eq!(
            hows,
            vec![
                ("let _ =", 2),
                ("statement position", 4),
                ("statement position", 6)
            ],
            "{ds:?}"
        );
    }
}
