//! `imci-lint` — the workspace invariant checker.
//!
//! A house static-analysis pass for cross-cutting invariants that
//! `rustc`/`clippy` cannot see because they live in *this* project's
//! protocol, not in the language: REDO wire-tag exhaustiveness, error
//! categories surviving the wire, no spin-waits, no panics on
//! reactor-reachable paths, `SAFETY:` discipline, no blocking calls on
//! reactor threads, and bench metrics that CI actually gates.
//!
//! Architecture: a file walker ([`walk`]) feeds a lightweight Rust
//! lexer ([`lexer`]); each rule ([`rules`]) pattern-matches tokens plus
//! brace structure. Findings are suppressible through a committed
//! allowlist ([`allow`]) in which every entry must carry a reason.
//! `--deny-new` (the CI mode) exits nonzero on any finding the
//! allowlist does not cover.

pub mod allow;
pub mod graph;
pub mod intra;
pub mod lexer;
pub mod resolve;
pub mod rules;
pub mod walk;

use lexer::{Tok, TokKind};

/// One rule violation.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Rule id, `"L001"`..`"L011"`.
    pub rule: &'static str,
    /// Workspace-relative path, `/`-separated.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// Human explanation of what is violated and why it matters.
    pub msg: String,
    /// The trimmed source line, for `contains =` allowlist matching
    /// (line numbers drift; source text is stable).
    pub src_line: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} {}:{} {}", self.rule, self.path, self.line, self.msg)
    }
}

/// A lexed source file plus the structural facts rules share.
pub struct SourceFile {
    pub rel_path: String,
    pub text: String,
    pub toks: Vec<Tok>,
    /// Line ranges (inclusive) that are test code: `#[cfg(test)]` /
    /// `#[test]` items, or the whole file under a `tests/` directory.
    pub test_spans: Vec<(u32, u32)>,
    /// Top-level and nested `fn` items as token-index spans.
    pub fns: Vec<FnSpan>,
}

/// A `fn` item's extent.
#[derive(Debug, Clone)]
pub struct FnSpan {
    pub name: String,
    /// Token index of the `fn` keyword.
    pub start: usize,
    /// Token index of the closing `}` (or the `;` of a bodyless decl).
    pub end: usize,
}

impl SourceFile {
    pub fn new(rel_path: String, text: String) -> SourceFile {
        let toks = lexer::lex(&text);
        let mut test_spans = compute_test_spans(&toks);
        if rel_path.split('/').any(|c| c == "tests") {
            test_spans.push((0, u32::MAX));
        }
        let fns = compute_fn_spans(&toks);
        SourceFile {
            rel_path,
            text,
            toks,
            test_spans,
            fns,
        }
    }

    /// Is `line` inside test-only code?
    pub fn in_test(&self, line: u32) -> bool {
        self.test_spans.iter().any(|&(a, b)| a <= line && line <= b)
    }

    /// Name of the innermost `fn` containing token index `i`, if any.
    pub fn enclosing_fn(&self, i: usize) -> Option<&str> {
        self.fns
            .iter()
            .filter(|f| f.start <= i && i <= f.end)
            .min_by_key(|f| f.end - f.start)
            .map(|f| f.name.as_str())
    }

    /// The trimmed text of a 1-based source line.
    pub fn line_text(&self, line: u32) -> String {
        self.text
            .lines()
            .nth(line.saturating_sub(1) as usize)
            .unwrap_or("")
            .trim()
            .to_string()
    }

    /// Significant (non-comment) token index at or after `i`.
    pub fn next_code(&self, mut i: usize) -> Option<usize> {
        while let Some(t) = self.toks.get(i) {
            if !t.is_comment() {
                return Some(i);
            }
            i += 1;
        }
        None
    }

    /// Significant (non-comment) token index at or before `i`.
    pub fn prev_code(&self, mut i: usize) -> Option<usize> {
        loop {
            let t = self.toks.get(i)?;
            if !t.is_comment() {
                return Some(i);
            }
            i = i.checked_sub(1)?;
        }
    }

    /// Build a finding against this file.
    pub fn finding(&self, rule: &'static str, line: u32, msg: String) -> Finding {
        Finding {
            rule,
            path: self.rel_path.clone(),
            line,
            msg,
            src_line: self.line_text(line),
        }
    }
}

/// Everything the rules see: the lexed workspace.
pub struct Workspace {
    pub root: std::path::PathBuf,
    pub files: Vec<SourceFile>,
    /// Lazily built interprocedural facts (def index + call graph),
    /// shared by L008–L011 so the graph is constructed once per run.
    analysis: std::sync::OnceLock<graph::Analysis>,
}

impl Workspace {
    /// Walk `root` and lex every `.rs` file.
    pub fn load(root: &std::path::Path) -> std::io::Result<Workspace> {
        let mut files = Vec::new();
        for path in walk::rust_files(root)? {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .components()
                .map(|c| c.as_os_str().to_string_lossy())
                .collect::<Vec<_>>()
                .join("/");
            let text = std::fs::read_to_string(&path)?;
            files.push(SourceFile::new(rel, text));
        }
        files.sort_by(|a, b| a.rel_path.cmp(&b.rel_path));
        Ok(Workspace::from_files(root.to_path_buf(), files))
    }

    /// Construct directly from pre-lexed files (tests, fixtures).
    pub fn from_files(root: std::path::PathBuf, files: Vec<SourceFile>) -> Workspace {
        Workspace {
            root,
            files,
            analysis: std::sync::OnceLock::new(),
        }
    }

    /// The interprocedural analysis, built on first use.
    pub fn analysis(&self) -> &graph::Analysis {
        self.analysis.get_or_init(|| graph::Analysis::build(self))
    }

    pub fn file(&self, suffix: &str) -> Option<&SourceFile> {
        self.files.iter().find(|f| f.rel_path.ends_with(suffix))
    }
}

/// Run every rule over the workspace.
pub fn run_all(ws: &Workspace) -> Vec<Finding> {
    let mut out = Vec::new();
    for rule in rules::all() {
        out.extend(rule.check(ws));
    }
    out.sort_by(|a, b| {
        (a.rule, &a.path, a.line)
            .partial_cmp(&(b.rule, &b.path, b.line))
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    out
}

// ---- structural passes shared by the rules ----

/// Line spans of items annotated `#[cfg(test)]` or `#[test]`.
fn compute_test_spans(toks: &[Tok]) -> Vec<(u32, u32)> {
    let mut spans = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        if toks[i].is_punct('#') && peek_attr_is_test(toks, i) {
            let attr_line = toks[i].line;
            // Skip this and any further attributes, then find the
            // item's body and record its extent.
            let mut j = i;
            while let Some(k) = skip_attr(toks, j) {
                j = k;
            }
            if let Some(end) = item_end(toks, j) {
                spans.push((attr_line, toks[end].line));
                i = end + 1;
                continue;
            }
        }
        i += 1;
    }
    spans
}

/// Does the attribute starting at `#` token `i` name `test` or
/// `cfg(test)`?
fn peek_attr_is_test(toks: &[Tok], i: usize) -> bool {
    let code = |k: usize| toks.get(k).filter(|t| !t.is_comment());
    let Some(open) = code(i + 1) else {
        return false;
    };
    if !open.is_punct('[') {
        return false;
    }
    match code(i + 2) {
        Some(t) if t.is_ident("test") => true,
        Some(t) if t.is_ident("cfg") => {
            // `#[cfg(test)]` (exactly; cfg(not(test)) etc. don't count).
            code(i + 3).is_some_and(|t| t.is_punct('('))
                && code(i + 4).is_some_and(|t| t.is_ident("test"))
                && code(i + 5).is_some_and(|t| t.is_punct(')'))
        }
        _ => false,
    }
}

/// If token `i` starts an attribute (`#`), return the index just past
/// its closing `]`.
fn skip_attr(toks: &[Tok], i: usize) -> Option<usize> {
    if !toks.get(i)?.is_punct('#') {
        return None;
    }
    let mut j = i + 1;
    while j < toks.len() && !toks[j].is_punct('[') {
        j += 1;
    }
    let mut depth = 0i32;
    while j < toks.len() {
        if toks[j].is_punct('[') {
            depth += 1;
        } else if toks[j].is_punct(']') {
            depth -= 1;
            if depth == 0 {
                return Some(j + 1);
            }
        }
        j += 1;
    }
    None
}

/// Given the first token of an item, find the index of its terminator:
/// the matching `}` of its first brace block, or a `;` before any
/// brace opens.
fn item_end(toks: &[Tok], i: usize) -> Option<usize> {
    let mut j = i;
    while j < toks.len() {
        if toks[j].is_punct(';') {
            return Some(j);
        }
        if toks[j].is_punct('{') {
            return match_brace(toks, j);
        }
        j += 1;
    }
    None
}

/// Index of the `}` matching the `{` at `i`.
pub(crate) fn match_brace(toks: &[Tok], i: usize) -> Option<usize> {
    let mut depth = 0i32;
    for (j, t) in toks.iter().enumerate().skip(i) {
        if t.is_punct('{') {
            depth += 1;
        } else if t.is_punct('}') {
            depth -= 1;
            if depth == 0 {
                return Some(j);
            }
        }
    }
    None
}

fn compute_fn_spans(toks: &[Tok]) -> Vec<FnSpan> {
    let mut out = Vec::new();
    for i in 0..toks.len() {
        if !toks[i].is_ident("fn") {
            continue;
        }
        let Some(name_tok) = toks.get(i + 1).filter(|t| t.kind == TokKind::Ident) else {
            continue;
        };
        if let Some(end) = item_end(toks, i) {
            out.push(FnSpan {
                name: name_tok.text.clone(),
                start: i,
                end,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_spans_cover_cfg_test_mods_and_test_fns() {
        let f = SourceFile::new(
            "x.rs".into(),
            "fn live() {}\n#[cfg(test)]\nmod tests {\n  fn helper() {}\n}\n\
             #[test]\nfn standalone() { body(); }\nfn live2() {}\n"
                .into(),
        );
        assert!(!f.in_test(1));
        assert!(f.in_test(3));
        assert!(f.in_test(4));
        assert!(f.in_test(7));
        assert!(!f.in_test(8));
    }

    #[test]
    fn tests_dir_files_are_all_test() {
        let f = SourceFile::new("tests/integration.rs".into(), "fn x() {}".into());
        assert!(f.in_test(1));
    }

    #[test]
    fn enclosing_fn_prefers_innermost() {
        let f = SourceFile::new(
            "x.rs".into(),
            "fn outer() {\n  fn inner() { body(); }\n  tail();\n}".into(),
        );
        let body_idx = f.toks.iter().position(|t| t.is_ident("body")).unwrap();
        let tail_idx = f.toks.iter().position(|t| t.is_ident("tail")).unwrap();
        assert_eq!(f.enclosing_fn(body_idx), Some("inner"));
        assert_eq!(f.enclosing_fn(tail_idx), Some("outer"));
    }

    #[test]
    fn cfg_not_test_is_not_a_test_span() {
        let f = SourceFile::new(
            "x.rs".into(),
            "#[cfg(not(test))]\nfn shipped() { body(); }".into(),
        );
        assert!(!f.in_test(2));
    }
}
