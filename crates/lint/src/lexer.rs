//! A minimal Rust lexer: identifiers, punctuation, literals, and
//! comments, each stamped with its source line.
//!
//! This is deliberately not a parser. The lint rules work on token
//! patterns plus brace matching, which is robust against formatting
//! and rustfmt churn while staying a few hundred lines. The lexer's
//! one hard job is classification: a `thread::sleep` inside a string
//! literal or a comment must not look like a call, so strings (plain,
//! raw, byte), char literals, lifetimes, and nested block comments are
//! all recognized for real.

/// Token classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`fn`, `loop`, `unsafe`, names...).
    Ident,
    /// One punctuation byte (`{`, `:`, `.`, `#`, `=`, `>`, ...).
    Punct,
    /// String literal of any flavor; `text` is the content between the
    /// quotes, escapes left un-cooked except `\"` and `\\`.
    Str,
    /// Char or byte-char literal (content not preserved).
    Char,
    /// Lifetime such as `'a`.
    Lifetime,
    /// Integer or float literal; `text` is the raw spelling.
    Num,
    /// `//`-style comment including doc comments; full text with the
    /// slashes.
    LineComment,
    /// `/* */`-style comment (nesting handled); full text.
    BlockComment,
}

/// One lexed token.
#[derive(Debug, Clone)]
pub struct Tok {
    pub kind: TokKind,
    /// See the per-kind docs on [`TokKind`]. For `Punct` this is the
    /// single character.
    pub text: String,
    /// 1-based source line of the token's first character.
    pub line: u32,
}

impl Tok {
    /// Is this token the punctuation character `c`?
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.as_bytes()[0] == c as u8
    }

    /// Is this token the identifier/keyword `s`?
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// Comments don't affect token-pattern matching.
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokKind::LineComment | TokKind::BlockComment)
    }
}

/// Lex `src` into tokens. Unterminated constructs consume to EOF
/// rather than erroring: the linter must keep going on any input.
pub fn lex(src: &str) -> Vec<Tok> {
    let b = src.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;

    while i < b.len() {
        let c = b[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_ascii_whitespace() => i += 1,
            b'/' if b.get(i + 1) == Some(&b'/') => {
                let start = i;
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
                toks.push(Tok {
                    kind: TokKind::LineComment,
                    text: src[start..i].to_string(),
                    line,
                });
            }
            b'/' if b.get(i + 1) == Some(&b'*') => {
                let (start, start_line) = (i, line);
                let mut depth = 1;
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == b'\n' {
                        line += 1;
                        i += 1;
                    } else if b[i] == b'/' && b.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else if b[i] == b'*' && b.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                toks.push(Tok {
                    kind: TokKind::BlockComment,
                    text: src[start..i].to_string(),
                    line: start_line,
                });
            }
            b'"' => {
                let (tok, ni, nl) = lex_string(src, i, line);
                toks.push(tok);
                i = ni;
                line = nl;
            }
            b'\'' => {
                // Lifetime vs char literal: `'` + ident-start that is
                // NOT closed by a quote right after is a lifetime.
                let next = b.get(i + 1).copied().unwrap_or(0);
                let after = b.get(i + 2).copied().unwrap_or(0);
                let ident_start = next.is_ascii_alphabetic() || next == b'_';
                if ident_start && after != b'\'' {
                    let start = i + 1;
                    i += 2;
                    while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                        i += 1;
                    }
                    toks.push(Tok {
                        kind: TokKind::Lifetime,
                        text: src[start..i].to_string(),
                        line,
                    });
                } else {
                    // Char literal: consume to the closing quote,
                    // honoring escapes.
                    let start_line = line;
                    i += 1;
                    while i < b.len() {
                        match b[i] {
                            b'\\' => i += 2,
                            b'\'' => {
                                i += 1;
                                break;
                            }
                            b'\n' => {
                                line += 1;
                                i += 1;
                            }
                            _ => i += 1,
                        }
                    }
                    toks.push(Tok {
                        kind: TokKind::Char,
                        text: String::new(),
                        line: start_line,
                    });
                }
            }
            c if c.is_ascii_digit() => {
                let start = i;
                i += 1;
                while i < b.len() {
                    let d = b[i];
                    if d.is_ascii_alphanumeric() || d == b'_' {
                        i += 1;
                    } else if d == b'.' && b.get(i + 1).is_some_and(|n| n.is_ascii_digit()) {
                        // `1.5` continues the number; `0..n` does not.
                        i += 1;
                    } else {
                        break;
                    }
                }
                toks.push(Tok {
                    kind: TokKind::Num,
                    text: src[start..i].to_string(),
                    line,
                });
            }
            c if c.is_ascii_alphabetic() || c == b'_' => {
                let start = i;
                while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                    i += 1;
                }
                let ident = &src[start..i];
                // String-literal prefixes: r"", r#""#, b"", br"", b''.
                let next = b.get(i).copied().unwrap_or(0);
                let raw_ok = matches!(ident, "r" | "b" | "br") && (next == b'"' || next == b'#');
                if raw_ok {
                    let raw = ident != "b" || next == b'#';
                    if raw || next == b'"' {
                        let (tok, ni, nl) = if ident == "b" {
                            lex_string(src, i, line)
                        } else {
                            lex_raw_string(src, i, line)
                        };
                        toks.push(tok);
                        i = ni;
                        line = nl;
                        continue;
                    }
                }
                if ident == "b" && next == b'\'' {
                    // Byte char `b'x'`: rewind onto the quote and let
                    // the char arm eat it next iteration, minus the
                    // lifetime interpretation (b'x' always closes).
                    let start_line = line;
                    i += 1; // the quote
                    while i < b.len() {
                        match b[i] {
                            b'\\' => i += 2,
                            b'\'' => {
                                i += 1;
                                break;
                            }
                            _ => i += 1,
                        }
                    }
                    toks.push(Tok {
                        kind: TokKind::Char,
                        text: String::new(),
                        line: start_line,
                    });
                    continue;
                }
                toks.push(Tok {
                    kind: TokKind::Ident,
                    text: ident.to_string(),
                    line,
                });
            }
            _ => {
                toks.push(Tok {
                    kind: TokKind::Punct,
                    text: (c as char).to_string(),
                    line,
                });
                i += 1;
            }
        }
    }
    toks
}

/// Lex a `"..."` string starting at the opening quote (index `i`).
/// Returns the token, the index after the closing quote, and the line.
fn lex_string(src: &str, i: usize, line: u32) -> (Tok, usize, u32) {
    let b = src.as_bytes();
    let start_line = line;
    let mut line = line;
    let mut j = i + 1;
    let mut text = String::new();
    while j < b.len() {
        match b[j] {
            b'\\' => {
                if let Some(&esc) = b.get(j + 1) {
                    match esc {
                        b'"' => text.push('"'),
                        b'\\' => text.push('\\'),
                        b'\n' => line += 1,
                        e => {
                            text.push('\\');
                            text.push(e as char);
                        }
                    }
                }
                j += 2;
            }
            b'"' => {
                j += 1;
                break;
            }
            b'\n' => {
                line += 1;
                text.push('\n');
                j += 1;
            }
            c => {
                text.push(c as char);
                j += 1;
            }
        }
    }
    (
        Tok {
            kind: TokKind::Str,
            text,
            line: start_line,
        },
        j,
        line,
    )
}

/// Lex a raw string whose `#` run starts at index `i` (the prefix
/// ident `r`/`br` has already been consumed).
fn lex_raw_string(src: &str, i: usize, line: u32) -> (Tok, usize, u32) {
    let b = src.as_bytes();
    let start_line = line;
    let mut line = line;
    let mut j = i;
    let mut hashes = 0usize;
    while b.get(j) == Some(&b'#') {
        hashes += 1;
        j += 1;
    }
    j += 1; // opening quote
    let content_start = j;
    let closer: Vec<u8> = std::iter::once(b'"')
        .chain(std::iter::repeat_n(b'#', hashes))
        .collect();
    let mut content_end = b.len();
    while j < b.len() {
        if b[j] == b'\n' {
            line += 1;
        }
        if b[j] == b'"' && b[j..].starts_with(&closer) {
            content_end = j;
            j += closer.len();
            break;
        }
        j += 1;
    }
    (
        Tok {
            kind: TokKind::Str,
            text: src[content_start..content_end.min(src.len())].to_string(),
            line: start_line,
        },
        j,
        line,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn idents_puncts_numbers() {
        let t = kinds("fn f(x: u32) -> u32 { x + 0x10 }");
        assert!(t.contains(&(TokKind::Ident, "fn".into())));
        assert!(t.contains(&(TokKind::Num, "0x10".into())));
        assert!(t.contains(&(TokKind::Punct, "{".into())));
    }

    #[test]
    fn code_in_strings_and_comments_is_not_code() {
        let toks = lex(r#"let s = "thread::sleep"; // thread::sleep
            /* thread::sleep */ call();"#);
        let sleeps: Vec<_> = toks.iter().filter(|t| t.is_ident("sleep")).collect();
        assert!(sleeps.is_empty(), "sleep only appears in str/comments");
        assert!(toks.iter().any(|t| t.is_ident("call")));
    }

    #[test]
    fn raw_and_byte_strings() {
        let toks = lex(r##"let a = r#"no "fn" here"#; let b2 = b"bytes"; let c = 'x';"##);
        assert_eq!(
            toks.iter().filter(|t| t.kind == TokKind::Str).count(),
            2,
            "raw and byte strings each lex as one Str"
        );
        assert!(toks.iter().any(|t| t.kind == TokKind::Char));
        assert!(!toks.iter().any(|t| t.is_ident("fn")));
    }

    #[test]
    fn lifetimes_are_not_chars() {
        let toks = lex("fn f<'a>(x: &'a str) { let c = 'a'; }");
        assert_eq!(
            toks.iter().filter(|t| t.kind == TokKind::Lifetime).count(),
            2
        );
        assert_eq!(toks.iter().filter(|t| t.kind == TokKind::Char).count(), 1);
    }

    #[test]
    fn line_numbers_track_newlines() {
        let toks = lex("a\nb\n\n  c /* x\ny */ d");
        let find = |name: &str| toks.iter().find(|t| t.is_ident(name)).unwrap().line;
        assert_eq!(find("a"), 1);
        assert_eq!(find("b"), 2);
        assert_eq!(find("c"), 4);
        assert_eq!(find("d"), 5);
    }

    #[test]
    fn nested_block_comments() {
        let toks = lex("/* outer /* inner */ still */ code");
        assert_eq!(toks.len(), 2);
        assert!(toks[1].is_ident("code"));
    }

    #[test]
    fn float_vs_range() {
        let t = kinds("1.5 + 0..n");
        assert!(t.contains(&(TokKind::Num, "1.5".into())));
        assert!(t.contains(&(TokKind::Num, "0".into())));
    }
}
