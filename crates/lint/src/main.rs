//! `imci-lint` — run the workspace invariant checks.
//!
//! ```text
//! imci-lint [--root DIR] [--allow FILE] [--deny-new] [--list]
//! ```
//!
//! `--deny-new` (the CI mode) exits 1 when any finding is not covered
//! by the allowlist; without it the tool reports and exits 0 so local
//! runs never block iteration. Stale allowlist entries are warnings in
//! both modes — they mean the violation was fixed and the suppression
//! should be deleted.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut allow_path: Option<PathBuf> = None;
    let mut deny_new = false;
    let mut list = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(v) => root = PathBuf::from(v),
                None => return usage("--root needs a directory"),
            },
            "--allow" => match args.next() {
                Some(v) => allow_path = Some(PathBuf::from(v)),
                None => return usage("--allow needs a file"),
            },
            "--deny-new" => deny_new = true,
            "--list" => list = true,
            "--help" | "-h" => return usage(""),
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }

    if list {
        for rule in imci_lint::rules::all() {
            println!("{}  {}", rule.id(), rule.summary());
        }
        return ExitCode::SUCCESS;
    }

    let ws = match imci_lint::Workspace::load(&root) {
        Ok(ws) => ws,
        Err(e) => {
            eprintln!("imci-lint: cannot load {}: {e}", root.display());
            return ExitCode::FAILURE;
        }
    };

    // Default allowlist: the committed one at the workspace root.
    let allow_path = allow_path.unwrap_or_else(|| root.join("crates/lint/allow.toml"));
    let entries = match std::fs::read_to_string(&allow_path) {
        Ok(text) => match imci_lint::allow::parse(&text) {
            Ok(entries) => entries,
            Err(e) => {
                eprintln!("imci-lint: {}: {e}", allow_path.display());
                return ExitCode::FAILURE;
            }
        },
        Err(_) => Vec::new(), // no allowlist is fine: nothing suppressed
    };

    let findings = imci_lint::run_all(&ws);
    let (live, suppressed, stale) = imci_lint::allow::apply(findings, &entries);

    for f in &live {
        println!("{f}");
    }
    for s in &stale {
        eprintln!("imci-lint: warning: {s}");
    }
    eprintln!(
        "imci-lint: {} files, {} finding(s), {} suppressed, {} stale allowlist entr{}",
        ws.files.len(),
        live.len(),
        suppressed.len(),
        stale.len(),
        if stale.len() == 1 { "y" } else { "ies" },
    );

    if deny_new && !live.is_empty() {
        eprintln!(
            "imci-lint: --deny-new: {} unsuppressed finding(s); fix them or add a \
             justified entry to {}",
            live.len(),
            allow_path.display()
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

fn usage(err: &str) -> ExitCode {
    if !err.is_empty() {
        eprintln!("imci-lint: {err}");
    }
    eprintln!("usage: imci-lint [--root DIR] [--allow FILE] [--deny-new] [--list]");
    if err.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
