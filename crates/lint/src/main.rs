//! `imci-lint` — run the workspace invariant checks.
//!
//! ```text
//! imci-lint [--root DIR] [--allow FILE] [--deny-new] [--list]
//!           [--json FILE] [--budget-ms N]
//! ```
//!
//! `--deny-new` (the CI mode) exits 1 when any finding is not covered
//! by the allowlist; without it the tool reports and exits 0 so local
//! runs never block iteration. Stale allowlist entries are warnings in
//! both modes — they mean the violation was fixed and the suppression
//! should be deleted.
//!
//! `--json FILE` additionally writes every finding (live *and*
//! suppressed, so the artifact shows the full picture) as a JSON array
//! for CI upload. `--budget-ms N` exits 1 when the whole run — walk,
//! call-graph build, all rules — takes longer than `N` milliseconds:
//! the lint gate stays cheap enough to run on every push or it gets
//! deleted, so the budget is enforced, not aspirational.

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut allow_path: Option<PathBuf> = None;
    let mut deny_new = false;
    let mut list = false;
    let mut json_path: Option<PathBuf> = None;
    let mut budget_ms: Option<u64> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(v) => root = PathBuf::from(v),
                None => return usage("--root needs a directory"),
            },
            "--allow" => match args.next() {
                Some(v) => allow_path = Some(PathBuf::from(v)),
                None => return usage("--allow needs a file"),
            },
            "--json" => match args.next() {
                Some(v) => json_path = Some(PathBuf::from(v)),
                None => return usage("--json needs a file"),
            },
            "--budget-ms" => match args.next().map(|v| v.parse()) {
                Some(Ok(v)) => budget_ms = Some(v),
                _ => return usage("--budget-ms needs a number"),
            },
            "--deny-new" => deny_new = true,
            "--list" => list = true,
            "--help" | "-h" => return usage(""),
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }
    let t0 = Instant::now();

    if list {
        for rule in imci_lint::rules::all() {
            println!("{}  {}", rule.id(), rule.summary());
        }
        return ExitCode::SUCCESS;
    }

    let ws = match imci_lint::Workspace::load(&root) {
        Ok(ws) => ws,
        Err(e) => {
            eprintln!("imci-lint: cannot load {}: {e}", root.display());
            return ExitCode::FAILURE;
        }
    };

    // Default allowlist: the committed one at the workspace root.
    let allow_path = allow_path.unwrap_or_else(|| root.join("crates/lint/allow.toml"));
    let entries = match std::fs::read_to_string(&allow_path) {
        Ok(text) => match imci_lint::allow::parse(&text) {
            Ok(entries) => entries,
            Err(e) => {
                eprintln!("imci-lint: {}: {e}", allow_path.display());
                return ExitCode::FAILURE;
            }
        },
        Err(_) => Vec::new(), // no allowlist is fine: nothing suppressed
    };

    let findings = imci_lint::run_all(&ws);
    let (live, suppressed, stale) = imci_lint::allow::apply(findings, &entries);

    if let Some(path) = &json_path {
        let json = findings_json(&live, &suppressed);
        if let Err(e) = std::fs::write(path, json) {
            eprintln!("imci-lint: cannot write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    }

    for f in &live {
        println!("{f}");
    }
    for s in &stale {
        eprintln!("imci-lint: warning: {s}");
    }
    eprintln!(
        "imci-lint: {} files, {} finding(s), {} suppressed, {} stale allowlist entr{}",
        ws.files.len(),
        live.len(),
        suppressed.len(),
        stale.len(),
        if stale.len() == 1 { "y" } else { "ies" },
    );

    if deny_new && !live.is_empty() {
        eprintln!(
            "imci-lint: --deny-new: {} unsuppressed finding(s); fix them or add a \
             justified entry to {}",
            live.len(),
            allow_path.display()
        );
        return ExitCode::FAILURE;
    }
    if let Some(budget) = budget_ms {
        let took = t0.elapsed().as_millis() as u64;
        if took > budget {
            eprintln!("imci-lint: --budget-ms: run took {took}ms, budget is {budget}ms");
            return ExitCode::FAILURE;
        }
        eprintln!("imci-lint: {took}ms of {budget}ms budget");
    }
    ExitCode::SUCCESS
}

/// Findings as a JSON array, hand-rolled (the linter is dependency-
/// free by policy — see Cargo.toml). Suppressed findings are included
/// with `"suppressed": true` so the CI artifact is the complete
/// picture, not just what the allowlist let through.
fn findings_json(live: &[imci_lint::Finding], suppressed: &[imci_lint::Finding]) -> String {
    let mut out = String::from("[\n");
    let mut first = true;
    for (f, supp) in live
        .iter()
        .map(|f| (f, false))
        .chain(suppressed.iter().map(|f| (f, true)))
    {
        if !first {
            out.push_str(",\n");
        }
        first = false;
        out.push_str(&format!(
            "  {{\"rule\": {}, \"path\": {}, \"line\": {}, \"suppressed\": {}, \
             \"msg\": {}, \"src_line\": {}}}",
            json_str(f.rule),
            json_str(&f.path),
            f.line,
            supp,
            json_str(&f.msg),
            json_str(&f.src_line),
        ));
    }
    out.push_str("\n]\n");
    out
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn usage(err: &str) -> ExitCode {
    if !err.is_empty() {
        eprintln!("imci-lint: {err}");
    }
    eprintln!(
        "usage: imci-lint [--root DIR] [--allow FILE] [--deny-new] [--list] \
         [--json FILE] [--budget-ms N]"
    );
    if err.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
