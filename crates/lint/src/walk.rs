//! Recursive `.rs` file discovery, no external deps.

use std::path::{Path, PathBuf};

/// Directory names never descended into.
const SKIP_DIRS: &[&str] = &["target", ".git", ".github", "node_modules"];

/// The linter's own fixture tree contains *seeded* violations; skip it
/// when linting a workspace that embeds the linter.
const SKIP_SUFFIXES: &[&str] = &["lint/fixtures"];

/// All `.rs` files under `root`, depth-first. Directory entries are
/// sorted by name before descending, so the result — and everything
/// downstream of it: finding order, witness-path choice in the call
/// graph, the selftest — is deterministic across filesystems
/// (`read_dir` order is inode order on ext4, hash order on btrfs).
pub fn rust_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let mut entries: Vec<std::fs::DirEntry> =
            std::fs::read_dir(&dir)?.collect::<std::io::Result<_>>()?;
        entries.sort_by_key(|e| e.file_name());
        for entry in entries {
            let path = entry.path();
            let name = entry.file_name().to_string_lossy().into_owned();
            let ty = entry.file_type()?;
            if ty.is_dir() {
                if SKIP_DIRS.contains(&name.as_str()) || name.starts_with('.') {
                    continue;
                }
                let unixish = path.to_string_lossy().replace('\\', "/");
                if SKIP_SUFFIXES.iter().any(|s| unixish.ends_with(s)) {
                    continue;
                }
                stack.push(path);
            } else if ty.is_file() && name.ends_with(".rs") {
                out.push(path);
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_own_sources_and_skips_fixtures() {
        let manifest = Path::new(env!("CARGO_MANIFEST_DIR"));
        let files = rust_files(manifest).unwrap();
        let rels: Vec<String> = files
            .iter()
            .map(|p| p.to_string_lossy().replace('\\', "/"))
            .collect();
        assert!(rels.iter().any(|p| p.ends_with("src/lexer.rs")));
        assert!(
            !rels.iter().any(|p| p.contains("fixtures/")),
            "seeded fixture violations must not leak into workspace runs: {rels:?}"
        );
        // Integration tests are linted, not just src/.
        assert!(
            rels.iter().any(|p| p.ends_with("tests/selftest.rs")),
            "tests/ must be walked: {rels:?}"
        );
    }

    #[test]
    fn workspace_walk_covers_tests_and_examples() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let files = rust_files(&root).unwrap();
        let rels: Vec<String> = files
            .iter()
            .map(|p| p.to_string_lossy().replace('\\', "/"))
            .collect();
        assert!(
            rels.iter().any(|p| p.contains("/examples/")),
            "examples/ must be walked"
        );
        assert!(
            rels.iter().any(|p| p.contains("/tests/")),
            "crate tests/ dirs must be walked"
        );
    }

    #[test]
    fn order_is_deterministic() {
        let manifest = Path::new(env!("CARGO_MANIFEST_DIR"));
        let a = rust_files(manifest).unwrap();
        let b = rust_files(manifest).unwrap();
        assert_eq!(a, b);
        // Each directory's entries come out name-sorted: the depth-first
        // stack reorders across directories, but within one directory
        // the relative order of sibling files is the sort order.
        let mut by_dir: std::collections::HashMap<PathBuf, Vec<String>> =
            std::collections::HashMap::new();
        for p in &a {
            by_dir
                .entry(p.parent().unwrap().to_path_buf())
                .or_default()
                .push(p.file_name().unwrap().to_string_lossy().into_owned());
        }
        for (dir, names) in by_dir {
            let mut sorted = names.clone();
            sorted.sort();
            assert_eq!(names, sorted, "unsorted siblings in {}", dir.display());
        }
    }
}
