//! Recursive `.rs` file discovery, no external deps.

use std::path::{Path, PathBuf};

/// Directory names never descended into.
const SKIP_DIRS: &[&str] = &["target", ".git", ".github", "node_modules"];

/// The linter's own fixture tree contains *seeded* violations; skip it
/// when linting a workspace that embeds the linter.
const SKIP_SUFFIXES: &[&str] = &["lint/fixtures"];

/// All `.rs` files under `root`, depth-first, unsorted.
pub fn rust_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in std::fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let name = entry.file_name().to_string_lossy().into_owned();
            let ty = entry.file_type()?;
            if ty.is_dir() {
                if SKIP_DIRS.contains(&name.as_str()) || name.starts_with('.') {
                    continue;
                }
                let unixish = path.to_string_lossy().replace('\\', "/");
                if SKIP_SUFFIXES.iter().any(|s| unixish.ends_with(s)) {
                    continue;
                }
                stack.push(path);
            } else if ty.is_file() && name.ends_with(".rs") {
                out.push(path);
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_own_sources_and_skips_fixtures() {
        let manifest = Path::new(env!("CARGO_MANIFEST_DIR"));
        let files = rust_files(manifest).unwrap();
        let rels: Vec<String> = files
            .iter()
            .map(|p| p.to_string_lossy().replace('\\', "/"))
            .collect();
        assert!(rels.iter().any(|p| p.ends_with("src/lexer.rs")));
        assert!(
            !rels.iter().any(|p| p.contains("fixtures/")),
            "seeded fixture violations must not leak into workspace runs: {rels:?}"
        );
    }
}
