//! The committed allowlist: suppressions with mandatory reasons.
//!
//! Format is a TOML subset (the workspace builds offline, so no toml
//! crate): `[[allow]]` tables with `key = "string"` pairs and `#`
//! comments. An entry matches a finding when the rule matches, the
//! finding's path ends with `path`, and — if given — the finding's
//! source line contains `contains`. Matching on source text instead of
//! line numbers keeps entries stable across unrelated edits; an entry
//! whose code is deleted goes stale and is reported.

use crate::Finding;

/// One suppression.
#[derive(Debug, Clone, Default)]
pub struct AllowEntry {
    /// Rule id this entry suppresses (`"L003"`). Required.
    pub rule: String,
    /// Path suffix the finding must match. Required.
    pub path: String,
    /// Substring of the offending source line; empty = any line in the
    /// file (use sparingly).
    pub contains: String,
    /// Why this violation is deliberate. Required — an allowlist entry
    /// without a justification is itself a finding.
    pub reason: String,
    /// Line in the allowlist file, for diagnostics.
    pub defined_at: u32,
}

impl AllowEntry {
    pub fn matches(&self, f: &Finding) -> bool {
        self.rule == f.rule
            && f.path.ends_with(&self.path)
            && (self.contains.is_empty() || f.src_line.contains(&self.contains))
    }
}

/// Parse the allowlist. Errors are strings naming the offending line.
pub fn parse(text: &str) -> Result<Vec<AllowEntry>, String> {
    let mut entries: Vec<AllowEntry> = Vec::new();
    let mut open = false;
    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx as u32 + 1;
        let line = strip_comment(raw).trim().to_string();
        if line.is_empty() {
            continue;
        }
        if line == "[[allow]]" {
            if let Some(last) = entries.last() {
                validate(last)?;
            }
            entries.push(AllowEntry {
                defined_at: lineno,
                ..AllowEntry::default()
            });
            open = true;
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err(format!(
                "allowlist line {lineno}: expected `key = \"value\"`"
            ));
        };
        if !open {
            return Err(format!(
                "allowlist line {lineno}: key outside any [[allow]] table"
            ));
        }
        let value = unquote(value.trim())
            .ok_or_else(|| format!("allowlist line {lineno}: value must be a quoted string"))?;
        let entry = entries.last_mut().expect("open table exists");
        match key.trim() {
            "rule" => entry.rule = value,
            "path" => entry.path = value,
            "contains" => entry.contains = value,
            "reason" => entry.reason = value,
            other => {
                return Err(format!("allowlist line {lineno}: unknown key `{other}`"));
            }
        }
    }
    if let Some(last) = entries.last() {
        validate(last)?;
    }
    Ok(entries)
}

fn validate(e: &AllowEntry) -> Result<(), String> {
    if e.rule.is_empty() || e.path.is_empty() {
        return Err(format!(
            "allowlist entry at line {}: `rule` and `path` are required",
            e.defined_at
        ));
    }
    if e.reason.trim().is_empty() {
        return Err(format!(
            "allowlist entry at line {}: a `reason` is required — suppressions must be justified",
            e.defined_at
        ));
    }
    Ok(())
}

/// Strip a trailing `#` comment, respecting quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    let mut prev_escape = false;
    for (i, c) in line.char_indices() {
        match c {
            '\\' if in_str => {
                prev_escape = !prev_escape;
                continue;
            }
            '"' if !prev_escape => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
        prev_escape = false;
    }
    line
}

fn unquote(s: &str) -> Option<String> {
    let inner = s.strip_prefix('"')?.strip_suffix('"')?;
    let mut out = String::with_capacity(inner.len());
    let mut chars = inner.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next()? {
                '"' => out.push('"'),
                '\\' => out.push('\\'),
                'n' => out.push('\n'),
                other => {
                    out.push('\\');
                    out.push(other);
                }
            }
        } else {
            out.push(c);
        }
    }
    Some(out)
}

/// Split findings into (unsuppressed, suppressed) and report stale
/// allowlist entries (matched nothing) as strings.
pub fn apply(
    findings: Vec<Finding>,
    entries: &[AllowEntry],
) -> (Vec<Finding>, Vec<Finding>, Vec<String>) {
    let mut used = vec![false; entries.len()];
    let mut live = Vec::new();
    let mut suppressed = Vec::new();
    for f in findings {
        match entries.iter().position(|e| e.matches(&f)) {
            Some(i) => {
                used[i] = true;
                suppressed.push(f);
            }
            None => live.push(f),
        }
    }
    let stale = entries
        .iter()
        .zip(&used)
        .filter(|(_, u)| !**u)
        .map(|(e, _)| {
            format!(
                "stale allowlist entry (line {}): rule {} path {} matches nothing",
                e.defined_at, e.rule, e.path
            )
        })
        .collect();
    (live, suppressed, stale)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(rule: &'static str, path: &str, src: &str) -> Finding {
        Finding {
            rule,
            path: path.into(),
            line: 1,
            msg: String::new(),
            src_line: src.into(),
        }
    }

    #[test]
    fn parses_and_matches() {
        let text = r#"
# repo allowlist
[[allow]]
rule = "L003"
path = "crates/server/src/client.rs"
contains = "std::thread::sleep(backoff)"
reason = "capped exponential backoff, bounded by RetryPolicy"
"#;
        let entries = parse(text).unwrap();
        assert_eq!(entries.len(), 1);
        let hit = finding(
            "L003",
            "crates/server/src/client.rs",
            "std::thread::sleep(backoff);",
        );
        let miss = finding("L003", "crates/server/src/client.rs", "other code");
        assert!(entries[0].matches(&hit));
        assert!(!entries[0].matches(&miss));
        let (live, supp, stale) = apply(vec![hit, miss], &entries);
        assert_eq!((live.len(), supp.len(), stale.len()), (1, 1, 0));
    }

    #[test]
    fn reason_is_mandatory() {
        let text = "[[allow]]\nrule = \"L004\"\npath = \"x.rs\"\n";
        assert!(parse(text).unwrap_err().contains("reason"));
    }

    #[test]
    fn stale_entries_are_reported() {
        let text = "[[allow]]\nrule = \"L004\"\npath = \"gone.rs\"\nreason = \"was fixed\"\n";
        let entries = parse(text).unwrap();
        let (_, _, stale) = apply(vec![], &entries);
        assert_eq!(stale.len(), 1);
    }

    #[test]
    fn comments_respect_strings() {
        let text = "[[allow]]\nrule = \"L005\"\npath = \"a#b.rs\" # trailing\nreason = \"x\"\n";
        let entries = parse(text).unwrap();
        assert_eq!(entries[0].path, "a#b.rs");
    }
}
