//! Definition index and pragmatic name resolution.
//!
//! This is deliberately not rustc: no types, no trait solving, no
//! generics. Calls are resolved by name with three escalating scopes —
//! same file, same crate, whole workspace — plus an impl-block map for
//! `Type::method` paths and a receiver-suffix heuristic for
//! `value.method(...)` calls (`writer` matches `LogWriter`, `pool`
//! matches `BufferPool`). A call that stays ambiguous resolves to
//! *nothing*: a missing edge can hide a real path (accepted — this is
//! a linter, not a verifier), while an invented edge would invent
//! findings. That asymmetry drives every choice here.
//!
//! `crates/shims/` is excluded from the index. The shims stand in for
//! external crates (parking_lot, crossbeam, ...), and their internals
//! — e.g. the condvar park inside `Mutex::lock` — are no more this
//! workspace's invariant surface than std's internals are. Without
//! this exclusion every `.lock()` would "reach" a blocking sink and
//! L009/L011 would flag every critical section in the reactor.

use std::collections::HashMap;

use crate::lexer::TokKind;
use crate::{SourceFile, Workspace};

/// Path prefixes excluded from the definition index (treated as
/// external code, like std). The shims stand in for external crates;
/// the lint crate is dev tooling that no product thread ever calls —
/// indexing it would only donate false homes for common method names
/// (its `Workspace::load` does file IO and would otherwise become the
/// resolution target of every atomic `.load(Ordering)` in the tree).
const EXTERNAL_PREFIXES: &[&str] = &["crates/shims/", "crates/lint/"];

/// One `fn` definition the resolver knows about.
#[derive(Debug)]
pub struct FnDef {
    /// Index into `Workspace::files`.
    pub file: usize,
    /// Token-index span of the item (the `fn` keyword to the closing
    /// `}` or `;`).
    pub start: usize,
    pub end: usize,
    pub name: String,
    /// Type of the enclosing `impl` block, if this is a method or
    /// associated fn (`impl Trait for Type` records `Type`).
    pub impl_type: Option<String>,
    /// `"net"` for `crates/net/...`, `"root"` for top-level
    /// `src/` / `tests/` / `examples/`.
    pub crate_name: String,
    /// Defined inside `#[cfg(test)]` / `#[test]` / a `tests/` dir.
    pub is_test: bool,
    /// Signature returns a `Result<...>` of any flavor.
    pub returns_result: bool,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
}

/// The whole-workspace definition index.
pub struct DefIndex {
    pub fns: Vec<FnDef>,
    /// fn name -> indices into `fns`.
    pub by_name: HashMap<String, Vec<usize>>,
}

/// How a call site names its callee.
#[derive(Debug, Clone)]
pub enum CallKind {
    /// `helper(...)`.
    Bare,
    /// `value.method(...)`; `recv` is the identifier directly before
    /// the dot, if there is one (`self.log.append` records `log`).
    Method { recv: Option<String> },
    /// `Seg::name(...)`; `qual` is the last path segment before the
    /// `::` (`Type`, a module name, or `Self`).
    Path { qual: String },
}

/// One syntactic call site inside a fn body.
#[derive(Debug)]
pub struct RawCall {
    /// Token index of the callee name.
    pub tok: usize,
    pub line: u32,
    pub name: String,
    pub kind: CallKind,
}

/// Resolution context: where the call appears.
pub struct Ctx<'a> {
    pub file: usize,
    pub crate_name: &'a str,
    pub impl_type: Option<&'a str>,
    /// Calls from live code never resolve into test-only definitions.
    pub is_test: bool,
}

/// Crate name for a workspace-relative path.
pub fn crate_of(rel_path: &str) -> String {
    let mut parts = rel_path.split('/');
    match (parts.next(), parts.next()) {
        (Some("crates"), Some(name)) => name.to_string(),
        _ => "root".to_string(),
    }
}

/// Build the index over every non-shim file.
pub fn build(ws: &Workspace) -> DefIndex {
    let mut fns = Vec::new();
    for (fi, f) in ws.files.iter().enumerate() {
        if EXTERNAL_PREFIXES.iter().any(|p| f.rel_path.starts_with(p)) {
            continue;
        }
        let crate_name = crate_of(&f.rel_path);
        let impls = impl_spans(f);
        for span in &f.fns {
            let impl_type = impls
                .iter()
                .filter(|(a, b, _)| *a <= span.start && span.end <= *b)
                .min_by_key(|(a, b, _)| b - a)
                .map(|(_, _, ty)| ty.clone());
            let line = f.toks[span.start].line;
            fns.push(FnDef {
                file: fi,
                start: span.start,
                end: span.end,
                name: span.name.clone(),
                impl_type,
                crate_name: crate_name.clone(),
                is_test: f.in_test(line),
                returns_result: returns_result(f, span.start, span.end),
                line,
            });
        }
    }
    let mut by_name: HashMap<String, Vec<usize>> = HashMap::new();
    for (i, d) in fns.iter().enumerate() {
        by_name.entry(d.name.clone()).or_default().push(i);
    }
    DefIndex { fns, by_name }
}

impl DefIndex {
    /// Resolve a call site to a definition, or `None` when ambiguous
    /// or external. Test-only definitions are only candidates for
    /// test-code callers.
    pub fn resolve(&self, ws: &Workspace, call: &RawCall, ctx: &Ctx) -> Option<usize> {
        let all = self.by_name.get(&call.name)?;
        let visible: Vec<usize> = all
            .iter()
            .copied()
            .filter(|&i| ctx.is_test || !self.fns[i].is_test)
            .collect();
        if visible.is_empty() {
            return None;
        }
        match &call.kind {
            // A bare call can only name a free fn (methods need
            // `self.`/`Type::`); restricting candidates accordingly
            // keeps `load(x)` from resolving into someone's
            // `impl ... { fn load }`.
            CallKind::Bare => {
                let free: Vec<usize> = visible
                    .iter()
                    .copied()
                    .filter(|&i| self.fns[i].impl_type.is_none())
                    .collect();
                self.resolve_scoped(&free, ctx)
            }
            // Method calls resolve ONLY with receiver evidence: either
            // `self.method()` into the caller's own impl, or the
            // receiver-suffix heuristic (`writer.append()` matches
            // `impl LogWriter`, `pool.discard()` matches
            // `impl BufferPool`). There is deliberately no
            // unique-name fallback: `flag.load(Ordering)` or
            // `iter().filter(..)` must never resolve to an unrelated
            // workspace method that happens to be the only `load` /
            // `filter` — one such false edge makes every reachability
            // rule lie. Missing edges are the accepted cost.
            CallKind::Method { recv } => {
                let methods: Vec<usize> = visible
                    .iter()
                    .copied()
                    .filter(|&i| self.fns[i].impl_type.is_some())
                    .collect();
                if recv.as_deref() == Some("self") {
                    let own: Vec<usize> = methods
                        .iter()
                        .copied()
                        .filter(|&i| self.fns[i].impl_type.as_deref() == ctx.impl_type)
                        .collect();
                    return unique(&own);
                }
                if let Some(r) = recv {
                    let r = r.to_ascii_lowercase();
                    if r.len() >= 3 {
                        let hinted: Vec<usize> = methods
                            .iter()
                            .copied()
                            .filter(|&i| {
                                let ty = self.fns[i]
                                    .impl_type
                                    .as_deref()
                                    .unwrap_or("")
                                    .to_ascii_lowercase();
                                ty == r || ty.ends_with(&r) || ty.starts_with(&r)
                            })
                            .collect();
                        if let Some(one) = unique(&hinted) {
                            return Some(one);
                        }
                    }
                }
                None
            }
            CallKind::Path { qual } => {
                if qual == "Self" {
                    let own: Vec<usize> = visible
                        .iter()
                        .copied()
                        .filter(|&i| self.fns[i].impl_type.as_deref() == ctx.impl_type)
                        .collect();
                    return unique(&own);
                }
                // `Type::method(...)`.
                let typed: Vec<usize> = visible
                    .iter()
                    .copied()
                    .filter(|&i| self.fns[i].impl_type.as_deref() == Some(qual.as_str()))
                    .collect();
                if !typed.is_empty() {
                    return self.resolve_scoped(&typed, ctx);
                }
                // `module::helper(...)`: match the defining file's stem
                // or crate name (`imci_wal::append` -> crates/wal).
                let qual_crate = qual.strip_prefix("imci_").unwrap_or(qual);
                let moduled: Vec<usize> = visible
                    .iter()
                    .copied()
                    .filter(|&i| {
                        let d = &self.fns[i];
                        let path = &ws.files[d.file].rel_path;
                        path.ends_with(&format!("/{qual}.rs"))
                            || path.ends_with(&format!("{qual}/mod.rs"))
                            || (d.crate_name == qual_crate && d.impl_type.is_none())
                    })
                    .collect();
                self.resolve_scoped(&moduled, ctx)
            }
        }
    }

    /// Prefer the nearest scope; at the first non-empty scope, demand
    /// uniqueness (an ambiguity near the call is not resolved by a
    /// unique name far away).
    fn resolve_scoped(&self, cands: &[usize], ctx: &Ctx) -> Option<usize> {
        let same_file: Vec<usize> = cands
            .iter()
            .copied()
            .filter(|&i| self.fns[i].file == ctx.file)
            .collect();
        if !same_file.is_empty() {
            return unique(&same_file);
        }
        let same_crate: Vec<usize> = cands
            .iter()
            .copied()
            .filter(|&i| self.fns[i].crate_name == ctx.crate_name)
            .collect();
        if !same_crate.is_empty() {
            return unique(&same_crate);
        }
        unique(cands)
    }
}

fn unique(v: &[usize]) -> Option<usize> {
    match v {
        [one] => Some(*one),
        _ => None,
    }
}

/// Token ranges to skip when scanning a fn body for calls and sinks:
/// arguments of `spawn(...)` (a closure there runs on a *different*
/// thread, so neither its calls nor its panics belong to this fn's
/// thread) and of `catch_unwind(...)` (panics stop there).
pub fn thread_boundary_ranges(f: &SourceFile, start: usize, end: usize) -> Vec<(usize, usize)> {
    let toks = &f.toks;
    let mut out = Vec::new();
    for i in start..=end.min(toks.len().saturating_sub(1)) {
        if !(toks[i].is_ident("spawn") || toks[i].is_ident("catch_unwind")) {
            continue;
        }
        let Some(open) = f.next_code(i + 1).filter(|&j| toks[j].is_punct('(')) else {
            continue;
        };
        if let Some(close) = match_paren(f, open) {
            out.push((open, close));
        }
    }
    out
}

fn match_paren(f: &SourceFile, open: usize) -> Option<usize> {
    let mut depth = 0i32;
    for (j, t) in f.toks.iter().enumerate().skip(open) {
        if t.is_punct('(') {
            depth += 1;
        } else if t.is_punct(')') {
            depth -= 1;
            if depth == 0 {
                return Some(j);
            }
        }
    }
    None
}

/// Keywords that look like `name(`-style calls but are not.
const NON_CALL_KEYWORDS: &[&str] = &[
    "if", "while", "for", "loop", "match", "return", "fn", "let", "in", "as", "ref", "move", "mut",
    "unsafe", "else", "impl", "where", "use", "pub", "crate", "super", "dyn", "box",
];

/// Every syntactic call site in the token range, excluding thread
/// boundaries, macros (`name!(...)`), and definitions (`fn name(`).
pub fn raw_calls(f: &SourceFile, start: usize, end: usize) -> Vec<RawCall> {
    let toks = &f.toks;
    let skips = thread_boundary_ranges(f, start, end);
    let mut out = Vec::new();
    for i in start..=end.min(toks.len().saturating_sub(1)) {
        if skips.iter().any(|&(a, b)| a < i && i <= b) {
            continue;
        }
        let t = &toks[i];
        if t.kind != TokKind::Ident || NON_CALL_KEYWORDS.contains(&t.text.as_str()) {
            continue;
        }
        let Some(next) = f.next_code(i + 1) else {
            continue;
        };
        if toks[next].is_punct('!') {
            continue; // macro — panics among these are sinks, not calls
        }
        if !toks[next].is_punct('(') {
            continue;
        }
        if f.prev_code(i.wrapping_sub(1))
            .is_some_and(|p| toks[p].is_ident("fn"))
        {
            continue; // definition
        }
        let kind = call_kind(f, i);
        out.push(RawCall {
            tok: i,
            line: t.line,
            name: t.text.clone(),
            kind,
        });
    }
    out
}

fn call_kind(f: &SourceFile, i: usize) -> CallKind {
    let toks = &f.toks;
    let Some(p) = f.prev_code(i.wrapping_sub(1)) else {
        return CallKind::Bare;
    };
    if toks[p].is_punct('.') {
        let recv = f
            .prev_code(p.wrapping_sub(1))
            .map(|q| &toks[q])
            .filter(|t| t.kind == TokKind::Ident && !NON_CALL_KEYWORDS.contains(&t.text.as_str()))
            .map(|t| t.text.clone());
        return CallKind::Method { recv };
    }
    if toks[p].is_punct(':') && p >= 1 && toks[p - 1].is_punct(':') {
        if let Some(q) = f.prev_code(p.wrapping_sub(2)) {
            let qt = &toks[q];
            // `Type::name` / `module::name`; `<T as Trait>::name` and
            // turbofish qualifiers end in `>` and stay unresolved.
            if qt.kind == TokKind::Ident {
                return CallKind::Path {
                    qual: qt.text.clone(),
                };
            }
        }
        return CallKind::Path {
            qual: String::new(),
        };
    }
    CallKind::Bare
}

/// `impl` block spans: (body open token, body close token, type name).
fn impl_spans(f: &SourceFile) -> Vec<(usize, usize, String)> {
    let toks = &f.toks;
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        if !toks[i].is_ident("impl") {
            i += 1;
            continue;
        }
        // Walk the header. Track angle/paren depth (clamped — `->`
        // inside bounds would otherwise underflow it) and remember the
        // last path segment seen at depth 0, switching to the segment
        // after `for` for trait impls. A `where` clause stops the
        // collection.
        let mut j = i + 1;
        let mut angle = 0i32;
        let mut group = 0i32;
        let mut ty: Option<String> = None;
        let mut in_where = false;
        let mut open = None;
        while let Some(t) = toks.get(j) {
            if t.is_punct('<') {
                angle += 1;
            } else if t.is_punct('>') {
                angle = (angle - 1).max(0);
            } else if t.is_punct('(') || t.is_punct('[') {
                group += 1;
            } else if t.is_punct(')') || t.is_punct(']') {
                group -= 1;
            } else if angle == 0 && group == 0 {
                if t.is_punct('{') {
                    open = Some(j);
                    break;
                }
                if t.is_punct(';') {
                    break;
                }
                if t.is_ident("where") {
                    in_where = true;
                } else if t.is_ident("for") {
                    ty = None; // the implemented type follows
                } else if !in_where
                    && t.kind == TokKind::Ident
                    && !matches!(t.text.as_str(), "dyn" | "mut" | "const" | "unsafe")
                {
                    ty = Some(t.text.clone());
                }
            }
            j += 1;
        }
        if let (Some(open), Some(ty)) = (open, ty) {
            if let Some(close) = crate::match_brace(toks, open) {
                out.push((open, close, ty));
                // Do not skip past the block: impls nest in fns
                // rarely, but a later `impl` inside is still found
                // because we only advance one token.
            }
        }
        i += 1;
    }
    out
}

/// Does the fn's signature return a `Result`? Scans between the
/// parameter list's closing paren and the body.
fn returns_result(f: &SourceFile, start: usize, end: usize) -> bool {
    let toks = &f.toks;
    // Find the parameter list: the first `(` at angle depth 0 after
    // the name.
    let mut angle = 0i32;
    let mut j = start + 1;
    let mut params_open = None;
    while j <= end {
        let t = &toks[j];
        if t.is_punct('<') {
            angle += 1;
        } else if t.is_punct('>') {
            angle = (angle - 1).max(0);
        } else if t.is_punct('(') && angle == 0 {
            params_open = Some(j);
            break;
        } else if t.is_punct('{') || t.is_punct(';') {
            break;
        }
        j += 1;
    }
    let Some(open) = params_open else {
        return false;
    };
    let Some(close) = match_paren(f, open) else {
        return false;
    };
    let mut k = close + 1;
    while k <= end {
        let t = &toks[k];
        if t.is_punct('{') || t.is_punct(';') || t.is_ident("where") {
            return false;
        }
        if t.is_ident("Result") {
            return true;
        }
        k += 1;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ws(files: Vec<(&str, &str)>) -> Workspace {
        Workspace::from_files(
            std::path::PathBuf::new(),
            files
                .into_iter()
                .map(|(p, s)| SourceFile::new(p.into(), s.into()))
                .collect(),
        )
    }

    fn def<'a>(idx: &'a DefIndex, name: &str) -> &'a FnDef {
        &idx.fns[idx.by_name[name][0]]
    }

    #[test]
    fn index_records_impl_types_crates_and_result_returns() {
        let w = ws(vec![
            (
                "crates/wal/src/writer.rs",
                "pub struct LogWriter;\nimpl LogWriter {\n  pub fn append(&mut self, e: u64) \
                 -> Result<u64, ()> { Ok(e) }\n}\npub fn free_helper() {}\n",
            ),
            (
                "crates/shims/parking_lot/src/lib.rs",
                "pub fn lock() { wait(); }\n",
            ),
        ]);
        let idx = build(&w);
        assert!(!idx.by_name.contains_key("lock"), "shims are external");
        let ap = def(&idx, "append");
        assert_eq!(ap.impl_type.as_deref(), Some("LogWriter"));
        assert_eq!(ap.crate_name, "wal");
        assert!(ap.returns_result);
        let fh = def(&idx, "free_helper");
        assert_eq!(fh.impl_type, None);
        assert!(!fh.returns_result);
    }

    #[test]
    fn trait_impls_record_the_implemented_type() {
        let w = ws(vec![(
            "crates/net/src/proto.rs",
            "impl<P: Proto> Server<P> {\n  fn serve(&self) {}\n}\n\
             impl Proto for ImciProto {\n  fn decode(&self) -> Step { Step }\n}\n",
        )]);
        let idx = build(&w);
        assert_eq!(def(&idx, "serve").impl_type.as_deref(), Some("Server"));
        assert_eq!(def(&idx, "decode").impl_type.as_deref(), Some("ImciProto"));
    }

    #[test]
    fn resolution_scopes_and_receiver_suffix_heuristic() {
        let w = ws(vec![
            (
                "crates/wal/src/writer.rs",
                "impl LogWriter { pub fn flush(&self) {} }",
            ),
            (
                "crates/rowstore/src/pool.rs",
                "impl BufferPool { pub fn flush(&self) {} }",
            ),
            (
                "crates/server/src/s.rs",
                "fn go(writer: &LogWriter, pool: &BufferPool) {\n  writer.flush();\n  \
                 pool.flush();\n  mystery.flush();\n}\n",
            ),
        ]);
        let idx = build(&w);
        let go = &w.files[2];
        let calls = raw_calls(go, go.fns[0].start, go.fns[0].end);
        assert_eq!(calls.len(), 3);
        let ctx = Ctx {
            file: 2,
            crate_name: "server",
            impl_type: None,
            is_test: false,
        };
        let resolved: Vec<Option<&str>> = calls
            .iter()
            .map(|c| {
                idx.resolve(&w, c, &ctx)
                    .map(|i| idx.fns[i].impl_type.as_deref().unwrap())
            })
            .collect();
        assert_eq!(resolved[0], Some("LogWriter"), "writer -> LogWriter");
        assert_eq!(resolved[1], Some("BufferPool"), "pool -> BufferPool");
        assert_eq!(resolved[2], None, "ambiguous receiver stays unresolved");
    }

    #[test]
    fn live_code_never_resolves_into_test_definitions() {
        let w = ws(vec![(
            "crates/net/src/a.rs",
            "fn live() { helper(); }\n#[cfg(test)]\nmod t { fn helper() {} }\n",
        )]);
        let idx = build(&w);
        let f = &w.files[0];
        let calls = raw_calls(f, f.fns[0].start, f.fns[0].end);
        let ctx = Ctx {
            file: 0,
            crate_name: "net",
            impl_type: None,
            is_test: false,
        };
        assert_eq!(idx.resolve(&w, &calls[0], &ctx), None);
    }

    #[test]
    fn spawn_arguments_are_a_thread_boundary() {
        let w = ws(vec![(
            "crates/net/src/a.rs",
            "fn start() { thread::spawn(move || helper()); direct(); }\n\
             fn helper() {}\nfn direct() {}\n",
        )]);
        let f = &w.files[0];
        let calls = raw_calls(f, f.fns[0].start, f.fns[0].end);
        let names: Vec<&str> = calls.iter().map(|c| c.name.as_str()).collect();
        assert!(names.contains(&"spawn"));
        assert!(names.contains(&"direct"));
        assert!(!names.contains(&"helper"), "{names:?}");
    }

    #[test]
    fn path_calls_resolve_via_module_file_stem() {
        let w = ws(vec![
            ("crates/net/src/conn.rs", "pub fn drain() {}"),
            (
                "crates/net/src/reactor.rs",
                "pub fn reactor_loop() { crate::conn::drain(); }",
            ),
        ]);
        let idx = build(&w);
        let f = &w.files[1];
        let calls = raw_calls(f, f.fns[0].start, f.fns[0].end);
        let drain = calls.iter().find(|c| c.name == "drain").unwrap();
        let ctx = Ctx {
            file: 1,
            crate_name: "net",
            impl_type: None,
            is_test: false,
        };
        let r = idx.resolve(&w, drain, &ctx).unwrap();
        assert!(w.files[idx.fns[r].file].rel_path.ends_with("conn.rs"));
    }
}
