//! L001 — REDO/binlog wire-tag coverage.
//!
//! Bug class: add a `RedoPayload` variant, give it a `kind_tag`, emit
//! it from the RW node — and forget the decode arm or the replay
//! handler. The RO node then fails (or silently skips) mid-stream,
//! which surfaces as divergence hours later. The compiler cannot catch
//! it because decode matches on *integers*, not variants.
//!
//! Checks, per variant of `RedoPayload` (crates/wal/src/record.rs):
//!   1. it has a tag in `kind_tag`,
//!   2. its tag number appears as a `N =>` arm in `decode`,
//!   3. it is encoded in `encode`,
//!   4. it is handled in the replay path (crates/rowstore/src/apply.rs).
//!
//! And per variant of `BinlogKind` (crates/wal/src/binlog.rs): it is
//! covered by both `encode` and `decode`.

use super::{enum_variants, fn_span, mentions_variant, Rule};
use crate::lexer::TokKind;
use crate::{Finding, SourceFile, Workspace};

pub struct WireTagCoverage;

impl Rule for WireTagCoverage {
    fn id(&self) -> &'static str {
        "L001"
    }

    fn summary(&self) -> &'static str {
        "every REDO/binlog wire tag has encode, decode, and replay coverage"
    }

    fn check(&self, ws: &Workspace) -> Vec<Finding> {
        let mut out = Vec::new();
        check_redo(ws, &mut out);
        check_binlog(ws, &mut out);
        out
    }
}

fn check_redo(ws: &Workspace, out: &mut Vec<Finding>) {
    let Some(rec) = ws.file("crates/wal/src/record.rs") else {
        return;
    };
    let Some(vars) = enum_variants(rec, "RedoPayload") else {
        return;
    };
    let tags = tag_map(rec, "kind_tag", "RedoPayload");
    let decode_tags = decode_arm_tags(rec, "decode");
    let encode = fn_span(rec, "encode");
    let handler = ws.file("crates/rowstore/src/apply.rs");

    for v in &vars {
        let Some(tag) = tags.iter().find(|(_, n)| *n == v.name).map(|(t, _)| *t) else {
            out.push(rec.finding(
                "L001",
                v.line,
                format!(
                    "RedoPayload::{} has no kind_tag arm — it cannot be framed",
                    v.name
                ),
            ));
            continue;
        };
        if !decode_tags.contains(&tag) {
            out.push(rec.finding(
                "L001",
                v.line,
                format!(
                    "RedoPayload::{} (tag {tag}) has no decode arm — an RO replica \
                     replaying a stream that contains it will error mid-stream",
                    v.name
                ),
            ));
        }
        if let Some(span) = encode {
            if !mentions_variant(rec, span, "RedoPayload", &v.name) {
                out.push(rec.finding(
                    "L001",
                    v.line,
                    format!("RedoPayload::{} is never encoded", v.name),
                ));
            }
        }
        if let Some(h) = handler {
            let whole = (0, h.toks.len().saturating_sub(1));
            if !mentions_variant(h, whole, "RedoPayload", &v.name) {
                out.push(rec.finding(
                    "L001",
                    v.line,
                    format!(
                        "RedoPayload::{} has no replay handler in {} — replicas would \
                         drop it silently",
                        v.name, h.rel_path
                    ),
                ));
            }
        }
    }
}

fn check_binlog(ws: &Workspace, out: &mut Vec<Finding>) {
    let Some(bl) = ws.file("crates/wal/src/binlog.rs") else {
        return;
    };
    let Some(vars) = enum_variants(bl, "BinlogKind") else {
        return;
    };
    for v in &vars {
        for fun in ["encode", "decode"] {
            if let Some(span) = fn_span(bl, fun) {
                if !mentions_variant(bl, span, "BinlogKind", &v.name) {
                    out.push(bl.finding(
                        "L001",
                        v.line,
                        format!("BinlogKind::{} is not covered by `{fun}`", v.name),
                    ));
                }
            }
        }
    }
}

/// `(tag, variant)` pairs from arms shaped `Enum::Variant .. => N` in
/// `fn fname`.
fn tag_map(f: &SourceFile, fname: &str, enum_name: &str) -> Vec<(u64, String)> {
    let Some((a, b)) = fn_span(f, fname) else {
        return Vec::new();
    };
    let toks = &f.toks;
    let mut out = Vec::new();
    let mut i = a;
    while i + 3 <= b {
        if toks[i].is_ident(enum_name)
            && toks[i + 1].is_punct(':')
            && toks[i + 2].is_punct(':')
            && toks[i + 3].kind == TokKind::Ident
        {
            let name = toks[i + 3].text.clone();
            // Scan to this arm's `=>` and read the tag literal.
            let mut j = i + 4;
            while j < b {
                if toks[j].is_punct('=') && toks[j + 1].is_punct('>') {
                    if let Some(k) = f.next_code(j + 2) {
                        if let Ok(n) = toks[k].text.parse::<u64>() {
                            out.push((n, name));
                        }
                    }
                    break;
                }
                j += 1;
            }
            i += 4;
        } else {
            i += 1;
        }
    }
    out
}

/// Integer literals used as `N =>` match arms inside `fn fname`.
fn decode_arm_tags(f: &SourceFile, fname: &str) -> Vec<u64> {
    let Some((a, b)) = fn_span(f, fname) else {
        return Vec::new();
    };
    let toks = &f.toks;
    let mut out = Vec::new();
    for i in a..b.saturating_sub(1) {
        if toks[i].kind == TokKind::Num
            && toks[i + 1].is_punct('=')
            && toks.get(i + 2).is_some_and(|t| t.is_punct('>'))
        {
            if let Ok(n) = toks[i].text.parse::<u64>() {
                out.push(n);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ws_of(files: Vec<(&str, &str)>) -> Workspace {
        Workspace::from_files(
            std::path::PathBuf::new(),
            files
                .into_iter()
                .map(|(p, t)| SourceFile::new(p.into(), t.into()))
                .collect(),
        )
    }

    const RECORD_OK: &str = "pub enum RedoPayload { Insert { pk: i64 }, Delete { pk: i64 } }\n\
        impl RedoPayload { pub fn kind_tag(&self) -> u8 { match self {\n\
        RedoPayload::Insert { .. } => 1, RedoPayload::Delete { .. } => 3 } } }\n\
        pub fn encode(p: &RedoPayload) { match p { RedoPayload::Insert { .. } => {}\n\
        RedoPayload::Delete { .. } => {} } }\n\
        pub fn decode(tag: u8) { match tag { 1 => (), 3 => (), _ => () } }\n";

    #[test]
    fn complete_coverage_is_clean() {
        let ws = ws_of(vec![
            ("crates/wal/src/record.rs", RECORD_OK),
            (
                "crates/rowstore/src/apply.rs",
                "fn apply(p: RedoPayload) { match p { RedoPayload::Insert { .. } => (),\n\
                 RedoPayload::Delete { .. } => () } }",
            ),
        ]);
        assert!(WireTagCoverage.check(&ws).is_empty());
    }

    #[test]
    fn missing_decode_arm_and_handler_are_found() {
        let record = RECORD_OK.replace(
            "match tag { 1 => (), 3 => (), _ => () }",
            "match tag { 1 => (), _ => () }",
        );
        let ws = ws_of(vec![
            ("crates/wal/src/record.rs", &record),
            (
                "crates/rowstore/src/apply.rs",
                "fn apply(p: RedoPayload) { match p { RedoPayload::Insert { .. } => (), _ => () } }",
            ),
        ]);
        let found = WireTagCoverage.check(&ws);
        assert!(
            found.iter().any(|f| f.msg.contains("no decode arm")),
            "{found:?}"
        );
        assert!(
            found.iter().any(|f| f.msg.contains("no replay handler")),
            "{found:?}"
        );
    }
}
