//! L005 — every `unsafe` block carries a `// SAFETY:` comment.
//!
//! Bug class: the workspace's unsafe surface is tiny (the epoll shim's
//! raw syscalls) and must stay auditable. An unsafe block whose
//! invariants are not written down is one refactor away from being an
//! unsafe block whose invariants no longer hold — the comment is the
//! contract the next editor checks against.
//!
//! The comment may sit on the line(s) directly above the block or at
//! the end of the opening line itself. `unsafe fn` / `unsafe impl`
//! declarations are signatures, not blocks, and are out of scope.

use super::Rule;
use crate::{Finding, SourceFile, Workspace};

pub struct SafetyComments;

impl Rule for SafetyComments {
    fn id(&self) -> &'static str {
        "L005"
    }

    fn summary(&self) -> &'static str {
        "every unsafe block carries a // SAFETY: comment"
    }

    fn check(&self, ws: &Workspace) -> Vec<Finding> {
        let mut out = Vec::new();
        for f in &ws.files {
            let toks = &f.toks;
            for i in 0..toks.len() {
                if !toks[i].is_ident("unsafe") {
                    continue;
                }
                // Only blocks: `unsafe {`.
                if !f.next_code(i + 1).is_some_and(|j| toks[j].is_punct('{')) {
                    continue;
                }
                let line = toks[i].line;
                if !has_safety_comment(f, line) {
                    out.push(
                        f.finding(
                            "L005",
                            line,
                            "unsafe block without a // SAFETY: comment — write down the \
                         invariants that make it sound"
                                .to_string(),
                        ),
                    );
                }
            }
        }
        out
    }
}

/// Is there a `SAFETY:` comment on `line` or in the contiguous run of
/// comment/attribute/blank lines directly above it?
fn has_safety_comment(f: &SourceFile, line: u32) -> bool {
    if f.line_text(line).contains("SAFETY:") {
        return true;
    }
    let mut l = line;
    while l > 1 {
        l -= 1;
        let text = f.line_text(l);
        if text.contains("SAFETY:") {
            return true;
        }
        // Keep scanning only through the comment block above.
        if !(text.is_empty() || text.starts_with("//") || text.starts_with('#')) {
            return false;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_undocumented_blocks_only() {
        let ws = Workspace::from_files(
            std::path::PathBuf::new(),
            vec![SourceFile::new(
                "crates/x/src/a.rs".into(),
                "fn ok() {\n    // SAFETY: fd is open for our lifetime.\n    unsafe { go() }\n}\n\
                 fn inline_ok() {\n    let x = unsafe { go() }; // SAFETY: ditto\n}\n\
                 fn bad() {\n    let y = compute();\n    unsafe { go() }\n}\n\
                 unsafe impl Send for T {}\n"
                    .into(),
            )],
        );
        let found = SafetyComments.check(&ws);
        assert_eq!(found.len(), 1, "{found:?}");
        assert_eq!(found[0].line, 10);
    }
}
