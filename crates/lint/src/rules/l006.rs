//! L006 — no blocking calls from reactor-thread contexts.
//!
//! Bug class: the reactor thread multiplexes every connection; one
//! blocking call (sleep, condvar wait, thread join, file IO, connect)
//! stalls all of them and shows up as a cross-tenant p99 cliff that no
//! unit test catches. The admission/overload PR documents the
//! contract: reactor code may only block in the poller itself.
//!
//! Scope is a module map, not a whole crate: `reactor.rs` (minus the
//! dedicated `acceptor_loop`/`worker_loop` thread bodies, which own
//! their threads and may block), plus `conn.rs`, `buf.rs`, `timer.rs`.
//! Short critical sections under `parking_lot` locks are *not* denied
//! here — lock discipline is the dynamic sentinel's job (the
//! `lock-order` feature); this rule is about unbounded waits.

use super::Rule;
use crate::{Finding, SourceFile, Workspace};

/// Files whose code runs on the reactor thread. Shared with L009,
/// whose roots are exactly the non-test fns of these modules.
pub(crate) const REACTOR_MODULES: &[&str] = &[
    "crates/net/src/reactor.rs",
    "crates/net/src/conn.rs",
    "crates/net/src/buf.rs",
    "crates/net/src/timer.rs",
];

/// Functions inside those files that own a dedicated thread and are
/// therefore allowed to block. Shared with L009 (they are not roots).
pub(crate) const DEDICATED_THREAD_FNS: &[&str] = &["acceptor_loop", "worker_loop"];

/// Method names that block unboundedly when called as `.name(...)`.
const BLOCKING_METHODS: &[&str] = &[
    "wait",
    "wait_for",
    "wait_timeout",
    "wait_while",
    "recv",
    "recv_timeout",
    "read_to_end",
    "read_to_string",
];

pub struct NoBlockingOnReactor;

impl Rule for NoBlockingOnReactor {
    fn id(&self) -> &'static str {
        "L006"
    }

    fn summary(&self) -> &'static str {
        "no blocking calls (sleep/wait/join/fs/connect) in reactor-thread modules"
    }

    fn check(&self, ws: &Workspace) -> Vec<Finding> {
        let mut out = Vec::new();
        for f in &ws.files {
            if !REACTOR_MODULES.iter().any(|m| f.rel_path.ends_with(m)) {
                continue;
            }
            for i in 0..f.toks.len() {
                let Some(what) = blocking_call_at(f, i) else {
                    continue;
                };
                let line = f.toks[i].line;
                if f.in_test(line) {
                    continue;
                }
                if f.enclosing_fn(i)
                    .is_some_and(|name| DEDICATED_THREAD_FNS.contains(&name))
                {
                    continue;
                }
                out.push(f.finding(
                    "L006",
                    line,
                    format!(
                        "{what} blocks the reactor thread and stalls every connection \
                         multiplexed onto it"
                    ),
                ));
            }
        }
        out
    }
}

/// If token `i` starts a blocking construct, say which. Shared with
/// the call-graph pass ([`crate::graph`]) so L009's notion of a
/// blocking sink stays in exact parity with L006's.
pub(crate) fn blocking_call_at(f: &SourceFile, i: usize) -> Option<String> {
    let toks = &f.toks;
    let t = &toks[i];
    let prev_dot = || {
        f.prev_code(i.wrapping_sub(1))
            .is_some_and(|j| toks[j].is_punct('.'))
    };
    let prev_path = || i >= 2 && toks[i - 1].is_punct(':') && toks[i - 2].is_punct(':');
    let called = || f.next_code(i + 1).is_some_and(|j| toks[j].is_punct('('));

    if super::is_thread_sleep_call(f, i) {
        return Some("thread::sleep".to_string());
    }
    if t.is_ident("join") && prev_dot() && called() {
        // `.join()` with no argument is a thread join; `join(sep)` on
        // slices takes one.
        let open = f.next_code(i + 1)?;
        if f.next_code(open + 1).is_some_and(|j| toks[j].is_punct(')')) {
            return Some(".join() (thread join)".to_string());
        }
    }
    if t.kind == crate::lexer::TokKind::Ident
        && BLOCKING_METHODS.contains(&t.text.as_str())
        && prev_dot()
        && called()
    {
        return Some(format!(".{}(...)", t.text));
    }
    if t.is_ident("fs") && f.next_code(i + 1).is_some_and(|j| toks[j].is_punct(':')) {
        return Some("std::fs file IO".to_string());
    }
    if t.is_ident("File") && f.next_code(i + 1).is_some_and(|j| toks[j].is_punct(':')) {
        return Some("File IO".to_string());
    }
    if t.is_ident("connect") && prev_path() && called() {
        return Some("::connect(...)".to_string());
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reactor_module_map_and_thread_fn_exemption() {
        let ws = Workspace::from_files(
            std::path::PathBuf::new(),
            vec![
                SourceFile::new(
                    "crates/net/src/reactor.rs".into(),
                    "fn reactor_loop() { cv.wait(g); h.join(); parts.join(\",\"); }\n\
                     fn acceptor_loop() { std::thread::sleep(d); }\n\
                     fn worker_loop() { rx.recv(); }\n"
                        .into(),
                ),
                SourceFile::new(
                    "crates/net/src/conn.rs".into(),
                    "fn flush() { std::fs::write(p, b); }".into(),
                ),
                SourceFile::new(
                    "crates/server/src/server.rs".into(),
                    "fn main_loop() { cv.wait(g); }".into(),
                ),
            ],
        );
        let found = NoBlockingOnReactor.check(&ws);
        // reactor_loop: wait + zero-arg join (the `join(",")` is not a
        // thread join); conn.rs: fs. Dedicated thread fns are exempt,
        // server.rs is out of scope.
        assert_eq!(found.len(), 3, "{found:?}");
        assert!(found.iter().all(|f| !f.path.contains("server")));
    }
}
