//! L004 — no `unwrap()`/`expect()` on reactor-reachable paths.
//!
//! Bug class: a panic on a reactor or worker thread takes down every
//! connection multiplexed onto it, and (since the server holds locks
//! across request handling) can poison state for the rest. `crates/net`
//! and `crates/server` are the blast radius: everything there runs
//! under connections. Fallible paths must return `Error`, which the
//! wire maps to a client-visible failure instead of a dead server.
//!
//! Test code is exempt. Provably-infallible uses (e.g. writes into a
//! `Vec`) can be allowlisted with the proof as the reason.

use super::Rule;
use crate::{Finding, Workspace};

/// Crates whose non-test code is reactor-reachable.
const SCOPED: &[&str] = &["crates/net/", "crates/server/"];

pub struct NoPanicOnReactorPaths;

impl Rule for NoPanicOnReactorPaths {
    fn id(&self) -> &'static str {
        "L004"
    }

    fn summary(&self) -> &'static str {
        "no unwrap()/expect() in crates/net and crates/server"
    }

    fn check(&self, ws: &Workspace) -> Vec<Finding> {
        let mut out = Vec::new();
        for f in &ws.files {
            if !SCOPED.iter().any(|p| f.rel_path.starts_with(p)) {
                continue;
            }
            let toks = &f.toks;
            for i in 0..toks.len() {
                let name = &toks[i];
                if !(name.is_ident("unwrap") || name.is_ident("expect")) {
                    continue;
                }
                // A method call: `.unwrap(` / `.expect(`.
                let dotted = f
                    .prev_code(i.wrapping_sub(1))
                    .is_some_and(|j| toks[j].is_punct('.'));
                let called = f.next_code(i + 1).is_some_and(|j| toks[j].is_punct('('));
                if !(dotted && called) || f.in_test(name.line) {
                    continue;
                }
                out.push(f.finding(
                    "L004",
                    name.line,
                    format!(
                        ".{}() can panic a reactor/worker thread and drop every connection \
                         on it — return an Error instead",
                        name.text
                    ),
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SourceFile;

    #[test]
    fn scoped_to_net_and_server_non_test_code() {
        let ws = Workspace::from_files(
            std::path::PathBuf::new(),
            vec![
                SourceFile::new(
                    "crates/net/src/a.rs".into(),
                    "fn f() { x.unwrap(); }\n#[cfg(test)]\nmod t { fn g() { x.unwrap(); } }\n"
                        .into(),
                ),
                SourceFile::new(
                    "crates/server/src/b.rs".into(),
                    "fn f() { x.expect(\"m\"); let unwrap = 1; }".into(),
                ),
                SourceFile::new(
                    "crates/colstore/src/c.rs".into(),
                    "fn f() { x.unwrap(); }".into(),
                ),
            ],
        );
        let found = NoPanicOnReactorPaths.check(&ws);
        assert_eq!(found.len(), 2, "{found:?}");
        assert!(found.iter().all(|f| !f.path.contains("colstore")));
    }
}
