//! L003 — no `thread::sleep` inside a loop.
//!
//! Bug class: sleep-in-a-loop is a spin-wait with extra steps. The
//! epoll-reactor PR exists precisely because polling loops burned CPU
//! and added tail latency; this rule stops the pattern from creeping
//! back in under a new name. Waiting belongs on a timer wheel, a
//! condvar, or the poller — not on a duty cycle.
//!
//! Test code, bench drivers (`crates/bench/src/bin/`, `benches/`) and
//! `examples/` are exempt — measurement harnesses pace load with sleep
//! by design. Deliberate bounded backoff in product code can be
//! allowlisted with a reason.

use super::{is_thread_sleep_call, loop_bodies, Rule};
use crate::{Finding, Workspace};

/// Paths where pacing loops are the point, not a regression.
const EXEMPT_PREFIXES: &[&str] = &["crates/bench/src/bin/", "examples/"];
const EXEMPT_COMPONENTS: &[&str] = &["benches"];

pub struct SleepInLoop;

impl Rule for SleepInLoop {
    fn id(&self) -> &'static str {
        "L003"
    }

    fn summary(&self) -> &'static str {
        "no thread::sleep inside a loop (spin-wait guard)"
    }

    fn check(&self, ws: &Workspace) -> Vec<Finding> {
        let mut out = Vec::new();
        for f in &ws.files {
            if EXEMPT_PREFIXES.iter().any(|p| f.rel_path.starts_with(p))
                || f.rel_path
                    .split('/')
                    .any(|c| EXEMPT_COMPONENTS.contains(&c))
            {
                continue;
            }
            let bodies = loop_bodies(f);
            if bodies.is_empty() {
                continue;
            }
            for i in 0..f.toks.len() {
                if !is_thread_sleep_call(f, i) {
                    continue;
                }
                let line = f.toks[i].line;
                if f.in_test(line) {
                    continue;
                }
                if bodies.iter().any(|&(a, b)| a <= i && i <= b) {
                    out.push(
                        f.finding(
                            "L003",
                            line,
                            "thread::sleep inside a loop is a spin-wait — use the timer wheel, \
                         a condvar, or the poller timeout"
                                .to_string(),
                        ),
                    );
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SourceFile;

    #[test]
    fn sleep_in_loop_fires_but_not_elsewhere() {
        let ws = Workspace::from_files(
            std::path::PathBuf::new(),
            vec![
                SourceFile::new(
                    "crates/x/src/a.rs".into(),
                    "fn poll() { loop { std::thread::sleep(d); } }\n\
                 fn pause() { std::thread::sleep(d); }\n\
                 #[cfg(test)]\nmod tests { fn t() { loop { std::thread::sleep(d); } } }\n"
                        .into(),
                ),
                SourceFile::new(
                    "crates/bench/src/bin/driver.rs".into(),
                    "fn pace() { loop { std::thread::sleep(d); } }".into(),
                ),
            ],
        );
        let found = SleepInLoop.check(&ws);
        assert_eq!(found.len(), 1, "{found:?}");
        assert_eq!(found[0].line, 1);
    }
}
