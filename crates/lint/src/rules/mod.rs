//! The rule catalogue. Each rule guards one project invariant that the
//! compiler cannot: see the per-module docs for the bug class each one
//! exists to stop (most were near-misses in earlier PRs).

pub mod l001;
pub mod l002;
pub mod l003;
pub mod l004;
pub mod l005;
pub mod l006;
pub mod l007;
pub mod l008;
pub mod l009;
pub mod l010;
pub mod l011;

use crate::lexer::TokKind;
use crate::{Finding, SourceFile, Workspace};

/// One invariant check.
pub trait Rule {
    /// Stable id, `"L001"`..`"L011"` — what allowlist entries key on.
    fn id(&self) -> &'static str;
    /// One-line description for `--list`.
    fn summary(&self) -> &'static str;
    fn check(&self, ws: &Workspace) -> Vec<Finding>;
}

/// Every rule, in id order.
pub fn all() -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(l001::WireTagCoverage),
        Box::new(l002::ErrorKindCoverage),
        Box::new(l003::SleepInLoop),
        Box::new(l004::NoPanicOnReactorPaths),
        Box::new(l005::SafetyComments),
        Box::new(l006::NoBlockingOnReactor),
        Box::new(l007::BenchMetricsGated),
        Box::new(l008::NoPanicReachable),
        Box::new(l009::NoBlockingReachableFromReactor),
        Box::new(l010::NoDiscardedFencingResults),
        Box::new(l011::NoGuardAcrossBlocking),
    ]
}

// ---- shared structural helpers ----

/// A parsed enum variant.
pub struct Variant {
    pub name: String,
    pub line: u32,
    /// Token index of the name, for span queries.
    pub tok: usize,
    /// Carries a `///` doc comment.
    pub documented: bool,
}

/// Variants of `enum name { ... }` in `f`, if the enum exists.
pub fn enum_variants(f: &SourceFile, name: &str) -> Option<Vec<Variant>> {
    let toks = &f.toks;
    let mut decl = None;
    for i in 0..toks.len() {
        if toks[i].is_ident("enum") && f.next_code(i + 1).is_some_and(|j| toks[j].is_ident(name)) {
            decl = Some(i);
            break;
        }
    }
    let decl = decl?;
    let open = (decl..toks.len()).find(|&i| toks[i].is_punct('{'))?;
    let close = crate::match_brace(toks, open)?;

    let mut out = Vec::new();
    let mut depth = 0i32;
    let mut i = open + 1;
    while i < close {
        let t = &toks[i];
        if t.is_punct('{') || t.is_punct('(') || t.is_punct('[') {
            depth += 1;
        } else if t.is_punct('}') || t.is_punct(')') || t.is_punct(']') {
            depth -= 1;
        } else if depth == 0 && t.kind == TokKind::Ident {
            // A variant name sits at body depth 0 right after the open
            // brace, a comma, or an attribute's closing `]`.
            let starts_variant = f
                .prev_code(i.saturating_sub(1))
                .map(|p| p < open + 1 || toks[p].is_punct(',') || toks[p].is_punct(']'))
                .unwrap_or(true)
                || i == open + 1;
            if starts_variant {
                // Doc'd iff a `///` comment sits among the tokens
                // immediately above (between it and the previous code).
                let mut j = i;
                let mut documented = false;
                while j > open {
                    j -= 1;
                    let p = &toks[j];
                    if p.is_comment() {
                        if p.kind == TokKind::LineComment && p.text.starts_with("///") {
                            documented = true;
                        }
                        continue;
                    }
                    if p.is_punct(']') || p.is_punct('[') || p.is_punct('#') {
                        continue; // attribute — keep scanning upward
                    }
                    break;
                }
                out.push(Variant {
                    name: t.text.clone(),
                    line: t.line,
                    tok: i,
                    documented,
                });
            }
        }
        i += 1;
    }
    Some(out)
}

/// Token-index span (start..=end) of `fn name`, if present.
pub fn fn_span(f: &SourceFile, name: &str) -> Option<(usize, usize)> {
    f.fns
        .iter()
        .find(|s| s.name == name)
        .map(|s| (s.start, s.end))
}

/// Does `Enum::Variant` appear anywhere in the token range?
pub fn mentions_variant(f: &SourceFile, range: (usize, usize), enum_name: &str, var: &str) -> bool {
    let (a, b) = range;
    let toks = &f.toks;
    (a..=b.min(toks.len().saturating_sub(1))).any(|i| {
        toks[i].is_ident(enum_name)
            && toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
            && toks.get(i + 2).is_some_and(|t| t.is_punct(':'))
            && toks.get(i + 3).is_some_and(|t| t.is_ident(var))
    })
}

/// Token-index spans of every `loop`/`while`/`for` body in `f`.
pub fn loop_bodies(f: &SourceFile) -> Vec<(usize, usize)> {
    let toks = &f.toks;
    let mut out = Vec::new();
    for i in 0..toks.len() {
        let kw = toks[i].is_ident("loop") || toks[i].is_ident("while") || toks[i].is_ident("for");
        if !kw {
            continue;
        }
        // `for<'a> Fn(..)` in bounds is not a loop.
        if toks[i].is_ident("for") && f.next_code(i + 1).is_some_and(|j| toks[j].is_punct('<')) {
            continue;
        }
        // The body is the first `{` past the header, at bracket depth 0.
        let mut depth = 0i32;
        let mut j = i + 1;
        let open = loop {
            let Some(t) = toks.get(j) else { break None };
            if t.is_punct('(') || t.is_punct('[') {
                depth += 1;
            } else if t.is_punct(')') || t.is_punct(']') {
                depth -= 1;
            } else if t.is_punct('{') && depth == 0 {
                break Some(j);
            } else if t.is_punct(';') && depth == 0 {
                break None; // malformed / not actually a loop header
            }
            j += 1;
        };
        if let Some(open) = open {
            if let Some(close) = crate::match_brace(toks, open) {
                out.push((open, close));
            }
        }
    }
    out
}

/// Is `thread::sleep(`/`std::thread::sleep(` being called at ident
/// token `i` (which must be `sleep`)?
pub fn is_thread_sleep_call(f: &SourceFile, i: usize) -> bool {
    let toks = &f.toks;
    if !toks[i].is_ident("sleep") {
        return false;
    }
    let called = f.next_code(i + 1).is_some_and(|j| toks[j].is_punct('('));
    let pathed = i >= 3
        && toks[i - 1].is_punct(':')
        && toks[i - 2].is_punct(':')
        && toks[i - 3].is_ident("thread");
    called && pathed
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enum_variants_parse_fields_and_docs() {
        let f = SourceFile::new(
            "x.rs".into(),
            "/// E.\npub enum E {\n    /// documented\n    A { x: Vec<(i64, u8)> },\n    \
             B(i64),\n    #[allow(dead_code)]\n    /// also documented\n    C,\n}\n"
                .into(),
        );
        let vars = enum_variants(&f, "E").unwrap();
        let names: Vec<&str> = vars.iter().map(|v| v.name.as_str()).collect();
        assert_eq!(names, ["A", "B", "C"]);
        assert!(vars[0].documented);
        assert!(!vars[1].documented);
        assert!(vars[2].documented);
    }

    #[test]
    fn loop_bodies_cover_all_three_forms() {
        let f = SourceFile::new(
            "x.rs".into(),
            "fn f() {\n  before();\n  loop { a(); }\n  while x < (y) { b(); }\n  \
             for i in 0..n { c(); }\n  after();\n}\n"
                .into(),
        );
        let bodies = loop_bodies(&f);
        assert_eq!(bodies.len(), 3);
        let inside = |name: &str| {
            let i = f.toks.iter().position(|t| t.is_ident(name)).unwrap();
            bodies.iter().any(|&(a, b)| a <= i && i <= b)
        };
        assert!(inside("a") && inside("b") && inside("c"));
        assert!(!inside("before") && !inside("after"));
    }

    #[test]
    fn sleep_detection_requires_thread_path() {
        let f = SourceFile::new(
            "x.rs".into(),
            "fn f() { std::thread::sleep(d); conn.sleep(); sleep(d); }".into(),
        );
        let hits: Vec<usize> = (0..f.toks.len())
            .filter(|&i| is_thread_sleep_call(&f, i))
            .collect();
        assert_eq!(hits.len(), 1);
    }
}
