//! L009 — no blocking sink reachable, in the call graph, from
//! reactor-thread fns.
//!
//! Supersedes L006's scope in the only way that matters: L006 looks at
//! the reactor *modules*; a blocking helper the reactor calls in
//! `imci_common` or `imci_rowstore` is invisible to it. L009 roots at
//! the same module map — every non-test fn in
//! [`super::l006::REACTOR_MODULES`] minus the dedicated thread bodies
//! in [`super::l006::DEDICATED_THREAD_FNS`] — and follows resolved
//! edges anywhere. The *sink* definition is literally L006's
//! [`super::l006::blocking_call_at`], so the two rules can never
//! disagree about what blocking means, and every L006 finding is an
//! L009 finding (a root reaches its own body).

use std::collections::BTreeSet;

use super::{l006, Rule};
use crate::{Finding, Workspace};

pub struct NoBlockingReachableFromReactor;

impl Rule for NoBlockingReachableFromReactor {
    fn id(&self) -> &'static str {
        "L009"
    }

    fn summary(&self) -> &'static str {
        "no blocking sink reachable in the call graph from reactor-thread fns"
    }

    fn check(&self, ws: &Workspace) -> Vec<Finding> {
        let a = ws.analysis();
        let roots: Vec<usize> = (0..a.idx.fns.len())
            .filter(|&i| {
                let d = &a.idx.fns[i];
                !d.is_test
                    && !l006::DEDICATED_THREAD_FNS.contains(&d.name.as_str())
                    && l006::REACTOR_MODULES
                        .iter()
                        .any(|m| ws.files[d.file].rel_path.ends_with(m))
            })
            .collect();
        let pred = a.forward_reach(&roots);
        let mut seen = BTreeSet::new();
        let mut out = Vec::new();
        for fid in 0..a.idx.fns.len() {
            if !pred.contains_key(&fid) {
                continue;
            }
            let d = &a.idx.fns[fid];
            let f = &ws.files[d.file];
            for site in &a.facts[fid].blocks {
                if !seen.insert((d.file, site.line)) {
                    continue;
                }
                let chain = a.chain_to(&pred, fid);
                let via = if chain.len() == 1 {
                    format!("in reactor-thread fn `{}`", chain[0])
                } else {
                    format!("via {}", chain.join(" -> "))
                };
                out.push(f.finding(
                    "L009",
                    site.line,
                    format!(
                        "{} blocks the reactor thread ({}) — every connection multiplexed \
                         onto it stalls",
                        site.what, via
                    ),
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SourceFile;

    fn ws(files: Vec<(&str, &str)>) -> Workspace {
        Workspace::from_files(
            std::path::PathBuf::new(),
            files
                .into_iter()
                .map(|(p, s)| SourceFile::new(p.into(), s.into()))
                .collect(),
        )
    }

    #[test]
    fn reaches_blocking_helpers_across_crates() {
        let w = ws(vec![
            ("crates/net/src/timer.rs", "pub fn on_tick() { spill(); }\n"),
            (
                "crates/rowstore/src/spill.rs",
                "pub fn spill() { std::fs::write(p, b); }\n\
                 pub fn unrelated() { std::thread::sleep(d); }\n",
            ),
        ]);
        let found = NoBlockingReachableFromReactor.check(&w);
        assert_eq!(found.len(), 1, "{found:?}");
        assert!(found[0].path.ends_with("spill.rs"));
        assert!(
            found[0].msg.contains("on_tick -> spill"),
            "{}",
            found[0].msg
        );
    }

    #[test]
    fn dedicated_thread_fns_are_not_roots_but_l006_sites_are_kept() {
        let w = ws(vec![(
            "crates/net/src/reactor.rs",
            "pub fn reactor_loop() { poller.wait_timeout(e, t); }\n\
             pub fn acceptor_loop() { listener_accept(); }\n\
             fn listener_accept() { std::thread::sleep(d); }\n",
        )]);
        let found = NoBlockingReachableFromReactor.check(&w);
        // reactor_loop's own wait fires; acceptor_loop owns its thread,
        // and listener_accept is only reachable from it... but
        // listener_accept is itself a non-test fn in a reactor module,
        // hence a root — exactly L006's behavior for helpers defined in
        // these files.
        let sites: Vec<&str> = found.iter().map(|f| f.src_line.as_str()).collect();
        assert_eq!(found.len(), 2, "{found:?}");
        assert!(sites.iter().any(|s| s.contains("wait_timeout")));
        assert!(sites.iter().any(|s| s.contains("sleep")));
    }

    #[test]
    fn l006_sites_are_always_l009_sites() {
        let w = ws(vec![(
            "crates/net/src/conn.rs",
            "pub fn drain(cv: &C, g: G) { let _g = cv.wait(g); }\n",
        )]);
        let l6 = l006::NoBlockingOnReactor.check(&w);
        let l9 = NoBlockingReachableFromReactor.check(&w);
        let sites9: Vec<(String, u32)> = l9.iter().map(|f| (f.path.clone(), f.line)).collect();
        assert!(!l6.is_empty());
        for f in &l6 {
            assert!(sites9.contains(&(f.path.clone(), f.line)), "{f}");
        }
    }
}
