//! L008 — no panic site reachable, in the call graph, from
//! reactor/worker code.
//!
//! Supersedes L004's file-scoped check: L004 sees an `.unwrap()` only
//! when it sits *inside* `crates/net` or `crates/server`; a helper one
//! call away in `imci_common` is invisible to it, yet panics the same
//! reactor thread and drops the same connections. L008 roots the
//! search at every non-test fn in those crates and walks resolved
//! call edges anywhere in the workspace. Every L004 site is an L008
//! site (a fn reaches its own body), so this rule strictly contains
//! the syntactic one; L004 stays in the catalogue as the zero-setup
//! fallback that still works when resolution fails.
//!
//! `spawn(...)` arguments are a thread boundary (the closure's panics
//! belong to the thread that runs it, whose entry fn is itself a
//! root if it lives in these crates), and `catch_unwind(...)` stops
//! propagation; neither contributes sites or edges.

use std::collections::BTreeSet;

use super::Rule;
use crate::{Finding, Workspace};

/// Crates whose non-test fns are reactor/worker-reachable roots.
const ROOT_CRATES: &[&str] = &["crates/net/", "crates/server/"];

pub struct NoPanicReachable;

impl Rule for NoPanicReachable {
    fn id(&self) -> &'static str {
        "L008"
    }

    fn summary(&self) -> &'static str {
        "no unwrap/expect/panic!/unreachable! reachable in the call graph from crates/net + crates/server"
    }

    fn check(&self, ws: &Workspace) -> Vec<Finding> {
        let a = ws.analysis();
        let roots: Vec<usize> = (0..a.idx.fns.len())
            .filter(|&i| {
                let d = &a.idx.fns[i];
                !d.is_test
                    && ROOT_CRATES
                        .iter()
                        .any(|p| ws.files[d.file].rel_path.starts_with(p))
            })
            .collect();
        let pred = a.forward_reach(&roots);
        let mut seen = BTreeSet::new();
        let mut out = Vec::new();
        for fid in 0..a.idx.fns.len() {
            if !pred.contains_key(&fid) {
                continue;
            }
            let d = &a.idx.fns[fid];
            let f = &ws.files[d.file];
            for site in &a.facts[fid].panics {
                if !seen.insert((d.file, site.line)) {
                    continue;
                }
                let chain = a.chain_to(&pred, fid);
                let via = if chain.len() == 1 {
                    format!("in reactor/worker-scoped fn `{}`", chain[0])
                } else {
                    format!("via {}", chain.join(" -> "))
                };
                out.push(f.finding(
                    "L008",
                    site.line,
                    format!(
                        "{} can panic a reactor/worker thread ({}) — return an Error instead",
                        site.what, via
                    ),
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SourceFile;

    fn ws(files: Vec<(&str, &str)>) -> Workspace {
        Workspace::from_files(
            std::path::PathBuf::new(),
            files
                .into_iter()
                .map(|(p, s)| SourceFile::new(p.into(), s.into()))
                .collect(),
        )
    }

    #[test]
    fn flags_cross_crate_panics_but_not_unreachable_ones() {
        let w = ws(vec![
            (
                "crates/net/src/handler.rs",
                "pub fn on_frame(b: &[u8]) { decode(b); }\n",
            ),
            (
                "crates/common/src/codec.rs",
                "pub fn decode(b: &[u8]) -> u64 { u64_of(b).unwrap() }\n\
                 pub fn island() { x.unwrap(); }\n",
            ),
        ]);
        let found = NoPanicReachable.check(&w);
        assert_eq!(found.len(), 1, "{found:?}");
        assert!(found[0].path.ends_with("codec.rs"));
        assert!(
            found[0].msg.contains("on_frame -> decode"),
            "{}",
            found[0].msg
        );
    }

    #[test]
    fn own_body_sites_and_panic_macros_count_spawn_does_not() {
        let w = ws(vec![(
            "crates/server/src/s.rs",
            "pub fn handle() { match x { _ => unreachable!(\"tag\") } }\n\
             pub fn start() { thread::spawn(|| v.unwrap()); }\n",
        )]);
        let found = NoPanicReachable.check(&w);
        assert_eq!(found.len(), 1, "{found:?}");
        assert!(found[0].msg.contains("unreachable!"));
        assert!(found[0].msg.contains("`handle`"));
    }

    #[test]
    fn l004_sites_are_always_l008_sites() {
        // The containment the selftest pins on the seeded fixtures,
        // checked here on a synthetic workspace too.
        let w = ws(vec![(
            "crates/net/src/a.rs",
            "pub fn f() { x.unwrap(); }\npub fn g() { y.expect(\"m\"); }\n",
        )]);
        let l004 = super::super::l004::NoPanicOnReactorPaths.check(&w);
        let l008 = NoPanicReachable.check(&w);
        let sites8: Vec<(String, u32)> = l008.iter().map(|f| (f.path.clone(), f.line)).collect();
        for f in &l004 {
            assert!(sites8.contains(&(f.path.clone(), f.line)), "{f}");
        }
    }
}
