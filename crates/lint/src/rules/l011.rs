//! L011 — no lock guard live across a call that reaches a blocking
//! sink.
//!
//! The static complement to PR 7's dynamic lock-order sentinel: the
//! sentinel catches inversions on paths tests *execute*; this rule
//! catches the other shape of lock trouble — a guard held while the
//! thread parks (sleep, condvar wait, channel recv, file IO, thread
//! join) — on every path, including the ones no test drives. Holding
//! a `parking_lot` shim guard across a park means every other thread
//! needing that lock waits out the park too; under the reactor it
//! turns one slow fd into a server-wide stall, in failover it extends
//! the detection window the lease math assumes is bounded.
//!
//! Per fn: guard live ranges from [`crate::intra::guards`]; within a
//! range, flag (a) a direct blocking site, unless it is a
//! condvar-style `.wait*(...)` that *consumes* the guard (those
//! release the lock while parked — that is their point), or (b) a
//! resolved call whose callee reaches a blocking sink per the call
//! graph's `blocking_next`, witness chain included.
//!
//! Bench/workload/example code is exempt: drivers hold locks across
//! sleeps deliberately (pacing), and nothing multiplexes behind them.

use super::{l006, Rule};
use crate::resolve::Ctx;
use crate::{intra, Finding, Workspace};

/// Path prefixes/components whose code may park while holding locks.
const EXEMPT_PREFIXES: &[&str] = &["crates/bench/", "crates/workloads/", "examples/"];

pub struct NoGuardAcrossBlocking;

impl Rule for NoGuardAcrossBlocking {
    fn id(&self) -> &'static str {
        "L011"
    }

    fn summary(&self) -> &'static str {
        "no lock guard held across a call that (transitively) blocks"
    }

    fn check(&self, ws: &Workspace) -> Vec<Finding> {
        let a = ws.analysis();
        let mut out = Vec::new();
        for fid in 0..a.idx.fns.len() {
            let d = &a.idx.fns[fid];
            if d.is_test {
                continue;
            }
            let f = &ws.files[d.file];
            if EXEMPT_PREFIXES.iter().any(|p| f.rel_path.starts_with(p)) {
                continue;
            }
            let ctx = Ctx {
                file: d.file,
                crate_name: &d.crate_name,
                impl_type: d.impl_type.as_deref(),
                is_test: d.is_test,
            };
            let raw = crate::resolve::raw_calls(f, d.start, d.end);
            for g in intra::guards(f, d.start, d.end) {
                // The guard must be this fn's own binding, not a
                // nested fn's.
                let owner = f
                    .fns
                    .iter()
                    .filter(|s| s.start <= g.start && g.start <= s.end)
                    .min_by_key(|s| s.end - s.start);
                if owner.map(|s| s.start) != Some(d.start) {
                    continue;
                }
                for i in g.start..=g.end {
                    // (a) Direct blocking site under the guard.
                    if let Some(what) = l006::blocking_call_at(f, i) {
                        if consumes_guard(f, i, &g.name) {
                            continue; // condvar wait releases the lock
                        }
                        out.push(f.finding(
                            "L011",
                            f.toks[i].line,
                            format!(
                                "guard `{}` (.{}() at line {}) is held across {} — every \
                                 thread contending on that lock waits out the park",
                                g.name, g.acquire, g.line, what
                            ),
                        ));
                        continue;
                    }
                    // (b) A call whose callee transitively blocks.
                    let Some(call) = raw.iter().find(|c| c.tok == i) else {
                        continue;
                    };
                    let Some(callee) = a.idx.resolve(ws, call, &ctx) else {
                        continue;
                    };
                    if let Some((chain, sink)) = a.blocking_chain(callee) {
                        out.push(f.finding(
                            "L011",
                            call.line,
                            format!(
                                "guard `{}` (.{}() at line {}) is held across `{}`, which \
                                 reaches {} ({}) — every thread contending on that lock \
                                 waits out the park",
                                g.name,
                                g.acquire,
                                g.line,
                                call.name,
                                sink.what,
                                chain.join(" -> ")
                            ),
                        ));
                    }
                }
            }
        }
        out
    }
}

/// Does the blocking call at token `i` take `guard` as an argument
/// (condvar style: `cv.wait(guard)` / `cv.wait_while(&mut guard, ..)`)?
fn consumes_guard(f: &crate::SourceFile, i: usize, guard: &str) -> bool {
    let toks = &f.toks;
    let Some(open) = f.next_code(i + 1).filter(|&j| toks[j].is_punct('(')) else {
        return false;
    };
    let mut depth = 0i32;
    for (_, t) in toks.iter().enumerate().skip(open) {
        if t.is_punct('(') {
            depth += 1;
        } else if t.is_punct(')') {
            depth -= 1;
            if depth == 0 {
                return false;
            }
        } else if t.is_ident(guard) {
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SourceFile;

    fn ws(files: Vec<(&str, &str)>) -> Workspace {
        Workspace::from_files(
            std::path::PathBuf::new(),
            files
                .into_iter()
                .map(|(p, s)| SourceFile::new(p.into(), s.into()))
                .collect(),
        )
    }

    #[test]
    fn direct_block_under_guard_fires_after_drop_does_not() {
        let w = ws(vec![(
            "crates/server/src/s.rs",
            "pub fn bad(m: &Mutex<u8>) {\n  let g = m.lock();\n  \
             std::thread::sleep(d);\n}\n\
             pub fn good(m: &Mutex<u8>) {\n  let g = m.lock();\n  drop(g);\n  \
             std::thread::sleep(d);\n}\n\
             pub fn scoped(m: &Mutex<u8>) {\n  { let g = m.lock(); }\n  \
             std::thread::sleep(d);\n}\n",
        )]);
        let found = NoGuardAcrossBlocking.check(&w);
        assert_eq!(found.len(), 1, "{found:?}");
        assert_eq!(found[0].line, 3);
    }

    #[test]
    fn condvar_wait_consuming_the_guard_is_exempt() {
        let w = ws(vec![(
            "crates/server/src/s.rs",
            "pub fn park(m: &Mutex<bool>, cv: &Condvar) {\n  let mut g = m.lock();\n  \
             while !*g { g = cv.wait(g); }\n}\n\
             pub fn wrong(m: &Mutex<bool>, cv: &Condvar, other: G) {\n  \
             let g = m.lock();\n  cv.wait(other);\n}\n",
        )]);
        let found = NoGuardAcrossBlocking.check(&w);
        // Waiting *on* g releases it; waiting on some other guard while
        // holding g is the bug.
        assert_eq!(found.len(), 1, "{found:?}");
        assert!(found[0].msg.contains("guard `g`"));
        assert_eq!(found[0].line, 7);
    }

    #[test]
    fn transitive_block_through_resolved_call_fires_with_witness() {
        let w = ws(vec![
            (
                "crates/server/src/s.rs",
                "pub fn flush_all(m: &Mutex<u8>) {\n  let g = m.lock();\n  \
                 write_back(&g);\n}\n",
            ),
            (
                "crates/rowstore/src/spill.rs",
                "pub fn write_back(v: &u8) { deep(); }\npub fn deep() { \
                 std::fs::write(p, b); }\n",
            ),
        ]);
        let found = NoGuardAcrossBlocking.check(&w);
        assert_eq!(found.len(), 1, "{found:?}");
        assert_eq!(found[0].line, 3);
        assert!(
            found[0].msg.contains("write_back -> deep"),
            "{}",
            found[0].msg
        );
    }

    #[test]
    fn bench_drivers_are_exempt() {
        let w = ws(vec![(
            "crates/bench/src/bin/driver.rs",
            "pub fn pace(m: &Mutex<u8>) {\n  let g = m.lock();\n  \
             std::thread::sleep(d);\n}\n",
        )]);
        assert!(NoGuardAcrossBlocking.check(&w).is_empty());
    }
}
