//! L010 — no silently discarded `Result` on the durability/fencing
//! surface.
//!
//! Bug class: `let _ = log.append_fenced(e);` compiles, passes every
//! happy-path test, and means a fencing violation or a failed REDO
//! append is *invisible* — the exact failure mode PR 8's failover
//! machinery exists to surface. A dropped error here turns "the old
//! RO got fenced" into silent divergence.
//!
//! Two detectors, united by [`crate::intra::discards`]:
//! - **Resolved**: the discarded call resolves in the def index, the
//!   callee returns `Result`, and it lives on the durability surface —
//!   defined in `crates/wal` or `crates/polarfs`, or named like
//!   fencing/lease machinery (`fence`/`lease` in the name) anywhere.
//! - **Name-based fallback**: discarded `.send(...)` calls. Channel
//!   `send` returns `Result` whose `Err` means the receiver is gone;
//!   on replication/shutdown paths that is often *fine* — which is
//!   what reasoned `allow.toml` entries are for — but it must be a
//!   recorded decision, not an accident. (The channel shims are
//!   excluded from the def index, so these never resolve; without the
//!   fallback the rule would go blind exactly where it matters.)

use super::Rule;
use crate::resolve::Ctx;
use crate::{intra, Finding, Workspace};

/// Crates whose `Result`-returning fns are the durability surface.
const SURFACE_CRATES: &[&str] = &["wal", "polarfs"];

/// Name fragments that mark fencing/lease machinery in any crate.
const SURFACE_NAME_HINTS: &[&str] = &["fence", "lease"];

pub struct NoDiscardedFencingResults;

impl Rule for NoDiscardedFencingResults {
    fn id(&self) -> &'static str {
        "L010"
    }

    fn summary(&self) -> &'static str {
        "no discarded Result from wal/polarfs/fencing/lease calls (or channel sends)"
    }

    fn check(&self, ws: &Workspace) -> Vec<Finding> {
        let a = ws.analysis();
        let mut out = Vec::new();
        for fid in 0..a.idx.fns.len() {
            let d = &a.idx.fns[fid];
            if d.is_test {
                continue;
            }
            let f = &ws.files[d.file];
            let ctx = Ctx {
                file: d.file,
                crate_name: &d.crate_name,
                impl_type: d.impl_type.as_deref(),
                is_test: d.is_test,
            };
            let raw = crate::resolve::raw_calls(f, d.start, d.end);
            for disc in intra::discards(f, d.start, d.end) {
                // Own the site: the innermost fn span containing it
                // must be this one, not a nested fn's.
                let owner = f
                    .fns
                    .iter()
                    .filter(|s| s.start <= disc.tok && disc.tok <= s.end)
                    .min_by_key(|s| s.end - s.start);
                if owner.map(|s| s.start) != Some(d.start) {
                    continue;
                }
                let Some(call) = raw.iter().find(|c| c.tok == disc.tok) else {
                    continue; // inside a thread boundary, or not a call
                };
                if let Some(callee) = a.idx.resolve(ws, call, &ctx) {
                    let cd = &a.idx.fns[callee];
                    if !cd.returns_result {
                        continue;
                    }
                    let on_surface = SURFACE_CRATES.contains(&cd.crate_name.as_str())
                        || SURFACE_NAME_HINTS.iter().any(|h| cd.name.contains(h));
                    if on_surface {
                        out.push(f.finding(
                            "L010",
                            disc.line,
                            format!(
                                "discarded Result of `{}` ({}) — a dropped error on the \
                                 durability/fencing surface hides divergence; handle it or \
                                 allowlist with the reason",
                                a.fn_name(callee),
                                disc.how
                            ),
                        ));
                    }
                } else if call.name == "send"
                    && matches!(call.kind, crate::resolve::CallKind::Method { .. })
                {
                    out.push(f.finding(
                        "L010",
                        disc.line,
                        format!(
                            "discarded Result of channel `.send(...)` ({}) — a dead receiver \
                             here can silently drop an event; handle it or allowlist with the \
                             reason the drop is safe",
                            disc.how
                        ),
                    ));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SourceFile;

    fn ws(files: Vec<(&str, &str)>) -> Workspace {
        Workspace::from_files(
            std::path::PathBuf::new(),
            files
                .into_iter()
                .map(|(p, s)| SourceFile::new(p.into(), s.into()))
                .collect(),
        )
    }

    #[test]
    fn resolved_surface_discards_fire_handled_ones_do_not() {
        let w = ws(vec![
            (
                "crates/wal/src/writer.rs",
                "pub struct LogWriter;\nimpl LogWriter {\n  pub fn append(&mut self, e: u64) \
                 -> Result<u64, ()> { Ok(e) }\n  pub fn hint(&self) {}\n}\n",
            ),
            (
                "crates/server/src/s.rs",
                "pub fn bad(writer: &mut LogWriter) { let _ = writer.append(1); }\n\
                 pub fn good(writer: &mut LogWriter) -> Result<(), ()> {\n  \
                 writer.append(2)?;\n  Ok(())\n}\n\
                 pub fn unit(writer: &LogWriter) { writer.hint(); }\n",
            ),
        ]);
        let found = NoDiscardedFencingResults.check(&w);
        assert_eq!(found.len(), 1, "{found:?}");
        assert_eq!(found[0].line, 1);
        assert!(found[0].msg.contains("LogWriter::append"));
    }

    #[test]
    fn fencing_names_fire_anywhere_other_crates_do_not() {
        let w = ws(vec![
            (
                "crates/cluster/src/lease.rs",
                "pub fn stamp_lease(t: u64) -> Result<(), ()> { Ok(()) }\n\
                 pub fn tidy() -> Result<(), ()> { Ok(()) }\n",
            ),
            (
                "crates/server/src/s.rs",
                "pub fn promote() { let _ = stamp_lease(9); }\n\
                 pub fn sweep() { let _ = tidy(); }\n",
            ),
        ]);
        let found = NoDiscardedFencingResults.check(&w);
        // stamp_lease matches the name hint; tidy returns Result but is
        // neither wal/polarfs nor fencing-named.
        assert_eq!(found.len(), 1, "{found:?}");
        assert!(found[0].msg.contains("stamp_lease"));
    }

    #[test]
    fn unresolved_channel_sends_fire_in_statement_or_let_underscore() {
        let w = ws(vec![(
            "crates/replication/src/pipeline.rs",
            "pub fn publish(tx: &Sender<u8>) { let _ = tx.send(1); }\n\
             pub fn forward(tx: &Sender<u8>) -> Result<(), E> { tx.send(2)?; Ok(()) }\n",
        )]);
        let found = NoDiscardedFencingResults.check(&w);
        assert_eq!(found.len(), 1, "{found:?}");
        assert!(found[0].msg.contains(".send("));
        assert_eq!(found[0].line, 1);
    }
}
