//! L007 — every gated bench metric must exist in a committed baseline.
//!
//! Bug class: a bench binary emits a new `--json` metric, nobody adds
//! it to `crates/bench/baselines/`, and bench-check never gates it —
//! the regression pipeline silently has a hole. (The reverse hole,
//! baseline metrics the benches stopped emitting, is caught at run
//! time by `compare`'s missing-metric check.)
//!
//! A metric is *gated* when `imci_bench::report::direction_of` gives it
//! a direction (qps/per_s/speedup = higher-better; _ms/_us/_ns/
//! latency/_vd/rss/_kib/_mib = lower-better); anything else is
//! informational by that same contract and never needs a baseline.
//! Only string-literal metric names are statically checkable; names
//! built with `format!` are covered by the run-time check above.

use super::Rule;
use crate::lexer::{self, TokKind};
use crate::{Finding, Workspace};

pub struct BenchMetricsGated;

impl Rule for BenchMetricsGated {
    fn id(&self) -> &'static str {
        "L007"
    }

    fn summary(&self) -> &'static str {
        "every gated --json bench metric appears in a committed baseline"
    }

    fn check(&self, ws: &Workspace) -> Vec<Finding> {
        let mut out = Vec::new();
        let baseline_metrics = baseline_metric_names(ws);
        for f in &ws.files {
            if !f.rel_path.starts_with("crates/bench/") {
                continue;
            }
            let toks = &f.toks;
            for i in 0..toks.len() {
                // `.set(` with two string-literal arguments; the second
                // is the metric name.
                if !toks[i].is_ident("set") {
                    continue;
                }
                let dotted = f
                    .prev_code(i.wrapping_sub(1))
                    .is_some_and(|j| toks[j].is_punct('.'));
                if !dotted || f.in_test(toks[i].line) {
                    continue;
                }
                let Some(open) = f.next_code(i + 1).filter(|&j| toks[j].is_punct('(')) else {
                    continue;
                };
                let Some(a1) = f
                    .next_code(open + 1)
                    .filter(|&j| toks[j].kind == TokKind::Str)
                else {
                    continue;
                };
                let Some(comma) = f.next_code(a1 + 1).filter(|&j| toks[j].is_punct(',')) else {
                    continue;
                };
                let Some(a2) = f
                    .next_code(comma + 1)
                    .filter(|&j| toks[j].kind == TokKind::Str)
                else {
                    continue;
                };
                let metric = &toks[a2].text;
                if !is_gated(metric) || baseline_metrics.iter().any(|m| m == metric) {
                    continue;
                }
                out.push(f.finding(
                    "L007",
                    toks[a2].line,
                    format!(
                        "gated metric \"{metric}\" is not in any committed baseline under \
                         crates/bench/baselines/ — bench-check will never gate it"
                    ),
                ));
            }
        }
        out
    }
}

/// Mirrors `imci_bench::report::direction_of`: true when the metric
/// has a better-direction and is therefore regression-gated.
fn is_gated(metric: &str) -> bool {
    if metric.contains("per_s") || metric.contains("qps") || metric.contains("speedup") {
        return true;
    }
    metric.ends_with("_ms")
        || metric.ends_with("_us")
        || metric.ends_with("_ns")
        || metric.contains("latency")
        || metric.contains("_vd")
        || metric.contains("rss")
        || metric.ends_with("_kib")
        || metric.ends_with("_mib")
}

/// Metric names from every `crates/bench/baselines/*.json`: string
/// keys whose value is a number (scenario keys map to objects and are
/// naturally excluded).
fn baseline_metric_names(ws: &Workspace) -> Vec<String> {
    let dir = ws.root.join("crates/bench/baselines");
    let mut out = Vec::new();
    let Ok(entries) = std::fs::read_dir(&dir) else {
        return out;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.extension().is_none_or(|e| e != "json") {
            continue;
        }
        let Ok(text) = std::fs::read_to_string(&path) else {
            continue;
        };
        let toks = lexer::lex(&text);
        for i in 0..toks.len() {
            if toks[i].kind == TokKind::Str
                && toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
                && toks
                    .get(i + 2)
                    .is_some_and(|t| t.kind == TokKind::Num || t.is_punct('-'))
            {
                out.push(toks[i].text.clone());
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SourceFile;

    #[test]
    fn direction_mirror_matches_report() {
        for gated in [
            "recover_ms",
            "p99_us",
            "rss_mib",
            "pipelined_qps",
            "speedup",
            "post_failover_vd_us",
        ] {
            assert!(is_gated(gated), "{gated}");
        }
        for info in [
            "rows_selected",
            "held_conns",
            "churned_total",
            "recover_replayed_entries",
        ] {
            assert!(!is_gated(info), "{info}");
        }
    }

    #[test]
    fn literal_gated_metric_missing_from_baselines_fires() {
        let dir = std::env::temp_dir().join("imci_lint_l007_test");
        let baselines = dir.join("crates/bench/baselines");
        std::fs::create_dir_all(&baselines).unwrap();
        std::fs::write(
            baselines.join("BENCH_x.json"),
            "{\n  \"scen\": {\n    \"known_ms\": 1.5\n  }\n}\n",
        )
        .unwrap();
        let ws = Workspace::from_files(
            dir.clone(),
            vec![SourceFile::new(
                "crates/bench/src/bin/x.rs".into(),
                "fn main() { rep.set(\"scen\", \"known_ms\", a); \
                 rep.set(\"scen\", \"new_ms\", b); rep.set(\"scen\", \"rows_seen\", c); }"
                    .into(),
            )],
        );
        let found = BenchMetricsGated.check(&ws);
        assert_eq!(found.len(), 1, "{found:?}");
        assert!(found[0].msg.contains("new_ms"));
        std::fs::remove_dir_all(&dir).ok();
    }
}
