//! L002 — error categories must survive the wire.
//!
//! Bug class: `Error::from_kind` ends in `_ => Error::Execution(msg)`
//! so unknown tags from newer peers degrade gracefully — but that same
//! fallback means a *locally added* variant that is never given a
//! `from_kind` arm silently loses its failure domain on every
//! round-trip. A client then can't tell `Busy` (retry) from
//! `Execution` (don't), which is exactly the distinction the failover
//! path depends on.
//!
//! Checks, per variant of `Error` (crates/common/src/error.rs):
//!   1. `kind()` names it (compiler already forces this if the match
//!      is non-wildcard — the check guards against someone adding `_`),
//!   2. `from_kind()` has an explicit arm rebuilding it,
//!   3. the variant carries a doc comment (where its retryability
//!      contract is documented; `is_retryable` itself is a whitelist).

use super::{enum_variants, fn_span, mentions_variant, Rule};
use crate::{Finding, Workspace};

pub struct ErrorKindCoverage;

impl Rule for ErrorKindCoverage {
    fn id(&self) -> &'static str {
        "L002"
    }

    fn summary(&self) -> &'static str {
        "every Error variant has wire kind round-trip and documented retryability"
    }

    fn check(&self, ws: &Workspace) -> Vec<Finding> {
        let mut out = Vec::new();
        let Some(f) = ws.file("crates/common/src/error.rs") else {
            return out;
        };
        let Some(vars) = enum_variants(f, "Error") else {
            return out;
        };
        let kind = fn_span(f, "kind");
        let from_kind = fn_span(f, "from_kind");
        for v in &vars {
            if let Some(span) = kind {
                if !mentions_variant(f, span, "Error", &v.name) {
                    out.push(f.finding(
                        "L002",
                        v.line,
                        format!(
                            "Error::{} has no kind() tag — it cannot cross the wire",
                            v.name
                        ),
                    ));
                }
            }
            if let Some(span) = from_kind {
                if !mentions_variant(f, span, "Error", &v.name) {
                    out.push(f.finding(
                        "L002",
                        v.line,
                        format!(
                            "Error::{} has no explicit from_kind() arm — it degrades to \
                             Error::Execution on every wire round-trip, losing retryability",
                            v.name
                        ),
                    ));
                }
            }
            if !v.documented {
                out.push(f.finding(
                    "L002",
                    v.line,
                    format!(
                        "Error::{} has no doc comment — state what it means and whether \
                         callers may retry",
                        v.name
                    ),
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SourceFile;

    fn ws_of(text: &str) -> Workspace {
        Workspace::from_files(
            std::path::PathBuf::new(),
            vec![SourceFile::new(
                "crates/common/src/error.rs".into(),
                text.into(),
            )],
        )
    }

    #[test]
    fn full_round_trip_is_clean() {
        let ws = ws_of(
            "pub enum Error {\n /// Client may retry.\n Busy(String),\n /// Terminal.\n \
             Parse(String),\n}\nimpl Error {\n pub fn kind(&self) -> &str { match self {\n\
             Error::Busy(_) => \"busy\", Error::Parse(_) => \"parse\" } }\n\
             pub fn from_kind(k: &str, m: String) -> Error { match k {\n\
             \"busy\" => Error::Busy(m), \"parse\" => Error::Parse(m),\n\
             _ => Error::Parse(m) } }\n}\n",
        );
        assert!(ErrorKindCoverage.check(&ws).is_empty());
    }

    #[test]
    fn missing_from_kind_arm_and_doc_are_found() {
        let ws = ws_of(
            "pub enum Error {\n /// Client may retry.\n Busy(String),\n Parse(String),\n}\n\
             impl Error {\n pub fn kind(&self) -> &str { match self {\n\
             Error::Busy(_) => \"busy\", Error::Parse(_) => \"parse\" } }\n\
             pub fn from_kind(k: &str, m: String) -> Error { match k {\n\
             \"busy\" => Error::Busy(m), _ => Error::Busy(m) } }\n}\n",
        );
        let found = ErrorKindCoverage.check(&ws);
        assert!(
            found
                .iter()
                .any(|f| f.msg.contains("no explicit from_kind")),
            "{found:?}"
        );
        assert!(
            found.iter().any(|f| f.msg.contains("no doc comment")),
            "{found:?}"
        );
    }
}
