//! Whole-workspace call graph and reachability.
//!
//! Nodes are [`crate::resolve::FnDef`]s; edges come from resolved
//! [`crate::resolve::RawCall`]s. Each node also carries its *local*
//! sinks: panic sites (`.unwrap()`, `.expect()`, `panic!`,
//! `unreachable!`, `todo!`, `unimplemented!`) and blocking sites
//! (shared verbatim with L006's [`crate::rules::l006::blocking_call_at`]
//! so the interprocedural rule can never disagree with the syntactic
//! one about what blocking *is*). Thread boundaries (`spawn(...)`
//! arguments) and `catch_unwind(...)` contribute neither edges nor
//! sinks.

use std::collections::HashMap;

use crate::resolve::{self, Ctx, DefIndex};
use crate::rules::l006;
use crate::Workspace;

/// A panic or blocking site inside one fn body.
#[derive(Debug, Clone)]
pub struct Site {
    pub line: u32,
    /// Human description (`.unwrap()`, `panic!`, `.wait(...)`, ...).
    pub what: String,
}

/// Per-fn analysis results, parallel to `DefIndex::fns`.
pub struct FnFacts {
    /// Resolved outgoing edges: (callee fn id, call line).
    pub calls: Vec<(usize, u32)>,
    pub panics: Vec<Site>,
    pub blocks: Vec<Site>,
}

/// One step of a blocking-reachability witness.
#[derive(Debug, Clone)]
pub enum BlockStep {
    /// This fn itself contains a blocking site.
    Local(Site),
    /// The chain continues through a call: (callee fn id, call line).
    Via(usize, u32),
}

pub struct Analysis {
    pub idx: DefIndex,
    pub facts: Vec<FnFacts>,
    /// (file index, fn start token) -> fn id.
    pub fn_of: HashMap<(usize, usize), usize>,
    /// For each fn: the first step toward a blocking sink, if one is
    /// reachable (shortest chain, deterministic tie-break by fn id).
    pub blocking_next: Vec<Option<BlockStep>>,
}

/// Panic-macro names (ident followed by `!`).
const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

impl Analysis {
    pub fn build(ws: &Workspace) -> Analysis {
        let idx = resolve::build(ws);
        let mut fn_of = HashMap::new();
        for (id, d) in idx.fns.iter().enumerate() {
            fn_of.insert((d.file, d.start), id);
        }
        let mut facts = Vec::with_capacity(idx.fns.len());
        for d in &idx.fns {
            let f = &ws.files[d.file];
            // Body only: skip past the signature so a `Result` return
            // type or parameter name never reads as a call.
            let ctx = Ctx {
                file: d.file,
                crate_name: &d.crate_name,
                impl_type: d.impl_type.as_deref(),
                is_test: d.is_test,
            };
            let raw = resolve::raw_calls(f, d.start, d.end);
            let mut calls = Vec::new();
            for c in &raw {
                // A nested fn's body belongs to the nested fn, not to
                // this one (fn spans nest; facts must not).
                if inner_fn_owns(&idx, &fn_of, d.file, d.start, d.end, c.tok) {
                    continue;
                }
                if let Some(callee) = idx.resolve(ws, c, &ctx) {
                    if callee != fn_of[&(d.file, d.start)] {
                        calls.push((callee, c.line));
                    }
                }
            }
            let (panics, blocks) = local_sites(ws, &idx, &fn_of, d);
            facts.push(FnFacts {
                calls,
                panics,
                blocks,
            });
        }
        let blocking_next = blocking_reach(&idx, &facts);
        Analysis {
            idx,
            facts,
            fn_of,
            blocking_next,
        }
    }

    /// Fn id for a (file index, fn start token) pair.
    pub fn fn_id(&self, file: usize, start: usize) -> Option<usize> {
        self.fn_of.get(&(file, start)).copied()
    }

    /// Multi-source forward BFS. Returns, for every reachable fn, the
    /// predecessor on a shortest chain from some root: `(caller fn id,
    /// call line)`, or `None` for the roots themselves. Deterministic:
    /// roots seed in the given order, edges expand in stored order.
    pub fn forward_reach(&self, roots: &[usize]) -> HashMap<usize, Option<(usize, u32)>> {
        use std::collections::hash_map::Entry;
        let mut pred: HashMap<usize, Option<(usize, u32)>> = HashMap::new();
        let mut queue: std::collections::VecDeque<usize> = std::collections::VecDeque::new();
        for &r in roots {
            if let Entry::Vacant(e) = pred.entry(r) {
                e.insert(None);
                queue.push_back(r);
            }
        }
        while let Some(fid) = queue.pop_front() {
            for &(callee, line) in &self.facts[fid].calls {
                if let Entry::Vacant(e) = pred.entry(callee) {
                    e.insert(Some((fid, line)));
                    queue.push_back(callee);
                }
            }
        }
        pred
    }

    /// Human-readable call chain `root_name -> ... -> fn_name` for a
    /// fn reached by [`Analysis::forward_reach`].
    pub fn chain_to(
        &self,
        pred: &HashMap<usize, Option<(usize, u32)>>,
        mut fid: usize,
    ) -> Vec<String> {
        let mut names = vec![self.fn_name(fid)];
        while let Some(Some((caller, _))) = pred.get(&fid) {
            fid = *caller;
            names.push(self.fn_name(fid));
        }
        names.reverse();
        names
    }

    /// `Type::name` or bare `name`, for witness chains.
    pub fn fn_name(&self, fid: usize) -> String {
        let d = &self.idx.fns[fid];
        match &d.impl_type {
            Some(t) => format!("{t}::{}", d.name),
            None => d.name.clone(),
        }
    }

    /// Follow `blocking_next` from `fid` to its sink; returns the
    /// chain of fn names plus the sink description, or `None`.
    pub fn blocking_chain(&self, mut fid: usize) -> Option<(Vec<String>, Site)> {
        let mut names = vec![self.fn_name(fid)];
        // The chain is acyclic by construction (BFS tree), but cap it
        // anyway so a future bug degrades to a truncated message.
        for _ in 0..64 {
            match self.blocking_next[fid].as_ref()? {
                BlockStep::Local(site) => return Some((names, site.clone())),
                BlockStep::Via(callee, _) => {
                    fid = *callee;
                    names.push(self.fn_name(fid));
                }
            }
        }
        None
    }
}

/// Does a *nested* fn inside `[start, end]` (other than the one
/// starting at `start`) contain token `tok`? Used to keep a nested
/// fn's body out of its parent's facts.
fn inner_fn_owns(
    idx: &DefIndex,
    fn_of: &HashMap<(usize, usize), usize>,
    file: usize,
    start: usize,
    end: usize,
    tok: usize,
) -> bool {
    idx.fns.iter().any(|d| {
        d.file == file
            && d.start > start
            && d.end <= end
            && d.start <= tok
            && tok <= d.end
            && fn_of.contains_key(&(d.file, d.start))
    })
}

/// Collect the panic and blocking sites local to one fn body.
fn local_sites(
    ws: &Workspace,
    idx: &DefIndex,
    fn_of: &HashMap<(usize, usize), usize>,
    d: &crate::resolve::FnDef,
) -> (Vec<Site>, Vec<Site>) {
    let f = &ws.files[d.file];
    let toks = &f.toks;
    let skips = resolve::thread_boundary_ranges(f, d.start, d.end);
    let mut panics = Vec::new();
    let mut blocks = Vec::new();
    for i in d.start..=d.end.min(toks.len().saturating_sub(1)) {
        if skips.iter().any(|&(a, b)| a < i && i <= b) {
            continue;
        }
        if inner_fn_owns(idx, fn_of, d.file, d.start, d.end, i) {
            continue;
        }
        let t = &toks[i];
        let dotted = f
            .prev_code(i.wrapping_sub(1))
            .is_some_and(|j| toks[j].is_punct('.'));
        let called = f.next_code(i + 1).is_some_and(|j| toks[j].is_punct('('));
        if (t.is_ident("unwrap") || t.is_ident("expect")) && dotted && called {
            panics.push(Site {
                line: t.line,
                what: format!(".{}()", t.text),
            });
            continue;
        }
        if PANIC_MACROS.iter().any(|m| t.is_ident(m))
            && f.next_code(i + 1).is_some_and(|j| toks[j].is_punct('!'))
        {
            panics.push(Site {
                line: t.line,
                what: format!("{}!", t.text),
            });
            continue;
        }
        if let Some(what) = l006::blocking_call_at(f, i) {
            blocks.push(Site { line: t.line, what });
        }
    }
    (panics, blocks)
}

/// Reverse BFS from every fn with a local blocking site: for each fn,
/// the first step of a shortest chain to a sink.
fn blocking_reach(idx: &DefIndex, facts: &[FnFacts]) -> Vec<Option<BlockStep>> {
    let n = idx.fns.len();
    // Reverse adjacency: callee -> [(caller, call line)].
    let mut rev: Vec<Vec<(usize, u32)>> = vec![Vec::new(); n];
    for (caller, ff) in facts.iter().enumerate() {
        for &(callee, line) in &ff.calls {
            rev[callee].push((caller, line));
        }
    }
    let mut next: Vec<Option<BlockStep>> = vec![None; n];
    let mut queue = std::collections::VecDeque::new();
    for (fid, ff) in facts.iter().enumerate() {
        if let Some(site) = ff.blocks.first() {
            next[fid] = Some(BlockStep::Local(site.clone()));
            queue.push_back(fid);
        }
    }
    while let Some(fid) = queue.pop_front() {
        for &(caller, line) in &rev[fid] {
            if next[caller].is_none() {
                next[caller] = Some(BlockStep::Via(fid, line));
                queue.push_back(caller);
            }
        }
    }
    next
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SourceFile;

    fn ws(files: Vec<(&str, &str)>) -> Workspace {
        Workspace::from_files(
            std::path::PathBuf::new(),
            files
                .into_iter()
                .map(|(p, s)| SourceFile::new(p.into(), s.into()))
                .collect(),
        )
    }

    fn fid(a: &Analysis, name: &str) -> usize {
        a.idx.by_name[name][0]
    }

    #[test]
    fn edges_cross_files_and_crates() {
        let w = ws(vec![
            (
                "crates/net/src/reactor.rs",
                "pub fn reactor_loop() { step(); imci_common::validate(x); }\n\
                 fn step() {}\n",
            ),
            ("crates/common/src/lib.rs", "pub fn validate(x: u8) {}\n"),
        ]);
        let a = w.analysis();
        let rl = fid(a, "reactor_loop");
        let callees: Vec<usize> = a.facts[rl].calls.iter().map(|&(c, _)| c).collect();
        assert!(callees.contains(&fid(a, "step")));
        assert!(callees.contains(&fid(a, "validate")), "cross-crate edge");
    }

    #[test]
    fn local_sites_respect_thread_boundaries_and_nested_fns() {
        let w = ws(vec![(
            "crates/net/src/a.rs",
            "fn outer() {\n  thread::spawn(|| v.unwrap());\n  \
             fn nested() { w.unwrap(); }\n  x.expect(\"m\");\n}\n",
        )]);
        let a = w.analysis();
        let outer = fid(a, "outer");
        let nested = fid(a, "nested");
        let descr: Vec<&str> = a.facts[outer]
            .panics
            .iter()
            .map(|s| s.what.as_str())
            .collect();
        assert_eq!(descr, vec![".expect()"], "spawn + nested fn excluded");
        assert_eq!(a.facts[nested].panics.len(), 1);
    }

    #[test]
    fn blocking_reach_crosses_the_graph_with_witness() {
        let w = ws(vec![
            (
                "crates/net/src/reactor.rs",
                "fn reactor_loop() { helper(); }\nfn helper() { deep(); }\n",
            ),
            (
                "crates/common/src/lib.rs",
                "pub fn deep() { std::thread::sleep(d); }\npub fn clean() {}\n",
            ),
        ]);
        let a = w.analysis();
        let (chain, sink) = a.blocking_chain(fid(a, "reactor_loop")).unwrap();
        assert_eq!(chain, vec!["reactor_loop", "helper", "deep"]);
        assert_eq!(sink.what, "thread::sleep");
        assert!(a.blocking_next[fid(a, "clean")].is_none());
    }

    #[test]
    fn forward_reach_yields_shortest_predecessor_chains() {
        let w = ws(vec![(
            "crates/net/src/a.rs",
            "fn root() { mid(); }\nfn mid() { leaf(); }\nfn leaf() {}\nfn island() {}\n",
        )]);
        let a = w.analysis();
        let pred = a.forward_reach(&[fid(a, "root")]);
        let chain = a.chain_to(&pred, fid(a, "leaf"));
        assert_eq!(chain, vec!["root", "mid", "leaf"]);
        assert!(!pred.contains_key(&fid(a, "island")));
    }
}
