//! Property tests for the lint lexer: it must survive (and stay sane
//! on) arbitrary byte soup and pathological quote/comment nests. The
//! lexer is the foundation every rule and the call-graph build sit on;
//! a panic here takes the whole `--deny-new` CI gate down with it, so
//! "never panics, lines monotone, classification stable" is load-
//! bearing, not decorative.

use imci_lint::lexer::{lex, TokKind};
use proptest::prelude::*;

/// Characters chosen to maximize lexer-state trouble per byte: every
/// string/char/comment delimiter, raw-string hashes and prefixes,
/// escapes, newlines, plus multibyte UTF-8 to stress byte-offset
/// slicing.
const SPICY: &[char] = &[
    '"', '\'', '\\', '/', '*', '#', 'r', 'b', 'n', '_', '0', '9', 'x', '{', '}', '(', ')', '.',
    ':', '!', ' ', '\n', '\t', 'é', '日', '💥',
];

fn check_invariants(src: &str) {
    let toks = lex(src);
    let lines = 1 + src.bytes().filter(|&b| b == b'\n').count() as u32;
    let mut prev_line = 1u32;
    for t in &toks {
        assert!(t.line >= 1 && t.line <= lines, "line {} of {lines}", t.line);
        assert!(t.line >= prev_line, "lines must be monotone");
        prev_line = t.line;
        match t.kind {
            // Idents and numbers are verbatim slices of the source.
            TokKind::Ident | TokKind::Num => {
                assert!(src.contains(&t.text), "{:?} not in source", t.text);
                assert!(!t.text.is_empty());
            }
            TokKind::Punct => assert_eq!(t.text.chars().count(), 1),
            _ => {}
        }
    }
    // Every token consumes at least one source byte.
    assert!(toks.len() <= src.len().max(1));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn byte_soup_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..400)) {
        let src = String::from_utf8_lossy(&bytes);
        check_invariants(&src);
    }

    #[test]
    fn delimiter_soup_never_panics(picks in prop::collection::vec(0usize..25, 0..200)) {
        let src: String = picks.iter().map(|&i| SPICY[i % SPICY.len()]).collect();
        check_invariants(&src);
    }

    #[test]
    fn line_comments_swallow_anything_to_newline(
        body in "[a-z\"'\\\\/*# ]{0,40}",
        tail in "[a-z]{1,8}",
    ) {
        let src = format!("//{body}\n{tail}");
        check_invariants(&src);
        let toks = lex(&src);
        prop_assert_eq!(toks[0].kind, TokKind::LineComment);
        prop_assert!(toks[1..].iter().any(|t| t.is_ident(&tail)));
        prop_assert_eq!(toks.last().unwrap().line, 2);
    }

    #[test]
    fn plain_strings_round_trip_their_content(body in "[a-z0-9_ .:/#']{0,40}") {
        // No `"` or `\` in the class: content must come back verbatim.
        let src = format!("let s = \"{body}\";");
        check_invariants(&src);
        let strs: Vec<_> = lex(&src).into_iter().filter(|t| t.kind == TokKind::Str).collect();
        prop_assert_eq!(strs.len(), 1);
        prop_assert_eq!(&strs[0].text, &body);
    }

    #[test]
    fn raw_strings_close_on_their_own_hash_run(
        body in "[a-z\"/ ]{0,30}",
        hashes in 1usize..4,
    ) {
        let h = "#".repeat(hashes);
        // A lone `"` in the body can't close: the closer needs `"` +
        // hashes, so break up any accidental closer the generator made.
        let mut body = body;
        while body.contains(&format!("\"{h}")) {
            body = body.replace(&format!("\"{h}"), "\" ");
        }
        let src = format!("let s = r{h}\"{body}\"{h}; after();");
        check_invariants(&src);
        let toks = lex(&src);
        let strs: Vec<_> = toks.iter().filter(|t| t.kind == TokKind::Str).collect();
        prop_assert_eq!(strs.len(), 1);
        prop_assert_eq!(&strs[0].text, &body);
        prop_assert!(toks.iter().any(|t| t.is_ident("after")), "code after the raw string lexes");
    }

    #[test]
    fn unbalanced_comment_nests_consume_to_eof_without_panic(
        opens in 0usize..6,
        closes in 0usize..6,
        tail in "[a-z]{1,6}",
    ) {
        let src = format!("{}{}{tail}", "/*".repeat(opens), "*/".repeat(closes));
        check_invariants(&src);
        let toks = lex(&src);
        if closes == opens {
            // Exactly balanced: the tail re-emerges as code.
            prop_assert!(toks.iter().any(|t| t.is_ident(&tail)), "{toks:?}");
        } else if closes < opens && opens > 0 {
            // Under-closed: everything folds into one comment to EOF.
            prop_assert!(!toks.iter().any(|t| t.is_ident(&tail)), "{toks:?}");
        }
        // Over-closed is only a no-panic check: `*/*/` manufactures a
        // fresh `/*` opener, so where the tail lands depends on parity.
    }

    #[test]
    fn trailing_escape_in_string_or_char_is_safe(
        prefix in "[a-z ]{0,10}",
        quote in prop_oneof![Just('"'), Just('\'')],
    ) {
        // Unterminated literal ending in a lone backslash: the escape
        // skip must not run past EOF.
        let src = format!("{prefix}{quote}abc\\");
        check_invariants(&src);
    }
}
