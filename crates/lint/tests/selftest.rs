//! End-to-end self-test: every rule fires on its seeded fixture, the
//! fixture allowlist suppresses all of them, and the real workspace is
//! clean under the committed allowlist.

use std::path::{Path, PathBuf};

fn fixtures_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures/seeded")
}

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

#[test]
fn every_rule_fires_exactly_once_on_fixtures() {
    let ws = imci_lint::Workspace::load(&fixtures_root()).unwrap();
    let findings = imci_lint::run_all(&ws);
    let ids: Vec<&str> = findings.iter().map(|f| f.rule).collect();
    // One *dedicated* seeded violation per rule. The interprocedural
    // rules additionally re-see their syntactic counterpart's seeded
    // site (a fn reaches its own body), which is the supersession
    // property pinned below — hence L008/L009 appearing twice.
    assert_eq!(
        ids,
        [
            "L001", "L002", "L003", "L004", "L005", "L006", "L007", "L008", "L008", "L009", "L009",
            "L010", "L011"
        ],
        "seeded violations, in id order: {findings:#?}"
    );
    // Findings carry enough context to act on.
    for f in &findings {
        assert!(
            !f.msg.is_empty() && !f.src_line.is_empty() && f.line > 0,
            "{f}"
        );
    }
}

#[test]
fn interprocedural_rules_strictly_contain_their_syntactic_counterparts() {
    let ws = imci_lint::Workspace::load(&fixtures_root()).unwrap();
    let findings = imci_lint::run_all(&ws);
    let sites = |rule: &str| -> Vec<(String, u32)> {
        findings
            .iter()
            .filter(|f| f.rule == rule)
            .map(|f| (f.path.clone(), f.line))
            .collect()
    };
    for (syntactic, interproc) in [("L004", "L008"), ("L006", "L009")] {
        let a = sites(syntactic);
        let b = sites(interproc);
        assert!(!a.is_empty(), "{syntactic} seeded fixture missing");
        for site in &a {
            assert!(
                b.contains(site),
                "{interproc} must re-report {syntactic}'s site {site:?}: {b:?}"
            );
        }
        assert!(
            b.len() > a.len(),
            "{interproc} must see strictly more than {syntactic} (the cross-crate seed): {b:?}"
        );
    }
}

#[test]
fn fixture_allowlist_suppresses_every_seeded_finding() {
    let ws = imci_lint::Workspace::load(&fixtures_root()).unwrap();
    let findings = imci_lint::run_all(&ws);
    let text = std::fs::read_to_string(
        Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures/allow_seeded.toml"),
    )
    .unwrap();
    let entries = imci_lint::allow::parse(&text).unwrap();
    let (live, suppressed, stale) = imci_lint::allow::apply(findings, &entries);
    assert!(live.is_empty(), "unsuppressed: {live:#?}");
    assert_eq!(suppressed.len(), 13);
    assert!(stale.is_empty(), "stale: {stale:?}");
}

#[test]
fn workspace_is_clean_under_committed_allowlist() {
    let root = workspace_root();
    let ws = imci_lint::Workspace::load(&root).unwrap();
    assert!(ws.files.len() > 50, "workspace walk looks truncated");
    let findings = imci_lint::run_all(&ws);
    let text = std::fs::read_to_string(root.join("crates/lint/allow.toml")).unwrap();
    let entries = imci_lint::allow::parse(&text).unwrap();
    let (live, _suppressed, stale) = imci_lint::allow::apply(findings, &entries);
    assert!(
        live.is_empty(),
        "new unsuppressed findings — fix them or add a justified allowlist entry:\n{}",
        live.iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert!(
        stale.is_empty(),
        "stale allowlist entries — the violations were fixed, delete them: {stale:?}"
    );
}
