// Seeded L010: a discarded fencing Result — the append may have been
// rejected by the fence, and nothing will ever know.

pub struct SeededLog;

impl SeededLog {
    pub fn append_fenced(&mut self, e: u64) -> Result<u64, ()> {
        Ok(e)
    }
}

pub fn rotate(log: &mut SeededLog) {
    let _ = log.append_fenced(7);
}
