// Seeded L001: RedoPayload::Delete (tag 3) has no decode arm.

pub enum RedoPayload {
    Insert { pk: i64 },
    Delete { pk: i64 },
}

impl RedoPayload {
    pub fn kind_tag(&self) -> u8 {
        match self {
            RedoPayload::Insert { .. } => 1,
            RedoPayload::Delete { .. } => 3,
        }
    }
}

pub fn encode(p: &RedoPayload) -> u8 {
    match p {
        RedoPayload::Insert { .. } => 1,
        RedoPayload::Delete { .. } => 3,
    }
}

pub fn decode(tag: u8) -> Option<&'static str> {
    match tag {
        1 => Some("insert"),
        _ => None,
    }
}
