// Seeded L007: "orphan_ms" is gated (lower-is-better) but missing from
// the committed baseline; "known_ms" is present and "rows_seen" is
// informational — neither of those should fire.

fn main() {
    let mut rep = Report::default();
    rep.set("scan", "known_ms", 1.0);
    rep.set("scan", "orphan_ms", 2.0);
    rep.set("scan", "rows_seen", 100.0);
}
