// Replay handler covering every variant, so the seeded L001 finding is
// exactly the missing decode arm in ../wal/src/record.rs.

pub fn apply(p: crate::RedoPayload) {
    match p {
        RedoPayload::Insert { .. } => {}
        RedoPayload::Delete { .. } => {}
    }
}
