// Blocking sink for the seeded L011 fixture (and nothing else: not a
// reactor module, not reachable from the net/server fixture fns).

pub fn write_back(v: &u8) {
    let _unused = std::fs::write("spill.bin", [*v]);
}
