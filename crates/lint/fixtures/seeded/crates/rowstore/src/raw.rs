// Seeded L005: an unsafe block with no SAFETY comment.

pub fn read_first(bytes: &[u8]) -> u64 {
    unsafe { std::ptr::read_unaligned(bytes.as_ptr() as *const u64) }
}
