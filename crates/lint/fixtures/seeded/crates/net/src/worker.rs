// Seeded L004: a panic path on a worker thread.

pub fn dispatch(q: &mut std::collections::VecDeque<u64>) -> u64 {
    q.pop_front().unwrap()
}
