// Seeded L009: timer.rs is a reactor module; the blocking sink lives
// one call away, in ../common — invisible to module-scoped L006.

pub fn on_tick() {
    crate::helpers::flush_index();
}
