// Seeded L006: a condvar wait on the reactor thread.

pub fn drain(cv: &std::sync::Condvar, g: std::sync::MutexGuard<'_, bool>) {
    let _g = cv.wait(g);
}
