// Seeded L008: the panic lives one call away, in ../common — invisible
// to file-scoped L004, reachable in the call graph.

pub fn on_frame(b: &[u8]) -> u64 {
    crate::helpers::decode_frame(b)
}
