// Sinks for the seeded L008/L009 fixtures: this file itself is clean
// under the syntactic rules (not in crates/net, not a reactor module);
// only graph reachability from ../net/src/{handler,timer}.rs sees it.

pub fn decode_frame(b: &[u8]) -> u64 {
    u64::from_le_bytes(b[..8].try_into().unwrap())
}

pub fn flush_index() {
    std::thread::sleep(std::time::Duration::from_millis(1));
}
