// Seeded L002: Error::Busy has no explicit from_kind arm — it would
// degrade to Error::Parse on every wire round-trip.

pub enum Error {
    /// Unparseable request. Not retryable.
    Parse(String),
    /// Server saturated; clients may retry after backoff.
    Busy(String),
}

impl Error {
    pub fn kind(&self) -> &'static str {
        match self {
            Error::Parse(_) => "parse",
            Error::Busy(_) => "busy",
        }
    }

    pub fn from_kind(kind: &str, msg: String) -> Error {
        match kind {
            "parse" => Error::Parse(msg),
            _ => Error::Parse(msg),
        }
    }
}
