// Seeded L003: an uncapped poll loop pacing with thread::sleep.

pub fn wait_ready(flag: &std::sync::atomic::AtomicBool) {
    while !flag.load(std::sync::atomic::Ordering::SeqCst) {
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
}
