// Seeded L011: a lock guard held across a call that (transitively)
// reaches file IO in ../rowstore/src/spill.rs.

pub fn flush_all(m: &imci_sync::Mutex<u8>) {
    let g = m.lock();
    crate::spill::write_back(&g);
}
