//! Binder, join ordering, cost-based routing, and column-plan
//! generation (paper §6.1–§6.2).
//!
//! The optimizer builds a *row-oriented* plan first (access-path choice
//! per table + join order) and estimates its cost; only when the
//! estimate crosses a threshold is the plan *transformed* into a
//! column-oriented [`PhysicalPlan`] — mirroring the paper's flow where
//! "instead of top-down constructing a column-oriented execution plan,
//! PolarDB-IMCI transforms it from the row-oriented one".

use crate::ast::{AggName, AstExpr, ColRef, OrderKey, SelectStmt};
use imci_common::{DataType, Error, FxHashMap, Result, Schema, Value};
use imci_executor::{
    AggCall, AggFunc, ArithOp, CmpOp, Expr, LikePattern, PhysicalPlan, PruneRange,
};
use std::sync::Arc;

/// Table statistics provider (row counts feed the cost model; the paper
/// collects them "through random sampling" — we track exact counts and
/// use the same heuristics for selectivity).
pub trait Stats {
    /// Approximate live row count of a table.
    fn table_rows(&self, schema: &Schema) -> u64;
}

/// Access path the row engine would use for one table.
#[derive(Debug, Clone, PartialEq)]
pub enum AccessPath {
    /// Primary-key point lookup.
    PkLookup(i64),
    /// Secondary index equality/range probe on a column.
    Secondary {
        /// Column ordinal.
        col: usize,
        /// Lower bound.
        lo: Value,
        /// Upper bound.
        hi: Value,
    },
    /// Full table scan.
    FullScan,
}

/// Per-table pruning bounds: (column ordinal, lower, upper).
pub type PruneBounds = Vec<(usize, Option<Value>, Option<Value>)>;

/// A bound single-table slice of the query.
#[derive(Debug)]
pub struct BoundTable {
    /// The table's schema.
    pub schema: Arc<Schema>,
    /// Alias used in the query.
    pub alias: String,
    /// Needed column ordinals (sorted).
    pub needed: Vec<usize>,
    /// Filter over the flat output (conjuncts local to this table).
    pub filter: Option<Expr>,
    /// Pruning ranges in table-column ordinals.
    pub prune: PruneBounds,
    /// Chosen row-engine access path.
    pub access: AccessPath,
    /// Estimated rows after filtering.
    pub est_rows: f64,
}

/// A fully bound SELECT, shared by both engines.
pub struct BoundQuery {
    /// Tables in join order.
    pub tables: Vec<BoundTable>,
    /// For each table after the first: (flat col already bound, local
    /// flat col of this table) equality pairs.
    pub join_conds: Vec<Vec<(usize, usize)>>,
    /// Residual filter over the joined flat row (cross-table conjuncts).
    pub residual: Option<Expr>,
    /// Grouping expressions over the flat row (empty = none).
    pub group_by: Vec<Expr>,
    /// Aggregate calls (empty = projection-only query).
    pub aggs: Vec<AggCall>,
    /// Output expressions over the post-agg (or flat) row.
    pub output: Vec<Expr>,
    /// Output column names.
    pub out_names: Vec<String>,
    /// ORDER BY: (output position, desc).
    pub order_by: Vec<(usize, bool)>,
    /// LIMIT.
    pub limit: Option<usize>,
    /// Estimated row-engine cost (drives intra-node routing, §6.1).
    pub row_cost: f64,
}

struct Binder {
    tables: Vec<(Arc<Schema>, String)>, // (schema, alias) in FROM order
    needed: Vec<std::collections::BTreeSet<usize>>,
}

impl Binder {
    fn resolve(&self, c: &ColRef) -> Result<(usize, usize)> {
        let mut found = None;
        for (ti, (schema, alias)) in self.tables.iter().enumerate() {
            if let Some(q) = &c.qualifier {
                if q != alias && *q != schema.name {
                    continue;
                }
            }
            if let Some(ci) = schema.col_index(&c.column) {
                if found.is_some() && c.qualifier.is_none() {
                    return Err(Error::Plan(format!("ambiguous column {}", c.column)));
                }
                found = Some((ti, ci));
                if c.qualifier.is_some() {
                    break;
                }
            }
        }
        found.ok_or_else(|| Error::Plan(format!("unknown column {}", c.column)))
    }

    fn collect(&mut self, e: &AstExpr) -> Result<()> {
        match e {
            AstExpr::Col(c) => {
                let (ti, ci) = self.resolve(c)?;
                self.needed[ti].insert(ci);
            }
            AstExpr::Lit(_) => {}
            AstExpr::Binary { l, r, .. } => {
                self.collect(l)?;
                self.collect(r)?;
            }
            AstExpr::Not(e)
            | AstExpr::Year(e)
            | AstExpr::Neg(e)
            | AstExpr::Like { e, .. }
            | AstExpr::IsNull { e, .. }
            | AstExpr::Between { e, .. }
            | AstExpr::InList { e, .. } => self.collect(e)?,
            AstExpr::Agg { arg, .. } => {
                if let Some(a) = arg {
                    self.collect(a)?;
                }
            }
        }
        Ok(())
    }
}

/// Column type lookup helper for literal coercion (date strings).
fn coerce_lit(v: &Value, ty: DataType) -> Value {
    match (v, ty) {
        (Value::Str(s), DataType::Date) => match imci_common::value::parse_date_str(s) {
            Ok(d) => Value::Date(d),
            Err(_) => v.clone(),
        },
        (Value::Int(i), DataType::Double) => Value::Double(*i as f64),
        (Value::Date(d), DataType::Int) => Value::Int(*d),
        _ => v.clone(),
    }
}

/// Bind and optimize a SELECT against a catalog.
pub fn bind_select(
    stmt: &SelectStmt,
    lookup: &dyn Fn(&str) -> Result<Arc<Schema>>,
    stats: &dyn Stats,
) -> Result<BoundQuery> {
    // ---- resolve FROM ----
    let mut binder = Binder {
        tables: Vec::new(),
        needed: Vec::new(),
    };
    for tr in &stmt.from {
        let schema = lookup(&tr.table)?;
        binder.tables.push((schema, tr.alias.clone()));
        binder.needed.push(Default::default());
    }

    // ---- collect referenced columns ----
    for item in &stmt.items {
        binder.collect(&item.expr)?;
    }
    if let Some(f) = &stmt.filter {
        binder.collect(f)?;
    }
    for g in &stmt.group_by {
        binder.collect(g)?;
    }
    let mut join_pairs: Vec<((usize, usize), (usize, usize))> = Vec::new();
    for (l, r) in &stmt.join_on {
        let lb = binder.resolve(l)?;
        let rb = binder.resolve(r)?;
        binder.needed[lb.0].insert(lb.1);
        binder.needed[rb.0].insert(rb.1);
        join_pairs.push((lb, rb));
    }

    // ---- split WHERE conjuncts ----
    let mut table_conjuncts: Vec<Vec<AstExpr>> = vec![Vec::new(); binder.tables.len()];
    let mut cross_conjuncts: Vec<AstExpr> = Vec::new();
    if let Some(f) = stmt.filter.clone() {
        let mut cs = Vec::new();
        f.split_conjuncts(&mut cs);
        for c in cs {
            // equality join predicate in WHERE form: a.x = b.y
            if let AstExpr::Binary { op, l, r } = &c {
                if let ("=", AstExpr::Col(lc), AstExpr::Col(rc)) = (op.as_str(), &**l, &**r) {
                    let lb = binder.resolve(lc)?;
                    let rb = binder.resolve(rc)?;
                    if lb.0 != rb.0 {
                        join_pairs.push((lb, rb));
                        continue;
                    }
                }
            }
            // which tables does the conjunct touch?
            let mut touched = std::collections::BTreeSet::new();
            collect_tables(&c, &binder, &mut touched)?;
            match touched.len() {
                0 | 1 => {
                    let ti = touched.into_iter().next().unwrap_or(0);
                    table_conjuncts[ti].push(c);
                }
                _ => cross_conjuncts.push(c),
            }
        }
    }

    // ---- per-table estimates & access paths ----
    let n = binder.tables.len();
    let mut est = vec![0f64; n];
    let mut access = vec![AccessPath::FullScan; n];
    let mut prune: Vec<PruneBounds> = vec![Vec::new(); n];
    for ti in 0..n {
        let schema = &binder.tables[ti].0;
        let rows = stats.table_rows(schema).max(1) as f64;
        let mut sel = 1.0f64;
        for c in &table_conjuncts[ti] {
            sel *= conjunct_selectivity(c);
            // pk / secondary access path detection + prune ranges
            if let Some((ci, lo, hi)) = eq_or_range(c, &binder, ti)? {
                let ty = schema.columns[ci].ty;
                let lo = lo.map(|v| coerce_lit(&v, ty));
                let hi = hi.map(|v| coerce_lit(&v, ty));
                prune[ti].push((ci, lo.clone(), hi.clone()));
                if ci == schema.pk_col() {
                    if let (Some(Value::Int(a)), Some(Value::Int(b))) = (&lo, &hi) {
                        if a == b {
                            access[ti] = AccessPath::PkLookup(*a);
                        }
                    }
                } else if matches!(access[ti], AccessPath::FullScan) {
                    let has_sec = schema.secondary_indexes().any(|i| i.columns[0] == ci);
                    if has_sec {
                        if let (Some(l), Some(h)) = (&lo, &hi) {
                            access[ti] = AccessPath::Secondary {
                                col: ci,
                                lo: l.clone(),
                                hi: h.clone(),
                            };
                        }
                    }
                }
            }
        }
        est[ti] = match &access[ti] {
            AccessPath::PkLookup(_) => 1.0,
            _ => (rows * sel).max(1.0),
        };
    }

    // ---- join ordering: greedy smallest-first over the join graph ----
    let mut order: Vec<usize> = Vec::with_capacity(n);
    let mut remaining: Vec<usize> = (0..n).collect();
    remaining.sort_by(|&a, &b| est[a].total_cmp(&est[b]));
    order.push(remaining.remove(0));
    while !remaining.is_empty() {
        // prefer tables connected to what's already placed
        let pos = remaining
            .iter()
            .position(|&t| {
                join_pairs.iter().any(|(a, b)| {
                    (a.0 == t && order.contains(&b.0)) || (b.0 == t && order.contains(&a.0))
                })
            })
            .unwrap_or(0);
        order.push(remaining.remove(pos));
    }

    // ---- flat layout over needed columns, in join order ----
    let needed: Vec<Vec<usize>> = binder
        .needed
        .iter()
        .map(|s| s.iter().copied().collect())
        .collect();
    let mut flat_of: FxHashMap<(usize, usize), usize> = FxHashMap::default();
    let mut off = 0usize;
    for &ti in &order {
        for (k, &ci) in needed[ti].iter().enumerate() {
            flat_of.insert((ti, ci), off + k);
        }
        off += needed[ti].len();
    }

    let bind_expr = |e: &AstExpr| -> Result<Expr> { bind_scalar(e, &binder, &flat_of, None) };
    // AND-fold a conjunct list; `None` when the list is empty.
    let and_all = |cs: &[AstExpr]| -> Result<Option<Expr>> {
        let mut folded: Option<Expr> = None;
        for c in cs {
            let bound = bind_expr(c)?;
            folded = Some(match folded {
                Some(prev) => prev.and(bound),
                None => bound,
            });
        }
        Ok(folded)
    };

    // ---- build BoundTables ----
    let mut tables = Vec::with_capacity(n);
    let mut join_conds: Vec<Vec<(usize, usize)>> = Vec::with_capacity(n);
    for (ji, &ti) in order.iter().enumerate() {
        let (schema, alias) = &binder.tables[ti];
        // local filter bound against the flat layout
        let filter = and_all(&table_conjuncts[ti])?;
        let mut conds = Vec::new();
        for (a, b) in &join_pairs {
            let (inner, outer) = if a.0 == ti {
                (a, b)
            } else if b.0 == ti {
                (b, a)
            } else {
                continue;
            };
            // outer must already be placed before this table
            if order[..ji].contains(&outer.0) {
                conds.push((flat_of[outer], flat_of[inner]));
            }
        }
        join_conds.push(conds);
        tables.push(BoundTable {
            schema: schema.clone(),
            alias: alias.clone(),
            needed: needed[ti].clone(),
            filter,
            prune: prune[ti].clone(),
            access: access[ti].clone(),
            est_rows: est[ti],
        });
    }

    // ---- residual filter ----
    let residual = and_all(&cross_conjuncts)?;

    // ---- aggregates & output ----
    let group_by: Vec<Expr> = stmt.group_by.iter().map(bind_expr).collect::<Result<_>>()?;
    let has_aggs = stmt.items.iter().any(|i| i.expr.has_agg());
    let mut aggs: Vec<AggCall> = Vec::new();
    let mut output = Vec::with_capacity(stmt.items.len());
    let mut out_names = Vec::with_capacity(stmt.items.len());
    if has_aggs || !group_by.is_empty() {
        for (i, item) in stmt.items.iter().enumerate() {
            let e = bind_post_agg(
                &item.expr,
                &binder,
                &flat_of,
                &stmt.group_by,
                &group_by,
                &mut aggs,
            )?;
            output.push(e);
            out_names.push(item_name(item, i));
        }
    } else {
        for (i, item) in stmt.items.iter().enumerate() {
            output.push(bind_expr(&item.expr)?);
            out_names.push(item_name(item, i));
        }
    }

    // ---- ORDER BY ----
    let mut order_by = Vec::new();
    for (key, desc) in &stmt.order_by {
        let pos = match key {
            OrderKey::Position(p) => {
                if *p == 0 || *p > output.len() {
                    return Err(Error::Plan(format!("ORDER BY position {p} out of range")));
                }
                p - 1
            }
            OrderKey::Name(name) => stmt
                .items
                .iter()
                .position(|it| {
                    it.alias.as_deref() == Some(name.as_str())
                        || matches!(&it.expr, AstExpr::Col(c) if c.column == *name)
                })
                .ok_or_else(|| Error::Plan(format!("ORDER BY key {name} not in select list")))?,
        };
        order_by.push((pos, *desc));
    }

    // ---- row-engine cost estimate ----
    // Cost model: cumulative intermediate cardinality through the join
    // order; index-driven joins cost lookups, unindexed joins cost a
    // scan per outer row.
    let mut row_cost = 0.0;
    let mut card = 1.0f64;
    for (ji, bt) in tables.iter().enumerate() {
        let t_rows = stats.table_rows(&bt.schema).max(1) as f64;
        match &bt.access {
            AccessPath::PkLookup(_) => row_cost += card,
            AccessPath::Secondary { .. } => row_cost += card * bt.est_rows.max(1.0),
            AccessPath::FullScan => {
                if ji == 0 {
                    row_cost += t_rows;
                } else {
                    let has_join = !join_conds[ji].is_empty();
                    let indexed = has_join
                        && join_conds[ji].iter().any(|(_, inner)| {
                            let local = flat_to_local(*inner, &tables, ji);
                            local == Some(bt.schema.pk_col())
                                || bt
                                    .schema
                                    .secondary_indexes()
                                    .any(|ix| Some(ix.columns[0]) == local)
                        });
                    if indexed {
                        row_cost += card; // one probe per outer row
                    } else {
                        row_cost += card * t_rows; // nested-loop scan
                    }
                }
            }
        }
        card *= bt.est_rows.max(1.0);
        card = card.min(1e15);
    }

    Ok(BoundQuery {
        tables,
        join_conds,
        residual,
        group_by,
        aggs,
        output,
        out_names,
        order_by,
        limit: stmt.limit,
        row_cost,
    })
}

fn item_name(item: &crate::ast::SelectItem, i: usize) -> String {
    if let Some(a) = &item.alias {
        return a.clone();
    }
    if let AstExpr::Col(c) = &item.expr {
        return c.column.clone();
    }
    format!("col{}", i + 1)
}

fn flat_to_local(flat: usize, tables: &[BoundTable], ji: usize) -> Option<usize> {
    let mut off = 0;
    for bt in tables.iter().take(ji) {
        off += bt.needed.len();
    }
    let local = flat.checked_sub(off)?;
    tables[ji].needed.get(local).copied()
}

fn collect_tables(
    e: &AstExpr,
    b: &Binder,
    out: &mut std::collections::BTreeSet<usize>,
) -> Result<()> {
    match e {
        AstExpr::Col(c) => {
            out.insert(b.resolve(c)?.0);
        }
        AstExpr::Lit(_) => {}
        AstExpr::Binary { l, r, .. } => {
            collect_tables(l, b, out)?;
            collect_tables(r, b, out)?;
        }
        AstExpr::Not(x)
        | AstExpr::Year(x)
        | AstExpr::Neg(x)
        | AstExpr::Like { e: x, .. }
        | AstExpr::IsNull { e: x, .. }
        | AstExpr::Between { e: x, .. }
        | AstExpr::InList { e: x, .. } => collect_tables(x, b, out)?,
        AstExpr::Agg { arg, .. } => {
            if let Some(a) = arg {
                collect_tables(a, b, out)?;
            }
        }
    }
    Ok(())
}

/// Heuristic selectivities (same spirit as the paper's sampled stats).
fn conjunct_selectivity(e: &AstExpr) -> f64 {
    match e {
        AstExpr::Binary { op, .. } => match op.as_str() {
            "=" => 0.05,
            "<" | "<=" | ">" | ">=" => 0.35,
            "<>" => 0.95,
            _ => 0.5,
        },
        AstExpr::Between { .. } => 0.25,
        AstExpr::InList { list, .. } => (0.05 * list.len() as f64).min(0.5),
        AstExpr::Like { .. } => 0.2,
        AstExpr::IsNull { negated, .. } => {
            if *negated {
                0.95
            } else {
                0.05
            }
        }
        _ => 0.5,
    }
}

/// If the conjunct is `col ⊙ literal` (on table `ti`), return the
/// implied `(col, lo, hi)` range.
#[allow(clippy::type_complexity)]
fn eq_or_range(
    e: &AstExpr,
    b: &Binder,
    ti: usize,
) -> Result<Option<(usize, Option<Value>, Option<Value>)>> {
    let (col, op, lit, flipped) = match e {
        AstExpr::Binary { op, l, r } => match (&**l, &**r) {
            (AstExpr::Col(c), AstExpr::Lit(v)) => (c, op.as_str(), v.clone(), false),
            (AstExpr::Lit(v), AstExpr::Col(c)) => (c, op.as_str(), v.clone(), true),
            _ => return Ok(None),
        },
        AstExpr::Between { e, lo, hi } => {
            if let AstExpr::Col(c) = &**e {
                let (t, ci) = b.resolve(c)?;
                if t != ti {
                    return Ok(None);
                }
                return Ok(Some((ci, Some(lo.clone()), Some(hi.clone()))));
            }
            return Ok(None);
        }
        _ => return Ok(None),
    };
    let (t, ci) = b.resolve(col)?;
    if t != ti {
        return Ok(None);
    }
    let op = if flipped {
        match op {
            "<" => ">",
            "<=" => ">=",
            ">" => "<",
            ">=" => "<=",
            other => other,
        }
    } else {
        op
    };
    Ok(match op {
        "=" => Some((ci, Some(lit.clone()), Some(lit))),
        "<" | "<=" => Some((ci, None, Some(lit))),
        ">" | ">=" => Some((ci, Some(lit), None)),
        _ => None,
    })
}

/// Bind a scalar (non-aggregate) AST expression to flat positions.
fn bind_scalar(
    e: &AstExpr,
    b: &Binder,
    flat: &FxHashMap<(usize, usize), usize>,
    col_ty: Option<DataType>,
) -> Result<Expr> {
    Ok(match e {
        AstExpr::Col(c) => {
            let key = b.resolve(c)?;
            Expr::Col(
                *flat
                    .get(&key)
                    .ok_or_else(|| Error::Plan(format!("column {} not in layout", c.column)))?,
            )
        }
        AstExpr::Lit(v) => Expr::Lit(match col_ty {
            Some(ty) => coerce_lit(v, ty),
            None => v.clone(),
        }),
        AstExpr::Binary { op, l, r } => {
            // For comparisons against a column, coerce literal side to
            // the column's type (implicit casts follow the row plan,
            // §6.2).
            let lty = expr_col_type(l, b);
            let rty = expr_col_type(r, b);
            let lb = bind_scalar(l, b, flat, rty)?;
            let rb = bind_scalar(r, b, flat, lty)?;
            match op.as_str() {
                "=" => Expr::Cmp(CmpOp::Eq, Box::new(lb), Box::new(rb)),
                "<>" => Expr::Cmp(CmpOp::Ne, Box::new(lb), Box::new(rb)),
                "<" => Expr::Cmp(CmpOp::Lt, Box::new(lb), Box::new(rb)),
                "<=" => Expr::Cmp(CmpOp::Le, Box::new(lb), Box::new(rb)),
                ">" => Expr::Cmp(CmpOp::Gt, Box::new(lb), Box::new(rb)),
                ">=" => Expr::Cmp(CmpOp::Ge, Box::new(lb), Box::new(rb)),
                "+" => Expr::Arith(ArithOp::Add, Box::new(lb), Box::new(rb)),
                "-" => Expr::Arith(ArithOp::Sub, Box::new(lb), Box::new(rb)),
                "*" => Expr::Arith(ArithOp::Mul, Box::new(lb), Box::new(rb)),
                "/" => Expr::Arith(ArithOp::Div, Box::new(lb), Box::new(rb)),
                "AND" => lb.and(rb),
                "OR" => Expr::Or(Box::new(lb), Box::new(rb)),
                other => return Err(Error::Plan(format!("unsupported operator {other}"))),
            }
        }
        AstExpr::Not(x) => Expr::Not(Box::new(bind_scalar(x, b, flat, None)?)),
        AstExpr::Neg(x) => Expr::Arith(
            ArithOp::Sub,
            Box::new(Expr::Lit(Value::Int(0))),
            Box::new(bind_scalar(x, b, flat, None)?),
        ),
        AstExpr::Between { e, lo, hi } => {
            let ty = expr_col_type(e, b);
            let lo = ty.map_or_else(|| lo.clone(), |t| coerce_lit(lo, t));
            let hi = ty.map_or_else(|| hi.clone(), |t| coerce_lit(hi, t));
            Expr::Between(Box::new(bind_scalar(e, b, flat, None)?), lo, hi)
        }
        AstExpr::InList { e, list } => {
            let ty = expr_col_type(e, b);
            let list = list
                .iter()
                .map(|v| ty.map_or_else(|| v.clone(), |t| coerce_lit(v, t)))
                .collect();
            Expr::InList(Box::new(bind_scalar(e, b, flat, None)?), list)
        }
        AstExpr::Like { e, pattern } => Expr::Like(
            Box::new(bind_scalar(e, b, flat, None)?),
            LikePattern::parse(pattern)?,
        ),
        AstExpr::IsNull { e, negated } => {
            Expr::IsNull(Box::new(bind_scalar(e, b, flat, None)?), *negated)
        }
        AstExpr::Year(x) => Expr::Year(Box::new(bind_scalar(x, b, flat, None)?)),
        AstExpr::Agg { .. } => {
            return Err(Error::Plan(
                "aggregate in scalar context (missing GROUP BY?)".into(),
            ))
        }
    })
}

fn expr_col_type(e: &AstExpr, b: &Binder) -> Option<DataType> {
    if let AstExpr::Col(c) = e {
        if let Ok((ti, ci)) = b.resolve(c) {
            return Some(b.tables[ti].0.columns[ci].ty);
        }
    }
    None
}

/// Bind a select item in post-aggregation context: group-by expressions
/// map to leading output columns, aggregate calls are registered and
/// map to trailing columns.
fn bind_post_agg(
    e: &AstExpr,
    b: &Binder,
    flat: &FxHashMap<(usize, usize), usize>,
    group_ast: &[AstExpr],
    group_bound: &[Expr],
    aggs: &mut Vec<AggCall>,
) -> Result<Expr> {
    // exact group-by match?
    if let Some(pos) = group_ast.iter().position(|g| g == e) {
        return Ok(Expr::Col(pos));
    }
    match e {
        AstExpr::Agg {
            func,
            arg,
            distinct,
        } => {
            let call = AggCall {
                func: match func {
                    AggName::Count if arg.is_none() => AggFunc::CountStar,
                    AggName::Count => AggFunc::Count,
                    AggName::Sum => AggFunc::Sum,
                    AggName::Avg => AggFunc::Avg,
                    AggName::Min => AggFunc::Min,
                    AggName::Max => AggFunc::Max,
                },
                arg: arg
                    .as_ref()
                    .map(|a| bind_scalar(a, b, flat, None))
                    .transpose()?,
                distinct: *distinct,
            };
            let pos = if let Some(i) = aggs.iter().position(|c| *c == call) {
                i
            } else {
                aggs.push(call);
                aggs.len() - 1
            };
            Ok(Expr::Col(group_bound.len() + pos))
        }
        AstExpr::Binary { op, l, r } => {
            let lb = bind_post_agg(l, b, flat, group_ast, group_bound, aggs)?;
            let rb = bind_post_agg(r, b, flat, group_ast, group_bound, aggs)?;
            Ok(match op.as_str() {
                "+" => Expr::Arith(ArithOp::Add, Box::new(lb), Box::new(rb)),
                "-" => Expr::Arith(ArithOp::Sub, Box::new(lb), Box::new(rb)),
                "*" => Expr::Arith(ArithOp::Mul, Box::new(lb), Box::new(rb)),
                "/" => Expr::Arith(ArithOp::Div, Box::new(lb), Box::new(rb)),
                other => {
                    return Err(Error::Plan(format!(
                        "operator {other} not allowed over aggregates"
                    )))
                }
            })
        }
        AstExpr::Lit(v) => Ok(Expr::Lit(v.clone())),
        AstExpr::Year(x) => Ok(Expr::Year(Box::new(bind_post_agg(
            x,
            b,
            flat,
            group_ast,
            group_bound,
            aggs,
        )?))),
        other => Err(Error::Plan(format!(
            "select item must be a group key or aggregate: {other:?}"
        ))),
    }
}

/// Transform the bound (row-oriented) query into a column-engine
/// physical plan (paper §6.2).
pub fn to_column_plan(
    q: &BoundQuery,
    covered_of: &dyn Fn(&Schema) -> Option<Vec<usize>>,
) -> Result<PhysicalPlan> {
    // Per-table scans over the needed columns.
    let mut plan: Option<PhysicalPlan> = None;
    let mut flat_off = 0usize;
    for (ji, bt) in q.tables.iter().enumerate() {
        let covered = covered_of(&bt.schema).ok_or_else(|| {
            Error::ColumnEngineUnsupported(format!("table {} has no column index", bt.schema.name))
        })?;
        // map table col ordinal → covered position
        let cov_pos = |ci: usize| -> Result<usize> {
            covered.iter().position(|&c| c == ci).ok_or_else(|| {
                Error::ColumnEngineUnsupported(format!(
                    "column {} of {} not covered by its column index",
                    bt.schema.columns[ci].name, bt.schema.name
                ))
            })
        };
        let cols: Vec<usize> = bt
            .needed
            .iter()
            .map(|&ci| cov_pos(ci))
            .collect::<Result<_>>()?;
        let prune: Vec<PruneRange> = bt
            .prune
            .iter()
            .map(|(ci, lo, hi)| {
                Ok(PruneRange {
                    col: cov_pos(*ci)?,
                    lo: lo.clone(),
                    hi: hi.clone(),
                })
            })
            .collect::<Result<_>>()?;
        // scan filter: remap flat positions → local scan output positions
        let filter = bt.filter.as_ref().map(|f| f.remap(&|flat| flat - flat_off));
        let scan = PhysicalPlan::ColumnScan {
            table: bt.schema.table_id,
            cols,
            prune,
            filter,
        };
        plan = Some(match plan {
            None => scan,
            Some(left) => {
                let conds = &q.join_conds[ji];
                if conds.is_empty() {
                    return Err(Error::ColumnEngineUnsupported(format!(
                        "cartesian product with table {} (no join condition)",
                        bt.schema.name
                    )));
                }
                PhysicalPlan::HashJoin {
                    left: Box::new(left),
                    right: Box::new(scan),
                    left_keys: conds.iter().map(|(l, _)| *l).collect(),
                    right_keys: conds.iter().map(|(_, r)| *r - flat_off).collect(),
                }
            }
        });
        flat_off += bt.needed.len();
    }
    let mut plan = plan.ok_or_else(|| Error::Plan("query without tables".into()))?;
    if let Some(res) = &q.residual {
        plan = PhysicalPlan::Filter {
            input: Box::new(plan),
            pred: res.clone(),
        };
    }
    if !q.aggs.is_empty() || !q.group_by.is_empty() {
        plan = PhysicalPlan::HashAgg {
            input: Box::new(plan),
            group_by: q.group_by.clone(),
            aggs: q.aggs.clone(),
        };
    }
    plan = PhysicalPlan::Project {
        input: Box::new(plan),
        exprs: q.output.clone(),
    };
    if !q.order_by.is_empty() {
        plan = PhysicalPlan::Sort {
            input: Box::new(plan),
            keys: q.order_by.clone(),
            limit: q.limit,
        };
    } else if let Some(n) = q.limit {
        plan = PhysicalPlan::Limit {
            input: Box::new(plan),
            n,
        };
    }
    Ok(plan)
}
