//! Row-at-a-time executor — the "row-based PolarDB" baseline engine.
//!
//! Interprets a [`BoundQuery`] directly against the row store: index
//! nested-loop joins (PK or secondary probes when available), early
//! materialization, tuple-at-a-time expression evaluation. Deliberately
//! classic: this is the engine whose Fig. 9 execution times the column
//! engine is compared against, and the engine the optimizer picks for
//! point queries (paper §6.1).

use crate::plan::{AccessPath, BoundQuery, BoundTable};
use imci_common::{Error, Result, Value};
use imci_executor::{AggCall, AggFunc, ArithOp, Expr};
use rowstore::RowEngine;

/// Evaluate a bound expression against a single flat row.
pub fn eval_row(e: &Expr, row: &[Value]) -> Result<Value> {
    Ok(match e {
        Expr::Col(i) => row
            .get(*i)
            .cloned()
            .ok_or_else(|| Error::Execution(format!("row col {i} out of range")))?,
        Expr::Lit(v) => v.clone(),
        Expr::Cmp(op, a, b) => {
            let (x, y) = (eval_row(a, row)?, eval_row(b, row)?);
            match x.sql_cmp(&y) {
                Some(ord) => Value::Int(op.test(ord) as i64),
                None => Value::Null,
            }
        }
        Expr::Arith(op, a, b) => {
            let (x, y) = (eval_row(a, row)?, eval_row(b, row)?);
            if x.is_null() || y.is_null() {
                return Ok(Value::Null);
            }
            if *op != ArithOp::Div {
                if let (Value::Int(i), Value::Int(j)) = (&x, &y) {
                    return Ok(Value::Int(match op {
                        ArithOp::Add => i + j,
                        ArithOp::Sub => i - j,
                        ArithOp::Mul => i * j,
                        ArithOp::Div => unreachable!(),
                    }));
                }
            }
            let (i, j) = (
                x.as_f64()
                    .ok_or_else(|| Error::Execution(format!("arith on {x}")))?,
                y.as_f64()
                    .ok_or_else(|| Error::Execution(format!("arith on {y}")))?,
            );
            Value::Double(match op {
                ArithOp::Add => i + j,
                ArithOp::Sub => i - j,
                ArithOp::Mul => i * j,
                ArithOp::Div => i / j,
            })
        }
        Expr::And(a, b) => {
            let x = truthy(&eval_row(a, row)?);
            let y = truthy(&eval_row(b, row)?);
            Value::Int((x && y) as i64)
        }
        Expr::Or(a, b) => {
            let x = truthy(&eval_row(a, row)?);
            let y = truthy(&eval_row(b, row)?);
            Value::Int((x || y) as i64)
        }
        Expr::Not(a) => Value::Int(!truthy(&eval_row(a, row)?) as i64),
        Expr::Between(a, lo, hi) => {
            let v = eval_row(a, row)?;
            match (v.sql_cmp(lo), v.sql_cmp(hi)) {
                (Some(l), Some(h)) => Value::Int(
                    (l != std::cmp::Ordering::Less && h != std::cmp::Ordering::Greater) as i64,
                ),
                _ => Value::Null,
            }
        }
        Expr::InList(a, list) => {
            let v = eval_row(a, row)?;
            Value::Int((!v.is_null() && list.contains(&v)) as i64)
        }
        Expr::Like(a, pat) => match eval_row(a, row)? {
            Value::Str(s) => Value::Int(pat.matches(&s) as i64),
            _ => Value::Int(0),
        },
        Expr::IsNull(a, negated) => Value::Int((eval_row(a, row)?.is_null() != *negated) as i64),
        Expr::Year(a) => match eval_row(a, row)? {
            Value::Null => Value::Null,
            v => {
                let days = v
                    .as_int()
                    .ok_or_else(|| Error::Execution("YEAR() of non-date".into()))?;
                Value::Int(
                    imci_common::value::format_date(days)[..4]
                        .parse::<i64>()
                        .unwrap_or(0),
                )
            }
        },
    })
}

fn truthy(v: &Value) -> bool {
    matches!(v, Value::Int(x) if *x != 0)
}

fn fetch_table_rows(
    engine: &RowEngine,
    bt: &BoundTable,
    access: &AccessPath,
) -> Result<Vec<Vec<Value>>> {
    let rt = engine.table(&bt.schema.name)?;
    let project =
        |values: &[Value]| -> Vec<Value> { bt.needed.iter().map(|&c| values[c].clone()).collect() };
    let mut out = Vec::new();
    match access {
        AccessPath::PkLookup(pk) => {
            if let Some(row) = engine.get_row(&bt.schema.name, *pk)? {
                out.push(project(&row.values));
            }
        }
        AccessPath::Secondary { col, lo, hi } => {
            let sec = rt
                .secondary_on(*col)
                .ok_or_else(|| Error::Plan(format!("missing secondary index on col {col}")))?;
            for pk in sec.lookup_range(lo, hi) {
                if let Some(row) = engine.get_row(&bt.schema.name, pk)? {
                    out.push(project(&row.values));
                }
            }
        }
        AccessPath::FullScan => {
            engine.scan(&bt.schema.name, i64::MIN, i64::MAX, |_, row| {
                out.push(project(&row.values));
            })?;
        }
    }
    Ok(out)
}

/// Execute a bound query on the row engine; returns projected rows.
pub fn execute_row(q: &BoundQuery, engine: &RowEngine) -> Result<Vec<Vec<Value>>> {
    // ---- joins: index nested loop in the bound order ----
    let mut offsets = Vec::with_capacity(q.tables.len());
    let mut off = 0;
    for bt in &q.tables {
        offsets.push(off);
        off += bt.needed.len();
    }
    let filter_local = |bt: &BoundTable, flat_off: usize, row: &[Value]| -> Result<bool> {
        match &bt.filter {
            None => Ok(true),
            Some(f) => {
                let local = f.remap(&|c| c - flat_off);
                Ok(truthy(&eval_row(&local, row)?))
            }
        }
    };

    let first = &q.tables[0];
    let mut rows: Vec<Vec<Value>> = Vec::new();
    for r in fetch_table_rows(engine, first, &first.access)? {
        if filter_local(first, 0, &r)? {
            rows.push(r);
        }
    }

    for (ji, bt) in q.tables.iter().enumerate().skip(1) {
        let rt = engine.table(&bt.schema.name)?;
        let conds = &q.join_conds[ji];
        let flat_off = offsets[ji];
        let mut next: Vec<Vec<Value>> = Vec::new();
        // Pre-compute how to probe: prefer a join key that hits the PK
        // or a secondary index of the inner table.
        let probe = conds.iter().find_map(|(outer, inner)| {
            let local = bt.needed.get(inner - flat_off).copied()?;
            if local == bt.schema.pk_col() {
                Some((*outer, local, true))
            } else if rt.secondary_on(local).is_some() {
                Some((*outer, local, false))
            } else {
                None
            }
        });
        for outer_row in rows {
            let candidates: Vec<Vec<Value>> = match (&probe, &bt.access) {
                (_, AccessPath::PkLookup(pk)) => {
                    fetch_table_rows(engine, bt, &AccessPath::PkLookup(*pk))?
                }
                (Some((outer, local, is_pk)), _) => {
                    let key = outer_row[*outer].clone();
                    if *is_pk {
                        match key.as_int() {
                            Some(pk) => fetch_table_rows(engine, bt, &AccessPath::PkLookup(pk))?,
                            None => Vec::new(),
                        }
                    } else {
                        fetch_table_rows(
                            engine,
                            bt,
                            &AccessPath::Secondary {
                                col: *local,
                                lo: key.clone(),
                                hi: key,
                            },
                        )?
                    }
                }
                (None, access) => fetch_table_rows(engine, bt, access)?,
            };
            for inner in candidates {
                // check all join conds + local filter
                let ok = conds.iter().all(|(outer, inner_flat)| {
                    let local = inner_flat - flat_off;
                    outer_row[*outer].sql_cmp(&inner[local]) == Some(std::cmp::Ordering::Equal)
                });
                if !ok || !filter_local(bt, flat_off, &inner)? {
                    continue;
                }
                let mut combined = outer_row.clone();
                combined.extend(inner.iter().cloned());
                next.push(combined);
            }
        }
        rows = next;
    }

    // ---- residual filter ----
    if let Some(res) = &q.residual {
        rows.retain(|r| matches!(eval_row(res, r), Ok(v) if truthy(&v)));
    }

    // ---- aggregation ----
    let mut out_rows: Vec<Vec<Value>> = if !q.aggs.is_empty() || !q.group_by.is_empty() {
        let mut groups: std::collections::BTreeMap<Vec<Value>, Vec<RowAcc>> =
            std::collections::BTreeMap::new();
        for r in &rows {
            let key: Vec<Value> = q
                .group_by
                .iter()
                .map(|g| eval_row(g, r))
                .collect::<Result<_>>()?;
            let accs = groups
                .entry(key)
                .or_insert_with(|| q.aggs.iter().map(RowAcc::new).collect());
            for (acc, call) in accs.iter_mut().zip(&q.aggs) {
                let arg = match &call.arg {
                    Some(a) => Some(eval_row(a, r)?),
                    None => None,
                };
                acc.update(arg.as_ref());
            }
        }
        if groups.is_empty() && q.group_by.is_empty() {
            groups.insert(Vec::new(), q.aggs.iter().map(RowAcc::new).collect());
        }
        let mut out = Vec::with_capacity(groups.len());
        for (key, accs) in groups {
            let mut agg_row = key;
            agg_row.extend(accs.into_iter().map(RowAcc::finish));
            let projected: Vec<Value> = q
                .output
                .iter()
                .map(|e| eval_row(e, &agg_row))
                .collect::<Result<_>>()?;
            out.push(projected);
        }
        out
    } else {
        rows.iter()
            .map(|r| {
                q.output
                    .iter()
                    .map(|e| eval_row(e, r))
                    .collect::<Result<Vec<Value>>>()
            })
            .collect::<Result<_>>()?
    };

    // ---- order / limit ----
    if !q.order_by.is_empty() {
        out_rows.sort_by(|a, b| {
            for (pos, desc) in &q.order_by {
                let ord = a[*pos].cmp(&b[*pos]);
                if ord != std::cmp::Ordering::Equal {
                    return if *desc { ord.reverse() } else { ord };
                }
            }
            std::cmp::Ordering::Equal
        });
    }
    if let Some(n) = q.limit {
        out_rows.truncate(n);
    }
    Ok(out_rows)
}

enum RowAcc {
    CountStar(i64),
    Count(i64),
    CountDistinct(std::collections::BTreeSet<Value>),
    SumI(i64, bool),
    SumF(f64, bool),
    Avg(f64, i64),
    Min(Option<Value>),
    Max(Option<Value>),
}

impl RowAcc {
    fn new(c: &AggCall) -> RowAcc {
        match c.func {
            AggFunc::CountStar => RowAcc::CountStar(0),
            AggFunc::Count if c.distinct => RowAcc::CountDistinct(Default::default()),
            AggFunc::Count => RowAcc::Count(0),
            AggFunc::Sum => RowAcc::SumI(0, false),
            AggFunc::Avg => RowAcc::Avg(0.0, 0),
            AggFunc::Min => RowAcc::Min(None),
            AggFunc::Max => RowAcc::Max(None),
        }
    }

    fn update(&mut self, v: Option<&Value>) {
        match self {
            RowAcc::CountStar(n) => *n += 1,
            RowAcc::Count(n) => {
                if matches!(v, Some(x) if !x.is_null()) {
                    *n += 1;
                }
            }
            RowAcc::CountDistinct(s) => {
                if let Some(x) = v {
                    if !x.is_null() {
                        s.insert(x.clone());
                    }
                }
            }
            RowAcc::SumI(n, any) => match v {
                Some(Value::Int(i)) => {
                    *n += i;
                    *any = true;
                }
                Some(Value::Double(d)) => {
                    let cur = *n as f64 + d;
                    *self = RowAcc::SumF(cur, true);
                }
                _ => {}
            },
            RowAcc::SumF(f, any) => {
                if let Some(x) = v.and_then(|x| x.as_f64()) {
                    *f += x;
                    *any = true;
                }
            }
            RowAcc::Avg(s, n) => {
                if let Some(x) = v.and_then(|x| x.as_f64()) {
                    *s += x;
                    *n += 1;
                }
            }
            RowAcc::Min(m) => {
                if let Some(x) = v {
                    if !x.is_null() && m.as_ref().is_none_or(|c| x < c) {
                        *m = Some(x.clone());
                    }
                }
            }
            RowAcc::Max(m) => {
                if let Some(x) = v {
                    if !x.is_null() && m.as_ref().is_none_or(|c| x > c) {
                        *m = Some(x.clone());
                    }
                }
            }
        }
    }

    fn finish(self) -> Value {
        match self {
            RowAcc::CountStar(n) | RowAcc::Count(n) => Value::Int(n),
            RowAcc::CountDistinct(s) => Value::Int(s.len() as i64),
            RowAcc::SumI(n, any) => {
                if any {
                    Value::Int(n)
                } else {
                    Value::Null
                }
            }
            RowAcc::SumF(f, any) => {
                if any {
                    Value::Double(f)
                } else {
                    Value::Null
                }
            }
            RowAcc::Avg(s, n) => {
                if n == 0 {
                    Value::Null
                } else {
                    Value::Double(s / n as f64)
                }
            }
            RowAcc::Min(m) | RowAcc::Max(m) => m.unwrap_or(Value::Null),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use imci_executor::CmpOp;

    #[test]
    fn eval_row_basics() {
        let row = vec![Value::Int(5), Value::Str("abc".into()), Value::Null];
        let e = Expr::cmp(CmpOp::Gt, Expr::col(0), Expr::lit(3i64));
        assert_eq!(eval_row(&e, &row).unwrap(), Value::Int(1));
        let e = Expr::Like(
            Box::new(Expr::col(1)),
            imci_executor::LikePattern::parse("ab%").unwrap(),
        );
        assert_eq!(eval_row(&e, &row).unwrap(), Value::Int(1));
        let e = Expr::IsNull(Box::new(Expr::col(2)), false);
        assert_eq!(eval_row(&e, &row).unwrap(), Value::Int(1));
        let e = Expr::Arith(ArithOp::Add, Box::new(Expr::col(0)), Box::new(Expr::col(2)));
        assert_eq!(eval_row(&e, &row).unwrap(), Value::Null);
    }
}
