//! Abstract syntax tree for the MySQL-flavoured SQL subset.

use imci_common::Value;

/// A parsed statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// CREATE TABLE (Figure 3 syntax incl. `KEY COLUMN_INDEX(...)`).
    CreateTable(CreateTable),
    /// `ALTER TABLE t ADD COLUMN INDEX (c1, c2, ...)` (§3.3 online DDL).
    AlterAddColumnIndex {
        /// Table name.
        table: String,
        /// Covered columns.
        columns: Vec<String>,
    },
    /// `DROP TABLE t` — shipped to replicas as a versioned DDL record
    /// through the REDO stream, like every other catalog change.
    DropTable {
        /// Table name.
        table: String,
    },
    /// INSERT INTO t VALUES (...), (...).
    Insert {
        /// Table name.
        table: String,
        /// Row literals.
        rows: Vec<Vec<Value>>,
    },
    /// UPDATE t SET c = lit, ... WHERE <pk> = lit.
    Update {
        /// Table name.
        table: String,
        /// Column/value assignments.
        sets: Vec<(String, Value)>,
        /// WHERE conjuncts (must pin the primary key).
        filter: Vec<AstExpr>,
    },
    /// DELETE FROM t WHERE <pk> = lit.
    Delete {
        /// Table name.
        table: String,
        /// WHERE conjuncts.
        filter: Vec<AstExpr>,
    },
    /// SELECT query.
    Select(Box<SelectStmt>),
    /// `EXPLAIN [ANALYZE] <select>` — render the physical plan the
    /// router would execute (ANALYZE also runs it and reports
    /// per-operator rows, morsel counts, and wall-clock).
    Explain {
        /// `EXPLAIN ANALYZE` (execute and attach runtime counters).
        analyze: bool,
        /// The explained query.
        select: Box<SelectStmt>,
    },
}

/// CREATE TABLE payload.
#[derive(Debug, Clone, PartialEq)]
pub struct CreateTable {
    /// Table name.
    pub name: String,
    /// Column definitions: (name, sql type, not_null).
    pub columns: Vec<(String, String, bool)>,
    /// Primary key column.
    pub primary_key: String,
    /// Secondary indexes: (index name, columns).
    pub secondary: Vec<(String, Vec<String>)>,
    /// Column index columns (empty = none declared).
    pub column_index: Vec<String>,
}

/// A SELECT statement.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectStmt {
    /// Select list.
    pub items: Vec<SelectItem>,
    /// FROM tables (comma list and/or JOIN chain), with aliases.
    pub from: Vec<TableRef>,
    /// ON equalities from explicit JOIN syntax: (a, b) column refs.
    pub join_on: Vec<(ColRef, ColRef)>,
    /// WHERE expression (None = no filter).
    pub filter: Option<AstExpr>,
    /// GROUP BY expressions.
    pub group_by: Vec<AstExpr>,
    /// ORDER BY items: (key, descending).
    pub order_by: Vec<(OrderKey, bool)>,
    /// LIMIT.
    pub limit: Option<usize>,
}

/// One select-list item.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectItem {
    /// The expression (may contain aggregate calls).
    pub expr: AstExpr,
    /// Optional alias.
    pub alias: Option<String>,
}

/// A FROM-clause table with optional alias.
#[derive(Debug, Clone, PartialEq)]
pub struct TableRef {
    /// Table name.
    pub table: String,
    /// Alias (defaults to the table name).
    pub alias: String,
}

/// A (possibly qualified) column reference.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ColRef {
    /// Qualifier (alias or table name), if written.
    pub qualifier: Option<String>,
    /// Column name.
    pub column: String,
}

/// ORDER BY key.
#[derive(Debug, Clone, PartialEq)]
pub enum OrderKey {
    /// 1-based select-list position.
    Position(usize),
    /// Alias or column name.
    Name(String),
}

/// Aggregate function names.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggName {
    /// COUNT
    Count,
    /// SUM
    Sum,
    /// AVG
    Avg,
    /// MIN
    Min,
    /// MAX
    Max,
}

/// Expression AST.
#[derive(Debug, Clone, PartialEq)]
pub enum AstExpr {
    /// Column reference.
    Col(ColRef),
    /// Literal value.
    Lit(Value),
    /// Binary operation (`=`, `<`, `AND`, `+`, ...).
    Binary {
        /// Operator lexeme (upper-cased for keywords).
        op: String,
        /// Left operand.
        l: Box<AstExpr>,
        /// Right operand.
        r: Box<AstExpr>,
    },
    /// NOT expr.
    Not(Box<AstExpr>),
    /// expr BETWEEN lo AND hi.
    Between {
        /// Tested expression.
        e: Box<AstExpr>,
        /// Lower bound literal.
        lo: Value,
        /// Upper bound literal.
        hi: Value,
    },
    /// expr IN (v, ...).
    InList {
        /// Tested expression.
        e: Box<AstExpr>,
        /// List literals.
        list: Vec<Value>,
    },
    /// expr LIKE 'pattern'.
    Like {
        /// Tested expression.
        e: Box<AstExpr>,
        /// Raw pattern.
        pattern: String,
    },
    /// expr IS [NOT] NULL.
    IsNull {
        /// Tested expression.
        e: Box<AstExpr>,
        /// True for IS NOT NULL.
        negated: bool,
    },
    /// Aggregate call.
    Agg {
        /// Function.
        func: AggName,
        /// Argument (None = `*`).
        arg: Option<Box<AstExpr>>,
        /// DISTINCT flag.
        distinct: bool,
    },
    /// YEAR(expr).
    Year(Box<AstExpr>),
    /// -expr.
    Neg(Box<AstExpr>),
}

impl AstExpr {
    /// Split a conjunctive expression into its conjuncts.
    pub fn split_conjuncts(self, out: &mut Vec<AstExpr>) {
        match self {
            AstExpr::Binary { op, l, r } if op == "AND" => {
                l.split_conjuncts(out);
                r.split_conjuncts(out);
            }
            e => out.push(e),
        }
    }

    /// Does this expression contain an aggregate call?
    pub fn has_agg(&self) -> bool {
        match self {
            AstExpr::Agg { .. } => true,
            AstExpr::Col(_) | AstExpr::Lit(_) => false,
            AstExpr::Binary { l, r, .. } => l.has_agg() || r.has_agg(),
            AstExpr::Not(e)
            | AstExpr::Year(e)
            | AstExpr::Neg(e)
            | AstExpr::Like { e, .. }
            | AstExpr::IsNull { e, .. }
            | AstExpr::Between { e, .. }
            | AstExpr::InList { e, .. } => e.has_agg(),
        }
    }
}
