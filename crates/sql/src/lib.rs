//! SQL frontend: parser, binder/optimizer, cost-based engine routing,
//! and statement execution against one node (paper §6.1–§6.2).
//!
//! [`QueryEngine`] is the per-node entry point: DML and DDL run on the
//! row engine (auto-commit), SELECTs are bound once and routed by the
//! row-plan cost estimate — below the threshold they run on the
//! row-at-a-time executor, above it they are transformed into a column
//! plan and run on the batch engine, with run-time fallback to the row
//! engine on column-engine errors (§6.2).

pub mod ast;
pub mod parser;
pub mod plan;
pub mod row_exec;

use imci_common::{
    ColumnDef, DataType, Error, FxHashMap, IndexDef, IndexKind, Result, Schema, Value,
};
use imci_core::ColumnStore;
use imci_executor::{ExecContext, PhysicalPlan};
use parking_lot::Mutex;
use rowstore::RowEngine;
use std::sync::Arc;

pub use ast::{SelectStmt, Statement};
pub use parser::{is_read_only, parse};
pub use plan::{bind_select, to_column_plan, BoundQuery, Stats};
pub use row_exec::{eval_row, execute_row};

/// Which engine executed a query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineChoice {
    /// Row-at-a-time executor over the row store.
    Row,
    /// Vectorized batch executor over the column index.
    Column,
}

/// Per-call options for [`QueryEngine::run`] — the single knob surface
/// for engine routing and executor tuning. Every field defaults to
/// `None`, meaning "use the node-global setting" (the atomics on
/// [`QueryEngine`], which benches and ablations flip); a `Some` travels
/// with the call and is safe under concurrent sessions.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct QueryOptions {
    /// Pin SELECTs to one engine (None = cost-based routing; the
    /// node-global [`QueryEngine::set_force`] still applies when unset).
    pub engine: Option<EngineChoice>,
    /// Morsel-parallelism cap for the column executor (clamped to ≥ 1).
    pub parallelism: Option<usize>,
    /// Late-materialized scans (ablation switch).
    pub late_materialization: Option<bool>,
    /// Pack min/max pruning (ablation switch).
    pub prune: Option<bool>,
}

impl QueryOptions {
    /// Options that pin the engine, leaving everything else node-global.
    pub fn forced(engine: Option<EngineChoice>) -> QueryOptions {
        QueryOptions {
            engine,
            ..QueryOptions::default()
        }
    }
}

/// A query result in row form.
#[derive(Debug, Clone)]
pub struct QueryResult {
    /// Output column names.
    pub columns: Vec<String>,
    /// Result rows.
    pub rows: Vec<Vec<Value>>,
    /// Engine that produced the result (SELECTs; Row for DML).
    pub engine: EngineChoice,
    /// Rows affected (DML).
    pub affected: usize,
}

impl QueryResult {
    fn dml(affected: usize) -> QueryResult {
        QueryResult {
            columns: Vec::new(),
            rows: Vec::new(),
            engine: EngineChoice::Row,
            affected,
        }
    }
}

/// Per-node query engine: row store + optional column store + router.
pub struct QueryEngine {
    /// The node's row engine (RW: logging; RO: replica).
    pub row: Arc<RowEngine>,
    /// The node's column store (present on RO nodes).
    pub store: Option<Arc<ColumnStore>>,
    /// Row-cost threshold above which queries route to the column
    /// engine (paper §6.1 intra-node routing).
    pub cost_threshold: f64,
    /// Scan parallelism for the column engine.
    pub parallelism: std::sync::atomic::AtomicUsize,
    /// Pack min/max pruning switch (ablation).
    pub prune_enabled: std::sync::atomic::AtomicBool,
    /// Late-materialized scan switch (ablation): filter on compressed
    /// packs, gather payload columns after.
    pub late_mat_enabled: std::sync::atomic::AtomicBool,
    /// Force a specific engine (benchmarks); None = cost-based.
    pub force: Mutex<Option<EngineChoice>>,
}

impl QueryEngine {
    /// Engine over a row store only (RW node).
    pub fn row_only(row: Arc<RowEngine>) -> QueryEngine {
        QueryEngine {
            row,
            store: None,
            cost_threshold: 10_000.0,
            parallelism: std::sync::atomic::AtomicUsize::new(
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(4),
            ),
            prune_enabled: std::sync::atomic::AtomicBool::new(true),
            late_mat_enabled: std::sync::atomic::AtomicBool::new(true),
            force: Mutex::new(None),
        }
    }

    /// Engine over both formats (RO node).
    pub fn dual(row: Arc<RowEngine>, store: Arc<ColumnStore>) -> QueryEngine {
        QueryEngine {
            store: Some(store),
            ..QueryEngine::row_only(row)
        }
    }

    /// Force all SELECTs to one engine (benchmarks/ablations).
    pub fn set_force(&self, choice: Option<EngineChoice>) {
        *self.force.lock() = choice;
    }

    /// Set scan parallelism (thread-safe; benches/ablations).
    pub fn set_parallelism(&self, n: usize) {
        self.parallelism
            .store(n.max(1), std::sync::atomic::Ordering::Relaxed);
    }

    /// Toggle pack min/max pruning (thread-safe; ablations).
    pub fn set_prune_enabled(&self, on: bool) {
        self.prune_enabled
            .store(on, std::sync::atomic::Ordering::Relaxed);
    }

    /// Current scan parallelism.
    pub fn get_parallelism(&self) -> usize {
        self.parallelism.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Whether pruning is enabled.
    pub fn get_prune_enabled(&self) -> bool {
        self.prune_enabled
            .load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Toggle late-materialized scans (thread-safe; ablations).
    pub fn set_late_materialization(&self, on: bool) {
        self.late_mat_enabled
            .store(on, std::sync::atomic::Ordering::Relaxed);
    }

    /// Whether late materialization is enabled.
    pub fn get_late_materialization(&self) -> bool {
        self.late_mat_enabled
            .load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Execute any SQL statement (DML auto-commits). **The** entry
    /// point: SELECT routing, per-call engine pins, executor tuning,
    /// and `EXPLAIN [ANALYZE]` all go through here, parameterized by
    /// [`QueryOptions`]. The old `execute`/`execute_forced`/
    /// `execute_select*` family survives as deprecated shims over this.
    pub fn run(&self, sql: &str, opts: &QueryOptions) -> Result<QueryResult> {
        // Scanner-level point-read fast path: recognize the hot OLTP
        // shape (`SELECT cols FROM t WHERE pk = k`) before even lexing
        // — the full parse costs more than the lookup. Any mismatch or
        // failed name resolution falls through to the real parser.
        if opts.engine.or(*self.force.lock()) != Some(EngineChoice::Column) {
            if let Some(ps) = parser::scan_point_select(sql) {
                let out: Vec<(&str, Option<&str>)> = ps.cols.iter().map(|c| (*c, None)).collect();
                if let Some(r) = self.point_lookup(ps.table, ps.filter_col, &out, ps.pk)? {
                    return Ok(r);
                }
            }
        }
        let stmt = parse(sql)?;
        self.run_stmt(&stmt, opts)
    }

    /// Execute a parsed statement with options.
    fn run_stmt(&self, stmt: &Statement, opts: &QueryOptions) -> Result<QueryResult> {
        match stmt {
            Statement::Select(s) => self.run_select(s, opts).map(|(r, _)| r),
            Statement::Explain { analyze, select } => self.run_explain(select, *analyze, opts),
            Statement::CreateTable(ct) => {
                let mut columns = Vec::with_capacity(ct.columns.len());
                for (name, ty, not_null) in &ct.columns {
                    let ty = DataType::parse_sql(ty)?;
                    columns.push(if *not_null {
                        ColumnDef::not_null(name.clone(), ty)
                    } else {
                        ColumnDef::new(name.clone(), ty)
                    });
                }
                let col_of = |n: &str| -> Result<usize> {
                    ct.columns
                        .iter()
                        .position(|(c, _, _)| c == n)
                        .ok_or_else(|| Error::Catalog(format!("unknown column {n}")))
                };
                let mut indexes = vec![IndexDef {
                    kind: IndexKind::Primary,
                    name: "PRIMARY".into(),
                    columns: vec![col_of(&ct.primary_key)?],
                }];
                for (name, cols) in &ct.secondary {
                    indexes.push(IndexDef {
                        kind: IndexKind::Secondary,
                        name: name.clone(),
                        columns: cols.iter().map(|c| col_of(c)).collect::<Result<_>>()?,
                    });
                }
                if !ct.column_index.is_empty() {
                    indexes.push(IndexDef {
                        kind: IndexKind::Column,
                        name: "column_index".into(),
                        columns: ct
                            .column_index
                            .iter()
                            .map(|c| col_of(c))
                            .collect::<Result<_>>()?,
                    });
                }
                self.row.create_table(&ct.name, columns, indexes)?;
                Ok(QueryResult::dml(0))
            }
            Statement::AlterAddColumnIndex { table, columns } => {
                self.alter_add_column_index(table, columns)?;
                Ok(QueryResult::dml(0))
            }
            Statement::DropTable { table } => {
                let table_id = self.row.table(table)?.schema.table_id;
                self.row.drop_table(table)?;
                if let Some(store) = &self.store {
                    // Single-node engines (RW playing both roles in
                    // tests/benches) drop their local index too; RO
                    // nodes do this via the replicated DDL record.
                    store.remove_index(table_id);
                }
                Ok(QueryResult::dml(0))
            }
            Statement::Insert { table, rows } => {
                let rt = self.row.table(table)?;
                let mut txn = self.row.begin();
                let mut n = 0;
                for lits in rows {
                    // Coerce literals to the declared column types
                    // (date strings, int→double).
                    let mut vals = Vec::with_capacity(lits.len());
                    for (v, c) in lits.iter().zip(&rt.schema.columns) {
                        vals.push(if v.is_null() {
                            Value::Null
                        } else {
                            v.coerce_to(c.ty)?
                        });
                    }
                    if let Err(e) = self.row.insert(&mut txn, table, vals) {
                        self.row.abort(txn)?;
                        return Err(e);
                    }
                    n += 1;
                }
                self.row.commit(txn)?;
                Ok(QueryResult::dml(n))
            }
            Statement::Update {
                table,
                sets,
                filter,
            } => {
                let rt = self.row.table(table)?;
                let pk = pk_from_filter(&rt.schema, filter)?;
                let mut txn = self.row.begin();
                let affected = match self.row.get_row(table, pk)? {
                    Some(mut row) => {
                        for (col, v) in sets {
                            let ci = rt
                                .schema
                                .col_index(col)
                                .ok_or_else(|| Error::Plan(format!("unknown column {col}")))?;
                            row.values[ci] = if v.is_null() {
                                Value::Null
                            } else {
                                v.coerce_to(rt.schema.columns[ci].ty)?
                            };
                        }
                        if let Err(e) = self.row.update(&mut txn, table, pk, row.values) {
                            self.row.abort(txn)?;
                            return Err(e);
                        }
                        self.row.commit(txn)?;
                        1
                    }
                    None => {
                        self.row.commit(txn)?;
                        0
                    }
                };
                Ok(QueryResult::dml(affected))
            }
            Statement::Delete { table, filter } => {
                let rt = self.row.table(table)?;
                let pk = pk_from_filter(&rt.schema, filter)?;
                let mut txn = self.row.begin();
                let affected = if self.row.get_row(table, pk)?.is_some() {
                    if let Err(e) = self.row.delete(&mut txn, table, pk) {
                        self.row.abort(txn)?;
                        return Err(e);
                    }
                    self.row.commit(txn)?;
                    1
                } else {
                    self.row.commit(txn)?;
                    0
                };
                Ok(QueryResult::dml(affected))
            }
        }
    }

    /// Bind, route, and execute a SELECT; returns the engine used.
    fn run_select(
        &self,
        s: &SelectStmt,
        opts: &QueryOptions,
    ) -> Result<(QueryResult, EngineChoice)> {
        // Point-read fast path: a single-table pk-equality SELECT of
        // plain columns skips bind/plan entirely and hits the row
        // store's pk index directly. This is the hot shape of the
        // service tier's OLTP traffic; binding alone costs more than
        // the lookup. Anything the fast path cannot prove returns
        // `None` and falls through to the general path unchanged.
        if opts.engine.or(*self.force.lock()) != Some(EngineChoice::Column) {
            if let Some(result) = self.try_point_select(s)? {
                return Ok((result, EngineChoice::Row));
            }
        }
        let q = self.bind(s)?;
        let choice = self.route(&q, opts);
        if choice == EngineChoice::Column {
            match self.run_column(&q, opts) {
                Ok(rows) => {
                    return Ok((
                        QueryResult {
                            columns: q.out_names.clone(),
                            rows,
                            engine: EngineChoice::Column,
                            affected: 0,
                        },
                        EngineChoice::Column,
                    ))
                }
                Err(Error::ColumnEngineUnsupported(_)) => {
                    // Run-time fallback to the row engine (§6.2).
                }
                Err(e) => return Err(e),
            }
        }
        let rows = execute_row(&q, &self.row)?;
        Ok((
            QueryResult {
                columns: q.out_names.clone(),
                rows,
                engine: EngineChoice::Row,
                affected: 0,
            },
            EngineChoice::Row,
        ))
    }

    /// Bind a SELECT against the node's catalog.
    fn bind(&self, s: &SelectStmt) -> Result<BoundQuery> {
        let row_engine = self.row.clone();
        let lookup = |name: &str| -> Result<Arc<Schema>> {
            Ok(Arc::new(row_engine.table(name)?.schema.clone()))
        };
        bind_select(s, &lookup, self)
    }

    /// §6.1 intra-node routing: per-call pin, then node-global force,
    /// then the row-plan cost estimate against the threshold.
    fn route(&self, q: &BoundQuery, opts: &QueryOptions) -> EngineChoice {
        match opts.engine.or(*self.force.lock()) {
            Some(c) => c,
            None => {
                if q.row_cost > self.cost_threshold && self.store.is_some() {
                    EngineChoice::Column
                } else {
                    EngineChoice::Row
                }
            }
        }
    }

    /// `EXPLAIN [ANALYZE] <select>`: report the route the optimizer
    /// picks and — for the column engine — the physical operator tree,
    /// one text row per line. ANALYZE also executes the query and
    /// annotates every operator with the rows it produced and the
    /// morsels dispatched for it, plus a wall-clock total.
    fn run_explain(
        &self,
        s: &SelectStmt,
        analyze: bool,
        opts: &QueryOptions,
    ) -> Result<QueryResult> {
        let q = self.bind(s)?;
        let choice = self.route(&q, opts);
        let mut column_lines: Option<Vec<String>> = None;
        if choice == EngineChoice::Column {
            match self.column_plan_ctx(&q, opts) {
                Ok((plan, ctx)) => {
                    let mut lines = vec![format!(
                        "engine=column cost={:.0} parallelism={}",
                        q.row_cost, ctx.parallelism
                    )];
                    if analyze {
                        let (_, stats) = imci_executor::execute_with_stats(&plan, &ctx)?;
                        for (i, l) in plan.explain().into_iter().enumerate() {
                            lines.push(format!(
                                "{l} rows={} morsels={}",
                                stats.rows.get(i).copied().unwrap_or(0),
                                stats.morsels.get(i).copied().unwrap_or(0)
                            ));
                        }
                        lines.push(format!(
                            "total: morsels={} wall_ms={:.3}",
                            stats.total_morsels(),
                            stats.wall.as_secs_f64() * 1e3
                        ));
                    } else {
                        lines.extend(plan.explain());
                    }
                    column_lines = Some(lines);
                }
                // Same run-time fallback the real execution takes.
                Err(Error::ColumnEngineUnsupported(_)) => {}
                Err(e) => return Err(e),
            }
        }
        let (engine, lines) = match column_lines {
            Some(lines) => (EngineChoice::Column, lines),
            None => {
                let mut lines = vec![
                    format!("engine=row cost={:.0}", q.row_cost),
                    "RowPipeline (row-at-a-time executor)".to_string(),
                ];
                if analyze {
                    let t0 = std::time::Instant::now();
                    let rows = execute_row(&q, &self.row)?;
                    lines.push(format!(
                        "total: rows={} wall_ms={:.3}",
                        rows.len(),
                        t0.elapsed().as_secs_f64() * 1e3
                    ));
                }
                (EngineChoice::Row, lines)
            }
        };
        Ok(QueryResult {
            columns: vec!["plan".to_string()],
            rows: lines.into_iter().map(|l| vec![Value::Str(l)]).collect(),
            engine,
            affected: 0,
        })
    }

    /// Try the point-read fast path: `SELECT <plain cols> FROM <one
    /// table> WHERE <pk> = <int literal>` (optionally qualified,
    /// aliased, or LIMITed). Returns `Ok(None)` when the statement
    /// doesn't fit, deferring every error report to the general
    /// bind/plan path so messages stay identical.
    fn try_point_select(&self, s: &SelectStmt) -> Result<Option<QueryResult>> {
        if s.from.len() != 1
            || !s.join_on.is_empty()
            || !s.group_by.is_empty()
            || !s.order_by.is_empty()
            || s.limit == Some(0)
            || s.items.is_empty()
        {
            return Ok(None);
        }
        let tref = &s.from[0];
        let qualifier_ok = |c: &ast::ColRef| match &c.qualifier {
            None => true,
            Some(q) => q == &tref.alias || q == &tref.table,
        };
        // WHERE <pk col> = <int literal> (either operand order).
        let Some(ast::AstExpr::Binary { op, l, r }) = &s.filter else {
            return Ok(None);
        };
        if op != "=" {
            return Ok(None);
        }
        let (fcol, lit) = match (&**l, &**r) {
            (ast::AstExpr::Col(c), ast::AstExpr::Lit(v))
            | (ast::AstExpr::Lit(v), ast::AstExpr::Col(c)) => (c, v),
            _ => return Ok(None),
        };
        let &Value::Int(pk) = lit else {
            return Ok(None);
        };
        if !qualifier_ok(fcol) {
            return Ok(None);
        }
        let mut out = Vec::with_capacity(s.items.len());
        for item in &s.items {
            let ast::AstExpr::Col(c) = &item.expr else {
                return Ok(None); // expressions/aggregates: general path
            };
            if !qualifier_ok(c) {
                return Ok(None);
            }
            out.push((c.column.as_str(), item.alias.as_deref()));
        }
        self.point_lookup(&tref.table, &fcol.column, &out, pk)
    }

    /// Shared core of the point-read fast path: resolve names against
    /// the catalog and answer from the row store's pk index. `Ok(None)`
    /// whenever resolution fails — the general path owns error
    /// reporting (and the cluster's catalog-refresh retry relies on
    /// the general path's `Error::Catalog`).
    fn point_lookup(
        &self,
        table: &str,
        filter_col: &str,
        out: &[(&str, Option<&str>)],
        pk: i64,
    ) -> Result<Option<QueryResult>> {
        let Ok(rt) = self.row.table(table) else {
            return Ok(None); // unknown table: let bind report it
        };
        let schema = &rt.schema;
        if schema.col_index(filter_col) != Some(schema.pk_col()) {
            return Ok(None); // not keyed on the pk: needs the planner
        }
        let mut proj = Vec::with_capacity(out.len());
        let mut columns = Vec::with_capacity(out.len());
        for (name, alias) in out {
            let Some(idx) = schema.col_index(name) else {
                return Ok(None); // unknown column: let bind report it
            };
            proj.push(idx);
            columns.push(alias.unwrap_or(name).to_ascii_lowercase());
        }
        let rows = match rt.tree.get(pk)? {
            Some(img) => {
                let row = imci_common::Row::decode(&img)?;
                vec![proj.iter().map(|&i| row.values[i].clone()).collect()]
            }
            None => Vec::new(),
        };
        Ok(Some(QueryResult {
            columns,
            rows,
            engine: EngineChoice::Row,
            affected: 0,
        }))
    }

    /// Build the column plan and execution context for a bound query:
    /// plan transform, snapshot pinning (one consistent snapshot per
    /// table), then tuning — per-call options override the node-global
    /// atomics, and the planner's [`PhysicalPlan::parallel_safe`] check
    /// clamps parallelism to 1 for any plan shape without a
    /// parallel-safe merge. Shared by execution and `EXPLAIN`.
    fn column_plan_ctx(
        &self,
        q: &BoundQuery,
        opts: &QueryOptions,
    ) -> Result<(PhysicalPlan, ExecContext)> {
        let store = self
            .store
            .as_ref()
            .ok_or_else(|| Error::ColumnEngineUnsupported("node has no column store".into()))?;
        let covered_of = |schema: &Schema| -> Option<Vec<usize>> {
            store.index(schema.table_id).ok().map(|i| i.covered.clone())
        };
        let plan = to_column_plan(q, &covered_of)?;
        let mut snaps = FxHashMap::default();
        for bt in &q.tables {
            let idx = store.index(bt.schema.table_id).map_err(|_| {
                Error::ColumnEngineUnsupported(format!("no column index for {}", bt.schema.name))
            })?;
            snaps.insert(bt.schema.table_id, Arc::new(idx.snapshot()));
        }
        let mut ctx = ExecContext::new(snaps);
        ctx.parallelism = opts
            .parallelism
            .unwrap_or_else(|| self.get_parallelism())
            .max(1);
        if !plan.parallel_safe() {
            ctx.parallelism = 1;
        }
        ctx.prune_enabled = opts.prune.unwrap_or_else(|| self.get_prune_enabled());
        ctx.late_materialization = opts
            .late_materialization
            .unwrap_or_else(|| self.get_late_materialization());
        Ok((plan, ctx))
    }

    /// Execute the bound query on the column engine.
    fn run_column(&self, q: &BoundQuery, opts: &QueryOptions) -> Result<Vec<Vec<Value>>> {
        let (plan, ctx) = self.column_plan_ctx(q, opts)?;
        let out = imci_executor::execute(&plan, &ctx)?;
        Ok((0..out.len).map(|r| out.row(r)).collect())
    }

    /// Execute any SQL statement with node-global settings.
    #[deprecated(note = "use `QueryEngine::run` with `QueryOptions`")]
    pub fn execute(&self, sql: &str) -> Result<QueryResult> {
        self.run(sql, &QueryOptions::default())
    }

    /// Execute with a per-call engine pin for SELECTs.
    #[deprecated(note = "use `QueryEngine::run` with `QueryOptions { engine, .. }`")]
    pub fn execute_forced(&self, sql: &str, force: Option<EngineChoice>) -> Result<QueryResult> {
        self.run(sql, &QueryOptions::forced(force))
    }

    /// Execute a parsed statement with node-global settings.
    #[deprecated(note = "use `QueryEngine::run` with `QueryOptions`")]
    pub fn execute_stmt(&self, stmt: &Statement) -> Result<QueryResult> {
        self.run_stmt(stmt, &QueryOptions::default())
    }

    /// Bind, route, and execute a SELECT; returns the engine used.
    #[deprecated(note = "use `QueryEngine::run`; `QueryResult::engine` reports the engine")]
    pub fn execute_select(&self, s: &SelectStmt) -> Result<(QueryResult, EngineChoice)> {
        self.run_select(s, &QueryOptions::default())
    }

    /// Execute a SELECT with a per-call engine pin.
    #[deprecated(note = "use `QueryEngine::run` with `QueryOptions { engine, .. }`")]
    pub fn execute_select_with(
        &self,
        s: &SelectStmt,
        force: Option<EngineChoice>,
    ) -> Result<(QueryResult, EngineChoice)> {
        self.run_select(s, &QueryOptions::forced(force))
    }

    /// Build the column physical plan without running it (benches).
    pub fn column_plan(&self, s: &SelectStmt) -> Result<PhysicalPlan> {
        let row_engine = self.row.clone();
        let lookup = |name: &str| -> Result<Arc<Schema>> {
            Ok(Arc::new(row_engine.table(name)?.schema.clone()))
        };
        let q = bind_select(s, &lookup, self)?;
        let store = self
            .store
            .as_ref()
            .ok_or_else(|| Error::ColumnEngineUnsupported("node has no column store".into()))?;
        let covered_of = |schema: &Schema| -> Option<Vec<usize>> {
            store.index(schema.table_id).ok().map(|i| i.covered.clone())
        };
        to_column_plan(&q, &covered_of)
    }

    /// §3.3 online `ALTER TABLE ... ADD COLUMN INDEX`: register the new
    /// index in the schema and (on nodes with a column store) build it
    /// by a consistent scan of the row store.
    pub fn alter_add_column_index(&self, table: &str, columns: &[String]) -> Result<()> {
        let rt = self.row.table(table)?;
        let mut schema = rt.schema.clone();
        let cols: Vec<usize> = columns
            .iter()
            .map(|c| {
                schema
                    .col_index(c)
                    .ok_or_else(|| Error::Catalog(format!("unknown column {c}")))
            })
            .collect::<Result<_>>()?;
        schema.indexes.retain(|i| i.kind != IndexKind::Column);
        schema.indexes.push(IndexDef {
            kind: IndexKind::Column,
            name: "column_index".into(),
            columns: cols,
        });
        self.row.replace_table_schema(table, schema.clone())?;
        if let Some(store) = &self.store {
            let mut rows = Vec::new();
            self.row.scan(table, i64::MIN, i64::MAX, |_, row| {
                rows.push(row.values);
            })?;
            let idx = imci_core::build_from_rows(
                &schema,
                store.group_capacity(),
                imci_common::Vid(self.row.txns.last_commit_vid().get()),
                rows.into_iter(),
            )?;
            store.install(idx);
        }
        Ok(())
    }
}

impl Stats for QueryEngine {
    fn table_rows(&self, schema: &Schema) -> u64 {
        if let Some(store) = &self.store {
            if let Ok(idx) = store.index(schema.table_id) {
                let n = idx.approx_live_rows();
                if n > 0 {
                    return n;
                }
            }
        }
        self.row
            .table(&schema.name)
            .map(|rt| rt.approx_rows())
            .unwrap_or(0)
    }
}

fn pk_from_filter(schema: &Schema, filter: &[ast::AstExpr]) -> Result<i64> {
    for c in filter {
        if let ast::AstExpr::Binary { op, l, r } = c {
            if op == "=" {
                if let (ast::AstExpr::Col(cr), ast::AstExpr::Lit(v)) = (&**l, &**r) {
                    if schema.col_index(&cr.column) == Some(schema.pk_col()) {
                        return v.as_int().ok_or_else(|| {
                            Error::Plan("primary key literal must be an integer".into())
                        });
                    }
                }
            }
        }
    }
    Err(Error::Unsupported(
        "UPDATE/DELETE must pin the primary key with `pk = <int>`".into(),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use imci_wal::{LogWriter, PropagationMode};
    use polarfs_sim::PolarFs;

    /// Tests drive the one public entry point with default options.
    fn run(qe: &QueryEngine, sql: &str) -> Result<QueryResult> {
        qe.run(sql, &QueryOptions::default())
    }

    fn node() -> QueryEngine {
        let fs = PolarFs::instant();
        let log = LogWriter::new(fs.clone(), PropagationMode::ReuseRedo);
        let row = RowEngine::new_rw(fs, log, 1 << 20);
        let store = Arc::new(ColumnStore::new(256));
        let qe = QueryEngine {
            store: Some(store),
            ..QueryEngine::row_only(row)
        };
        run(
            &qe,
            "CREATE TABLE items (
                id INT NOT NULL, grp INT, qty INT, price DOUBLE, name VARCHAR(32),
                PRIMARY KEY(id), KEY grp_idx(grp),
                KEY COLUMN_INDEX(id, grp, qty, price, name))",
        )
        .unwrap();
        // mirror DML into the column store for dual-engine tests
        qe
    }

    fn seed(qe: &QueryEngine, n: i64) {
        for i in 0..n {
            run(
                qe,
                &format!(
                    "INSERT INTO items VALUES ({i}, {}, {}, {}, 'name{}')",
                    i % 5,
                    i % 10,
                    i as f64 * 1.5,
                    i % 7
                ),
            )
            .unwrap();
        }
        // Mirror into the column index (on a single test node we play
        // both RW and RO roles).
        let store = qe.store.as_ref().unwrap();
        let rt = qe.row.table("items").unwrap();
        let idx = store.create_index(&rt.schema);
        let mut rows = Vec::new();
        qe.row
            .scan("items", i64::MIN, i64::MAX, |_, r| rows.push(r.values))
            .unwrap();
        for r in rows {
            idx.insert(imci_common::Vid(1), &idx.project_row(&r))
                .unwrap();
        }
        idx.advance_visible(imci_common::Vid(1));
    }

    #[test]
    fn dml_roundtrip() {
        let qe = node();
        assert_eq!(
            run(&qe, "INSERT INTO items VALUES (1, 1, 1, 9.5, 'x')")
                .unwrap()
                .affected,
            1
        );
        run(&qe, "UPDATE items SET qty = 42 WHERE id = 1").unwrap();
        let row = qe.row.get_row("items", 1).unwrap().unwrap();
        assert_eq!(row.values[2], Value::Int(42));
        assert_eq!(
            run(&qe, "DELETE FROM items WHERE id = 1").unwrap().affected,
            1
        );
        assert!(qe.row.get_row("items", 1).unwrap().is_none());
        assert_eq!(
            run(&qe, "DELETE FROM items WHERE id = 1").unwrap().affected,
            0
        );
    }

    #[test]
    fn point_select_fast_path_matches_general_path() {
        let qe = node();
        seed(&qe, 50);
        // Shapes the fast path serves; the column engine (which never
        // takes it) is the reference for result equivalence.
        let shapes = [
            "SELECT name FROM items WHERE id = 7",
            "SELECT qty, name FROM items WHERE 8 = id",
            "SELECT i.name AS n, i.id FROM items i WHERE i.id = 9",
            "SELECT price FROM items WHERE id = 3 LIMIT 5",
            "SELECT id FROM items WHERE id = 99999", // miss -> 0 rows
        ];
        for sql in shapes {
            let fast = run(&qe, sql).unwrap();
            assert_eq!(fast.engine, EngineChoice::Row, "{sql}");
            let general = qe
                .run(sql, &QueryOptions::forced(Some(EngineChoice::Column)))
                .unwrap();
            assert_eq!(fast.rows, general.rows, "{sql}");
            assert_eq!(fast.columns, general.columns, "{sql}");
        }
        // Aliased output names survive the fast path.
        let res = run(&qe, "SELECT name AS label FROM items WHERE id = 1").unwrap();
        assert_eq!(res.columns, vec!["label".to_string()]);
        // Shapes that must fall back still work and stay correct.
        let res = run(&qe, "SELECT COUNT(*) FROM items WHERE id = 7").unwrap();
        assert_eq!(res.rows[0][0], Value::Int(1));
        let res = run(&qe, "SELECT id FROM items WHERE grp = 2").unwrap();
        assert_eq!(res.rows.len(), 10);
        // Error reporting is untouched: unknown column/table messages
        // still come from the binder.
        assert!(matches!(
            run(&qe, "SELECT nope FROM items WHERE id = 1"),
            Err(Error::Plan(_))
        ));
        assert!(matches!(
            run(&qe, "SELECT x FROM missing WHERE id = 1"),
            Err(Error::Catalog(_))
        ));
    }

    #[test]
    fn both_engines_agree_on_aggregation() {
        let qe = node();
        seed(&qe, 200);
        let sql = "SELECT grp, COUNT(*), SUM(qty), AVG(price)
                   FROM items WHERE id < 100 GROUP BY grp ORDER BY grp";
        let row_res = qe
            .run(sql, &QueryOptions::forced(Some(EngineChoice::Row)))
            .unwrap();
        assert_eq!(row_res.engine, EngineChoice::Row);
        let col_res = qe
            .run(sql, &QueryOptions::forced(Some(EngineChoice::Column)))
            .unwrap();
        assert_eq!(col_res.engine, EngineChoice::Column);
        assert_eq!(row_res.rows.len(), 5);
        assert_eq!(row_res.rows, col_res.rows, "engines must agree");
    }

    #[test]
    fn both_engines_agree_on_join() {
        let qe = node();
        seed(&qe, 60);
        // Self-join via qty → id.
        let sql = "SELECT a.id, b.name FROM items a JOIN items b ON a.qty = b.id
                   WHERE a.id < 20 ORDER BY 1, 2 LIMIT 50";
        let r1 = qe
            .run(sql, &QueryOptions::forced(Some(EngineChoice::Row)))
            .unwrap();
        let r2 = qe
            .run(sql, &QueryOptions::forced(Some(EngineChoice::Column)))
            .unwrap();
        assert!(!r1.rows.is_empty());
        assert_eq!(r1.rows, r2.rows);
    }

    #[test]
    fn cost_routing_prefers_row_for_point_queries() {
        let qe = node();
        seed(&qe, 100);
        let res = run(&qe, "SELECT name FROM items WHERE id = 5").unwrap();
        assert_eq!(
            res.engine,
            EngineChoice::Row,
            "PK lookup routes to row engine"
        );
        assert_eq!(res.rows.len(), 1);
    }

    #[test]
    fn cost_routing_prefers_column_for_scans() {
        let mut qe = node();
        qe.cost_threshold = 50.0;
        seed(&qe, 200);
        let res = run(
            &qe,
            "SELECT grp, SUM(price) FROM items GROUP BY grp ORDER BY grp",
        )
        .unwrap();
        assert_eq!(res.engine, EngineChoice::Column);
    }

    #[test]
    fn fallback_when_column_index_missing() {
        let mut qe = node();
        qe.cost_threshold = 0.0; // force column attempt
        run(
            &qe,
            "CREATE TABLE bare (id INT NOT NULL, v INT, PRIMARY KEY(id))",
        )
        .unwrap();
        run(&qe, "INSERT INTO bare VALUES (1, 10), (2, 20)").unwrap();
        let res = run(&qe, "SELECT v FROM bare ORDER BY v").unwrap();
        assert_eq!(res.engine, EngineChoice::Row, "run-time fallback (§6.2)");
        assert_eq!(res.rows.len(), 2);
    }

    #[test]
    fn update_requires_pk() {
        let qe = node();
        seed(&qe, 5);
        assert!(run(&qe, "UPDATE items SET qty = 1 WHERE grp = 0").is_err());
    }

    #[test]
    fn explain_reports_plan_and_analyze_counts() {
        let qe = node();
        seed(&qe, 100);
        let opts = QueryOptions::forced(Some(EngineChoice::Column));
        let res = qe
            .run(
                "EXPLAIN SELECT grp, SUM(qty) FROM items GROUP BY grp",
                &opts,
            )
            .unwrap();
        assert_eq!(res.columns, vec!["plan".to_string()]);
        assert_eq!(res.engine, EngineChoice::Column);
        let text: Vec<String> = res
            .rows
            .iter()
            .map(|r| match &r[0] {
                Value::Str(s) => s.clone(),
                o => panic!("{o:?}"),
            })
            .collect();
        assert!(text[0].starts_with("engine=column"), "{text:?}");
        assert!(text.iter().any(|l| l.contains("HashAgg")), "{text:?}");
        assert!(text.iter().any(|l| l.contains("ColumnScan")), "{text:?}");
        // ANALYZE executes and attaches rows/morsels per operator.
        let res = qe
            .run(
                "EXPLAIN ANALYZE SELECT grp, SUM(qty) FROM items GROUP BY grp",
                &opts,
            )
            .unwrap();
        let text: Vec<String> = res
            .rows
            .iter()
            .map(|r| match &r[0] {
                Value::Str(s) => s.clone(),
                o => panic!("{o:?}"),
            })
            .collect();
        let scan_line = text
            .iter()
            .find(|l| l.contains("ColumnScan"))
            .expect("scan line");
        assert!(scan_line.contains("rows=100"), "{scan_line}");
        assert!(scan_line.contains("morsels="), "{scan_line}");
        assert!(
            text.last().unwrap().contains("wall_ms="),
            "{:?}",
            text.last()
        );
        // Row-engine EXPLAIN (and the column fallback) still answers.
        let res = run(&qe, "EXPLAIN ANALYZE SELECT name FROM items WHERE id = 3").unwrap();
        assert_eq!(res.engine, EngineChoice::Row);
        assert!(!res.rows.is_empty());
    }

    #[test]
    fn per_call_options_override_node_globals() {
        let qe = node();
        seed(&qe, 100);
        let sql = "SELECT grp, COUNT(*) FROM items GROUP BY grp ORDER BY grp";
        let baseline = qe
            .run(sql, &QueryOptions::forced(Some(EngineChoice::Column)))
            .unwrap();
        // Serial, no pruning, early materialization: same answer.
        let tuned = qe
            .run(
                sql,
                &QueryOptions {
                    engine: Some(EngineChoice::Column),
                    parallelism: Some(1),
                    late_materialization: Some(false),
                    prune: Some(false),
                },
            )
            .unwrap();
        assert_eq!(baseline.rows, tuned.rows);
        // The per-call pin must not leak into the node-global force.
        assert_eq!(*qe.force.lock(), None);
    }
}
