//! Hand-written lexer + recursive-descent parser for the SQL subset.

use crate::ast::*;
use imci_common::{Error, Result, Value};

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Num(String),
    Str(String),
    Punct(String),
    Eof,
}

struct Lexer {
    toks: Vec<Tok>,
    pos: usize,
}

fn lex(sql: &str) -> Result<Vec<Tok>> {
    let b = sql.as_bytes();
    let mut i = 0;
    let mut out = Vec::new();
    while i < b.len() {
        let c = b[i] as char;
        if c.is_ascii_whitespace() {
            i += 1;
        } else if c == '-' && i + 1 < b.len() && b[i + 1] == b'-' {
            // `-- ...` line comment: runs to end of line (or input).
            while i < b.len() && b[i] != b'\n' {
                i += 1;
            }
        } else if c == '/' && i + 1 < b.len() && b[i + 1] == b'*' {
            // `/* ... */` block comment.
            match sql[i + 2..].find("*/") {
                Some(end) => i += 2 + end + 2,
                None => return Err(Error::Parse("unterminated block comment".into())),
            }
        } else if c.is_ascii_alphabetic() || c == '_' {
            let start = i;
            while i < b.len() && ((b[i] as char).is_ascii_alphanumeric() || b[i] == b'_') {
                i += 1;
            }
            out.push(Tok::Ident(sql[start..i].to_string()));
        } else if c.is_ascii_digit()
            || (c == '.' && i + 1 < b.len() && (b[i + 1] as char).is_ascii_digit())
        {
            let start = i;
            while i < b.len()
                && ((b[i] as char).is_ascii_digit()
                    || b[i] == b'.'
                    || b[i] == b'e'
                    || b[i] == b'E'
                    || ((b[i] == b'+' || b[i] == b'-')
                        && i > start
                        && (b[i - 1] == b'e' || b[i - 1] == b'E')))
            {
                i += 1;
            }
            out.push(Tok::Num(sql[start..i].to_string()));
        } else if c == '\'' {
            i += 1;
            let mut s = String::new();
            loop {
                if i >= b.len() {
                    return Err(Error::Parse("unterminated string literal".into()));
                }
                if b[i] == b'\'' {
                    if i + 1 < b.len() && b[i + 1] == b'\'' {
                        s.push('\'');
                        i += 2;
                    } else {
                        i += 1;
                        break;
                    }
                } else {
                    s.push(b[i] as char);
                    i += 1;
                }
            }
            out.push(Tok::Str(s));
        } else {
            // multi-char operators first
            let two = if i + 1 < b.len() { &sql[i..i + 2] } else { "" };
            if ["<=", ">=", "<>", "!="].contains(&two) {
                out.push(Tok::Punct(if two == "!=" {
                    "<>".into()
                } else {
                    two.into()
                }));
                i += 2;
            } else if "(),.=<>*+-/;".contains(c) {
                out.push(Tok::Punct(c.to_string()));
                i += 1;
            } else {
                return Err(Error::Parse(format!("unexpected character '{c}'")));
            }
        }
    }
    out.push(Tok::Eof);
    Ok(out)
}

impl Lexer {
    fn peek(&self) -> &Tok {
        &self.toks[self.pos]
    }

    fn next(&mut self) -> Tok {
        let t = self.toks[self.pos].clone();
        if self.pos < self.toks.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn peek_kw(&self, kw: &str) -> bool {
        matches!(self.peek(), Tok::Ident(s) if s.eq_ignore_ascii_case(kw))
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.peek_kw(kw) {
            self.next();
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<()> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(Error::Parse(format!(
                "expected {kw}, got {:?}",
                self.peek()
            )))
        }
    }

    fn eat_punct(&mut self, p: &str) -> bool {
        if matches!(self.peek(), Tok::Punct(s) if s == p) {
            self.next();
            true
        } else {
            false
        }
    }

    fn expect_punct(&mut self, p: &str) -> Result<()> {
        if self.eat_punct(p) {
            Ok(())
        } else {
            Err(Error::Parse(format!(
                "expected '{p}', got {:?}",
                self.peek()
            )))
        }
    }

    fn ident(&mut self) -> Result<String> {
        match self.next() {
            Tok::Ident(s) => Ok(s.to_ascii_lowercase()),
            t => Err(Error::Parse(format!("expected identifier, got {t:?}"))),
        }
    }
}

/// Parse one SQL statement.
pub fn parse(sql: &str) -> Result<Statement> {
    let mut lx = Lexer {
        toks: lex(sql)?,
        pos: 0,
    };
    // `(SELECT ...)` — set-operation-style parenthesized query. Only
    // SELECT may be parenthesized at statement level.
    let mut parens = 0usize;
    while matches!(lx.peek(), Tok::Punct(p) if p == "(") {
        lx.next();
        parens += 1;
    }
    if parens > 0 {
        let inner = parse_select(&mut lx)?;
        for _ in 0..parens {
            lx.expect_punct(")")?;
        }
        lx.eat_punct(";");
        if *lx.peek() != Tok::Eof {
            return Err(Error::Parse(format!(
                "trailing tokens after statement: {:?}",
                lx.peek()
            )));
        }
        return Ok(Statement::Select(Box::new(inner)));
    }
    let stmt = if lx.peek_kw("select") {
        Statement::Select(Box::new(parse_select(&mut lx)?))
    } else if lx.peek_kw("explain") {
        lx.eat_kw("explain");
        let analyze = lx.eat_kw("analyze");
        Statement::Explain {
            analyze,
            select: Box::new(parse_select(&mut lx)?),
        }
    } else if lx.peek_kw("create") {
        parse_create(&mut lx)?
    } else if lx.peek_kw("with") {
        // CTEs classify as reads (see `is_read_only`) but are not yet
        // executable; surface that precisely instead of "unsupported
        // statement start".
        return Err(Error::Unsupported(
            "WITH (common table expressions) is not yet supported".into(),
        ));
    } else if lx.peek_kw("insert") {
        parse_insert(&mut lx)?
    } else if lx.peek_kw("update") {
        parse_update(&mut lx)?
    } else if lx.peek_kw("delete") {
        parse_delete(&mut lx)?
    } else if lx.peek_kw("alter") {
        parse_alter(&mut lx)?
    } else if lx.peek_kw("drop") {
        parse_drop(&mut lx)?
    } else {
        return Err(Error::Parse(format!(
            "unsupported statement start: {:?}",
            lx.peek()
        )));
    };
    lx.eat_punct(";");
    if *lx.peek() != Tok::Eof {
        return Err(Error::Parse(format!(
            "trailing tokens after statement: {:?}",
            lx.peek()
        )));
    }
    Ok(stmt)
}

/// Cheap statement classification for the proxy's "rough syntax parser"
/// (paper §6.1 inter-node routing): read-only statements go to RO
/// nodes. Leading `--`/`/* */` comments and `(` are stripped first, and
/// `SELECT`, `WITH`, and `EXPLAIN` all count as reads — a `SELECT`
/// hidden behind a comment must not be misrouted to the RW node, which
/// would bypass RO load balancing, per-session consistency, and
/// `FORCE_ENGINE`; an `EXPLAIN` must reach a node that actually holds
/// the column index it describes.
pub fn is_read_only(sql: &str) -> bool {
    let mut rest = sql;
    loop {
        rest = rest.trim_start();
        if let Some(after) = rest.strip_prefix("--") {
            // Line comment: everything up to the newline (or the end).
            rest = match after.find('\n') {
                Some(nl) => &after[nl + 1..],
                None => "",
            };
        } else if let Some(after) = rest.strip_prefix("/*") {
            rest = match after.find("*/") {
                Some(end) => &after[end + 2..],
                None => "",
            };
        } else if let Some(after) = rest.strip_prefix('(') {
            rest = after;
        } else {
            break;
        }
    }
    let word_len = rest
        .find(|c: char| !c.is_ascii_alphanumeric() && c != '_')
        .unwrap_or(rest.len());
    let word = &rest[..word_len];
    word.eq_ignore_ascii_case("select")
        || word.eq_ignore_ascii_case("with")
        || word.eq_ignore_ascii_case("explain")
}

/// The shape recognized by [`scan_point_select`]: a single-table
/// pk-equality point read of bare columns.
#[derive(Debug, PartialEq, Eq)]
pub struct PointSelect<'a> {
    /// Projected column names, in select-list order.
    pub cols: Vec<&'a str>,
    /// Table name.
    pub table: &'a str,
    /// The filtered column (callers must verify it is the pk).
    pub filter_col: &'a str,
    /// The literal key.
    pub pk: i64,
}

/// Zero-allocation recognizer for the hot OLTP statement shape:
///
/// ```text
/// SELECT c1, c2, ... FROM t WHERE c = <int> [;]
/// ```
///
/// This is the service tier's "rough syntax parser" (paper §6.1) taken
/// one step further: the full lexer allocates a token vector per
/// statement, which costs more than the pk lookup the statement asks
/// for. Anything that doesn't match exactly — qualifiers, aliases,
/// expressions, extra clauses, comments — returns `None` and goes
/// through the real parser. Matching is purely syntactic; callers
/// resolve names against the catalog and fall back if that fails.
pub fn scan_point_select(sql: &str) -> Option<PointSelect<'_>> {
    struct Scan<'a> {
        b: &'a [u8],
        s: &'a str,
        pos: usize,
    }
    impl<'a> Scan<'a> {
        fn skip_ws(&mut self) {
            while self.pos < self.b.len() && self.b[self.pos].is_ascii_whitespace() {
                self.pos += 1;
            }
        }
        fn ident(&mut self) -> Option<&'a str> {
            self.skip_ws();
            let start = self.pos;
            if self.pos >= self.b.len()
                || !(self.b[self.pos].is_ascii_alphabetic() || self.b[self.pos] == b'_')
            {
                return None;
            }
            while self.pos < self.b.len()
                && (self.b[self.pos].is_ascii_alphanumeric() || self.b[self.pos] == b'_')
            {
                self.pos += 1;
            }
            Some(&self.s[start..self.pos])
        }
        fn kw(&mut self, kw: &str) -> Option<()> {
            let save = self.pos;
            match self.ident() {
                Some(w) if w.eq_ignore_ascii_case(kw) => Some(()),
                _ => {
                    self.pos = save;
                    None
                }
            }
        }
        fn punct(&mut self, c: u8) -> bool {
            self.skip_ws();
            if self.pos < self.b.len() && self.b[self.pos] == c {
                self.pos += 1;
                true
            } else {
                false
            }
        }
        fn int(&mut self) -> Option<i64> {
            self.skip_ws();
            let start = self.pos;
            if self.pos < self.b.len() && self.b[self.pos] == b'-' {
                self.pos += 1;
            }
            let digits = self.pos;
            while self.pos < self.b.len() && self.b[self.pos].is_ascii_digit() {
                self.pos += 1;
            }
            if self.pos == digits {
                self.pos = start;
                return None;
            }
            self.s[start..self.pos].parse().ok()
        }
        fn end(&mut self) -> bool {
            let _ = self.punct(b';');
            self.skip_ws();
            self.pos == self.b.len()
        }
    }
    let mut t = Scan {
        b: sql.as_bytes(),
        s: sql,
        pos: 0,
    };
    t.kw("select")?;
    let mut cols = Vec::new();
    loop {
        cols.push(t.ident()?);
        if !t.punct(b',') {
            break;
        }
    }
    t.kw("from")?;
    let table = t.ident()?;
    t.kw("where")?;
    let filter_col = t.ident()?;
    if !t.punct(b'=') {
        return None;
    }
    let pk = t.int()?;
    if !t.end() {
        return None;
    }
    // A projected "column" that is really a keyword means the shape was
    // misread (e.g. `SELECT x FROM t` aliasing) — be conservative.
    for w in cols.iter().chain([&table, &filter_col]) {
        for kw in ["select", "from", "where", "and", "or", "join", "as"] {
            if w.eq_ignore_ascii_case(kw) {
                return None;
            }
        }
    }
    Some(PointSelect {
        cols,
        table,
        filter_col,
        pk,
    })
}

fn parse_create(lx: &mut Lexer) -> Result<Statement> {
    lx.expect_kw("create")?;
    lx.expect_kw("table")?;
    let name = lx.ident()?;
    lx.expect_punct("(")?;
    let mut columns = Vec::new();
    let mut primary_key = None;
    let mut secondary = Vec::new();
    let mut column_index = Vec::new();
    loop {
        if lx.peek_kw("primary") {
            lx.next();
            lx.expect_kw("key")?;
            lx.expect_punct("(")?;
            primary_key = Some(lx.ident()?);
            lx.expect_punct(")")?;
        } else if lx.peek_kw("key") || lx.peek_kw("index") {
            lx.next();
            let idx_name = lx.ident()?;
            lx.expect_punct("(")?;
            let mut cols = vec![lx.ident()?];
            while lx.eat_punct(",") {
                cols.push(lx.ident()?);
            }
            lx.expect_punct(")")?;
            if idx_name.starts_with("column_index") {
                column_index = cols;
            } else {
                secondary.push((idx_name, cols));
            }
        } else {
            let col = lx.ident()?;
            let mut ty = lx.ident()?;
            // swallow (11) / (15,2) type params
            if lx.eat_punct("(") {
                loop {
                    match lx.next() {
                        Tok::Punct(p) if p == ")" => break,
                        Tok::Eof => return Err(Error::Parse("bad type params".into())),
                        _ => {}
                    }
                }
            }
            let mut not_null = false;
            loop {
                if lx.eat_kw("not") {
                    lx.expect_kw("null")?;
                    not_null = true;
                } else if lx.eat_kw("default") {
                    // DEFAULT NULL / literal — swallow one token
                    lx.next();
                } else if lx.eat_kw("defult") {
                    // the paper's Figure 3 typo; accept it for fun
                    lx.next();
                } else {
                    break;
                }
            }
            ty = ty.to_ascii_uppercase();
            columns.push((col, ty, not_null));
        }
        if !lx.eat_punct(",") {
            break;
        }
    }
    lx.expect_punct(")")?;
    Ok(Statement::CreateTable(CreateTable {
        name,
        columns,
        primary_key: primary_key
            .ok_or_else(|| Error::Parse("CREATE TABLE requires a PRIMARY KEY".into()))?,
        secondary,
        column_index,
    }))
}

fn parse_alter(lx: &mut Lexer) -> Result<Statement> {
    lx.expect_kw("alter")?;
    lx.expect_kw("table")?;
    let table = lx.ident()?;
    lx.expect_kw("add")?;
    lx.expect_kw("column")?;
    lx.expect_kw("index")?;
    lx.expect_punct("(")?;
    let mut columns = vec![lx.ident()?];
    while lx.eat_punct(",") {
        columns.push(lx.ident()?);
    }
    lx.expect_punct(")")?;
    Ok(Statement::AlterAddColumnIndex { table, columns })
}

fn parse_drop(lx: &mut Lexer) -> Result<Statement> {
    lx.expect_kw("drop")?;
    lx.expect_kw("table")?;
    let table = lx.ident()?;
    Ok(Statement::DropTable { table })
}

fn parse_literal(lx: &mut Lexer) -> Result<Value> {
    let neg = lx.eat_punct("-");
    match lx.next() {
        Tok::Num(n) => {
            if n.contains('.') || n.contains('e') || n.contains('E') {
                let v: f64 = n
                    .parse()
                    .map_err(|_| Error::Parse(format!("bad number {n}")))?;
                Ok(Value::Double(if neg { -v } else { v }))
            } else {
                let v: i64 = n
                    .parse()
                    .map_err(|_| Error::Parse(format!("bad number {n}")))?;
                Ok(Value::Int(if neg { -v } else { v }))
            }
        }
        Tok::Str(s) => Ok(Value::Str(s)),
        Tok::Ident(s) if s.eq_ignore_ascii_case("null") => Ok(Value::Null),
        Tok::Ident(s) if s.eq_ignore_ascii_case("date") => match lx.next() {
            Tok::Str(d) => Ok(Value::Date(imci_common::value::parse_date_str(&d)?)),
            t => Err(Error::Parse(format!("expected date string, got {t:?}"))),
        },
        t => Err(Error::Parse(format!("expected literal, got {t:?}"))),
    }
}

fn parse_insert(lx: &mut Lexer) -> Result<Statement> {
    lx.expect_kw("insert")?;
    lx.expect_kw("into")?;
    let table = lx.ident()?;
    lx.expect_kw("values")?;
    let mut rows = Vec::new();
    loop {
        lx.expect_punct("(")?;
        let mut row = vec![parse_literal(lx)?];
        while lx.eat_punct(",") {
            row.push(parse_literal(lx)?);
        }
        lx.expect_punct(")")?;
        rows.push(row);
        if !lx.eat_punct(",") {
            break;
        }
    }
    Ok(Statement::Insert { table, rows })
}

fn parse_update(lx: &mut Lexer) -> Result<Statement> {
    lx.expect_kw("update")?;
    let table = lx.ident()?;
    lx.expect_kw("set")?;
    let mut sets = Vec::new();
    loop {
        let col = lx.ident()?;
        lx.expect_punct("=")?;
        sets.push((col, parse_literal(lx)?));
        if !lx.eat_punct(",") {
            break;
        }
    }
    lx.expect_kw("where")?;
    let filter_expr = parse_expr(lx)?;
    let mut filter = Vec::new();
    filter_expr.split_conjuncts(&mut filter);
    Ok(Statement::Update {
        table,
        sets,
        filter,
    })
}

fn parse_delete(lx: &mut Lexer) -> Result<Statement> {
    lx.expect_kw("delete")?;
    lx.expect_kw("from")?;
    let table = lx.ident()?;
    lx.expect_kw("where")?;
    let filter_expr = parse_expr(lx)?;
    let mut filter = Vec::new();
    filter_expr.split_conjuncts(&mut filter);
    Ok(Statement::Delete { table, filter })
}

fn parse_select(lx: &mut Lexer) -> Result<SelectStmt> {
    lx.expect_kw("select")?;
    let mut items = Vec::new();
    loop {
        let expr = parse_expr(lx)?;
        let alias = if lx.eat_kw("as") {
            Some(lx.ident()?)
        } else {
            None
        };
        items.push(SelectItem { expr, alias });
        if !lx.eat_punct(",") {
            break;
        }
    }
    lx.expect_kw("from")?;
    let mut from = Vec::new();
    let mut join_on = Vec::new();
    let parse_table = |lx: &mut Lexer| -> Result<TableRef> {
        let table = lx.ident()?;
        let alias = match lx.peek() {
            Tok::Ident(s)
                if ![
                    "inner", "join", "on", "where", "group", "order", "limit", "as",
                ]
                .contains(&s.to_ascii_lowercase().as_str()) =>
            {
                lx.ident()?
            }
            _ => {
                if lx.eat_kw("as") {
                    lx.ident()?
                } else {
                    table.clone()
                }
            }
        };
        Ok(TableRef { table, alias })
    };
    from.push(parse_table(lx)?);
    loop {
        if lx.eat_punct(",") {
            from.push(parse_table(lx)?);
        } else if lx.peek_kw("inner") || lx.peek_kw("join") {
            lx.eat_kw("inner");
            lx.expect_kw("join")?;
            from.push(parse_table(lx)?);
            lx.expect_kw("on")?;
            // ON a.c1 = b.c2 [AND a.c3 = b.c4 ...]
            loop {
                let l = parse_colref(lx)?;
                lx.expect_punct("=")?;
                let r = parse_colref(lx)?;
                join_on.push((l, r));
                if !lx.eat_kw("and") {
                    break;
                }
                // lookahead: if the next AND operand is not a colref=colref,
                // we mis-split; our dialect restricts ON to equalities.
            }
        } else {
            break;
        }
    }
    let filter = if lx.eat_kw("where") {
        Some(parse_expr(lx)?)
    } else {
        None
    };
    let mut group_by = Vec::new();
    if lx.eat_kw("group") {
        lx.expect_kw("by")?;
        loop {
            group_by.push(parse_expr(lx)?);
            if !lx.eat_punct(",") {
                break;
            }
        }
    }
    let mut order_by = Vec::new();
    if lx.eat_kw("order") {
        lx.expect_kw("by")?;
        loop {
            let key = match lx.peek().clone() {
                Tok::Num(n) => {
                    lx.next();
                    OrderKey::Position(
                        n.parse()
                            .map_err(|_| Error::Parse(format!("bad ORDER BY position {n}")))?,
                    )
                }
                Tok::Ident(_) => {
                    let name = lx.ident()?;
                    // qualified name t.c → keep only column part
                    if lx.eat_punct(".") {
                        OrderKey::Name(lx.ident()?)
                    } else {
                        OrderKey::Name(name)
                    }
                }
                t => return Err(Error::Parse(format!("bad ORDER BY key {t:?}"))),
            };
            let desc = if lx.eat_kw("desc") {
                true
            } else {
                lx.eat_kw("asc");
                false
            };
            order_by.push((key, desc));
            if !lx.eat_punct(",") {
                break;
            }
        }
    }
    let limit = if lx.eat_kw("limit") {
        match lx.next() {
            Tok::Num(n) => Some(
                n.parse()
                    .map_err(|_| Error::Parse(format!("bad LIMIT {n}")))?,
            ),
            t => return Err(Error::Parse(format!("bad LIMIT {t:?}"))),
        }
    } else {
        None
    };
    Ok(SelectStmt {
        items,
        from,
        join_on,
        filter,
        group_by,
        order_by,
        limit,
    })
}

fn parse_colref(lx: &mut Lexer) -> Result<ColRef> {
    let a = lx.ident()?;
    if lx.eat_punct(".") {
        Ok(ColRef {
            qualifier: Some(a),
            column: lx.ident()?,
        })
    } else {
        Ok(ColRef {
            qualifier: None,
            column: a,
        })
    }
}

// Expression parsing with precedence: OR < AND < NOT < cmp < +- < */ < unary.
fn parse_expr(lx: &mut Lexer) -> Result<AstExpr> {
    parse_or(lx)
}

fn parse_or(lx: &mut Lexer) -> Result<AstExpr> {
    let mut l = parse_and(lx)?;
    while lx.eat_kw("or") {
        let r = parse_and(lx)?;
        l = AstExpr::Binary {
            op: "OR".into(),
            l: Box::new(l),
            r: Box::new(r),
        };
    }
    Ok(l)
}

fn parse_and(lx: &mut Lexer) -> Result<AstExpr> {
    let mut l = parse_not(lx)?;
    while lx.eat_kw("and") {
        let r = parse_not(lx)?;
        l = AstExpr::Binary {
            op: "AND".into(),
            l: Box::new(l),
            r: Box::new(r),
        };
    }
    Ok(l)
}

fn parse_not(lx: &mut Lexer) -> Result<AstExpr> {
    if lx.eat_kw("not") {
        Ok(AstExpr::Not(Box::new(parse_not(lx)?)))
    } else {
        parse_cmp(lx)
    }
}

fn parse_cmp(lx: &mut Lexer) -> Result<AstExpr> {
    let l = parse_add(lx)?;
    // BETWEEN / IN / LIKE / IS
    if lx.eat_kw("between") {
        let lo = parse_literal(lx)?;
        lx.expect_kw("and")?;
        let hi = parse_literal(lx)?;
        return Ok(AstExpr::Between {
            e: Box::new(l),
            lo,
            hi,
        });
    }
    if lx.eat_kw("in") {
        lx.expect_punct("(")?;
        let mut list = vec![parse_literal(lx)?];
        while lx.eat_punct(",") {
            list.push(parse_literal(lx)?);
        }
        lx.expect_punct(")")?;
        return Ok(AstExpr::InList {
            e: Box::new(l),
            list,
        });
    }
    if lx.eat_kw("like") {
        match lx.next() {
            Tok::Str(p) => {
                return Ok(AstExpr::Like {
                    e: Box::new(l),
                    pattern: p,
                })
            }
            t => return Err(Error::Parse(format!("LIKE expects a string, got {t:?}"))),
        }
    }
    if lx.eat_kw("is") {
        let negated = lx.eat_kw("not");
        lx.expect_kw("null")?;
        return Ok(AstExpr::IsNull {
            e: Box::new(l),
            negated,
        });
    }
    for op in ["<=", ">=", "<>", "=", "<", ">"] {
        if lx.eat_punct(op) {
            let r = parse_add(lx)?;
            return Ok(AstExpr::Binary {
                op: op.to_string(),
                l: Box::new(l),
                r: Box::new(r),
            });
        }
    }
    Ok(l)
}

fn parse_add(lx: &mut Lexer) -> Result<AstExpr> {
    let mut l = parse_mul(lx)?;
    loop {
        let op = if lx.eat_punct("+") {
            "+"
        } else if lx.eat_punct("-") {
            "-"
        } else {
            break;
        };
        let r = parse_mul(lx)?;
        l = AstExpr::Binary {
            op: op.into(),
            l: Box::new(l),
            r: Box::new(r),
        };
    }
    Ok(l)
}

fn parse_mul(lx: &mut Lexer) -> Result<AstExpr> {
    let mut l = parse_unary(lx)?;
    loop {
        let op = if lx.eat_punct("*") {
            "*"
        } else if lx.eat_punct("/") {
            "/"
        } else {
            break;
        };
        let r = parse_unary(lx)?;
        l = AstExpr::Binary {
            op: op.into(),
            l: Box::new(l),
            r: Box::new(r),
        };
    }
    Ok(l)
}

fn parse_unary(lx: &mut Lexer) -> Result<AstExpr> {
    if lx.eat_punct("-") {
        return Ok(AstExpr::Neg(Box::new(parse_unary(lx)?)));
    }
    parse_primary(lx)
}

fn parse_primary(lx: &mut Lexer) -> Result<AstExpr> {
    match lx.peek().clone() {
        Tok::Punct(p) if p == "(" => {
            lx.next();
            let e = parse_expr(lx)?;
            lx.expect_punct(")")?;
            Ok(e)
        }
        Tok::Num(_) | Tok::Str(_) => Ok(AstExpr::Lit(parse_literal(lx)?)),
        Tok::Punct(p) if p == "*" => Err(Error::Parse(
            "bare * outside COUNT(*) is unsupported".into(),
        )),
        Tok::Ident(id) => {
            let upper = id.to_ascii_uppercase();
            let agg = match upper.as_str() {
                "COUNT" => Some(AggName::Count),
                "SUM" => Some(AggName::Sum),
                "AVG" => Some(AggName::Avg),
                "MIN" => Some(AggName::Min),
                "MAX" => Some(AggName::Max),
                _ => None,
            };
            if let Some(func) = agg {
                lx.next();
                lx.expect_punct("(")?;
                if lx.eat_punct("*") {
                    lx.expect_punct(")")?;
                    return Ok(AstExpr::Agg {
                        func,
                        arg: None,
                        distinct: false,
                    });
                }
                let distinct = lx.eat_kw("distinct");
                let arg = parse_expr(lx)?;
                lx.expect_punct(")")?;
                return Ok(AstExpr::Agg {
                    func,
                    arg: Some(Box::new(arg)),
                    distinct,
                });
            }
            if upper == "YEAR" {
                lx.next();
                lx.expect_punct("(")?;
                let e = parse_expr(lx)?;
                lx.expect_punct(")")?;
                return Ok(AstExpr::Year(Box::new(e)));
            }
            if upper == "NULL" {
                lx.next();
                return Ok(AstExpr::Lit(Value::Null));
            }
            if upper == "DATE" {
                return Ok(AstExpr::Lit(parse_literal(lx)?));
            }
            Ok(AstExpr::Col(parse_colref(lx)?))
        }
        t => Err(Error::Parse(format!("unexpected token {t:?}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_figure3_ddl() {
        let sql = "CREATE TABLE demo_table (
            C1 INT(11) NOT NULL,
            C2 INT(11) DEFAULT NULL,
            C3 INT(11) DEFAULT NULL,
            C4 INT(11) DEFAULT NULL,
            C5 LONGTEXT DEFAULT NULL,
            PRIMARY KEY(C1),
            KEY SEC_INDEX(C2),
            KEY COLUMN_INDEX(C3, C4, C5)
        )";
        match parse(sql).unwrap() {
            Statement::CreateTable(ct) => {
                assert_eq!(ct.name, "demo_table");
                assert_eq!(ct.columns.len(), 5);
                assert_eq!(ct.primary_key, "c1");
                assert_eq!(ct.secondary, vec![("sec_index".into(), vec!["c2".into()])]);
                assert_eq!(ct.column_index, vec!["c3", "c4", "c5"]);
                assert!(ct.columns[0].2, "C1 NOT NULL");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_insert_update_delete() {
        match parse("INSERT INTO t VALUES (1, 'a', 2.5), (2, NULL, -3.0)").unwrap() {
            Statement::Insert { table, rows } => {
                assert_eq!(table, "t");
                assert_eq!(rows.len(), 2);
                assert_eq!(rows[1][2], Value::Double(-3.0));
                assert_eq!(rows[1][1], Value::Null);
            }
            o => panic!("{o:?}"),
        }
        match parse("UPDATE t SET a = 5, b = 'x' WHERE id = 3").unwrap() {
            Statement::Update { sets, filter, .. } => {
                assert_eq!(sets.len(), 2);
                assert_eq!(filter.len(), 1);
            }
            o => panic!("{o:?}"),
        }
        assert!(matches!(
            parse("DELETE FROM t WHERE id = 9").unwrap(),
            Statement::Delete { .. }
        ));
    }

    #[test]
    fn parses_select_with_joins_and_aggs() {
        let sql = "SELECT o.region, SUM(l.price * l.qty) AS revenue, COUNT(*)
                   FROM orders o INNER JOIN lineitem l ON o.id = l.order_id
                   WHERE l.shipdate <= DATE '1998-09-02' AND o.status = 'F'
                   GROUP BY o.region ORDER BY revenue DESC LIMIT 10";
        match parse(sql).unwrap() {
            Statement::Select(s) => {
                assert_eq!(s.items.len(), 3);
                assert_eq!(s.from.len(), 2);
                assert_eq!(s.join_on.len(), 1);
                assert!(s.filter.is_some());
                assert_eq!(s.group_by.len(), 1);
                assert_eq!(s.order_by.len(), 1);
                assert!(s.order_by[0].1, "DESC");
                assert_eq!(s.limit, Some(10));
                assert!(s.items[1].expr.has_agg());
                assert_eq!(s.items[1].alias.as_deref(), Some("revenue"));
            }
            o => panic!("{o:?}"),
        }
    }

    #[test]
    fn expression_precedence() {
        let sql = "SELECT a + b * 2, (a + b) * 2 FROM t WHERE a = 1 OR b = 2 AND c = 3";
        match parse(sql).unwrap() {
            Statement::Select(s) => {
                // a + (b*2)
                match &s.items[0].expr {
                    AstExpr::Binary { op, r, .. } => {
                        assert_eq!(op, "+");
                        assert!(matches!(&**r, AstExpr::Binary { op, .. } if op == "*"));
                    }
                    o => panic!("{o:?}"),
                }
                // OR binds loosest
                match s.filter.as_ref().unwrap() {
                    AstExpr::Binary { op, .. } => assert_eq!(op, "OR"),
                    o => panic!("{o:?}"),
                }
            }
            o => panic!("{o:?}"),
        }
    }

    #[test]
    fn parses_between_in_like_isnull() {
        let sql = "SELECT a FROM t WHERE a BETWEEN 1 AND 5 AND b IN ('x','y')
                   AND c LIKE 'pre%' AND d IS NOT NULL";
        match parse(sql).unwrap() {
            Statement::Select(s) => {
                let mut conj = Vec::new();
                s.filter.unwrap().split_conjuncts(&mut conj);
                assert_eq!(conj.len(), 4);
                assert!(matches!(conj[0], AstExpr::Between { .. }));
                assert!(matches!(conj[1], AstExpr::InList { .. }));
                assert!(matches!(conj[2], AstExpr::Like { .. }));
                assert!(matches!(conj[3], AstExpr::IsNull { negated: true, .. }));
            }
            o => panic!("{o:?}"),
        }
    }

    #[test]
    fn alter_add_column_index() {
        match parse("ALTER TABLE t ADD COLUMN INDEX (a, b)").unwrap() {
            Statement::AlterAddColumnIndex { table, columns } => {
                assert_eq!(table, "t");
                assert_eq!(columns, vec!["a", "b"]);
            }
            o => panic!("{o:?}"),
        }
    }

    #[test]
    fn drop_table_parses() {
        match parse("DROP TABLE tenants").unwrap() {
            Statement::DropTable { table } => assert_eq!(table, "tenants"),
            o => panic!("{o:?}"),
        }
        assert_eq!(
            parse("drop table T1;").unwrap(),
            Statement::DropTable { table: "t1".into() }
        );
        assert!(parse("DROP TABLE").is_err());
        assert!(parse("DROP INDEX i").is_err());
    }

    #[test]
    fn rough_routing_classifier() {
        assert!(is_read_only("SELECT 1 FROM t"));
        assert!(is_read_only("  select * from t"));
        assert!(!is_read_only("INSERT INTO t VALUES (1)"));
        assert!(!is_read_only("UPDATE t SET a=1 WHERE id=1"));
        // DDL routes to the RW node.
        assert!(!is_read_only("DROP TABLE t"));
        assert!(!is_read_only("CREATE TABLE t (id INT, PRIMARY KEY(id))"));
    }

    #[test]
    fn routing_classifier_sees_through_comments_parens_and_with() {
        // Leading line comment.
        assert!(is_read_only("-- point read\nSELECT v FROM t WHERE id = 1"));
        // Leading block comment, no newline anywhere.
        assert!(is_read_only("/* hint */ SELECT 1"));
        // Stacked comments and whitespace.
        assert!(is_read_only("/* a */ -- b\n  /* c */\tselect 1"));
        // Parenthesized SELECT (set-operation style).
        assert!(is_read_only("(SELECT 1)"));
        assert!(is_read_only(" ( (SELECT a FROM t) )"));
        // WITH is a read even though CTEs are not executable yet.
        assert!(is_read_only("WITH x AS (SELECT 1) SELECT * FROM x"));
        // Comments ahead of writes must not flip them to reads.
        assert!(!is_read_only("-- note\nINSERT INTO t VALUES (1)"));
        assert!(!is_read_only("/* SELECT */ UPDATE t SET a=1"));
        // Degenerate inputs: nothing after the noise.
        assert!(!is_read_only("-- only a comment"));
        assert!(!is_read_only("/* x */"));
        assert!(!is_read_only("((("));
        assert!(!is_read_only(""));
        // `selection` must not prefix-match `select`.
        assert!(!is_read_only("selection into t"));
        // EXPLAIN must reach a node holding the column index.
        assert!(is_read_only("EXPLAIN SELECT 1 FROM t"));
        assert!(is_read_only("explain analyze select v from t"));
        assert!(!is_read_only("explainer of t"));
    }

    #[test]
    fn explain_parses() {
        match parse("EXPLAIN SELECT v FROM t WHERE id = 1").unwrap() {
            Statement::Explain { analyze, select } => {
                assert!(!analyze);
                assert_eq!(select.from[0].table, "t");
            }
            o => panic!("{o:?}"),
        }
        match parse("explain analyze select count(*) from t group by g").unwrap() {
            Statement::Explain { analyze, .. } => assert!(analyze),
            o => panic!("{o:?}"),
        }
        // ANALYZE without a query is an error, not a table name.
        assert!(parse("EXPLAIN").is_err());
        assert!(parse("EXPLAIN INSERT INTO t VALUES (1)").is_err());
    }

    #[test]
    fn comments_and_parens_parse() {
        // The lexer must skip comments so the statements the classifier
        // routes to an RO node actually execute there.
        match parse("-- fetch one row\nSELECT a FROM t WHERE a = 1").unwrap() {
            Statement::Select(_) => {}
            o => panic!("{o:?}"),
        }
        match parse("/* block */ SELECT a FROM t").unwrap() {
            Statement::Select(_) => {}
            o => panic!("{o:?}"),
        }
        match parse("((SELECT a FROM t))").unwrap() {
            Statement::Select(_) => {}
            o => panic!("{o:?}"),
        }
        // Unbalanced parens and unterminated block comments error out.
        assert!(parse("(SELECT a FROM t").is_err());
        assert!(parse("/* no end SELECT 1").is_err());
        // WITH reports a precise unsupported error, not a parse error.
        assert!(matches!(
            parse("WITH x AS (SELECT 1) SELECT * FROM x"),
            Err(Error::Unsupported(_))
        ));
    }

    #[test]
    fn point_select_scanner_matches_exact_shape() {
        let ps = scan_point_select("SELECT note FROM mix WHERE id = 42").unwrap();
        assert_eq!(ps.cols, vec!["note"]);
        assert_eq!(ps.table, "mix");
        assert_eq!(ps.filter_col, "id");
        assert_eq!(ps.pk, 42);
        let ps = scan_point_select("select a,b , c from t where pk=-7;").unwrap();
        assert_eq!(ps.cols, vec!["a", "b", "c"]);
        assert_eq!(ps.pk, -7);
        // Everything else must fall through to the real parser.
        for sql in [
            "SELECT COUNT(*) FROM t WHERE id = 1",    // aggregate
            "SELECT a FROM t WHERE id = 1 AND b = 2", // conjunction
            "SELECT a FROM t WHERE id > 1",           // non-equality
            "SELECT a FROM t WHERE id = 1.5",         // non-int literal
            "SELECT a FROM t WHERE id = 'x'",         // string literal
            "SELECT t.a FROM t WHERE id = 1",         // qualified
            "SELECT a AS x FROM t WHERE id = 1",      // alias
            "SELECT a FROM t u WHERE id = 1",         // table alias
            "SELECT a FROM t WHERE id = 1 LIMIT 1",   // limit
            "SELECT a FROM t, s WHERE id = 1",        // join
            "-- c\nSELECT a FROM t WHERE id = 1",     // comment
            "SELECT a FROM t WHERE id = 1 garbage",   // trailing junk
            "INSERT INTO t VALUES (1)",               // not a select
        ] {
            assert!(scan_point_select(sql).is_none(), "{sql}");
        }
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(parse("SELEC 1").is_err());
        assert!(parse("SELECT 'unterminated FROM t").is_err());
        assert!(parse("CREATE TABLE t (a INT)").is_err(), "missing pk");
        assert!(parse("SELECT a FROM t WHERE a ~ 1").is_err());
    }
}
