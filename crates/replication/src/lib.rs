//! Update propagation: CALS + 2P-COFFER (paper §5).
//!
//! The pipeline that keeps an RO node's dual-format storage fresh:
//!
//! ```text
//!   REDO log (shared storage)
//!      │  reader thread (tails the log; CALS: entries ship pre-commit)
//!      ▼
//!   Phase-1 workers        ── hash(page_id) % N, conflict-free ──
//!      │  apply page changes to the RO row replica,
//!      │  reconstruct logical DMLs with old/new images
//!      ▼
//!   collector thread       ── re-sorts by LSN, fills transaction
//!      │                      buffers, pre-commits large txns (§5.5)
//!      ▼  (commit record seen → buffer becomes a committed txn)
//!   Phase-2 dispatcher     ── hash(primary key) % M, conflict-free ──
//!      ▼
//!   Phase-2 workers        ── §4.2 DML on the column indexes,
//!                             batch commit advances the watermark
//! ```
//!
//! * [`buffer`] — transaction buffers and the large-transaction
//!   pre-commit path;
//! * [`pipeline`] — the threaded 2P-COFFER implementation;
//! * [`sync`] — synchronous (single-threaded) replay used for node
//!   bootstrap and for building checkpoints from a quiesced state;
//! * [`metrics`] — counters the benches report (applied LSN, VD inputs).

pub mod buffer;
pub mod metrics;
pub mod pipeline;
pub mod sync;

pub use buffer::{CommittedTxn, TxnBuffers, TxnOp};
pub use metrics::ReplicationMetrics;
pub use pipeline::{Pipeline, ReplicationConfig, ShipMode};
pub use sync::{load_checkpoint_pages, replay_log_sync, take_checkpoint, ReplicaState};
