//! Replication pipeline counters and watermarks.

use std::sync::atomic::{AtomicU64, Ordering};

/// Shared metrics of one RO node's replication pipeline. Watermarks are
/// what the proxy's consistency levels (paper §6.4) and the Fig. 14 LSN
/// delay plot read.
#[derive(Default, Debug)]
pub struct ReplicationMetrics {
    /// REDO entries read off shared storage.
    pub entries_read: AtomicU64,
    /// Logical DMLs reconstructed by Phase 1.
    pub dmls_extracted: AtomicU64,
    /// Transactions committed through Phase 2.
    pub txns_committed: AtomicU64,
    /// Transactions dropped by abort records.
    pub txns_aborted: AtomicU64,
    /// Phase-2 batches committed.
    pub batches: AtomicU64,
    /// Large-transaction pre-commits (§5.5).
    pub precommits: AtomicU64,
    /// Highest LSN read from the log (reader progress).
    pub read_lsn: AtomicU64,
    /// Highest commit-record LSN fully applied to the column store —
    /// the node's **applied LSN** (§6.4).
    pub applied_lsn: AtomicU64,
    /// Highest VID visible to readers.
    pub visible_vid: AtomicU64,
}

impl ReplicationMetrics {
    /// Applied LSN (strong-consistency routing input).
    pub fn applied_lsn(&self) -> u64 {
        self.applied_lsn.load(Ordering::SeqCst)
    }

    /// Reader progress LSN.
    pub fn read_lsn(&self) -> u64 {
        self.read_lsn.load(Ordering::SeqCst)
    }

    /// Visible VID watermark.
    pub fn visible_vid(&self) -> u64 {
        self.visible_vid.load(Ordering::SeqCst)
    }

    /// One-line summary for bench output.
    pub fn summary(&self) -> String {
        format!(
            "entries={} dmls={} committed={} aborted={} batches={} precommits={} read_lsn={} applied_lsn={}",
            self.entries_read.load(Ordering::Relaxed),
            self.dmls_extracted.load(Ordering::Relaxed),
            self.txns_committed.load(Ordering::Relaxed),
            self.txns_aborted.load(Ordering::Relaxed),
            self.batches.load(Ordering::Relaxed),
            self.precommits.load(Ordering::Relaxed),
            self.read_lsn(),
            self.applied_lsn(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_contains_counters() {
        let m = ReplicationMetrics::default();
        m.txns_committed.store(7, Ordering::Relaxed);
        m.applied_lsn.store(42, Ordering::SeqCst);
        let s = m.summary();
        assert!(s.contains("committed=7"));
        assert!(s.contains("applied_lsn=42"));
    }
}
