//! Replication pipeline counters and watermarks.

use parking_lot::{Condvar, Mutex};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Shared metrics of one RO node's replication pipeline. Watermarks are
/// what the proxy's consistency levels (paper §6.4) and the Fig. 14 LSN
/// delay plot read.
#[derive(Default, Debug)]
pub struct ReplicationMetrics {
    /// REDO entries read off shared storage.
    pub entries_read: AtomicU64,
    /// Logical DMLs reconstructed by Phase 1.
    pub dmls_extracted: AtomicU64,
    /// Transactions committed through Phase 2.
    pub txns_committed: AtomicU64,
    /// Transactions dropped by abort records.
    pub txns_aborted: AtomicU64,
    /// Phase-2 batches committed.
    pub batches: AtomicU64,
    /// Large-transaction pre-commits (§5.5).
    pub precommits: AtomicU64,
    /// DDL log records applied to this node's catalog (versioned
    /// catalog replication; idempotent replays are not counted).
    pub ddls_applied: AtomicU64,
    /// Highest LSN read from the log (reader progress).
    pub read_lsn: AtomicU64,
    /// Highest transaction id seen in the log. A promoted node resumes
    /// TID assignment above this so the log never sees a TID reused.
    pub max_tid: AtomicU64,
    /// Highest commit-record LSN fully applied to the column store —
    /// the node's **applied LSN** (§6.4).
    pub applied_lsn: AtomicU64,
    /// Highest VID visible to readers.
    pub visible_vid: AtomicU64,
    /// Waiters parked on applied-LSN advance (strong-consistency
    /// routing, `wait_sync`, visibility-delay probes). Notified by
    /// [`ReplicationMetrics::advance_applied`] so nobody spins.
    applied_mutex: Mutex<()>,
    applied_cv: Condvar,
}

impl ReplicationMetrics {
    /// Applied LSN (strong-consistency routing input).
    pub fn applied_lsn(&self) -> u64 {
        self.applied_lsn.load(Ordering::SeqCst)
    }

    /// Publish a new applied LSN and wake every parked waiter. The
    /// notification happens under the waiter mutex, so a waiter that
    /// checked the watermark before this store cannot miss the wakeup.
    pub fn advance_applied(&self, lsn: u64) {
        let prev = self.applied_lsn.fetch_max(lsn, Ordering::SeqCst);
        if lsn > prev {
            let _guard = self.applied_mutex.lock();
            self.applied_cv.notify_all();
        }
    }

    /// Block (without spinning) until the applied LSN reaches `lsn`;
    /// returns `false` on timeout. Replaces the yield/spin loops that
    /// used to burn a full core during strong-consistency waits.
    pub fn wait_applied_at_least(&self, lsn: u64, timeout: Duration) -> bool {
        if self.applied_lsn() >= lsn {
            return true;
        }
        let deadline = Instant::now() + timeout;
        let mut guard = self.applied_mutex.lock();
        while self.applied_lsn() < lsn {
            let now = Instant::now();
            if now >= deadline {
                return false;
            }
            self.applied_cv.wait_for(&mut guard, deadline - now);
        }
        true
    }

    /// Reader progress LSN.
    pub fn read_lsn(&self) -> u64 {
        self.read_lsn.load(Ordering::SeqCst)
    }

    /// Visible VID watermark.
    pub fn visible_vid(&self) -> u64 {
        self.visible_vid.load(Ordering::SeqCst)
    }

    /// One-line summary for bench output.
    pub fn summary(&self) -> String {
        format!(
            "entries={} dmls={} committed={} aborted={} batches={} precommits={} ddls={} read_lsn={} applied_lsn={}",
            self.entries_read.load(Ordering::Relaxed),
            self.dmls_extracted.load(Ordering::Relaxed),
            self.txns_committed.load(Ordering::Relaxed),
            self.txns_aborted.load(Ordering::Relaxed),
            self.batches.load(Ordering::Relaxed),
            self.precommits.load(Ordering::Relaxed),
            self.ddls_applied.load(Ordering::Relaxed),
            self.read_lsn(),
            self.applied_lsn(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wait_applied_blocks_until_advance() {
        use std::sync::Arc;
        let m = Arc::new(ReplicationMetrics::default());
        assert!(!m.wait_applied_at_least(5, Duration::from_millis(20)));
        let waiter = {
            let m = m.clone();
            std::thread::spawn(move || m.wait_applied_at_least(5, Duration::from_secs(10)))
        };
        std::thread::sleep(Duration::from_millis(20));
        m.advance_applied(3);
        m.advance_applied(7);
        assert!(waiter.join().unwrap());
        // Watermark never regresses.
        m.advance_applied(2);
        assert_eq!(m.applied_lsn(), 7);
        // Already-satisfied waits return immediately.
        assert!(m.wait_applied_at_least(7, Duration::from_millis(1)));
    }

    #[test]
    fn summary_contains_counters() {
        let m = ReplicationMetrics::default();
        m.txns_committed.store(7, Ordering::Relaxed);
        m.applied_lsn.store(42, Ordering::SeqCst);
        let s = m.summary();
        assert!(s.contains("committed=7"));
        assert!(s.contains("applied_lsn=42"));
    }
}
