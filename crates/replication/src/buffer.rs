//! Transaction buffers (paper §5.1) and large-transaction pre-commit
//! (paper §5.5).
//!
//! CALS ships DML log entries before their transaction commits; the RO
//! node parses them into logical DMLs and parks them in a per-TID buffer
//! unit. A commit record turns the unit into a [`CommittedTxn`] handed
//! to Phase 2; an abort record simply frees the unit ("no data need to
//! be rolled back").
//!
//! If a unit grows past a threshold, it is **pre-committed**: the insert
//! halves of its DMLs are written into the column index right away with
//! *invalid VIDs* (invisible), their PK→RID mappings parked in a
//! *temporary locator*, and the buffered row data freed. At commit the
//! mappings are merged into the global locator and the VIDs rectified;
//! at abort the temporary locator is dropped and the orphaned rows wait
//! for compaction.

use imci_common::{FxHashMap, Lsn, Result, Rid, TableId, Tid, Value, Vid};
use imci_core::ColumnStore;
use rowstore::{LogicalChange, LogicalDml};

/// One operation of a committed transaction, as dispatched to Phase-2
/// workers (all variants carry the PK that drives worker assignment).
#[derive(Debug, Clone)]
pub enum TxnOp {
    /// Buffered logical insert.
    Insert {
        /// Table.
        table: TableId,
        /// Primary key (drives `hash(pk) % M` dispatch).
        pk: i64,
        /// Covered column values, already projected.
        values: Vec<Value>,
    },
    /// Buffered logical update (out-of-place: delete + insert).
    Update {
        /// Table.
        table: TableId,
        /// Primary key.
        pk: i64,
        /// New covered values.
        values: Vec<Value>,
    },
    /// Buffered logical delete.
    Delete {
        /// Table.
        table: TableId,
        /// Primary key.
        pk: i64,
    },
    /// A row pre-applied by §5.5 pre-commit: data already sits at `rid`
    /// with invalid VIDs; finalize = (optionally delete the old
    /// version) + publish mapping + rectify VID.
    PreApplied {
        /// Table.
        table: TableId,
        /// Primary key.
        pk: i64,
        /// Where the invisible new version lives.
        rid: Rid,
        /// True when this came from an Update (old version must be
        /// delete-stamped at commit).
        delete_old: bool,
    },
}

impl TxnOp {
    /// The primary key driving Phase-2 dispatch.
    pub fn pk(&self) -> i64 {
        match self {
            TxnOp::Insert { pk, .. }
            | TxnOp::Update { pk, .. }
            | TxnOp::Delete { pk, .. }
            | TxnOp::PreApplied { pk, .. } => *pk,
        }
    }
}

/// A fully-buffered transaction released by its commit record.
#[derive(Debug)]
pub struct CommittedTxn {
    /// Transaction id.
    pub tid: Tid,
    /// Commit sequence number (stamps the VID maps).
    pub vid: Vid,
    /// LSN of the commit record (advances the applied-LSN watermark).
    pub commit_lsn: Lsn,
    /// Operations in original LSN order.
    pub ops: Vec<TxnOp>,
}

struct BufferUnit {
    ops: Vec<TxnOp>,
    /// DMLs seen (including pre-applied ones).
    n_dmls: usize,
    /// Ops before this index are already pre-applied (§5.5); pre-commit
    /// only converts the suffix, keeping the path amortized O(1).
    pre_applied_upto: usize,
    /// §5.3: PKs inserted by this txn, to ignore duplicate-PK inserts
    /// produced by row migrations that slip past the SYSTEM_TID filter.
    inserted_pks: imci_common::FxHashSet<(TableId, i64)>,
}

/// All in-flight transaction buffers of one RO node.
pub struct TxnBuffers {
    units: FxHashMap<Tid, BufferUnit>,
    /// Pre-commit threshold in DMLs (§5.5); `usize::MAX` disables.
    pub large_txn_threshold: usize,
    /// Pre-commits performed (metrics).
    pub precommits: u64,
}

impl TxnBuffers {
    /// Create with the given pre-commit threshold.
    pub fn new(large_txn_threshold: usize) -> TxnBuffers {
        TxnBuffers {
            units: FxHashMap::default(),
            large_txn_threshold: large_txn_threshold.max(1),
            precommits: 0,
        }
    }

    /// Number of in-flight (uncommitted) transactions.
    pub fn in_flight(&self) -> usize {
        self.units.len()
    }

    /// Total buffered ops across units (memory pressure signal).
    pub fn buffered_ops(&self) -> usize {
        self.units.values().map(|u| u.ops.len()).sum()
    }

    /// Park one logical DML into its transaction's buffer unit.
    /// `store` is needed for the pre-commit path.
    pub fn add_dml(&mut self, change: LogicalChange, store: &ColumnStore) -> Result<()> {
        let unit = self.units.entry(change.tid).or_insert_with(|| BufferUnit {
            ops: Vec::new(),
            n_dmls: 0,
            pre_applied_upto: 0,
            inserted_pks: imci_common::FxHashSet::default(),
        });
        let table = change.table_id;
        // Only buffer DMLs for tables that actually have a column index.
        let index = match store.index(table) {
            Ok(idx) => idx,
            Err(_) => return Ok(()),
        };
        match change.dml {
            LogicalDml::Insert { pk, new } => {
                // §5.3 duplicate-PK-insert check (row migrations).
                if !unit.inserted_pks.insert((table, pk)) {
                    return Ok(());
                }
                unit.ops.push(TxnOp::Insert {
                    table,
                    pk,
                    values: index.project_row(&new.values),
                });
            }
            LogicalDml::Update { pk, new, .. } => {
                unit.ops.push(TxnOp::Update {
                    table,
                    pk,
                    values: index.project_row(&new.values),
                });
            }
            LogicalDml::Delete { pk, .. } => {
                unit.ops.push(TxnOp::Delete { table, pk });
            }
        }
        unit.n_dmls += 1;
        // Pre-commit whenever `threshold` new DMLs have accumulated
        // since the last pre-commit (the §5.5 memory-pressure valve).
        if unit.ops.len() - unit.pre_applied_upto >= self.large_txn_threshold {
            let tid = change.tid;
            self.precommit(tid, store)?;
        }
        Ok(())
    }

    /// §5.5 pre-commit: apply the insert halves invisibly and free the
    /// buffered row data. Converts ops in place from the last watermark.
    fn precommit(&mut self, tid: Tid, store: &ColumnStore) -> Result<()> {
        let unit = match self.units.get_mut(&tid) {
            Some(u) => u,
            None => return Ok(()),
        };
        for op in unit.ops[unit.pre_applied_upto..].iter_mut() {
            match op {
                TxnOp::Insert { table, pk, values } => {
                    let index = store.index(*table)?;
                    let rid = index.alloc_rids(1);
                    index.insert_precommitted(rid, values)?;
                    *op = TxnOp::PreApplied {
                        table: *table,
                        pk: *pk,
                        rid,
                        delete_old: false,
                    };
                }
                TxnOp::Update { table, pk, values } => {
                    let index = store.index(*table)?;
                    let rid = index.alloc_rids(1);
                    index.insert_precommitted(rid, values)?;
                    *op = TxnOp::PreApplied {
                        table: *table,
                        pk: *pk,
                        rid,
                        delete_old: true,
                    };
                }
                _ => {}
            }
        }
        unit.pre_applied_upto = unit.ops.len();
        self.precommits += 1;
        Ok(())
    }

    /// Commit record seen: release the unit as a [`CommittedTxn`].
    pub fn commit(&mut self, tid: Tid, vid: Vid, commit_lsn: Lsn) -> Option<CommittedTxn> {
        let unit = self.units.remove(&tid)?;
        Some(CommittedTxn {
            tid,
            vid,
            commit_lsn,
            ops: unit.ops,
        })
    }

    /// Abort record seen: free the unit (pre-applied rows stay invisible
    /// and are swept by compaction).
    pub fn abort(&mut self, tid: Tid) {
        self.units.remove(&tid);
    }
}

/// Apply one committed-transaction op to the column store. Used by the
/// Phase-2 workers and the synchronous replayer.
pub fn apply_txn_op(store: &ColumnStore, vid: Vid, op: &TxnOp) -> Result<()> {
    match op {
        TxnOp::Insert { table, values, .. } => {
            store.index(*table)?.insert(vid, values)?;
        }
        TxnOp::Update { table, pk, values } => {
            store.index(*table)?.update(vid, *pk, values)?;
        }
        TxnOp::Delete { table, pk } => {
            store.index(*table)?.delete(vid, *pk)?;
        }
        TxnOp::PreApplied {
            table,
            pk,
            rid,
            delete_old,
        } => {
            let index = store.index(*table)?;
            if *delete_old {
                index.delete(vid, *pk)?;
            }
            index.publish_mapping(*pk, *rid);
            index.rectify_vid(*rid, vid);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use imci_common::{ColumnDef, DataType, IndexDef, IndexKind, Row, Schema};

    fn store_with_table() -> (ColumnStore, Schema) {
        let schema = Schema::new(
            TableId(1),
            "t",
            vec![
                ColumnDef::not_null("id", DataType::Int),
                ColumnDef::new("v", DataType::Int),
            ],
            vec![
                IndexDef {
                    kind: IndexKind::Primary,
                    name: "PRIMARY".into(),
                    columns: vec![0],
                },
                IndexDef {
                    kind: IndexKind::Column,
                    name: "ci".into(),
                    columns: vec![0, 1],
                },
            ],
        )
        .unwrap();
        let store = ColumnStore::new(16);
        store.create_index(&schema);
        (store, schema)
    }

    fn insert_change(tid: u64, pk: i64) -> LogicalChange {
        LogicalChange {
            table_id: TableId(1),
            lsn: Lsn(0),
            tid: Tid(tid),
            dml: LogicalDml::Insert {
                pk,
                new: Row::new(vec![Value::Int(pk), Value::Int(pk * 2)]),
            },
        }
    }

    #[test]
    fn commit_releases_buffered_ops_in_order() {
        let (store, _) = store_with_table();
        let mut bufs = TxnBuffers::new(usize::MAX);
        bufs.add_dml(insert_change(5, 1), &store).unwrap();
        bufs.add_dml(insert_change(5, 2), &store).unwrap();
        assert_eq!(bufs.in_flight(), 1);
        let txn = bufs.commit(Tid(5), Vid(1), Lsn(10)).unwrap();
        assert_eq!(txn.ops.len(), 2);
        assert_eq!(txn.ops[0].pk(), 1);
        assert_eq!(txn.ops[1].pk(), 2);
        assert_eq!(bufs.in_flight(), 0);
    }

    #[test]
    fn abort_frees_without_applying() {
        let (store, _) = store_with_table();
        let mut bufs = TxnBuffers::new(usize::MAX);
        bufs.add_dml(insert_change(9, 7), &store).unwrap();
        bufs.abort(Tid(9));
        assert_eq!(bufs.in_flight(), 0);
        assert!(bufs.commit(Tid(9), Vid(1), Lsn(1)).is_none());
        // Nothing reached the column index.
        let idx = store.index(TableId(1)).unwrap();
        assert_eq!(idx.rows_inserted(), 0);
    }

    #[test]
    fn duplicate_pk_insert_filtered() {
        let (store, _) = store_with_table();
        let mut bufs = TxnBuffers::new(usize::MAX);
        bufs.add_dml(insert_change(5, 1), &store).unwrap();
        bufs.add_dml(insert_change(5, 1), &store).unwrap(); // migration echo
        let txn = bufs.commit(Tid(5), Vid(1), Lsn(10)).unwrap();
        assert_eq!(
            txn.ops.len(),
            1,
            "§5.3: duplicate PK insert is not a user DML"
        );
    }

    #[test]
    fn large_txn_precommit_and_finalize() {
        let (store, _) = store_with_table();
        let idx = store.index(TableId(1)).unwrap();
        let mut bufs = TxnBuffers::new(3);
        for pk in 0..5 {
            bufs.add_dml(insert_change(7, pk), &store).unwrap();
        }
        assert!(bufs.precommits >= 1, "threshold crossed → pre-commit");
        // The first 3 DMLs were pre-applied (physically present but
        // invisible); the remaining 2 wait for the next threshold or
        // the commit itself.
        assert_eq!(idx.rows_inserted(), 3);
        idx.advance_visible(Vid(100));
        assert!(idx.snapshot().get_by_pk(0).is_none());

        let txn = bufs.commit(Tid(7), Vid(101), Lsn(50)).unwrap();
        for op in &txn.ops {
            apply_txn_op(&store, txn.vid, op).unwrap();
        }
        store.advance_all(Vid(101));
        let snap = idx.snapshot();
        for pk in 0..5 {
            assert_eq!(
                snap.get_by_pk(pk).unwrap()[1],
                Value::Int(pk * 2),
                "pk {pk} visible after finalize"
            );
        }
    }

    #[test]
    fn large_txn_abort_leaves_only_invisible_garbage() {
        let (store, _) = store_with_table();
        let idx = store.index(TableId(1)).unwrap();
        let mut bufs = TxnBuffers::new(2);
        for pk in 0..4 {
            bufs.add_dml(insert_change(8, pk), &store).unwrap();
        }
        bufs.abort(Tid(8));
        idx.advance_visible(Vid(10));
        let snap = idx.snapshot();
        for pk in 0..4 {
            assert!(snap.get_by_pk(pk).is_none());
        }
        // The garbage rows have unset VIDs; compaction's live check
        // ignores them, and scans can't see them.
        for g in idx.groups() {
            assert_eq!(g.visible_offsets(10).len(), 0);
        }
    }

    #[test]
    fn update_and_delete_ops_apply() {
        let (store, _) = store_with_table();
        let idx = store.index(TableId(1)).unwrap();
        idx.insert(Vid(1), &[Value::Int(1), Value::Int(10)])
            .unwrap();
        idx.insert(Vid(1), &[Value::Int(2), Value::Int(20)])
            .unwrap();
        store.advance_all(Vid(1));
        apply_txn_op(
            &store,
            Vid(2),
            &TxnOp::Update {
                table: TableId(1),
                pk: 1,
                values: vec![Value::Int(1), Value::Int(11)],
            },
        )
        .unwrap();
        apply_txn_op(
            &store,
            Vid(2),
            &TxnOp::Delete {
                table: TableId(1),
                pk: 2,
            },
        )
        .unwrap();
        store.advance_all(Vid(2));
        let snap = idx.snapshot();
        assert_eq!(snap.get_by_pk(1).unwrap()[1], Value::Int(11));
        assert!(snap.get_by_pk(2).is_none());
    }
}
