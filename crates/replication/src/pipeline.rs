//! The threaded 2P-COFFER pipeline (paper §5.2–§5.4).
//!
//! Thread layout: 1 reader → N Phase-1 workers (page-partitioned) →
//! 1 collector (LSN re-sort + transaction buffers) → 1 dispatcher →
//! M Phase-2 workers (PK-partitioned) with per-batch barriers.
//!
//! Conflict freedom:
//! * Phase 1: entries that touch the same page hash to the same worker
//!   and arrive in LSN order; different pages never conflict.
//! * Phase 2: ops with the same primary key hash to the same worker;
//!   the dispatcher walks transactions in commit order, so two updates
//!   of one row — even from different transactions — reach their worker
//!   already ordered (the Fig. 6 example).

use crate::buffer::{apply_txn_op, CommittedTxn, TxnBuffers};
use crate::metrics::ReplicationMetrics;
use crossbeam::channel::{bounded, Receiver, Sender};
use imci_common::{fx_hash_u64, DdlOp, FxHashMap, Result, Tid, Vid};
use imci_core::ColumnStore;
use imci_wal::{LogReader, RedoEntry, RedoPayload};
use polarfs_sim::PolarFs;
use rowstore::{apply_entry, LogicalChange, RowEngine, UndoOp};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// When DML log entries become visible to the RO node (Fig. 11 / §5.1
/// ablation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ShipMode {
    /// Commit-ahead log shipping: the reader tails the log to its very
    /// end, consuming entries of still-uncommitted transactions.
    #[default]
    CommitAhead,
    /// Strawman: only read up to the last durable commit point, so a
    /// transaction's entries are parsed only after its commit fsync.
    OnCommit,
}

/// Pipeline tuning knobs.
#[derive(Debug, Clone)]
pub struct ReplicationConfig {
    /// Phase-1 (page-grained) worker count.
    pub phase1_workers: usize,
    /// Phase-2 (row-grained) worker count.
    pub phase2_workers: usize,
    /// Transactions per Phase-2 batch commit.
    pub batch_txns: usize,
    /// §5.5 pre-commit threshold in DMLs per transaction.
    pub large_txn_threshold: usize,
    /// CALS on/off.
    pub ship_mode: ShipMode,
    /// Byte offset in the REDO log to start from (checkpoint cursor).
    pub start_offset: u64,
    /// Reader poll timeout when the log is idle.
    pub poll_interval: Duration,
}

impl Default for ReplicationConfig {
    fn default() -> ReplicationConfig {
        ReplicationConfig {
            phase1_workers: 2,
            phase2_workers: 2,
            batch_txns: 64,
            large_txn_threshold: 8192,
            ship_mode: ShipMode::CommitAhead,
            start_offset: 0,
            poll_interval: Duration::from_millis(1),
        }
    }
}

/// Row-side undo buffers for applied-but-undecided DMLs, keyed by
/// transaction, each op stamped with its collector drain sequence.
type InflightUndo = FxHashMap<Tid, Vec<(u64, UndoOp)>>;

enum P1Msg {
    Entry(Box<RedoEntry>, u64),
    Shutdown,
}

enum Outcome {
    Dml(Box<LogicalChange>),
    Commit {
        tid: Tid,
        vid: Vid,
        lsn: u64,
    },
    Abort {
        tid: Tid,
    },
    /// A destructive/in-place catalog change (DROP / ALTER) deferred to
    /// the collector's LSN-sorted drain; CREATEs are applied by the
    /// reader (see `reader_thread`).
    Ddl {
        version: u64,
        op: DdlOp,
    },
    Noop,
}

enum ResultMsg {
    Out { seq: u64, outcome: Outcome },
    Done,
}

enum DispatchMsg {
    Txn(CommittedTxn),
    /// Barrier RPC: apply everything dispatched so far, then ack on the
    /// flush channel. Used by the collector to quiesce Phase 2 before a
    /// destructive catalog change.
    Flush,
    Shutdown,
}

enum P2Msg {
    Op { vid: Vid, op: crate::buffer::TxnOp },
    Barrier,
    Shutdown,
}

/// Everything a promotion needs from a drained pipeline: the §5.1
/// transaction buffers' row-side mirror (undo for DMLs whose commit
/// never arrived) plus the counters the resumed log writer starts from.
pub struct PromotionState {
    /// Undecided DMLs in original log order; the promoted engine undoes
    /// them in reverse with logged compensations
    /// (`RowEngine::rollback_inflight`).
    pub inflight: Vec<(Tid, UndoOp)>,
    /// Distinct in-flight transactions.
    pub inflight_txns: usize,
    /// Highest TID seen in the log.
    pub max_tid: u64,
    /// Highest committed VID applied.
    pub max_vid: u64,
    /// Last LSN consumed — the log's tail, since the drain runs to the
    /// end. The resumed writer continues at `last_lsn + 1`.
    pub last_lsn: u64,
    /// Highest commit-record LSN applied (the promoted node's
    /// written-LSN floor: strong reads never regress across failover).
    pub applied_lsn: u64,
}

/// A running replication pipeline for one RO node.
pub struct Pipeline {
    metrics: Arc<ReplicationMetrics>,
    stop: Arc<AtomicBool>,
    /// Softer than `stop`: finish consuming the (now-static,
    /// epoch-fenced) log to its end, then exit. Promotion's
    /// drain-to-LSN handshake.
    drain: Arc<AtomicBool>,
    // Behind a mutex so `stop` works through a shared reference: the
    // cluster must be able to halt a node's pipeline even while proxy
    // sessions still hold `Arc`s to the node (scale-in/shutdown).
    handles: parking_lot::Mutex<Vec<JoinHandle<()>>>,
    /// Errors observed by workers (pipeline keeps running; benches
    /// assert this stays 0).
    errors: Arc<AtomicU64>,
    /// Row-side undo for every applied-but-undecided DML (= log
    /// order). Maintained by the collector, consumed by
    /// [`Pipeline::stop_after_drain`].
    inflight_undo: Arc<parking_lot::Mutex<InflightUndo>>,
    /// Shared storage + the byte offset this pipeline started tailing
    /// from. The promotion drain needs them: pipeline metrics only
    /// cover entries *after* the checkpoint cursor, but the resumed
    /// writer's LSN/TID/VID counters must clear the whole log.
    fs: PolarFs,
    start_offset: u64,
}

impl Pipeline {
    /// Start the pipeline: `engine` is this node's row replica, `store`
    /// its column indexes.
    pub fn start(
        fs: PolarFs,
        engine: Arc<RowEngine>,
        store: Arc<ColumnStore>,
        config: ReplicationConfig,
    ) -> Pipeline {
        let metrics = Arc::new(ReplicationMetrics::default());
        let stop = Arc::new(AtomicBool::new(false));
        let drain = Arc::new(AtomicBool::new(false));
        let errors = Arc::new(AtomicU64::new(0));
        let inflight_undo: Arc<parking_lot::Mutex<InflightUndo>> =
            Arc::new(parking_lot::Mutex::new(FxHashMap::default()));
        let n1 = config.phase1_workers.max(1);
        let n2 = config.phase2_workers.max(1);

        let (result_tx, result_rx) = bounded::<ResultMsg>(16_384);
        let mut p1_txs: Vec<Sender<P1Msg>> = Vec::with_capacity(n1);
        let mut handles = Vec::new();

        // ---- Phase-1 workers ----
        for _ in 0..n1 {
            let (tx, rx) = bounded::<P1Msg>(8_192);
            p1_txs.push(tx);
            let engine = engine.clone();
            let out = result_tx.clone();
            let errors = errors.clone();
            handles.push(std::thread::spawn(move || {
                phase1_worker(rx, engine, out, errors);
            }));
        }

        // ---- reader ----
        {
            let fs = fs.clone();
            let stop = stop.clone();
            let drain = drain.clone();
            let metrics = metrics.clone();
            let out = result_tx.clone();
            let p1 = p1_txs.clone();
            let cfg = config.clone();
            let engine = engine.clone();
            let store = store.clone();
            let errors = errors.clone();
            handles.push(std::thread::spawn(move || {
                reader_thread(
                    fs, cfg, stop, drain, metrics, p1, out, engine, store, errors,
                );
            }));
        }
        drop(result_tx);

        // ---- dispatcher + Phase-2 workers ----
        let (disp_tx, disp_rx) = bounded::<DispatchMsg>(4_096);
        let (ack_tx, ack_rx) = bounded::<()>(n2 * 2);
        let (flush_tx, flush_rx) = bounded::<()>(1);
        let mut p2_txs: Vec<Sender<P2Msg>> = Vec::with_capacity(n2);
        for _ in 0..n2 {
            let (tx, rx) = bounded::<P2Msg>(8_192);
            p2_txs.push(tx);
            let store = store.clone();
            let ack = ack_tx.clone();
            let errors = errors.clone();
            handles.push(std::thread::spawn(move || {
                phase2_worker(rx, store, ack, errors);
            }));
        }
        {
            let store = store.clone();
            let metrics = metrics.clone();
            let batch = config.batch_txns.max(1);
            handles.push(std::thread::spawn(move || {
                dispatcher_thread(disp_rx, p2_txs, ack_rx, store, metrics, batch, flush_tx);
            }));
        }

        // ---- collector ----
        {
            let metrics = metrics.clone();
            let engine = engine.clone();
            let store = store.clone();
            let errors = errors.clone();
            let undo = inflight_undo.clone();
            let threshold = config.large_txn_threshold;
            let markers = n1 + 1; // workers + reader
            handles.push(std::thread::spawn(move || {
                collector_thread(
                    result_rx, disp_tx, flush_rx, engine, store, metrics, errors, undo, threshold,
                    markers,
                );
            }));
        }

        Pipeline {
            metrics,
            stop,
            drain,
            handles: parking_lot::Mutex::new(handles),
            errors,
            inflight_undo,
            fs,
            start_offset: config.start_offset,
        }
    }

    /// Pipeline metrics (watermarks, counters).
    pub fn metrics(&self) -> &Arc<ReplicationMetrics> {
        &self.metrics
    }

    /// Worker errors observed so far (0 in a healthy run).
    pub fn error_count(&self) -> u64 {
        self.errors.load(Ordering::Relaxed)
    }

    /// Block until the node's applied LSN reaches `lsn` (true) or the
    /// timeout expires (false). Parks on the metrics condvar — no
    /// spinning.
    pub fn wait_applied(&self, lsn: u64, timeout: Duration) -> bool {
        self.metrics.wait_applied_at_least(lsn, timeout)
    }

    /// Stop and join all threads. Idempotent, and callable through a
    /// shared reference so the cluster can halt a node's replication
    /// even when sessions still hold the node `Arc`.
    pub fn stop(&self) {
        self.stop.store(true, Ordering::SeqCst);
        for h in self.handles.lock().drain(..) {
            let _ = h.join();
        }
    }

    /// Drain the pipeline to the log's end, stop it, and hand back
    /// everything a promotion needs — the RO half of the §7 failover
    /// handshake. The caller must have epoch-fenced the old writer
    /// first, so the tail this consumes is final. On return every
    /// committed transaction in the log is applied to both formats, and
    /// `inflight` holds the exact row-side undo for the rest: the
    /// drained node's row replica equals "all committed + precisely
    /// these undecided ops".
    pub fn stop_after_drain(&self) -> PromotionState {
        self.drain.store(true, Ordering::SeqCst);
        for h in self.handles.lock().drain(..) {
            let _ = h.join();
        }
        let drained = std::mem::take(&mut *self.inflight_undo.lock());
        let (inflight, inflight_txns) = rowstore::recovery::order_inflight(drained);
        // Metrics only saw entries after this pipeline's start offset.
        // A checkpoint-seeded node promoted with little or no
        // post-checkpoint traffic would otherwise resume the writer at
        // LSN/TID/VID values the pre-cursor prefix already used —
        // reused LSNs are silently skipped by every replica's per-page
        // idempotency gate, losing committed writes. Decode the prefix
        // (cheap, no application) exactly like crash recovery does.
        let mut max_tid = self.metrics.max_tid.load(Ordering::SeqCst);
        let mut max_vid = self.metrics.visible_vid();
        let mut last_lsn = self.metrics.read_lsn();
        let mut applied_lsn = self.metrics.applied_lsn();
        if self.start_offset > 0 {
            let mut prefix = LogReader::new(self.fs.clone(), 0);
            for e in prefix.read_until(self.start_offset) {
                last_lsn = last_lsn.max(e.lsn.get());
                max_tid = max_tid.max(e.tid.get());
                if let RedoPayload::Commit { commit_vid } = &e.payload {
                    max_vid = max_vid.max(commit_vid.get());
                    // The checkpoint state covers these commits.
                    applied_lsn = applied_lsn.max(e.lsn.get());
                }
            }
        }
        PromotionState {
            inflight,
            inflight_txns,
            max_tid,
            max_vid,
            last_lsn,
            applied_lsn,
        }
    }
}

impl Drop for Pipeline {
    fn drop(&mut self) {
        self.stop();
    }
}

#[allow(clippy::too_many_arguments)]
fn reader_thread(
    fs: PolarFs,
    cfg: ReplicationConfig,
    stop: Arc<AtomicBool>,
    drain: Arc<AtomicBool>,
    metrics: Arc<ReplicationMetrics>,
    p1: Vec<Sender<P1Msg>>,
    results: Sender<ResultMsg>,
    engine: Arc<RowEngine>,
    store: Arc<ColumnStore>,
    errors: Arc<AtomicU64>,
) {
    let mut reader = LogReader::new(fs.clone(), cfg.start_offset);
    let mut seq = 0u64;
    let n1 = p1.len() as u64;
    loop {
        // Stop promptly even while the RW keeps producing; `stop` means
        // stop, not "stop once the log goes quiet".
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let draining = drain.load(Ordering::SeqCst);
        // Promotion drain: the old writer is epoch-fenced, so the log
        // is static — consume it to the very end (even past the durable
        // point in OnCommit mode: the resumed writer appends after the
        // physical tail, so every byte before it must be accounted
        // for), then exit.
        let entries = if draining {
            reader.read_available()
        } else {
            // OnCommit strawman: cap reads at the durable commit point.
            match cfg.ship_mode {
                ShipMode::CommitAhead => reader.wait_and_read(cfg.poll_interval),
                ShipMode::OnCommit => {
                    let cap = fs.synced_len(imci_wal::REDO_LOG_NAME);
                    if reader.offset() >= cap {
                        std::thread::sleep(cfg.poll_interval);
                        Vec::new()
                    } else {
                        reader.read_until(cap)
                    }
                }
            }
        };
        if entries.is_empty() {
            if stop.load(Ordering::SeqCst) || draining {
                break;
            }
            continue;
        }
        for e in entries {
            metrics.entries_read.fetch_add(1, Ordering::Relaxed);
            metrics.read_lsn.fetch_max(e.lsn.get(), Ordering::SeqCst);
            metrics.max_tid.fetch_max(e.tid.get(), Ordering::SeqCst);
            match &e.payload {
                RedoPayload::Commit { commit_vid } => {
                    let _ = results.send(ResultMsg::Out {
                        seq,
                        outcome: Outcome::Commit {
                            tid: e.tid,
                            vid: *commit_vid,
                            lsn: e.lsn.get(),
                        },
                    });
                }
                RedoPayload::Abort => {
                    let _ = results.send(ResultMsg::Out {
                        seq,
                        outcome: Outcome::Abort { tid: e.tid },
                    });
                }
                RedoPayload::Ddl { version, op } => {
                    match op {
                        // CREATE applies here, synchronously: the reader
                        // forwards entries in LSN order, so registering
                        // the table runtime (and its column index)
                        // *before* forwarding anything further
                        // guarantees Phase 1 and the transaction buffers
                        // never see a DML for an unknown table.
                        DdlOp::CreateTable { schema, .. } => {
                            match engine.apply_ddl(*version, op) {
                                Ok(true) => {
                                    if schema.has_column_index() {
                                        store.create_index(schema);
                                    }
                                    metrics.ddls_applied.fetch_add(1, Ordering::Relaxed);
                                }
                                Ok(false) => {} // replayed below our version
                                Err(_) => {
                                    errors.fetch_add(1, Ordering::Relaxed);
                                }
                            }
                            let _ = results.send(ResultMsg::Out {
                                seq,
                                outcome: Outcome::Noop,
                            });
                        }
                        // DROP / ALTER are destructive: defer to the
                        // collector's LSN-sorted drain, where every
                        // earlier entry has finished Phase 1 and Phase 2
                        // can be flushed.
                        _ => {
                            let _ = results.send(ResultMsg::Out {
                                seq,
                                outcome: Outcome::Ddl {
                                    version: *version,
                                    op: op.clone(),
                                },
                            });
                        }
                    }
                }
                // Ownership marker from a resumed writer: nothing to
                // apply (fencing lives in shared storage); keep the
                // drain sequence contiguous.
                RedoPayload::EpochBump { .. } => {
                    let _ = results.send(ResultMsg::Out {
                        seq,
                        outcome: Outcome::Noop,
                    });
                }
                _ => {
                    let w = (fx_hash_u64(e.page_id.get()) % n1) as usize;
                    let _ = p1[w].send(P1Msg::Entry(Box::new(e), seq));
                }
            }
            seq += 1;
        }
    }
    for tx in &p1 {
        let _ = tx.send(P1Msg::Shutdown);
    }
    let _ = results.send(ResultMsg::Done);
}

fn phase1_worker(
    rx: Receiver<P1Msg>,
    engine: Arc<RowEngine>,
    out: Sender<ResultMsg>,
    errors: Arc<AtomicU64>,
) {
    while let Ok(msg) = rx.recv() {
        match msg {
            P1Msg::Entry(e, seq) => {
                let outcome = match apply_entry(&engine, &e) {
                    Ok(Some(change)) => Outcome::Dml(Box::new(change)),
                    Ok(None) => Outcome::Noop,
                    Err(_) => {
                        errors.fetch_add(1, Ordering::Relaxed);
                        Outcome::Noop
                    }
                };
                let _ = out.send(ResultMsg::Out { seq, outcome });
            }
            P1Msg::Shutdown => break,
        }
    }
    let _ = out.send(ResultMsg::Done);
}

/// Send a flush barrier to the dispatcher and wait for the ack: on
/// return, every op dispatched so far has been applied to the column
/// store and the watermark published.
fn flush_phase2(disp: &Sender<DispatchMsg>, flush_ack: &Receiver<()>) {
    if disp.send(DispatchMsg::Flush).is_ok() {
        let _ = flush_ack.recv();
    }
}

#[allow(clippy::too_many_arguments)]
fn collector_thread(
    rx: Receiver<ResultMsg>,
    disp: Sender<DispatchMsg>,
    flush_ack: Receiver<()>,
    engine: Arc<RowEngine>,
    store: Arc<ColumnStore>,
    metrics: Arc<ReplicationMetrics>,
    errors: Arc<AtomicU64>,
    inflight_undo: Arc<parking_lot::Mutex<InflightUndo>>,
    large_txn_threshold: usize,
    mut done_markers: usize,
) {
    let mut reorder: BTreeMap<u64, Outcome> = BTreeMap::new();
    let mut next_seq = 0u64;
    let mut bufs = TxnBuffers::new(large_txn_threshold);
    while done_markers > 0 {
        let msg = match rx.recv() {
            Ok(m) => m,
            Err(_) => break,
        };
        match msg {
            ResultMsg::Done => {
                done_markers -= 1;
            }
            ResultMsg::Out { seq, outcome } => {
                reorder.insert(seq, outcome);
            }
        }
        // Drain the contiguous prefix in log order (the §5.4 LSN sort).
        while let Some(outcome) = reorder.remove(&next_seq) {
            next_seq += 1;
            match outcome {
                Outcome::Noop => {}
                Outcome::Dml(change) => {
                    metrics.dmls_extracted.fetch_add(1, Ordering::Relaxed);
                    // Row-side mirror of the §5.1 transaction buffers:
                    // keep the inverse of every applied-but-undecided
                    // DML so a promotion can roll the row replica back
                    // to the committed prefix. Freed at commit/abort.
                    // Memory: one cloned pre-image per undecided DML —
                    // deliberately unbounded like the pre-images
                    // themselves (they cannot be re-derived from the
                    // log later; updates ship diffs), duplicating the
                    // column-side buffers for the in-flight window.
                    inflight_undo
                        .lock()
                        .entry(change.tid)
                        .or_default()
                        .push((next_seq - 1, change.undo()));
                    // No lazy table pickup here: the table's DDL record
                    // precedes its first DML in the drain, so the column
                    // index (if declared) already exists.
                    if bufs.add_dml(*change, &store).is_err() {
                        errors.fetch_add(1, Ordering::Relaxed);
                    }
                    metrics.precommits.store(bufs.precommits, Ordering::Relaxed);
                }
                Outcome::Ddl { version, op } => {
                    // At this drain position every earlier entry has
                    // completed Phase 1 (contiguous-prefix guarantee);
                    // flushing Phase 2 quiesces the column store, so the
                    // catalog change cannot race any in-flight apply.
                    flush_phase2(&disp, &flush_ack);
                    match engine.apply_ddl(version, &op) {
                        Ok(true) => {
                            metrics.ddls_applied.fetch_add(1, Ordering::Relaxed);
                            // Rebuilt ALTER rows become visible at the
                            // current watermark, with the rest of the
                            // already-applied state.
                            if apply_column_ddl(&op, &engine, &store, Vid(metrics.visible_vid()))
                                .is_err()
                            {
                                errors.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                        Ok(false) => {}
                        Err(_) => {
                            errors.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
                Outcome::Commit { tid, vid, lsn } => {
                    inflight_undo.lock().remove(&tid);
                    if let Some(txn) = bufs.commit(tid, vid, imci_common::Lsn(lsn)) {
                        let _ = disp.send(DispatchMsg::Txn(txn));
                    } else {
                        // Transaction with no column-indexed DMLs: still
                        // advances the applied watermarks via an empty txn.
                        let _ = disp.send(DispatchMsg::Txn(CommittedTxn {
                            tid,
                            vid,
                            commit_lsn: imci_common::Lsn(lsn),
                            ops: Vec::new(),
                        }));
                    }
                }
                Outcome::Abort { tid } => {
                    metrics.txns_aborted.fetch_add(1, Ordering::Relaxed);
                    inflight_undo.lock().remove(&tid);
                    bufs.abort(tid);
                }
            }
        }
    }
    let _ = disp.send(DispatchMsg::Shutdown);
}

/// Column-store side of an applied DDL record — shared by the
/// collector drain (Phase 2 quiesced first) and the single-threaded
/// bootstrap replay in [`crate::sync`]. `stamp` is the VID rebuilt
/// ALTER rows are made visible at (the caller's current commit point).
pub(crate) fn apply_column_ddl(
    op: &DdlOp,
    engine: &RowEngine,
    store: &ColumnStore,
    stamp: Vid,
) -> Result<()> {
    match op {
        // Normally applied by the reader; kept for completeness (e.g.
        // a future path that routes creates through the drain).
        DdlOp::CreateTable { schema, .. } => {
            if schema.has_column_index() {
                store.create_index(schema);
            }
        }
        DdlOp::DropTable { table_id, .. } => {
            store.remove_index(*table_id);
        }
        DdlOp::ReplaceSchema { schema } => {
            if schema.has_column_index() {
                // Rebuild from the local row replica, which replay has
                // brought up to this record's LSN.
                let mut rows = Vec::new();
                engine.scan(&schema.name, i64::MIN, i64::MAX, |_, row| {
                    rows.push(row.values);
                })?;
                let idx = imci_core::build_from_rows(
                    schema,
                    store.group_capacity(),
                    stamp,
                    rows.into_iter(),
                )?;
                store.install(idx);
            } else {
                store.remove_index(schema.table_id);
            }
        }
    }
    Ok(())
}

fn dispatcher_thread(
    rx: Receiver<DispatchMsg>,
    p2: Vec<Sender<P2Msg>>,
    acks: Receiver<()>,
    store: Arc<ColumnStore>,
    metrics: Arc<ReplicationMetrics>,
    batch_txns: usize,
    flush_done: Sender<()>,
) {
    let n2 = p2.len() as u64;
    let mut shutdown = false;
    while !shutdown {
        // Collect a batch: block for the first txn, then drain greedily.
        let mut batch: Vec<CommittedTxn> = Vec::with_capacity(batch_txns);
        let mut flush_after = false;
        match rx.recv() {
            Ok(DispatchMsg::Txn(t)) => batch.push(t),
            // Between batches everything dispatched so far is applied
            // (each batch ends on a worker barrier): ack immediately.
            Ok(DispatchMsg::Flush) => {
                let _ = flush_done.send(());
                continue;
            }
            Ok(DispatchMsg::Shutdown) | Err(_) => break,
        }
        while batch.len() < batch_txns {
            match rx.try_recv() {
                Ok(DispatchMsg::Txn(t)) => batch.push(t),
                Ok(DispatchMsg::Flush) => {
                    flush_after = true;
                    break;
                }
                Ok(DispatchMsg::Shutdown) => {
                    shutdown = true;
                    break;
                }
                Err(_) => break,
            }
        }
        let max_vid = batch.iter().map(|t| t.vid.get()).max().unwrap_or(0);
        let last_lsn = batch.iter().map(|t| t.commit_lsn.get()).max().unwrap_or(0);
        let n_txns = batch.len() as u64;
        // Row-by-row dispatch in commit order (§5.4).
        for txn in batch {
            for op in txn.ops {
                let w = (fx_hash_u64(op.pk() as u64) % n2) as usize;
                let _ = p2[w].send(P2Msg::Op { vid: txn.vid, op });
            }
        }
        // Batch commit: barrier, then publish the new watermarks.
        for tx in &p2 {
            let _ = tx.send(P2Msg::Barrier);
        }
        for _ in 0..p2.len() {
            let _ = acks.recv();
        }
        store.advance_all(Vid(max_vid));
        metrics.visible_vid.fetch_max(max_vid, Ordering::SeqCst);
        metrics.advance_applied(last_lsn);
        metrics.txns_committed.fetch_add(n_txns, Ordering::Relaxed);
        metrics.batches.fetch_add(1, Ordering::Relaxed);
        if flush_after {
            let _ = flush_done.send(());
        }
    }
    for tx in &p2 {
        let _ = tx.send(P2Msg::Shutdown);
    }
}

fn phase2_worker(
    rx: Receiver<P2Msg>,
    store: Arc<ColumnStore>,
    ack: Sender<()>,
    errors: Arc<AtomicU64>,
) {
    while let Ok(msg) = rx.recv() {
        match msg {
            P2Msg::Op { vid, op } => {
                if apply_txn_op(&store, vid, &op).is_err() {
                    errors.fetch_add(1, Ordering::Relaxed);
                }
            }
            P2Msg::Barrier => {
                let _ = ack.send(());
            }
            P2Msg::Shutdown => break,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use imci_common::{ColumnDef, DataType, IndexDef, IndexKind, Value};
    use imci_wal::{LogWriter, PropagationMode};

    fn table_parts() -> (Vec<ColumnDef>, Vec<IndexDef>) {
        (
            vec![
                ColumnDef::not_null("id", DataType::Int),
                ColumnDef::new("v", DataType::Int),
                ColumnDef::new("s", DataType::Str),
            ],
            vec![
                IndexDef {
                    kind: IndexKind::Primary,
                    name: "PRIMARY".into(),
                    columns: vec![0],
                },
                IndexDef {
                    kind: IndexKind::Column,
                    name: "ci".into(),
                    columns: vec![0, 1, 2],
                },
            ],
        )
    }

    fn setup() -> (PolarFs, Arc<RowEngine>) {
        let fs = PolarFs::instant();
        let log = LogWriter::new(fs.clone(), PropagationMode::ReuseRedo);
        let rw = RowEngine::new_rw(fs.clone(), log, 1 << 20);
        let (cols, idxs) = table_parts();
        rw.create_table("t", cols, idxs).unwrap();
        (fs, rw)
    }

    fn start_ro(fs: &PolarFs, cfg: ReplicationConfig) -> (Pipeline, Arc<ColumnStore>) {
        // No catalog refresh, no manual index creation: the log's DDL
        // records build both as the pipeline replays from offset 0.
        let ro_engine = RowEngine::new_replica(fs.clone(), 1 << 20);
        let store = Arc::new(ColumnStore::new(1024));
        let p = Pipeline::start(fs.clone(), ro_engine, store.clone(), cfg);
        (p, store)
    }

    #[test]
    fn end_to_end_insert_update_delete() {
        let (fs, rw) = setup();
        let (pipe, store) = start_ro(&fs, ReplicationConfig::default());

        let mut txn = rw.begin();
        for pk in 0..500i64 {
            rw.insert(
                &mut txn,
                "t",
                vec![Value::Int(pk), Value::Int(pk), Value::Str(format!("r{pk}"))],
            )
            .unwrap();
        }
        rw.commit(txn).unwrap();
        let mut txn = rw.begin();
        for pk in (0..500i64).step_by(2) {
            rw.update(
                &mut txn,
                "t",
                pk,
                vec![Value::Int(pk), Value::Int(-pk), Value::Str("u".into())],
            )
            .unwrap();
        }
        for pk in (1..500i64).step_by(10) {
            rw.delete(&mut txn, "t", pk).unwrap();
        }
        rw.commit(txn).unwrap();
        let target = rw.log().unwrap().written_lsn().get();
        assert!(
            pipe.wait_applied(target, Duration::from_secs(20)),
            "pipeline failed to catch up: {}",
            pipe.metrics().summary()
        );
        assert_eq!(pipe.error_count(), 0);

        let idx = store.index(imci_common::TableId(1)).unwrap();
        let snap = idx.snapshot();
        assert_eq!(snap.get_by_pk(2).unwrap()[1], Value::Int(-2));
        assert_eq!(snap.get_by_pk(3).unwrap()[1], Value::Int(3));
        assert!(snap.get_by_pk(1).is_none(), "deleted row invisible");
        assert!(snap.get_by_pk(11).is_none());
        pipe.stop();
    }

    #[test]
    fn aborted_txns_never_reach_column_store() {
        let (fs, rw) = setup();
        let (pipe, store) = start_ro(&fs, ReplicationConfig::default());
        let mut good = rw.begin();
        rw.insert(
            &mut good,
            "t",
            vec![Value::Int(1), Value::Int(1), Value::Null],
        )
        .unwrap();
        rw.commit(good).unwrap();
        let mut bad = rw.begin();
        rw.insert(
            &mut bad,
            "t",
            vec![Value::Int(2), Value::Int(2), Value::Null],
        )
        .unwrap();
        rw.update(
            &mut bad,
            "t",
            1,
            vec![Value::Int(1), Value::Int(666), Value::Null],
        )
        .unwrap();
        rw.abort(bad).unwrap();
        let mut last = rw.begin();
        rw.insert(
            &mut last,
            "t",
            vec![Value::Int(3), Value::Int(3), Value::Null],
        )
        .unwrap();
        rw.commit(last).unwrap();

        let target = rw.log().unwrap().written_lsn().get();
        assert!(pipe.wait_applied(target, Duration::from_secs(20)));
        let idx = store.index(imci_common::TableId(1)).unwrap();
        let snap = idx.snapshot();
        assert_eq!(snap.get_by_pk(1).unwrap()[1], Value::Int(1), "abort undone");
        assert!(snap.get_by_pk(2).is_none());
        assert!(snap.get_by_pk(3).is_some());
        assert_eq!(pipe.error_count(), 0);
        pipe.stop();
    }

    #[test]
    fn concurrent_same_row_updates_stay_ordered() {
        // The Fig. 6 scenario: different transactions update the same
        // row; PK-hash dispatch must serialize them in commit order.
        let (fs, rw) = setup();
        let (pipe, store) = start_ro(
            &fs,
            ReplicationConfig {
                phase1_workers: 4,
                phase2_workers: 4,
                batch_txns: 8,
                ..ReplicationConfig::default()
            },
        );
        let mut txn = rw.begin();
        rw.insert(
            &mut txn,
            "t",
            vec![Value::Int(1), Value::Int(0), Value::Null],
        )
        .unwrap();
        rw.commit(txn).unwrap();
        for i in 1..=200i64 {
            let mut txn = rw.begin();
            rw.update(
                &mut txn,
                "t",
                1,
                vec![Value::Int(1), Value::Int(i), Value::Null],
            )
            .unwrap();
            rw.commit(txn).unwrap();
        }
        let target = rw.log().unwrap().written_lsn().get();
        assert!(pipe.wait_applied(target, Duration::from_secs(20)));
        let idx = store.index(imci_common::TableId(1)).unwrap();
        assert_eq!(
            idx.snapshot().get_by_pk(1).unwrap()[1],
            Value::Int(200),
            "final version must be the last committed"
        );
        assert_eq!(pipe.error_count(), 0);
        pipe.stop();
    }

    #[test]
    fn large_txn_precommit_through_pipeline() {
        let (fs, rw) = setup();
        let (pipe, store) = start_ro(
            &fs,
            ReplicationConfig {
                large_txn_threshold: 50,
                ..ReplicationConfig::default()
            },
        );
        let mut txn = rw.begin();
        for pk in 0..300i64 {
            rw.insert(
                &mut txn,
                "t",
                vec![Value::Int(pk), Value::Int(pk), Value::Null],
            )
            .unwrap();
        }
        rw.commit(txn).unwrap();
        let target = rw.log().unwrap().written_lsn().get();
        assert!(pipe.wait_applied(target, Duration::from_secs(20)));
        let m = pipe.metrics();
        assert!(
            m.precommits.load(Ordering::Relaxed) >= 1,
            "large txn must trigger pre-commit"
        );
        let idx = store.index(imci_common::TableId(1)).unwrap();
        let snap = idx.snapshot();
        for pk in [0i64, 49, 50, 299] {
            assert!(snap.get_by_pk(pk).is_some(), "pk {pk} visible");
        }
        assert_eq!(pipe.error_count(), 0);
        pipe.stop();
    }

    #[test]
    fn ddl_after_start_never_loses_dml() {
        // Regression for the lazy-pickup race: a table created *after*
        // the RO pipeline started used to be discovered out-of-band
        // (`let _ = refresh_catalog()` mid-apply), and committed DMLs
        // racing that discovery were silently dropped — only an error
        // counter moved. With DDL in the log, the CREATE's record
        // strictly precedes the INSERT's entries, so every row must
        // land, every round, with zero errors.
        let fs = PolarFs::instant();
        let log = LogWriter::new(fs.clone(), PropagationMode::ReuseRedo);
        let rw = RowEngine::new_rw(fs.clone(), log, 1 << 20);
        let (pipe, store) = start_ro(&fs, ReplicationConfig::default());
        for round in 0..20i64 {
            let name = format!("t{round}");
            let (cols, idxs) = table_parts();
            rw.create_table(&name, cols, idxs).unwrap();
            let mut txn = rw.begin();
            rw.insert(
                &mut txn,
                &name,
                vec![Value::Int(1), Value::Int(round), Value::Null],
            )
            .unwrap();
            rw.commit(txn).unwrap();
            let target = rw.log().unwrap().written_lsn().get();
            assert!(pipe.wait_applied(target, Duration::from_secs(20)));
            let idx = store
                .index(imci_common::TableId(round as u64 + 1))
                .unwrap_or_else(|_| panic!("round {round}: column index must exist"));
            assert_eq!(
                idx.snapshot().get_by_pk(1).unwrap()[1],
                Value::Int(round),
                "round {round}: committed insert must never be lost"
            );
        }
        assert_eq!(pipe.error_count(), 0);
        assert_eq!(
            pipe.metrics().ddls_applied.load(Ordering::Relaxed),
            20,
            "all 20 CREATEs applied through the log"
        );
        pipe.stop();
    }

    #[test]
    fn drop_table_destroys_replica_state_in_lsn_order() {
        let (fs, rw) = setup(); // creates table "t"
        let ro_engine = RowEngine::new_replica(fs.clone(), 1 << 20);
        let store = Arc::new(ColumnStore::new(1024));
        let pipe = Pipeline::start(
            fs.clone(),
            ro_engine.clone(),
            store.clone(),
            ReplicationConfig::default(),
        );
        let mut txn = rw.begin();
        for pk in 0..200i64 {
            rw.insert(
                &mut txn,
                "t",
                vec![Value::Int(pk), Value::Int(pk), Value::Null],
            )
            .unwrap();
        }
        rw.commit(txn).unwrap();
        rw.drop_table("t").unwrap();
        let target = rw.log().unwrap().written_lsn().get();
        assert!(pipe.wait_applied(target, Duration::from_secs(20)));
        // All 200 inserts were applied (and not raced by the drop), then
        // the drop destroyed both formats.
        assert_eq!(pipe.error_count(), 0, "{}", pipe.metrics().summary());
        assert!(
            store.index(imci_common::TableId(1)).is_err(),
            "column index destroyed"
        );
        assert!(ro_engine.table("t").is_err(), "row runtime destroyed");
        // Re-creating the same name works and replicates cleanly.
        let (cols, idxs) = table_parts();
        rw.create_table("t", cols, idxs).unwrap();
        let mut txn = rw.begin();
        rw.insert(
            &mut txn,
            "t",
            vec![Value::Int(7), Value::Int(70), Value::Null],
        )
        .unwrap();
        rw.commit(txn).unwrap();
        let target = rw.log().unwrap().written_lsn().get();
        assert!(pipe.wait_applied(target, Duration::from_secs(20)));
        let idx = store.index(imci_common::TableId(2)).unwrap();
        assert_eq!(idx.snapshot().get_by_pk(7).unwrap()[1], Value::Int(70));
        assert_eq!(ro_engine.row_count("t").unwrap(), 1);
        assert_eq!(pipe.error_count(), 0);
        pipe.stop();
    }

    #[test]
    fn stop_after_drain_hands_back_inflight_undo() {
        let (fs, rw) = setup();
        let ro_engine = RowEngine::new_replica(fs.clone(), 1 << 20);
        let store = Arc::new(ColumnStore::new(1024));
        let pipe = Pipeline::start(
            fs.clone(),
            ro_engine.clone(),
            store.clone(),
            ReplicationConfig::default(),
        );
        // One committed txn...
        let mut txn = rw.begin();
        for pk in 0..20i64 {
            rw.insert(
                &mut txn,
                "t",
                vec![Value::Int(pk), Value::Int(pk), Value::Null],
            )
            .unwrap();
        }
        rw.commit(txn).unwrap();
        // ...and one left in flight (CALS ships its entries anyway).
        let mut open = rw.begin();
        rw.insert(
            &mut open,
            "t",
            vec![Value::Int(100), Value::Int(1), Value::Null],
        )
        .unwrap();
        rw.update(
            &mut open,
            "t",
            3,
            vec![Value::Int(3), Value::Int(-3), Value::Null],
        )
        .unwrap();

        // Fence the writer (the failover precondition), then drain.
        fs.bump_epoch();
        let state = pipe.stop_after_drain();
        assert_eq!(state.inflight_txns, 1);
        assert_eq!(state.inflight.len(), 2, "insert + update undecided");
        assert_eq!(state.inflight[0].0, open.tid);
        assert!(matches!(
            state.inflight[0].1,
            rowstore::UndoOp::Insert { pk: 100, .. }
        ));
        match &state.inflight[1].1 {
            rowstore::UndoOp::Update { pk: 3, old, .. } => {
                assert_eq!(old.values[1], Value::Int(3), "pre-image captured");
            }
            other => panic!("expected update undo, got {other:?}"),
        }
        // The drain consumed the whole log and applied every commit.
        assert_eq!(state.last_lsn, rw.log().unwrap().tail_lsn().get());
        assert_eq!(state.applied_lsn, rw.log().unwrap().written_lsn().get());
        assert!(state.max_tid >= open.tid.get());
        // Row replica holds committed + exactly the undecided ops.
        assert_eq!(ro_engine.row_count("t").unwrap(), 21);
        assert_eq!(
            ro_engine.get_row("t", 3).unwrap().unwrap().values[1],
            Value::Int(-3)
        );
        // Column store holds only the committed prefix.
        let idx = store.index(imci_common::TableId(1)).unwrap();
        assert!(idx.snapshot().get_by_pk(100).is_none());
    }

    #[test]
    fn drain_of_checkpoint_seeded_pipeline_covers_the_whole_log() {
        // Regression: a node whose pipeline started at a checkpoint
        // cursor has metrics covering only the suffix. Promoting it
        // with no post-checkpoint traffic must still resume the writer
        // above every LSN/TID/VID the *prefix* used — otherwise the
        // new writer's records reuse LSNs and every replica's per-page
        // idempotency gate silently drops them.
        let (fs, rw) = setup();
        let mut txn = rw.begin();
        for pk in 0..100i64 {
            rw.insert(
                &mut txn,
                "t",
                vec![Value::Int(pk), Value::Int(pk), Value::Null],
            )
            .unwrap();
        }
        rw.commit(txn).unwrap();
        let tail = rw.log().unwrap().tail_lsn().get();
        let written = rw.log().unwrap().written_lsn().get();
        let last_vid = rw.txns.last_commit_vid().get();

        // Checkpoint at the exact tail; boot a node from it.
        let state = crate::sync::take_checkpoint(&fs, 1, None, 64).unwrap();
        let meta = imci_core::read_meta(&fs, 1).unwrap();
        let store = Arc::new(ColumnStore::new(64));
        let pipe = Pipeline::start(
            fs.clone(),
            state.engine.clone(),
            store,
            ReplicationConfig {
                start_offset: meta.redo_offset,
                ..Default::default()
            },
        );
        // Promote immediately: zero suffix entries read.
        fs.bump_epoch();
        let promo = pipe.stop_after_drain();
        assert_eq!(promo.last_lsn, tail, "prefix LSNs must be covered");
        assert_eq!(promo.applied_lsn, written);
        assert_eq!(promo.max_vid, last_vid);
        assert!(promo.max_tid >= 1, "prefix TIDs must be covered");
    }

    #[test]
    fn row_replica_also_converges() {
        let (fs, rw) = setup();
        let ro_engine = RowEngine::new_replica(fs.clone(), 1 << 20);
        let store = Arc::new(ColumnStore::new(1024));
        let pipe = Pipeline::start(
            fs.clone(),
            ro_engine.clone(),
            store,
            ReplicationConfig::default(),
        );
        let mut txn = rw.begin();
        for pk in 0..100i64 {
            rw.insert(
                &mut txn,
                "t",
                vec![Value::Int(pk), Value::Int(pk), Value::Null],
            )
            .unwrap();
        }
        rw.commit(txn).unwrap();
        let target = rw.log().unwrap().written_lsn().get();
        assert!(pipe.wait_applied(target, Duration::from_secs(20)));
        // Phase 1 maintained the row replica pages too.
        assert_eq!(ro_engine.row_count("t").unwrap(), 100);
        assert_eq!(
            ro_engine.get_row("t", 42).unwrap().unwrap().values[1],
            Value::Int(42)
        );
        pipe.stop();
    }
}
