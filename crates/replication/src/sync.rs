//! Synchronous (single-threaded) replay and checkpoint construction.
//!
//! Two uses:
//!
//! * **Node bootstrap without a checkpoint** — a fresh RO node replays
//!   the whole REDO log to materialize its row replica and column
//!   indexes, exactly like crash recovery ("all states of the
//!   computation nodes can be rebuilt from shared storage", §2.2).
//! * **Checkpoint construction** — the RO leader produces a checkpoint
//!   from a state replayed up to a chosen log offset; because the replay
//!   is single-threaded and stops at the offset, the snapshot is
//!   trivially quiesced (the paper quiesces the live pipeline instead —
//!   behaviourally equivalent for everything the evaluation measures,
//!   see DESIGN.md §4).
//!
//! A checkpoint additionally stores the row-replica pages so a new node
//! skips row-store replay too. (The production system reads versioned
//! pages from PolarFS instead; the substitution is documented.)

use crate::buffer::{apply_txn_op, TxnBuffers};
use bytes::Bytes;
use imci_common::{Lsn, Result, Vid};
use imci_core::ColumnStore;
use imci_wal::{LogReader, RedoPayload};
use polarfs_sim::PolarFs;
use rowstore::{apply_entry, RowEngine};
use std::sync::Arc;

/// Outcome of a synchronous replay.
pub struct ReplicaState {
    /// Row replica with all pages materialized locally.
    pub engine: Arc<RowEngine>,
    /// Column indexes, watermarked at the last committed VID.
    pub store: Arc<ColumnStore>,
    /// Byte offset in the REDO log where replay stopped.
    pub stopped_at: u64,
    /// Last committed VID applied.
    pub last_vid: Vid,
    /// LSN of the last commit record applied.
    pub last_commit_lsn: Lsn,
}

/// Replay the REDO log from byte 0 up to `upto_offset` (None = current
/// end), building a fresh row replica + column store.
pub fn replay_log_sync(
    fs: &PolarFs,
    upto_offset: Option<u64>,
    group_cap: usize,
    large_txn_threshold: usize,
) -> Result<ReplicaState> {
    // The catalog is NOT pre-loaded from any shared object: the log's
    // DDL records rebuild it in LSN order, exactly like the live
    // pipeline does.
    let engine = RowEngine::new_replica(fs.clone(), usize::MAX / 2);
    let store = Arc::new(ColumnStore::new(group_cap));
    let cap = upto_offset.unwrap_or_else(|| fs.log_len(imci_wal::REDO_LOG_NAME));
    let mut reader = LogReader::new(fs.clone(), 0);
    let mut bufs = TxnBuffers::new(large_txn_threshold);
    let mut last_vid = Vid::ZERO;
    let mut last_commit_lsn = Lsn::ZERO;
    for e in reader.read_until(cap) {
        match &e.payload {
            RedoPayload::Commit { commit_vid } => {
                if let Some(txn) = bufs.commit(e.tid, *commit_vid, e.lsn) {
                    for op in &txn.ops {
                        apply_txn_op(&store, txn.vid, op)?;
                    }
                }
                last_vid = *commit_vid;
                last_commit_lsn = e.lsn;
                store.advance_all(*commit_vid);
            }
            RedoPayload::Abort => bufs.abort(e.tid),
            RedoPayload::Ddl { version, op } => {
                // Single-threaded replay: nothing is in flight, so both
                // sides of the DDL apply immediately and in LSN order.
                if engine.apply_ddl(*version, op)? {
                    crate::pipeline::apply_column_ddl(op, &engine, &store, last_vid)?;
                }
            }
            _ => {
                if let Some(change) = apply_entry(&engine, &e)? {
                    bufs.add_dml(change, &store)?;
                }
            }
        }
    }
    // Secondary indexes were maintained by apply_entry along the way.
    Ok(ReplicaState {
        engine,
        store,
        stopped_at: reader.offset().min(cap),
        last_vid,
        last_commit_lsn,
    })
}

/// Build checkpoint `seq` covering the log prefix `[0, upto_offset)`
/// (None = current end). Returns the checkpointed state (callers often
/// keep using it). Stores the column indexes (§7) plus the row-replica
/// pages under `ckpt/<seq>/rowpages/`.
pub fn take_checkpoint(
    fs: &PolarFs,
    seq: u64,
    upto_offset: Option<u64>,
    group_cap: usize,
) -> Result<ReplicaState> {
    let state = replay_log_sync(fs, upto_offset, group_cap, usize::MAX / 2)?;
    imci_core::write_checkpoint(
        fs,
        seq,
        state.last_vid.get(),
        state.stopped_at,
        &state.store.all(),
    )?;
    // The catalog snapshot (schemas + catalog version as of the redo
    // cursor) rides with the checkpoint: a node booting from it applies
    // only the DDL records *after* the cursor — no lazy refresh.
    fs.put_object(
        &imci_core::ckpt_catalog_key(seq),
        Bytes::from(state.engine.export_catalog()),
    );
    for (id, bytes) in state.engine.buffer_pool().export_pages() {
        fs.put_object(
            &format!("{}{:020}", imci_core::ckpt_rowpages_prefix(seq), id.get()),
            Bytes::from(bytes),
        );
    }
    Ok(state)
}

/// Load the row pages of checkpoint `seq` into `engine`'s buffer pool.
pub fn load_checkpoint_pages(fs: &PolarFs, seq: u64, engine: &RowEngine) -> Result<usize> {
    let keys = fs.list_objects(&imci_core::ckpt_rowpages_prefix(seq));
    let n = keys.len();
    for k in keys {
        let bytes = fs.get_object(&k)?;
        engine.buffer_pool().import_page(&bytes)?;
    }
    Ok(n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use imci_common::{ColumnDef, DataType, IndexDef, IndexKind, TableId, Value};
    use imci_wal::{LogWriter, PropagationMode};

    fn rw_with_data(n: i64) -> (PolarFs, Arc<RowEngine>) {
        let fs = PolarFs::instant();
        let log = LogWriter::new(fs.clone(), PropagationMode::ReuseRedo);
        let rw = RowEngine::new_rw(fs.clone(), log, 1 << 20);
        rw.create_table(
            "t",
            vec![
                ColumnDef::not_null("id", DataType::Int),
                ColumnDef::new("v", DataType::Int),
            ],
            vec![
                IndexDef {
                    kind: IndexKind::Primary,
                    name: "PRIMARY".into(),
                    columns: vec![0],
                },
                IndexDef {
                    kind: IndexKind::Column,
                    name: "ci".into(),
                    columns: vec![0, 1],
                },
            ],
        )
        .unwrap();
        let mut txn = rw.begin();
        for pk in 0..n {
            rw.insert(&mut txn, "t", vec![Value::Int(pk), Value::Int(pk * 7)])
                .unwrap();
        }
        rw.commit(txn).unwrap();
        (fs, rw)
    }

    #[test]
    fn sync_replay_builds_both_formats() {
        let (fs, rw) = rw_with_data(200);
        let state = replay_log_sync(&fs, None, 64, usize::MAX / 2).unwrap();
        assert_eq!(state.engine.row_count("t").unwrap(), 200);
        let idx = state.store.index(TableId(1)).unwrap();
        let snap = idx.snapshot();
        assert_eq!(snap.get_by_pk(100).unwrap()[1], Value::Int(700));
        // Vid(1) is the CREATE TABLE's own commit (DDL is a committed
        // transaction now); the data transaction commits at Vid(2).
        assert_eq!(state.last_vid, Vid(2));
        assert_eq!(state.last_commit_lsn, rw.log().unwrap().written_lsn());
    }

    #[test]
    fn checkpoint_then_fast_start() {
        let (fs, rw) = rw_with_data(300);
        let ck = take_checkpoint(&fs, 1, None, 64).unwrap();
        // More traffic after the checkpoint.
        let mut txn = rw.begin();
        for pk in 300..400i64 {
            rw.insert(&mut txn, "t", vec![Value::Int(pk), Value::Int(0)])
                .unwrap();
        }
        rw.commit(txn).unwrap();

        // New node: catalog snapshot + pages from the checkpoint, then
        // catch up via the pipeline (no lazy refresh anywhere).
        let node = RowEngine::new_replica(fs.clone(), 1 << 20);
        node.import_catalog(&fs.get_object(&imci_core::ckpt_catalog_key(1)).unwrap())
            .unwrap();
        let n = load_checkpoint_pages(&fs, 1, &node).unwrap();
        assert!(n > 0);
        assert_eq!(node.row_count("t").unwrap(), 300, "pages restore rows");

        let meta = imci_core::read_meta(&fs, 1).unwrap();
        let rt = node.table("t").unwrap();
        let idx = imci_core::load_index(&fs, 1, &rt.schema, 64).unwrap();
        let store = Arc::new(ColumnStore::new(64));
        store.install(idx);
        let pipe = crate::pipeline::Pipeline::start(
            fs.clone(),
            node.clone(),
            store.clone(),
            crate::pipeline::ReplicationConfig {
                start_offset: meta.redo_offset,
                ..Default::default()
            },
        );
        let target = rw.log().unwrap().written_lsn().get();
        assert!(pipe.wait_applied(target, std::time::Duration::from_secs(20)));
        assert_eq!(node.row_count("t").unwrap(), 400, "caught up past ckpt");
        let idx = store.index(TableId(1)).unwrap();
        assert!(idx.snapshot().get_by_pk(399).is_some());
        assert!(idx.snapshot().get_by_pk(150).is_some());
        assert_eq!(pipe.error_count(), 0);
        pipe.stop();
        drop(ck);
    }

    #[test]
    fn partial_prefix_replay_stops_at_offset() {
        let (fs, rw) = rw_with_data(50);
        let offset_after_first = fs.log_len(imci_wal::REDO_LOG_NAME);
        let mut txn = rw.begin();
        for pk in 50..100i64 {
            rw.insert(&mut txn, "t", vec![Value::Int(pk), Value::Int(0)])
                .unwrap();
        }
        rw.commit(txn).unwrap();
        let state = replay_log_sync(&fs, Some(offset_after_first), 64, usize::MAX / 2).unwrap();
        assert_eq!(state.engine.row_count("t").unwrap(), 50);
        assert_eq!(state.stopped_at, offset_after_first);
    }
}
