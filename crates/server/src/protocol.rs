//! The `imci-server` wire protocol: text requests, text (v1) or binary
//! (v2) responses.
//!
//! ## Requests (all versions)
//!
//! Requests are single lines (the client escapes embedded newlines,
//! tabs and backslashes via [`escape_request`] so SQL survives the
//! framing byte-exactly; the server undoes it with
//! [`unescape_request`]):
//!
//! ```text
//! HELLO <version>                      negotiate the response encoding
//! SET CONSISTENCY STRONG|EVENTUAL
//! SET FORCE_ENGINE ROW|COLUMN|AUTO
//! SET TENANT <name>                    fairness lane for scheduling
//! SET PARALLELISM <n>                  morsel-parallelism cap (n >= 1)
//! SET LATE_MATERIALIZATION ON|OFF      late-materialized scan toggle
//! BATCH <n>                            the next n lines are one batch
//! <any SQL statement>
//! ```
//!
//! Clients may **pipeline**: send many request lines before reading a
//! single response. The server executes in order and writes exactly
//! one response per request, in order. Depth is bounded by socket
//! buffering: the server blocks writing responses once the client's
//! receive window fills, so a client that pipelines unboundedly
//! without reading deadlocks itself. Keep roughly a few hundred
//! point-read-sized requests in flight, or use `BATCH` (whose reply
//! is a single frame) for bigger units.
//!
//! ## Responses, v1 (default — what netcat users see)
//!
//! ```text
//! OK <affected>
//! ROWS <nrows> ROW|COLUMN
//! <tab-separated column names>
//! <tab-separated typed values>        (nrows lines)
//! END
//! ERR <kind> <escaped message>
//! BATCH <n>                           (then n responses, one per stmt)
//! ```
//!
//! Values carry a one-letter type tag so the client can reconstruct
//! [`Value`]s exactly: `N` (null), `I:<i64>`, `F:<f64 bits as hex>`,
//! `T:<days>` (date), `S:<escaped utf-8>`. `<kind>` is the
//! [`imci_common::Error::kind`] tag, so clients keep the error category.
//!
//! ## Responses, v2 (after `HELLO 2` / `HELLO 2` handshake)
//!
//! Length-prefixed binary frames (see [`crate::wire`] for the varint
//! and tagged-value primitives) — no per-cell formatting, no escaping:
//!
//! ```text
//! frame     := 0x01 uv(affected)                                 OK
//!            | 0x02 str(kind) str(message)                       ERR
//!            | 0x03 engine:u8 uv(ncols) str* uv(nrows) row*      ROWS
//!            | 0x04 uv(n) frame*                                 BATCH
//! row       := value*ncols
//! value     := 0x00 | 0x01 iv | 0x02 f64le | 0x03 iv | 0x04 str
//! str       := uv(len) byte*len
//! ```
//!
//! `uv`/`iv` are LEB128 varints (`iv` zigzag-signed); `engine` is 0 for
//! ROW, 1 for COLUMN. The `HELLO <v>` reply itself is always a text
//! line, so the handshake is debuggable from netcat and a v1 client
//! that never sends `HELLO` keeps getting text forever.

use crate::wire;
use imci_cluster::Consistency;
use imci_common::{Error, Result, Value};
use imci_sql::{EngineChoice, QueryResult};
use std::io::{BufRead, Write};

/// Highest response-protocol version this build speaks.
pub const MAX_VERSION: u32 = 2;

/// Largest statement count one `BATCH` may carry.
pub const MAX_BATCH: usize = 65_536;

/// Cap on any single length-prefixed string read off the wire (guards
/// against a corrupt length prefix allocating unbounded memory).
const MAX_WIRE_STR: u64 = 1 << 28;

// v2 frame tags.
const FRAME_OK: u8 = 0x01;
const FRAME_ERR: u8 = 0x02;
const FRAME_ROWS: u8 = 0x03;
const FRAME_BATCH: u8 = 0x04;

/// A per-session setting change (paper §6.4: the proxy enforces the
/// consistency level per session).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SessionSetting {
    /// `SET CONSISTENCY ...` — routing constraint for this session's
    /// reads.
    Consistency(Consistency),
    /// `SET FORCE_ENGINE ...` — pin this session's SELECTs to one
    /// engine; `None` restores cost-based routing (`AUTO`).
    ForceEngine(Option<EngineChoice>),
    /// `SET TENANT <name>` — assign the session to a fairness lane in
    /// the service tier's scheduler; one tenant pipelining heavily
    /// cannot starve another. Purely a scheduling hint, never touches
    /// query semantics.
    Tenant(String),
    /// `SET PARALLELISM <n>` — cap morsel parallelism for this
    /// session's column-engine SELECTs (n ≥ 1).
    Parallelism(usize),
    /// `SET LATE_MATERIALIZATION ON|OFF` — toggle the late-materialized
    /// scan path for this session's column-engine SELECTs.
    LateMaterialization(bool),
}

/// One parsed client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// `HELLO <version>` — negotiate the response encoding.
    Hello(u32),
    /// `BATCH <n>` — the next `n` request lines form one batch with a
    /// single aggregate reply.
    Batch(usize),
    Set(SessionSetting),
    /// `STATUS` — zero-cost control statement answered by the proxy
    /// itself (bypasses admission control): reports the node role,
    /// writer epoch, applied LSN and supervisor state as a one-row
    /// result set. Usable even when the cluster is saturated, which is
    /// exactly when an operator needs it.
    Status,
    /// `STMT <id> <sql>` — a statement tagged with a client-chosen id
    /// for exactly-once replay across failover: if the client resends
    /// the same id on a new connection, the server answers from its
    /// journal instead of re-executing.
    Stmt(u64, String),
    Query(String),
}

/// One server response.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// DML/DDL/SET acknowledged; `affected` rows changed.
    Ok { affected: usize },
    /// SELECT result set.
    Rows {
        columns: Vec<String>,
        rows: Vec<Vec<Value>>,
        engine: EngineChoice,
    },
    /// Execution error (the session stays usable). `kind` is the
    /// [`Error::kind`] tag so clients can rebuild the exact category.
    Err { kind: String, msg: String },
    /// Aggregate reply to `BATCH <n>`: one sub-response per statement.
    Batch(Vec<Response>),
}

impl Response {
    /// Build the error response for `e`, preserving its category.
    pub fn from_error(e: &Error) -> Response {
        Response::Err {
            kind: e.kind().to_string(),
            msg: e.message().to_string(),
        }
    }
}

/// Parse one request line. `HELLO`/`BATCH` framing and the `SET`
/// statements the proxy handles itself are recognized here; everything
/// else is passed through as SQL.
pub fn parse_request(line: &str) -> Request {
    let trimmed = line.trim();
    // Allocation-free dispatch on the first word: this runs once per
    // request on the hot path, and almost every request is plain SQL.
    let mut words = trimmed.split_whitespace();
    let w0 = words.next().unwrap_or("");
    if w0.eq_ignore_ascii_case("HELLO") {
        if let (Some(v), None) = (words.next(), words.next()) {
            if let Ok(v) = v.parse::<u32>() {
                return Request::Hello(v);
            }
        }
    } else if w0.eq_ignore_ascii_case("BATCH") {
        if let (Some(n), None) = (words.next(), words.next()) {
            if let Ok(n) = n.parse::<usize>() {
                return Request::Batch(n);
            }
        }
    } else if w0.eq_ignore_ascii_case("STATUS") {
        if words.next().is_none() {
            return Request::Status;
        }
    } else if w0.eq_ignore_ascii_case("STMT") {
        // `STMT <id> <sql...>` — everything after the id is the SQL.
        let rest = trimmed[w0.len()..].trim_start();
        if let Some((id_str, sql)) = rest.split_once(char::is_whitespace) {
            if let Ok(id) = id_str.parse::<u64>() {
                let sql = sql.trim();
                if !sql.is_empty() {
                    return Request::Stmt(id, sql.to_string());
                }
            }
        }
    } else if w0.eq_ignore_ascii_case("SET") {
        if let (Some(w1), Some(w2), None) = (words.next(), words.next(), words.next()) {
            if w1.eq_ignore_ascii_case("CONSISTENCY") {
                if w2.eq_ignore_ascii_case("STRONG") {
                    return Request::Set(SessionSetting::Consistency(Consistency::Strong));
                }
                if w2.eq_ignore_ascii_case("EVENTUAL") {
                    return Request::Set(SessionSetting::Consistency(Consistency::Eventual));
                }
            } else if w1.eq_ignore_ascii_case("FORCE_ENGINE") {
                if w2.eq_ignore_ascii_case("ROW") {
                    return Request::Set(SessionSetting::ForceEngine(Some(EngineChoice::Row)));
                }
                if w2.eq_ignore_ascii_case("COLUMN") {
                    return Request::Set(SessionSetting::ForceEngine(Some(EngineChoice::Column)));
                }
                if w2.eq_ignore_ascii_case("AUTO") {
                    return Request::Set(SessionSetting::ForceEngine(None));
                }
            } else if w1.eq_ignore_ascii_case("TENANT") {
                // Tenant names are case-sensitive opaque identifiers.
                return Request::Set(SessionSetting::Tenant(w2.to_string()));
            } else if w1.eq_ignore_ascii_case("PARALLELISM") {
                if let Ok(n) = w2.parse::<usize>() {
                    if n >= 1 {
                        return Request::Set(SessionSetting::Parallelism(n));
                    }
                }
            } else if w1.eq_ignore_ascii_case("LATE_MATERIALIZATION") {
                if w2.eq_ignore_ascii_case("ON") {
                    return Request::Set(SessionSetting::LateMaterialization(true));
                }
                if w2.eq_ignore_ascii_case("OFF") {
                    return Request::Set(SessionSetting::LateMaterialization(false));
                }
            }
        }
    }
    Request::Query(trimmed.to_string())
}

/// Escape a request line before sending (client side): `\`, tab and
/// newline become two-character sequences so SQL containing literal
/// newlines survives the line framing. Symmetric with
/// [`unescape_request`].
pub fn escape_request(sql: &str) -> String {
    escape(sql)
}

/// Undo [`escape_request`] (server side). Requests typed by hand (e.g.
/// over netcat) without backslashes pass through unchanged — and
/// without copying, which matters on the per-request hot path.
pub fn unescape_request(line: &str) -> std::borrow::Cow<'_, str> {
    if line.contains('\\') {
        std::borrow::Cow::Owned(unescape(line))
    } else {
        std::borrow::Cow::Borrowed(line)
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\t' => out.push_str("\\t"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            c => out.push(c),
        }
    }
    out
}

fn unescape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut it = s.chars();
    while let Some(c) = it.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match it.next() {
            Some('t') => out.push('\t'),
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            Some('\\') => out.push('\\'),
            Some(other) => out.push(other),
            None => {}
        }
    }
    out
}

fn encode_value(v: &Value) -> String {
    match v {
        Value::Null => "N".to_string(),
        Value::Int(i) => format!("I:{i}"),
        // Hex bit pattern: exact roundtrip, no float-formatting loss.
        Value::Double(d) => format!("F:{:016x}", d.to_bits()),
        Value::Date(d) => format!("T:{d}"),
        Value::Str(s) => format!("S:{}", escape(s)),
    }
}

fn decode_value(s: &str) -> Result<Value> {
    if s == "N" {
        return Ok(Value::Null);
    }
    let (tag, body) = s
        .split_once(':')
        .ok_or_else(|| Error::Execution(format!("malformed value {s:?}")))?;
    match tag {
        "I" => body
            .parse()
            .map(Value::Int)
            .map_err(|e| Error::Execution(format!("bad int: {e}"))),
        "F" => u64::from_str_radix(body, 16)
            .map(|bits| Value::Double(f64::from_bits(bits)))
            .map_err(|e| Error::Execution(format!("bad double: {e}"))),
        "T" => body
            .parse()
            .map(Value::Date)
            .map_err(|e| Error::Execution(format!("bad date: {e}"))),
        "S" => Ok(Value::Str(unescape(body))),
        _ => Err(Error::Execution(format!("unknown value tag {tag:?}"))),
    }
}

fn engine_name(e: EngineChoice) -> &'static str {
    match e {
        EngineChoice::Row => "ROW",
        EngineChoice::Column => "COLUMN",
    }
}

/// Serialize one response in the v1 text encoding (server side). Does
/// **not** flush: the session loop flushes once no further pipelined
/// requests are pending, which is what makes pipelining pay off.
pub fn write_response<W: Write>(w: &mut W, resp: &Response) -> std::io::Result<()> {
    match resp {
        Response::Ok { affected } => writeln!(w, "OK {affected}")?,
        Response::Err { kind, msg } => writeln!(w, "ERR {kind} {}", escape(msg))?,
        Response::Rows {
            columns,
            rows,
            engine,
        } => {
            writeln!(w, "ROWS {} {}", rows.len(), engine_name(*engine))?;
            let header: Vec<String> = columns.iter().map(|c| escape(c)).collect();
            writeln!(w, "{}", header.join("\t"))?;
            for row in rows {
                let cells: Vec<String> = row.iter().map(encode_value).collect();
                writeln!(w, "{}", cells.join("\t"))?;
            }
            writeln!(w, "END")?;
        }
        Response::Batch(parts) => {
            writeln!(w, "BATCH {}", parts.len())?;
            for part in parts {
                write_response(w, part)?;
            }
        }
    }
    Ok(())
}

/// Read one v1 text response from a buffered reader (client side).
pub fn read_response<R: BufRead>(r: &mut R) -> Result<Response> {
    read_response_depth(r, 0)
}

fn read_response_depth<R: BufRead>(r: &mut R, depth: u32) -> Result<Response> {
    let mut line = String::new();
    if r.read_line(&mut line)
        .map_err(|e| Error::Execution(format!("connection read failed: {e}")))?
        == 0
    {
        return Err(Error::Execution("server closed the connection".into()));
    }
    let line = line.trim_end_matches(['\n', '\r']);
    if let Some(rest) = line.strip_prefix("OK ") {
        let affected = rest
            .trim()
            .parse()
            .map_err(|e| Error::Execution(format!("bad OK line: {e}")))?;
        return Ok(Response::Ok { affected });
    }
    if let Some(rest) = line.strip_prefix("ERR ") {
        // `ERR <kind> <escaped message>`; a lone token is a bare
        // message from some hand-rolled peer — treat it as the message.
        let (kind, msg) = match rest.split_once(' ') {
            Some((k, m)) => (k.to_string(), unescape(m)),
            None => ("execution".to_string(), unescape(rest)),
        };
        return Ok(Response::Err { kind, msg });
    }
    if let Some(rest) = line.strip_prefix("BATCH ") {
        // The server never nests batches; a nested one in the stream is
        // a protocol violation, and recursing on it unguarded would let
        // a malicious peer overflow the stack (mirrors the v2 reader).
        if depth > 0 {
            return Err(Error::Execution("nested BATCH responses".into()));
        }
        let n: usize = rest
            .trim()
            .parse()
            .map_err(|e| Error::Execution(format!("bad BATCH line: {e}")))?;
        if n > MAX_BATCH {
            return Err(Error::Execution(format!("batch of {n} exceeds limit")));
        }
        let mut parts = Vec::with_capacity(n.min(1024));
        for _ in 0..n {
            parts.push(read_response_depth(r, depth + 1)?);
        }
        return Ok(Response::Batch(parts));
    }
    let rest = line
        .strip_prefix("ROWS ")
        .ok_or_else(|| Error::Execution(format!("unexpected response line {line:?}")))?;
    let mut parts = rest.split_whitespace();
    let nrows: usize = parts
        .next()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| Error::Execution("bad ROWS count".into()))?;
    let engine = match parts.next() {
        Some("ROW") => EngineChoice::Row,
        Some("COLUMN") => EngineChoice::Column,
        other => return Err(Error::Execution(format!("bad engine tag {other:?}"))),
    };
    let mut header = String::new();
    r.read_line(&mut header)
        .map_err(|e| Error::Execution(format!("connection read failed: {e}")))?;
    let header = header.trim_end_matches(['\n', '\r']);
    let columns: Vec<String> = if header.is_empty() {
        Vec::new()
    } else {
        header.split('\t').map(unescape).collect()
    };
    let mut rows = Vec::with_capacity(nrows);
    for _ in 0..nrows {
        let mut rl = String::new();
        if r.read_line(&mut rl)
            .map_err(|e| Error::Execution(format!("connection read failed: {e}")))?
            == 0
        {
            return Err(Error::Execution("truncated result set".into()));
        }
        let rl = rl.trim_end_matches(['\n', '\r']);
        let row: Vec<Value> = if rl.is_empty() {
            Vec::new()
        } else {
            rl.split('\t').map(decode_value).collect::<Result<_>>()?
        };
        rows.push(row);
    }
    let mut end = String::new();
    r.read_line(&mut end)
        .map_err(|e| Error::Execution(format!("connection read failed: {e}")))?;
    if end.trim_end_matches(['\n', '\r']) != "END" {
        return Err(Error::Execution("missing END marker".into()));
    }
    Ok(Response::Rows {
        columns,
        rows,
        engine,
    })
}

/// Encode one response as a v2 binary frame, appended to `out`.
pub fn encode_response_v2(out: &mut Vec<u8>, resp: &Response) {
    match resp {
        Response::Ok { affected } => {
            out.push(FRAME_OK);
            wire::put_uvarint(out, *affected as u64);
        }
        Response::Err { kind, msg } => {
            out.push(FRAME_ERR);
            wire::put_bytes(out, kind.as_bytes());
            wire::put_bytes(out, msg.as_bytes());
        }
        Response::Rows {
            columns,
            rows,
            engine,
        } => {
            out.push(FRAME_ROWS);
            out.push(match engine {
                EngineChoice::Row => 0,
                EngineChoice::Column => 1,
            });
            wire::put_uvarint(out, columns.len() as u64);
            for c in columns {
                wire::put_bytes(out, c.as_bytes());
            }
            wire::put_uvarint(out, rows.len() as u64);
            for row in rows {
                debug_assert_eq!(row.len(), columns.len());
                for v in row {
                    wire::put_value(out, v);
                }
            }
        }
        Response::Batch(parts) => {
            out.push(FRAME_BATCH);
            wire::put_uvarint(out, parts.len() as u64);
            for part in parts {
                encode_response_v2(out, part);
            }
        }
    }
}

/// Serialize one response as a v2 binary frame (server side). Like
/// [`write_response`], flushing is the session loop's job.
pub fn write_response_v2<W: Write>(w: &mut W, resp: &Response) -> std::io::Result<()> {
    let mut buf = Vec::with_capacity(64);
    encode_response_v2(&mut buf, resp);
    w.write_all(&buf)
}

/// Read one v2 binary response frame (client side).
pub fn read_response_v2<R: BufRead>(r: &mut R) -> Result<Response> {
    read_response_v2_depth(r, 0)
}

fn read_response_v2_depth<R: BufRead>(r: &mut R, depth: u32) -> Result<Response> {
    let mut tag = [0u8; 1];
    r.read_exact(&mut tag)
        .map_err(|e| Error::Execution(format!("connection read failed: {e}")))?;
    match tag[0] {
        FRAME_OK => Ok(Response::Ok {
            affected: wire::get_uvarint(r)? as usize,
        }),
        FRAME_ERR => Ok(Response::Err {
            kind: wire::get_string(r, 256)?,
            msg: wire::get_string(r, MAX_WIRE_STR)?,
        }),
        FRAME_ROWS => {
            let mut eng = [0u8; 1];
            r.read_exact(&mut eng)
                .map_err(|e| Error::Execution(format!("connection read failed: {e}")))?;
            let engine = match eng[0] {
                0 => EngineChoice::Row,
                1 => EngineChoice::Column,
                e => return Err(Error::Execution(format!("bad engine byte {e:#x}"))),
            };
            let ncols = wire::get_uvarint(r)? as usize;
            if ncols > 4096 {
                return Err(Error::Execution(format!("{ncols} columns exceeds limit")));
            }
            let mut columns = Vec::with_capacity(ncols);
            for _ in 0..ncols {
                columns.push(wire::get_string(r, MAX_WIRE_STR)?);
            }
            let nrows = wire::get_uvarint(r)? as usize;
            let mut rows = Vec::with_capacity(nrows.min(1 << 20));
            for _ in 0..nrows {
                let mut row = Vec::with_capacity(ncols);
                for _ in 0..ncols {
                    row.push(wire::get_value(r, MAX_WIRE_STR)?);
                }
                rows.push(row);
            }
            Ok(Response::Rows {
                columns,
                rows,
                engine,
            })
        }
        FRAME_BATCH => {
            if depth > 0 {
                return Err(Error::Execution("nested BATCH frames".into()));
            }
            let n = wire::get_uvarint(r)? as usize;
            if n > MAX_BATCH {
                return Err(Error::Execution(format!("batch of {n} exceeds limit")));
            }
            let mut parts = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                parts.push(read_response_v2_depth(r, depth + 1)?);
            }
            Ok(Response::Batch(parts))
        }
        t => Err(Error::Execution(format!("unknown response frame {t:#x}"))),
    }
}

/// Convert a [`QueryResult`] into the wire response. `read_only` is the
/// proxy's routing classification of the statement: reads become `ROWS`
/// even when the result set is legitimately empty (zero rows, or zero
/// columns), everything else becomes `OK`. Deciding by result shape
/// alone — the old behavior — conflated an empty SELECT result with a
/// DML acknowledgment.
pub fn response_of(result: QueryResult, read_only: bool) -> Response {
    if read_only || !result.columns.is_empty() {
        Response::Rows {
            columns: result.columns,
            rows: result.rows,
            engine: result.engine,
        }
    } else {
        Response::Ok {
            affected: result.affected,
        }
    }
}

/// Convert a wire response back into a [`QueryResult`] (client side),
/// rebuilding the server's error category from its kind tag.
pub fn result_of(resp: Response) -> Result<QueryResult> {
    match resp {
        Response::Ok { affected } => Ok(QueryResult {
            columns: Vec::new(),
            rows: Vec::new(),
            engine: EngineChoice::Row,
            affected,
        }),
        Response::Rows {
            columns,
            rows,
            engine,
        } => Ok(QueryResult {
            columns,
            rows,
            engine,
            affected: 0,
        }),
        Response::Err { kind, msg } => Err(Error::from_kind(&kind, msg)),
        Response::Batch(_) => Err(Error::Execution(
            "unexpected BATCH reply to a single statement".into(),
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    #[test]
    fn set_statements_parse() {
        assert_eq!(
            parse_request("set consistency strong"),
            Request::Set(SessionSetting::Consistency(Consistency::Strong))
        );
        assert_eq!(
            parse_request("SET FORCE_ENGINE column"),
            Request::Set(SessionSetting::ForceEngine(Some(EngineChoice::Column)))
        );
        assert_eq!(
            parse_request("SET FORCE_ENGINE AUTO"),
            Request::Set(SessionSetting::ForceEngine(None))
        );
        assert_eq!(
            parse_request("SET TENANT analytics"),
            Request::Set(SessionSetting::Tenant("analytics".to_string()))
        );
        assert_eq!(
            parse_request("SET PARALLELISM 4"),
            Request::Set(SessionSetting::Parallelism(4))
        );
        assert_eq!(
            parse_request("set late_materialization off"),
            Request::Set(SessionSetting::LateMaterialization(false))
        );
        assert_eq!(
            parse_request("SET LATE_MATERIALIZATION ON"),
            Request::Set(SessionSetting::LateMaterialization(true))
        );
        assert_eq!(
            parse_request("SELECT 1"),
            Request::Query("SELECT 1".to_string())
        );
        // Unknown SET shapes fall through to SQL.
        assert_eq!(
            parse_request("SET foo bar"),
            Request::Query("SET foo bar".to_string())
        );
        // PARALLELISM 0 and non-numeric args fall through to SQL.
        assert_eq!(
            parse_request("SET PARALLELISM 0"),
            Request::Query("SET PARALLELISM 0".to_string())
        );
        assert_eq!(
            parse_request("SET PARALLELISM lots"),
            Request::Query("SET PARALLELISM lots".to_string())
        );
    }

    #[test]
    fn framing_requests_parse() {
        assert_eq!(parse_request("HELLO 2"), Request::Hello(2));
        assert_eq!(parse_request("hello 17"), Request::Hello(17));
        assert_eq!(parse_request("BATCH 32"), Request::Batch(32));
        assert_eq!(parse_request("batch 0"), Request::Batch(0));
        // Non-numeric arguments fall through to SQL.
        assert_eq!(
            parse_request("HELLO world"),
            Request::Query("HELLO world".to_string())
        );
        assert_eq!(
            parse_request("BATCH job"),
            Request::Query("BATCH job".to_string())
        );
    }

    #[test]
    fn status_and_stmt_parse() {
        assert_eq!(parse_request("STATUS"), Request::Status);
        assert_eq!(parse_request("  status  "), Request::Status);
        // A STATUS with trailing words is SQL, not the control statement.
        assert_eq!(
            parse_request("STATUS now"),
            Request::Query("STATUS now".to_string())
        );
        assert_eq!(
            parse_request("STMT 42 INSERT INTO t VALUES (1)"),
            Request::Stmt(42, "INSERT INTO t VALUES (1)".to_string())
        );
        assert_eq!(
            parse_request("stmt 7 SELECT 1"),
            Request::Stmt(7, "SELECT 1".to_string())
        );
        // Malformed ids or missing SQL fall through to SQL.
        assert_eq!(
            parse_request("STMT abc SELECT 1"),
            Request::Query("STMT abc SELECT 1".to_string())
        );
        assert_eq!(
            parse_request("STMT 42"),
            Request::Query("STMT 42".to_string())
        );
    }

    fn roundtrip_v1(resp: &Response) -> Response {
        let mut buf = Vec::new();
        write_response(&mut buf, resp).unwrap();
        let mut r = BufReader::new(&buf[..]);
        read_response(&mut r).unwrap()
    }

    fn roundtrip_v2(resp: &Response) -> Response {
        let mut buf = Vec::new();
        write_response_v2(&mut buf, resp).unwrap();
        let mut r = BufReader::new(&buf[..]);
        read_response_v2(&mut r).unwrap()
    }

    fn sample_rows() -> Response {
        Response::Rows {
            columns: vec!["id".into(), "note".into()],
            rows: vec![
                vec![Value::Int(1), Value::Str("tab\there".into())],
                vec![Value::Double(1.5), Value::Null],
                vec![Value::Date(19000), Value::Str("multi\nline".into())],
            ],
            engine: EngineChoice::Column,
        }
    }

    #[test]
    fn responses_roundtrip_both_encodings() {
        let samples = [
            Response::Ok { affected: 7 },
            Response::Err {
                kind: "constraint".into(),
                msg: "boom\nwith newline".into(),
            },
            sample_rows(),
            Response::Batch(vec![
                Response::Ok { affected: 1 },
                sample_rows(),
                Response::Err {
                    kind: "parse".into(),
                    msg: "nope".into(),
                },
            ]),
        ];
        for resp in &samples {
            assert_eq!(&roundtrip_v1(resp), resp, "v1");
            assert_eq!(&roundtrip_v2(resp), resp, "v2");
        }
    }

    #[test]
    fn v2_is_smaller_than_v1_for_rows() {
        let resp = sample_rows();
        let (mut t, mut b) = (Vec::new(), Vec::new());
        write_response(&mut t, &resp).unwrap();
        write_response_v2(&mut b, &resp).unwrap();
        assert!(
            b.len() < t.len(),
            "binary ({}) should undercut text ({})",
            b.len(),
            t.len()
        );
    }

    #[test]
    fn double_encoding_is_exact() {
        for d in [0.1, -1.0 / 3.0, f64::MAX, 1e-300] {
            let v = decode_value(&encode_value(&Value::Double(d))).unwrap();
            assert_eq!(v, Value::Double(d));
        }
    }

    #[test]
    fn error_category_survives_the_wire() {
        let e = Error::Constraint("duplicate key 7".into());
        let resp = Response::from_error(&e);
        for got in [roundtrip_v1(&resp), roundtrip_v2(&resp)] {
            match result_of(got) {
                Err(back) => assert_eq!(back, e),
                other => panic!("expected error, got {other:?}"),
            }
        }
    }

    #[test]
    fn empty_select_is_not_conflated_with_ok() {
        // A read that returns no rows — and even no columns — must stay
        // a ROWS response; only non-reads collapse to OK.
        let empty = QueryResult {
            columns: Vec::new(),
            rows: Vec::new(),
            engine: EngineChoice::Row,
            affected: 0,
        };
        assert!(matches!(
            response_of(empty.clone(), true),
            Response::Rows { .. }
        ));
        assert!(matches!(
            response_of(empty, false),
            Response::Ok { affected: 0 }
        ));
        // And both encodings preserve the zero-column ROWS shape.
        let zero_cols = Response::Rows {
            columns: Vec::new(),
            rows: Vec::new(),
            engine: EngineChoice::Row,
        };
        assert_eq!(roundtrip_v1(&zero_cols), zero_cols);
        assert_eq!(roundtrip_v2(&zero_cols), zero_cols);
    }
}
