//! Line-oriented text protocol between `imci-server` and its clients.
//!
//! Requests are single lines (the client escapes embedded newlines,
//! tabs and backslashes via [`escape_request`] so SQL survives the
//! framing byte-exactly; the server undoes it with
//! [`unescape_request`]):
//!
//! ```text
//! SET CONSISTENCY STRONG|EVENTUAL
//! SET FORCE_ENGINE ROW|COLUMN|AUTO
//! <any SQL statement>
//! ```
//!
//! Responses are one of:
//!
//! ```text
//! OK <affected>
//! ROWS <nrows> ROW|COLUMN
//! <tab-separated column names>
//! <tab-separated typed values>        (nrows lines)
//! END
//! ERR <escaped message>
//! ```
//!
//! Values carry a one-letter type tag so the client can reconstruct
//! [`Value`]s exactly: `N` (null), `I:<i64>`, `F:<f64 bits as hex>`,
//! `T:<days>` (date), `S:<escaped utf-8>`. Strings escape `\`, tab and
//! newline so every row stays a single line.

use imci_cluster::Consistency;
use imci_common::{Error, Result, Value};
use imci_sql::{EngineChoice, QueryResult};
use std::io::{BufRead, Write};

/// A per-session setting change (paper §6.4: the proxy enforces the
/// consistency level per session).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionSetting {
    /// `SET CONSISTENCY ...` — routing constraint for this session's
    /// reads.
    Consistency(Consistency),
    /// `SET FORCE_ENGINE ...` — pin this session's SELECTs to one
    /// engine; `None` restores cost-based routing (`AUTO`).
    ForceEngine(Option<EngineChoice>),
}

/// One parsed client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    Set(SessionSetting),
    Query(String),
}

/// One server response.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// DML/DDL/SET acknowledged; `affected` rows changed.
    Ok { affected: usize },
    /// SELECT result set.
    Rows {
        columns: Vec<String>,
        rows: Vec<Vec<Value>>,
        engine: EngineChoice,
    },
    /// Execution error (the session stays usable).
    Err(String),
}

/// Parse one request line. `SET` statements the proxy handles itself
/// are recognized here; everything else is passed through as SQL.
pub fn parse_request(line: &str) -> Request {
    let trimmed = line.trim();
    let upper = trimmed.to_ascii_uppercase();
    let words: Vec<&str> = upper.split_whitespace().collect();
    if words.len() == 3 && words[0] == "SET" {
        match (words[1], words[2]) {
            ("CONSISTENCY", "STRONG") => {
                return Request::Set(SessionSetting::Consistency(Consistency::Strong))
            }
            ("CONSISTENCY", "EVENTUAL") => {
                return Request::Set(SessionSetting::Consistency(Consistency::Eventual))
            }
            ("FORCE_ENGINE", "ROW") => {
                return Request::Set(SessionSetting::ForceEngine(Some(EngineChoice::Row)))
            }
            ("FORCE_ENGINE", "COLUMN") => {
                return Request::Set(SessionSetting::ForceEngine(Some(
                    EngineChoice::Column,
                )))
            }
            ("FORCE_ENGINE", "AUTO") => {
                return Request::Set(SessionSetting::ForceEngine(None))
            }
            _ => {}
        }
    }
    Request::Query(trimmed.to_string())
}

/// Escape a request line before sending (client side): `\`, tab and
/// newline become two-character sequences so SQL containing literal
/// newlines survives the line framing. Symmetric with
/// [`unescape_request`].
pub fn escape_request(sql: &str) -> String {
    escape(sql)
}

/// Undo [`escape_request`] (server side). Requests typed by hand (e.g.
/// over netcat) without backslashes pass through unchanged.
pub fn unescape_request(line: &str) -> String {
    unescape(line)
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\t' => out.push_str("\\t"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            c => out.push(c),
        }
    }
    out
}

fn unescape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut it = s.chars();
    while let Some(c) = it.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match it.next() {
            Some('t') => out.push('\t'),
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            Some('\\') => out.push('\\'),
            Some(other) => out.push(other),
            None => {}
        }
    }
    out
}

fn encode_value(v: &Value) -> String {
    match v {
        Value::Null => "N".to_string(),
        Value::Int(i) => format!("I:{i}"),
        // Hex bit pattern: exact roundtrip, no float-formatting loss.
        Value::Double(d) => format!("F:{:016x}", d.to_bits()),
        Value::Date(d) => format!("T:{d}"),
        Value::Str(s) => format!("S:{}", escape(s)),
    }
}

fn decode_value(s: &str) -> Result<Value> {
    if s == "N" {
        return Ok(Value::Null);
    }
    let (tag, body) = s
        .split_once(':')
        .ok_or_else(|| Error::Execution(format!("malformed value {s:?}")))?;
    match tag {
        "I" => body
            .parse()
            .map(Value::Int)
            .map_err(|e| Error::Execution(format!("bad int: {e}"))),
        "F" => u64::from_str_radix(body, 16)
            .map(|bits| Value::Double(f64::from_bits(bits)))
            .map_err(|e| Error::Execution(format!("bad double: {e}"))),
        "T" => body
            .parse()
            .map(Value::Date)
            .map_err(|e| Error::Execution(format!("bad date: {e}"))),
        "S" => Ok(Value::Str(unescape(body))),
        _ => Err(Error::Execution(format!("unknown value tag {tag:?}"))),
    }
}

fn engine_name(e: EngineChoice) -> &'static str {
    match e {
        EngineChoice::Row => "ROW",
        EngineChoice::Column => "COLUMN",
    }
}

/// Serialize one response to a writer (server side).
pub fn write_response<W: Write>(w: &mut W, resp: &Response) -> std::io::Result<()> {
    match resp {
        Response::Ok { affected } => writeln!(w, "OK {affected}")?,
        Response::Err(msg) => writeln!(w, "ERR {}", escape(msg))?,
        Response::Rows {
            columns,
            rows,
            engine,
        } => {
            writeln!(w, "ROWS {} {}", rows.len(), engine_name(*engine))?;
            let header: Vec<String> = columns.iter().map(|c| escape(c)).collect();
            writeln!(w, "{}", header.join("\t"))?;
            for row in rows {
                let cells: Vec<String> = row.iter().map(encode_value).collect();
                writeln!(w, "{}", cells.join("\t"))?;
            }
            writeln!(w, "END")?;
        }
    }
    w.flush()
}

/// Read one response from a buffered reader (client side).
pub fn read_response<R: BufRead>(r: &mut R) -> Result<Response> {
    let mut line = String::new();
    if r.read_line(&mut line)
        .map_err(|e| Error::Execution(format!("connection read failed: {e}")))?
        == 0
    {
        return Err(Error::Execution("server closed the connection".into()));
    }
    let line = line.trim_end_matches(['\n', '\r']);
    if let Some(rest) = line.strip_prefix("OK ") {
        let affected = rest
            .trim()
            .parse()
            .map_err(|e| Error::Execution(format!("bad OK line: {e}")))?;
        return Ok(Response::Ok { affected });
    }
    if let Some(rest) = line.strip_prefix("ERR ") {
        return Ok(Response::Err(unescape(rest)));
    }
    let rest = line
        .strip_prefix("ROWS ")
        .ok_or_else(|| Error::Execution(format!("unexpected response line {line:?}")))?;
    let mut parts = rest.split_whitespace();
    let nrows: usize = parts
        .next()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| Error::Execution("bad ROWS count".into()))?;
    let engine = match parts.next() {
        Some("ROW") => EngineChoice::Row,
        Some("COLUMN") => EngineChoice::Column,
        other => return Err(Error::Execution(format!("bad engine tag {other:?}"))),
    };
    let mut header = String::new();
    r.read_line(&mut header)
        .map_err(|e| Error::Execution(format!("connection read failed: {e}")))?;
    let header = header.trim_end_matches(['\n', '\r']);
    let columns: Vec<String> = if header.is_empty() {
        Vec::new()
    } else {
        header.split('\t').map(unescape).collect()
    };
    let mut rows = Vec::with_capacity(nrows);
    for _ in 0..nrows {
        let mut rl = String::new();
        if r.read_line(&mut rl)
            .map_err(|e| Error::Execution(format!("connection read failed: {e}")))?
            == 0
        {
            return Err(Error::Execution("truncated result set".into()));
        }
        let rl = rl.trim_end_matches(['\n', '\r']);
        let row: Vec<Value> = if rl.is_empty() {
            Vec::new()
        } else {
            rl.split('\t').map(decode_value).collect::<Result<_>>()?
        };
        rows.push(row);
    }
    let mut end = String::new();
    r.read_line(&mut end)
        .map_err(|e| Error::Execution(format!("connection read failed: {e}")))?;
    if end.trim_end_matches(['\n', '\r']) != "END" {
        return Err(Error::Execution("missing END marker".into()));
    }
    Ok(Response::Rows {
        columns,
        rows,
        engine,
    })
}

/// Convert a [`QueryResult`] into the wire response. SELECTs (anything
/// with columns) become `ROWS`, DML becomes `OK`. Takes the result by
/// value: serving a query never copies the row data.
pub fn response_of(result: QueryResult) -> Response {
    if result.columns.is_empty() && result.rows.is_empty() {
        Response::Ok {
            affected: result.affected,
        }
    } else {
        Response::Rows {
            columns: result.columns,
            rows: result.rows,
            engine: result.engine,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    #[test]
    fn set_statements_parse() {
        assert_eq!(
            parse_request("set consistency strong"),
            Request::Set(SessionSetting::Consistency(Consistency::Strong))
        );
        assert_eq!(
            parse_request("SET FORCE_ENGINE column"),
            Request::Set(SessionSetting::ForceEngine(Some(EngineChoice::Column)))
        );
        assert_eq!(
            parse_request("SET FORCE_ENGINE AUTO"),
            Request::Set(SessionSetting::ForceEngine(None))
        );
        assert_eq!(
            parse_request("SELECT 1"),
            Request::Query("SELECT 1".to_string())
        );
        // Unknown SET shapes fall through to SQL.
        assert_eq!(
            parse_request("SET foo bar"),
            Request::Query("SET foo bar".to_string())
        );
    }

    fn roundtrip(resp: &Response) -> Response {
        let mut buf = Vec::new();
        write_response(&mut buf, resp).unwrap();
        let mut r = BufReader::new(&buf[..]);
        read_response(&mut r).unwrap()
    }

    #[test]
    fn responses_roundtrip() {
        assert_eq!(roundtrip(&Response::Ok { affected: 7 }), Response::Ok {
            affected: 7
        });
        assert_eq!(
            roundtrip(&Response::Err("boom\nwith newline".into())),
            Response::Err("boom\nwith newline".into())
        );
        let rows = Response::Rows {
            columns: vec!["id".into(), "note".into()],
            rows: vec![
                vec![Value::Int(1), Value::Str("tab\there".into())],
                vec![Value::Double(1.5), Value::Null],
                vec![Value::Date(19000), Value::Str("multi\nline".into())],
            ],
            engine: EngineChoice::Column,
        };
        assert_eq!(roundtrip(&rows), rows);
    }

    #[test]
    fn double_encoding_is_exact() {
        for d in [0.1, -1.0 / 3.0, f64::MAX, 1e-300] {
            let v = decode_value(&encode_value(&Value::Double(d))).unwrap();
            assert_eq!(v, Value::Double(d));
        }
    }
}
