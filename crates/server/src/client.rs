//! Blocking client library for the `imci-server` protocol, used by
//! tests, examples, and the throughput bench.
//!
//! [`Client::connect`] negotiates protocol v2 (binary responses) via
//! the `HELLO` handshake; [`Client::connect_v1`] skips the handshake
//! and speaks the v1 text protocol, exactly like a netcat user. Beyond
//! the one-statement [`Client::execute`] roundtrip, the client supports
//! **pipelining** ([`Client::send`] many requests, then [`Client::recv`]
//! the responses in order) and **batching** ([`Client::execute_batch`]:
//! n statements, one roundtrip, one aggregate reply).

use crate::protocol::{self, read_response, read_response_v2, result_of, Response, MAX_BATCH};
use imci_cluster::Consistency;
use imci_common::{Error, Result};
use imci_sql::{EngineChoice, QueryResult};
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Automatic retry of retryable server errors (`failover` while the
/// cluster promotes a new RW, `busy` while the service tier sheds
/// load). Both categories guarantee the statement never executed, so
/// re-issuing it verbatim is exactly-once from the client's point of
/// view. Backoff doubles per attempt from `base_backoff` up to
/// `max_backoff`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Retries after the first attempt (0 = no retry).
    pub max_retries: u32,
    pub base_backoff: Duration,
    pub max_backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_retries: 8,
            base_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(500),
        }
    }
}

/// One client session. Session settings (`SET ...`) persist server-side
/// for the connection's lifetime.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    version: u32,
    /// Requests sent but not yet answered (pipelining depth).
    pending: usize,
    /// Automatic retry of retryable errors in [`Client::execute`];
    /// `None` (the default) surfaces them to the caller.
    retry: Option<RetryPolicy>,
}

impl Client {
    /// Connect and negotiate the newest protocol both sides speak
    /// (currently v2: binary responses).
    pub fn connect<A: ToSocketAddrs + std::fmt::Debug>(addr: A) -> Result<Client> {
        Client::connect_version(addr, protocol::MAX_VERSION)
    }

    /// Connect without a handshake: plain v1 text protocol. What a
    /// hand-typed netcat session gets, kept for interop tests and
    /// debugging.
    pub fn connect_v1<A: ToSocketAddrs + std::fmt::Debug>(addr: A) -> Result<Client> {
        Client::connect_version(addr, 1)
    }

    /// Connect requesting at most protocol `version`; the server may
    /// negotiate down (see [`Client::protocol_version`]).
    pub fn connect_version<A: ToSocketAddrs + std::fmt::Debug>(
        addr: A,
        version: u32,
    ) -> Result<Client> {
        let stream = TcpStream::connect(&addr)
            .map_err(|e| Error::Execution(format!("connect {addr:?}: {e}")))?;
        stream
            .set_nodelay(true)
            .map_err(|e| Error::Execution(format!("set_nodelay: {e}")))?;
        let reader = BufReader::new(
            stream
                .try_clone()
                .map_err(|e| Error::Execution(format!("clone stream: {e}")))?,
        );
        let mut client = Client {
            reader,
            writer: BufWriter::with_capacity(1 << 16, stream),
            version: 1,
            pending: 0,
            retry: None,
        };
        if version > 1 {
            client.hello(version)?;
        }
        Ok(client)
    }

    /// The negotiated response-protocol version (1 = text, 2 = binary).
    pub fn protocol_version(&self) -> u32 {
        self.version
    }

    /// Outstanding pipelined requests ([`Client::send`]s not yet
    /// [`Client::recv`]ed).
    pub fn pending(&self) -> usize {
        self.pending
    }

    fn hello(&mut self, version: u32) -> Result<()> {
        writeln!(self.writer, "HELLO {version}")
            .and_then(|_| self.writer.flush())
            .map_err(|e| Error::Execution(format!("connection write failed: {e}")))?;
        // The handshake reply is a text line in every version.
        let mut line = String::new();
        if self
            .reader
            .read_line(&mut line)
            .map_err(|e| Error::Execution(format!("connection read failed: {e}")))?
            == 0
        {
            return Err(Error::Execution("server closed during handshake".into()));
        }
        let line = line.trim();
        let granted: u32 = line
            .strip_prefix("HELLO ")
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| Error::Execution(format!("unexpected handshake reply {line:?}")))?;
        self.version = granted.min(version).max(1);
        Ok(())
    }

    fn write_line(&mut self, line: &str) -> Result<()> {
        // The protocol is line-oriented: escape embedded newlines (and
        // backslashes/tabs) so SQL containing literal newlines — e.g.
        // inside string values — survives the framing byte-exactly.
        let encoded = crate::protocol::escape_request(line);
        writeln!(self.writer, "{encoded}")
            .map_err(|e| Error::Execution(format!("connection write failed: {e}")))
    }

    fn flush(&mut self) -> Result<()> {
        self.writer
            .flush()
            .map_err(|e| Error::Execution(format!("connection write failed: {e}")))
    }

    fn read_one(&mut self) -> Result<Response> {
        if self.version >= 2 {
            read_response_v2(&mut self.reader)
        } else {
            read_response(&mut self.reader)
        }
    }

    /// Pipeline one request: queue it without waiting for (or reading)
    /// its response. Call [`Client::recv`] once per `send`, in order.
    /// Nothing is guaranteed to reach the server until `recv` flushes.
    ///
    /// Keep the pipeline depth moderate (≲ a few hundred point-read
    /// sized requests): once the un-recv'd responses overflow the
    /// socket buffers on both sides, the server blocks writing and
    /// stops reading, and a sender that still isn't `recv`ing
    /// deadlocks with it. `BATCH` ([`Client::execute_batch`]) is the
    /// right tool for large units of work.
    pub fn send(&mut self, line: &str) -> Result<()> {
        self.write_line(line)?;
        self.pending += 1;
        Ok(())
    }

    /// Read the next pipelined response (flushes queued requests
    /// first). Server-reported errors keep their category: a constraint
    /// violation comes back as [`Error::Constraint`], not a generic
    /// execution error.
    pub fn recv(&mut self) -> Result<QueryResult> {
        self.flush()?;
        let resp = self.read_one()?;
        self.pending = self.pending.saturating_sub(1);
        result_of(resp)
    }

    /// Enable (or disable, with `None`) automatic retry of retryable
    /// errors in [`Client::execute`]. The connection stays open across
    /// a `failover`/`busy` response, so the retry reuses the session
    /// and its settings.
    pub fn set_retry_policy(&mut self, policy: Option<RetryPolicy>) {
        self.retry = policy;
    }

    /// Execute one SQL statement (a `send` + `recv` roundtrip). With a
    /// [`RetryPolicy`] set, retryable errors ([`Error::is_retryable`]:
    /// `failover`, `busy` — categories that guarantee the statement
    /// never took effect) are retried with capped exponential backoff
    /// before being surfaced.
    pub fn execute(&mut self, sql: &str) -> Result<QueryResult> {
        let Some(policy) = self.retry else {
            self.send(sql)?;
            return self.recv();
        };
        let mut backoff = policy.base_backoff;
        let mut attempts = 0;
        loop {
            self.send(sql)?;
            match self.recv() {
                Err(e) if e.is_retryable() && attempts < policy.max_retries => {
                    attempts += 1;
                    std::thread::sleep(backoff);
                    backoff = (backoff * 2).min(policy.max_backoff);
                }
                other => return other,
            }
        }
    }

    /// Execute `stmts` as one `BATCH`: one roundtrip, one aggregate
    /// reply, per-statement results in order. A failed statement yields
    /// its error in place without voiding the rest of the batch.
    ///
    /// Errors without touching the wire if pipelined requests are
    /// still outstanding — their responses must be [`Client::recv`]ed
    /// first, or the batch reply would be misread as theirs.
    pub fn execute_batch(&mut self, stmts: &[impl AsRef<str>]) -> Result<Vec<Result<QueryResult>>> {
        if self.pending > 0 {
            return Err(Error::Execution(format!(
                "cannot batch with {} pipelined response(s) unread; recv() them first",
                self.pending
            )));
        }
        if stmts.len() > MAX_BATCH {
            return Err(Error::Execution(format!(
                "batch of {} exceeds limit {MAX_BATCH}",
                stmts.len()
            )));
        }
        writeln!(self.writer, "BATCH {}", stmts.len())
            .map_err(|e| Error::Execution(format!("connection write failed: {e}")))?;
        for s in stmts {
            self.write_line(s.as_ref())?;
        }
        self.flush()?;
        match self.read_one()? {
            Response::Batch(parts) => {
                if parts.len() != stmts.len() {
                    return Err(Error::Execution(format!(
                        "batch reply has {} parts for {} statements",
                        parts.len(),
                        stmts.len()
                    )));
                }
                Ok(parts.into_iter().map(result_of).collect())
            }
            other => match result_of(other) {
                // e.g. the server rejecting an oversized batch.
                Err(e) => Err(e),
                Ok(_) => Err(Error::Execution(
                    "expected a BATCH reply, got a single response".into(),
                )),
            },
        }
    }

    /// Execute one statement tagged with a client-chosen id
    /// (`STMT <id> <sql>`). The server journals the decided response
    /// per session, so resending the same id replays the journal entry
    /// instead of re-executing — exactly-once across failover even for
    /// writes. Tagged statements are also transparently replayed by the
    /// server against a newly promoted writer, so the failover error
    /// category is never surfaced while promotion completes in time.
    pub fn execute_tagged(&mut self, id: u64, sql: &str) -> Result<QueryResult> {
        self.send(&format!("STMT {id} {sql}"))?;
        self.recv()
    }

    /// Fetch the server's `STATUS` report: a one-row result set with
    /// the writer role, writer epoch, applied LSN, supervisor state and
    /// fault-tolerance counters. Zero admission cost — answered even
    /// when the statement queue is saturated.
    pub fn status(&mut self) -> Result<QueryResult> {
        self.send("STATUS")?;
        self.recv()
    }

    /// Set this session's consistency level (paper §6.4).
    pub fn set_consistency(&mut self, level: Consistency) -> Result<()> {
        let word = match level {
            Consistency::Strong => "STRONG",
            Consistency::Eventual => "EVENTUAL",
        };
        self.expect_ok(&format!("SET CONSISTENCY {word}"))
    }

    /// Pin this session's SELECTs to one engine; `None` restores
    /// cost-based routing.
    pub fn set_force_engine(&mut self, engine: Option<EngineChoice>) -> Result<()> {
        let word = match engine {
            Some(EngineChoice::Row) => "ROW",
            Some(EngineChoice::Column) => "COLUMN",
            None => "AUTO",
        };
        self.expect_ok(&format!("SET FORCE_ENGINE {word}"))
    }

    /// Assign this session to a fairness tenant: the service tier
    /// schedules statement execution round-robin across tenants, so
    /// one tenant pipelining heavily cannot starve another. `tenant`
    /// must be a single word.
    pub fn set_tenant(&mut self, tenant: &str) -> Result<()> {
        self.expect_ok(&format!("SET TENANT {tenant}"))
    }

    fn expect_ok(&mut self, line: &str) -> Result<()> {
        self.send(line)?;
        let result = self.recv()?;
        if result.columns.is_empty() && result.rows.is_empty() {
            Ok(())
        } else {
            Err(Error::Execution("unexpected result set for SET".into()))
        }
    }
}
