//! Blocking client library for the `imci-server` line protocol, used
//! by tests, examples, and the throughput bench.

use crate::protocol::{read_response, Response};
use imci_cluster::Consistency;
use imci_common::{Error, Result};
use imci_sql::{EngineChoice, QueryResult};
use std::io::{BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};

/// One client session. Each statement is a request/response roundtrip;
/// session settings (`SET ...`) persist server-side for the
/// connection's lifetime.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connect to a running server.
    pub fn connect<A: ToSocketAddrs + std::fmt::Debug>(addr: A) -> Result<Client> {
        let stream = TcpStream::connect(&addr)
            .map_err(|e| Error::Execution(format!("connect {addr:?}: {e}")))?;
        stream
            .set_nodelay(true)
            .map_err(|e| Error::Execution(format!("set_nodelay: {e}")))?;
        let reader = BufReader::new(
            stream
                .try_clone()
                .map_err(|e| Error::Execution(format!("clone stream: {e}")))?,
        );
        Ok(Client {
            reader,
            writer: stream,
        })
    }

    fn roundtrip(&mut self, line: &str) -> Result<Response> {
        // The protocol is line-oriented: escape embedded newlines (and
        // backslashes/tabs) so SQL containing literal newlines — e.g.
        // inside string values — survives the framing byte-exactly.
        let encoded = crate::protocol::escape_request(line);
        writeln!(self.writer, "{encoded}")
            .and_then(|_| self.writer.flush())
            .map_err(|e| Error::Execution(format!("connection write failed: {e}")))?;
        read_response(&mut self.reader)
    }

    /// Execute one SQL statement; errors reported by the server come
    /// back as [`Error::Execution`].
    pub fn execute(&mut self, sql: &str) -> Result<QueryResult> {
        match self.roundtrip(sql)? {
            Response::Ok { affected } => Ok(QueryResult {
                columns: Vec::new(),
                rows: Vec::new(),
                engine: EngineChoice::Row,
                affected,
            }),
            Response::Rows {
                columns,
                rows,
                engine,
            } => Ok(QueryResult {
                columns,
                rows,
                engine,
                affected: 0,
            }),
            Response::Err(msg) => Err(Error::Execution(msg)),
        }
    }

    /// Set this session's consistency level (paper §6.4).
    pub fn set_consistency(&mut self, level: Consistency) -> Result<()> {
        let word = match level {
            Consistency::Strong => "STRONG",
            Consistency::Eventual => "EVENTUAL",
        };
        self.expect_ok(&format!("SET CONSISTENCY {word}"))
    }

    /// Pin this session's SELECTs to one engine; `None` restores
    /// cost-based routing.
    pub fn set_force_engine(&mut self, engine: Option<EngineChoice>) -> Result<()> {
        let word = match engine {
            Some(EngineChoice::Row) => "ROW",
            Some(EngineChoice::Column) => "COLUMN",
            None => "AUTO",
        };
        self.expect_ok(&format!("SET FORCE_ENGINE {word}"))
    }

    fn expect_ok(&mut self, line: &str) -> Result<()> {
        match self.roundtrip(line)? {
            Response::Ok { .. } => Ok(()),
            Response::Err(msg) => Err(Error::Execution(msg)),
            Response::Rows { .. } => {
                Err(Error::Execution("unexpected result set for SET".into()))
            }
        }
    }
}
