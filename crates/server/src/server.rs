//! The `imci-server` service: the line protocol hosted on the
//! [`imci_net`] reactor tier.
//!
//! This is the paper's stateless proxy tier (§6.1) made concrete: the
//! server owns no data, it only holds per-session state (consistency
//! level, forced engine) and maps each statement onto the cluster's
//! routing rules — writes to the RW node, reads load-balanced across
//! RO nodes, with strong-consistency reads held until an RO's applied
//! LSN catches the RW's written LSN (§6.4).
//!
//! Connections are no longer one-thread-each: reactor threads decode
//! requests into ordered units, a shared worker pool executes them
//! against the cluster, and the admission layer sheds overload with
//! retryable `busy` errors (see [`crate::protocol`] for the wire shape
//! and `imci_net` for the threading model). Thousands of mostly idle
//! sessions cost file descriptors, not threads.

use crate::protocol::{
    encode_response_v2, parse_request, response_of, unescape_request, write_response, Request,
    Response, SessionSetting, MAX_BATCH, MAX_VERSION,
};
use imci_cluster::{Cluster, ExecOpts};
use imci_common::{Error, Result, Value};
use imci_net::{Goodbye, InputBuf, NetConfig, NetServer, Proto, RunOutcome, ServiceStats, Step};
use imci_sql::{EngineChoice, QueryResult};
use std::collections::{HashMap, VecDeque};
use std::net::SocketAddr;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Longest single request line the server will buffer while waiting
/// for its terminator. Guards reactor memory against a peer that
/// streams bytes without ever sending a newline.
pub const MAX_REQUEST_LINE: usize = 8 << 20;

/// Longest the proxy will mask a writer vacancy by transparently
/// replaying a statement before surfacing the failover error after
/// all. Comfortably above any supervisor detection + promotion cycle,
/// but bounded so a cluster that truly lost its last candidate does
/// not hang clients forever.
pub const REPLAY_DEADLINE: Duration = Duration::from_secs(10);

/// Decided responses remembered per session for `STMT`-tagged
/// statements (exactly-once resend window).
const STMT_JOURNAL_CAP: usize = 1024;

/// Server construction knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 picks a free port (see
    /// [`Server::local_addr`]).
    pub addr: String,
    /// Statement-execution threads shared by all sessions.
    pub workers: usize,
    /// Event-loop (epoll) threads; connections spread round-robin.
    pub reactors: usize,
    /// Hard cap on concurrently open sessions; connections beyond it
    /// are refused with a retryable `busy` error at accept.
    pub max_connections: usize,
    /// Cap on statements queued for execution across all sessions;
    /// statements beyond it are answered with a retryable `busy` error
    /// instead of growing the queue.
    pub max_queued_statements: usize,
    /// Close sessions with no inbound traffic for this long.
    pub idle_timeout: Option<Duration>,
    /// How long [`Server::shutdown`] waits for sessions to drain
    /// before force-closing them.
    pub drain_timeout: Duration,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 16,
            reactors: cores.clamp(1, 4),
            max_connections: 4096,
            max_queued_statements: 1024,
            idle_timeout: Some(Duration::from_secs(300)),
            drain_timeout: Duration::from_secs(5),
        }
    }
}

/// Service counters (observability for benches and tests). The
/// connection-level counters are maintained by the service tier, the
/// statement-level ones by the protocol executor.
pub type ServerStats = ServiceStats;

/// A running server; dropping it (or calling [`Server::shutdown`])
/// drains sessions gracefully and joins all threads.
pub struct Server {
    net: NetServer<ImciProto>,
    stats: Arc<ServerStats>,
}

impl Server {
    /// Bind and start serving `cluster` on the reactor tier.
    pub fn start(cluster: Arc<Cluster>, config: ServerConfig) -> Result<Server> {
        let stats = Arc::new(ServerStats::default());
        let proto = Arc::new(ImciProto {
            cluster,
            stats: stats.clone(),
        });
        let net_config = NetConfig {
            addr: config.addr.clone(),
            reactors: config.reactors,
            workers: config.workers,
            max_connections: config.max_connections,
            max_queued_statements: config.max_queued_statements,
            idle_timeout: config.idle_timeout,
            drain_timeout: config.drain_timeout,
            ..NetConfig::default()
        };
        let net = NetServer::start(proto, net_config, stats.clone())
            .map_err(|e| Error::Execution(format!("bind {}: {e}", config.addr)))?;
        Ok(Server { net, stats })
    }

    /// The bound address (use this to connect when the port was 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.net.local_addr()
    }

    /// Service counters.
    pub fn stats(&self) -> &ServerStats {
        &self.stats
    }

    /// Shared handle to the counters (for watcher threads that outlive
    /// a borrow of the server).
    pub fn stats_handle(&self) -> Arc<ServerStats> {
        self.stats.clone()
    }

    /// Graceful shutdown: stop accepting, answer everything already
    /// queued, send each session a final retryable `busy` frame, close,
    /// and join all threads. Sessions still open after the configured
    /// drain timeout are force-closed.
    pub fn shutdown(mut self) {
        self.net.shutdown();
    }
}

// ---------------------------------------------------------------------------
// The line protocol as an imci_net Proto
// ---------------------------------------------------------------------------

/// The imci line protocol plugged into the reactor tier: framing state
/// on the reactor side, an [`ExecOpts`] session plus negotiated
/// version on the worker side.
struct ImciProto {
    cluster: Arc<Cluster>,
    stats: Arc<ServerStats>,
}

/// Reactor-side framing state: a batch header whose body lines are
/// still arriving.
struct ParseState {
    batch: Option<(usize, Vec<Request>)>,
}

/// Worker-side session state.
struct ExecState {
    session: ExecOpts,
    version: u32,
    /// Exactly-once journal for `STMT`-tagged statements: client
    /// statement id → the decided response. A resend of a journaled id
    /// is answered from here without re-executing.
    journal: StmtJournal,
}

/// Bounded FIFO journal of decided `STMT` responses. Only *decided*
/// outcomes are stored — a retryable error (`failover`, `busy`) means
/// the statement never took effect, and journaling it would wrongly
/// pin a later resend to the transient error.
struct StmtJournal {
    by_id: HashMap<u64, Response>,
    order: VecDeque<u64>,
}

impl StmtJournal {
    fn new() -> StmtJournal {
        StmtJournal {
            by_id: HashMap::new(),
            order: VecDeque::new(),
        }
    }

    fn get(&self, id: u64) -> Option<&Response> {
        self.by_id.get(&id)
    }

    fn put(&mut self, id: u64, resp: Response) {
        if self.by_id.insert(id, resp).is_none() {
            self.order.push_back(id);
            if self.order.len() > STMT_JOURNAL_CAP {
                if let Some(evicted) = self.order.pop_front() {
                    self.by_id.remove(&evicted);
                }
            }
        }
    }
}

/// One ordered unit of work decoded off a connection.
enum Unit {
    Hello(u32),
    Set(SessionSetting),
    /// `STATUS`: answered by the proxy itself from cluster metadata,
    /// zero admission cost — it must work precisely when the cluster
    /// is saturated or failing over.
    Status,
    /// `STMT <id> <sql>`: a statement tagged for exactly-once replay.
    Stmt(u64, String),
    Query(String),
    Batch(Vec<Request>),
    /// Admission shed this statement: answer with a retryable `busy`
    /// error in its response slot.
    Busy,
    /// Report an error, then close (protocol violations, goodbyes).
    Fatal {
        kind: &'static str,
        msg: String,
    },
    /// Close silently (`quit` / `exit`).
    Quit,
}

impl Proto for ImciProto {
    type Parse = ParseState;
    type Exec = ExecState;
    type Unit = Unit;

    fn open(&self) -> (ParseState, ExecState) {
        (
            ParseState { batch: None },
            ExecState {
                session: ExecOpts::default(),
                version: 1,
                journal: StmtJournal::new(),
            },
        )
    }

    fn decode(&self, p: &mut ParseState, buf: &mut InputBuf) -> Step<Unit> {
        loop {
            let Some(raw) = buf.take_line() else {
                if buf.len() > MAX_REQUEST_LINE {
                    return Step::Poison(Unit::Fatal {
                        kind: "execution",
                        msg: format!("request line exceeds {MAX_REQUEST_LINE} bytes"),
                    });
                }
                return Step::NeedMore;
            };
            let Ok(line) = std::str::from_utf8(&raw) else {
                // The line framing can't be trusted after this: tell the
                // client why, then close.
                return Step::Poison(Unit::Fatal {
                    kind: "execution",
                    msg: "request was not valid UTF-8".to_string(),
                });
            };
            let line = unescape_request(line);
            let trimmed = line.trim();
            if let Some((n, mut reqs)) = p.batch.take() {
                reqs.push(parse_request(trimmed));
                if reqs.len() == n {
                    return Step::Unit(Unit::Batch(reqs));
                }
                p.batch = Some((n, reqs));
                continue;
            }
            if trimmed.is_empty() {
                continue;
            }
            if trimmed.eq_ignore_ascii_case("quit") || trimmed.eq_ignore_ascii_case("exit") {
                return Step::Poison(Unit::Quit);
            }
            match parse_request(trimmed) {
                Request::Hello(v) => return Step::Unit(Unit::Hello(v)),
                Request::Batch(count) => {
                    if count > MAX_BATCH {
                        // The batch body is in flight and cannot be
                        // skipped without buffering `count` lines we
                        // refuse to hold — report and close, exactly
                        // like the non-UTF-8 case.
                        return Step::Poison(Unit::Fatal {
                            kind: "execution",
                            msg: format!("batch of {count} exceeds limit {MAX_BATCH}"),
                        });
                    }
                    if count == 0 {
                        return Step::Unit(Unit::Batch(Vec::new()));
                    }
                    p.batch = Some((count, Vec::with_capacity(count.min(1024))));
                }
                Request::Set(setting) => return Step::Unit(Unit::Set(setting)),
                Request::Status => return Step::Unit(Unit::Status),
                Request::Stmt(id, sql) => return Step::Unit(Unit::Stmt(id, sql)),
                Request::Query(sql) => return Step::Unit(Unit::Query(sql)),
            }
        }
    }

    fn cost(&self, unit: &Unit) -> usize {
        match unit {
            Unit::Query(_) | Unit::Stmt(..) => 1,
            // A batch's admission cost is its statement count; pure
            // control batches still occupy one slot.
            Unit::Batch(reqs) => reqs
                .iter()
                .filter(|r| matches!(r, Request::Query(_) | Request::Stmt(..)))
                .count()
                .max(1),
            // STATUS (and the other control units) bypass admission:
            // cost 0 means they are answered even when the statement
            // queue is saturated.
            _ => 0,
        }
    }

    fn tenant_of<'u>(&self, unit: &'u Unit) -> Option<&'u str> {
        match unit {
            Unit::Set(SessionSetting::Tenant(t)) => Some(t),
            Unit::Batch(reqs) => reqs.iter().rev().find_map(|r| match r {
                Request::Set(SessionSetting::Tenant(t)) => Some(t.as_str()),
                _ => None,
            }),
            _ => None,
        }
    }

    fn reject(&self, _unit: Unit) -> Unit {
        Unit::Busy
    }

    fn goodbye(&self, why: Goodbye) -> Unit {
        match why {
            // Retryable: reconnecting (to this node after it restarts,
            // or to a peer) and re-issuing is safe, mirroring failover.
            Goodbye::Drain => Unit::Fatal {
                kind: "busy",
                msg: "server shutting down".to_string(),
            },
            Goodbye::IdleTimeout => Unit::Fatal {
                kind: "execution",
                msg: "idle connection closed".to_string(),
            },
        }
    }

    fn over_budget_frame(&self) -> Vec<u8> {
        // No session exists yet, so no negotiated version: the refusal
        // is a v1 text line, readable by every client.
        let mut out = Vec::new();
        emit(
            &mut out,
            &Response::Err {
                kind: "busy".to_string(),
                msg: "connection budget exhausted; retry later".to_string(),
            },
            1,
        );
        out
    }

    fn run(&self, exec: &mut ExecState, units: Vec<Unit>, out: &mut Vec<u8>) -> RunOutcome {
        let mut outcome = RunOutcome::default();
        let mut iter = units.into_iter().peekable();
        while let Some(unit) = iter.next() {
            match unit {
                Unit::Hello(v) => {
                    // Negotiate down to what both sides speak. The
                    // reply is always a text line — the encoding switch
                    // applies from the *next* response on.
                    exec.version = v.clamp(1, MAX_VERSION);
                    out.extend_from_slice(format!("HELLO {}\n", exec.version).as_bytes());
                }
                Unit::Set(setting) => {
                    apply_setting(&mut exec.session, setting);
                    emit(out, &Response::Ok { affected: 0 }, exec.version);
                }
                Unit::Status => {
                    let resp = status_response(&self.cluster, &self.stats);
                    emit(out, &resp, exec.version);
                }
                Unit::Stmt(id, sql) => {
                    let resp = execute_stmt(
                        &self.cluster,
                        exec.session,
                        &mut exec.journal,
                        id,
                        &sql,
                        &self.stats,
                    );
                    emit(out, &resp, exec.version);
                }
                Unit::Query(sql) => {
                    // Greedily group the pipelined run of plain queries
                    // behind this one: `execute_many` resolves proxy
                    // routing once per run instead of once per query.
                    let mut sqls = vec![sql];
                    while let Some(Unit::Query(_)) = iter.peek() {
                        if let Some(Unit::Query(s)) = iter.next() {
                            sqls.push(s);
                        }
                    }
                    let refs: Vec<&str> = sqls.iter().map(|s| s.as_str()).collect();
                    self.stats
                        .queries
                        .fetch_add(refs.len() as u64, Ordering::Relaxed);
                    let results = self.cluster.execute_many(&refs, exec.session);
                    for (k, result) in results.into_iter().enumerate() {
                        let resp = finish_result(
                            &self.cluster,
                            exec.session,
                            refs[k],
                            result,
                            &self.stats,
                        );
                        emit(out, &resp, exec.version);
                    }
                }
                Unit::Batch(reqs) => {
                    let resp = execute_batch(&self.cluster, exec, reqs, &self.stats);
                    emit(out, &resp, exec.version);
                }
                Unit::Busy => {
                    emit(
                        out,
                        &Response::Err {
                            kind: "busy".to_string(),
                            msg: "statement queue full; retry after backoff".to_string(),
                        },
                        exec.version,
                    );
                }
                Unit::Fatal { kind, msg } => {
                    emit(
                        out,
                        &Response::Err {
                            kind: kind.to_string(),
                            msg,
                        },
                        exec.version,
                    );
                    outcome.close = true;
                }
                Unit::Quit => outcome.close = true,
            }
        }
        outcome
    }
}

/// Encode one response in the session's negotiated encoding, appended
/// to the connection's output.
fn emit(out: &mut Vec<u8>, resp: &Response, version: u32) {
    if version >= 2 {
        encode_response_v2(out, resp);
    } else {
        write_response(out, resp).expect("writing to a Vec cannot fail");
    }
}

/// Apply one `SET` to the session state. `TENANT` is a scheduling hint
/// consumed by the service tier (`Proto::tenant_of`), not session
/// state.
fn apply_setting(session: &mut ExecOpts, setting: SessionSetting) {
    match setting {
        SessionSetting::Consistency(c) => session.consistency = Some(c),
        SessionSetting::ForceEngine(f) => session.force_engine = f,
        SessionSetting::Tenant(_) => {}
        SessionSetting::Parallelism(n) => session.parallelism = Some(n),
        SessionSetting::LateMaterialization(b) => session.late_materialization = Some(b),
    }
}

/// Execute a batch: `SET`s apply in order, and **consecutive** SQL
/// statements go through [`Cluster::execute_many`], which resolves
/// proxy routing once per run instead of once per statement. One
/// sub-response per request, in order.
fn execute_batch(
    cluster: &Arc<Cluster>,
    exec: &mut ExecState,
    reqs: Vec<Request>,
    stats: &ServerStats,
) -> Response {
    let mut parts = Vec::with_capacity(reqs.len());
    let mut i = 0;
    while i < reqs.len() {
        match &reqs[i] {
            Request::Set(setting) => {
                apply_setting(&mut exec.session, setting.clone());
                parts.push(Response::Ok { affected: 0 });
                i += 1;
            }
            Request::Hello(_) | Request::Batch(_) => {
                parts.push(Response::Err {
                    kind: "execution".into(),
                    msg: "HELLO/BATCH cannot appear inside a batch".into(),
                });
                i += 1;
            }
            Request::Status => {
                parts.push(status_response(cluster, stats));
                i += 1;
            }
            Request::Stmt(id, sql) => {
                parts.push(execute_stmt(
                    cluster,
                    exec.session,
                    &mut exec.journal,
                    *id,
                    sql,
                    stats,
                ));
                i += 1;
            }
            Request::Query(_) => {
                let mut sqls: Vec<&str> = Vec::new();
                while let Some(Request::Query(sql)) = reqs.get(i) {
                    sqls.push(sql);
                    i += 1;
                }
                stats
                    .queries
                    .fetch_add(sqls.len() as u64, Ordering::Relaxed);
                let results = cluster.execute_many(&sqls, exec.session);
                for (k, result) in results.into_iter().enumerate() {
                    parts.push(finish_result(cluster, exec.session, sqls[k], result, stats));
                }
                debug_assert_eq!(parts.len(), i, "one response per request");
            }
        }
    }
    Response::Batch(parts)
}

/// Turn one execution result into its response, transparently
/// replaying **read-only** statements that hit a failover error: a
/// read never took effect, so re-executing it against the promoted
/// writer (or a surviving RO) is invisible to the client. Writes are
/// only replayed when the client tagged them (`STMT`, see
/// [`execute_stmt`]) — an untagged client that timed out and resent on
/// its own could otherwise double-apply.
fn finish_result(
    cluster: &Cluster,
    session: ExecOpts,
    sql: &str,
    result: Result<QueryResult>,
    stats: &ServerStats,
) -> Response {
    let read_only = imci_sql::is_read_only(sql);
    let result = match result {
        Err(e @ Error::Failover(_)) if read_only => replay_execute(cluster, sql, session, stats, e),
        other => other,
    };
    match result {
        Ok(r) => response_of(r, read_only),
        Err(e) => {
            stats.errors.fetch_add(1, Ordering::Relaxed);
            Response::from_error(&e)
        }
    }
}

/// Re-execute `sql` after a failover error: wait (bounded by
/// [`REPLAY_DEADLINE`]) for a writer to be installed, then retry.
/// Safe for reads (no effect to duplicate) and for `STMT`-tagged
/// writes — in this system a statement that failed with the failover
/// category provably did **not** commit: the epoch fence rejects the
/// append before the commit fsync, and the failed append burns no LSN.
fn replay_execute(
    cluster: &Cluster,
    sql: &str,
    session: ExecOpts,
    stats: &ServerStats,
    first_err: Error,
) -> Result<QueryResult> {
    let deadline = Instant::now() + REPLAY_DEADLINE;
    let mut last = first_err;
    loop {
        let now = Instant::now();
        if now >= deadline || !cluster.wait_for_writer(deadline - now) {
            return Err(last);
        }
        stats.replayed_stmts.fetch_add(1, Ordering::Relaxed);
        match cluster.execute_opts(sql, session) {
            // The writer we waited for may itself have died; keep
            // retrying until the deadline.
            Err(e @ Error::Failover(_)) => last = e,
            other => return other,
        }
    }
}

/// Execute one `STMT <id> <sql>` with exactly-once semantics: a
/// journaled id replays the decided response without re-executing;
/// a fresh id executes with transparent failover replay (tagged
/// statements are replayable whether or not they are reads), and the
/// decided outcome is journaled for future resends.
fn execute_stmt(
    cluster: &Cluster,
    session: ExecOpts,
    journal: &mut StmtJournal,
    id: u64,
    sql: &str,
    stats: &ServerStats,
) -> Response {
    if let Some(resp) = journal.get(id) {
        return resp.clone();
    }
    stats.queries.fetch_add(1, Ordering::Relaxed);
    let result = match cluster.execute_opts(sql, session) {
        Err(e @ Error::Failover(_)) => replay_execute(cluster, sql, session, stats, e),
        other => other,
    };
    let resp = match result {
        Ok(r) => response_of(r, imci_sql::is_read_only(sql)),
        Err(e) => {
            stats.errors.fetch_add(1, Ordering::Relaxed);
            Response::from_error(&e)
        }
    };
    // Journal only decided outcomes: retryable errors mean the
    // statement never took effect, so a resend should re-attempt it,
    // not replay the transient error.
    let decided =
        !matches!(&resp, Response::Err { kind, .. } if kind == "failover" || kind == "busy");
    if decided {
        journal.put(id, resp.clone());
    }
    resp
}

/// Build the `STATUS` report: a one-row result set with the node role,
/// writer epoch, applied LSN and supervisor state, plus the
/// fault-tolerance counters. Also mirrors the cluster's supervisor
/// counters into the service stats so watchers holding only a
/// [`ServerStats`] handle observe them.
fn status_response(cluster: &Cluster, stats: &ServerStats) -> Response {
    let auto = cluster.auto_failovers();
    let detect = cluster.detection_ms_last();
    stats.auto_failovers.store(auto, Ordering::Relaxed);
    stats.detection_ms_last.store(detect, Ordering::Relaxed);
    let columns = [
        "role",
        "writer_epoch",
        "applied_lsn",
        "supervisor",
        "auto_failovers",
        "replayed_stmts",
        "detection_ms_last",
    ]
    .map(String::from)
    .to_vec();
    let row = vec![
        Value::Str(cluster.writer_role().to_string()),
        Value::Int(cluster.fs.current_epoch() as i64),
        Value::Int(cluster.applied_lsn() as i64),
        Value::Str(cluster.supervisor_state().to_string()),
        Value::Int(auto as i64),
        Value::Int(stats.replayed_stmts.load(Ordering::Relaxed) as i64),
        Value::Int(detect as i64),
    ];
    Response::Rows {
        columns,
        rows: vec![row],
        engine: EngineChoice::Row,
    }
}
