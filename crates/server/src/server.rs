//! The `imci-server` service: a bounded thread pool serving the line
//! protocol over TCP, one session per connection.
//!
//! This is the paper's stateless proxy tier (§6.1) made concrete: the
//! server owns no data, it only holds per-session state (consistency
//! level, forced engine) and maps each statement onto the cluster's
//! routing rules — writes to the RW node, reads load-balanced across
//! RO nodes, with strong-consistency reads held until an RO's applied
//! LSN catches the RW's written LSN (§6.4).

use crate::protocol::{
    encode_response_v2, parse_request, response_of, unescape_request, write_response, Request,
    Response, SessionSetting, MAX_BATCH, MAX_VERSION,
};
use imci_cluster::{Cluster, ExecOpts};
use imci_common::{Error, Result};
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;

/// Server construction knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 picks a free port (see
    /// [`Server::local_addr`]).
    pub addr: String,
    /// Worker threads = maximum concurrently served sessions. Further
    /// connections queue in `backlog`.
    pub workers: usize,
    /// Accepted-but-unserved connection queue depth.
    pub backlog: usize,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 16,
            backlog: 64,
        }
    }
}

/// Service counters (observability for benches and tests).
#[derive(Debug, Default)]
pub struct ServerStats {
    /// Connections accepted over the server's lifetime.
    pub connections: AtomicU64,
    /// Statements executed (including failed ones).
    pub queries: AtomicU64,
    /// Statements that returned an error to the client.
    pub errors: AtomicU64,
    /// Sessions being served right now.
    pub active_sessions: AtomicUsize,
}

// Per-session proxy state is exactly the per-statement override set
// the cluster accepts, so sessions hold an `ExecOpts` directly.

/// A running server; dropping it (or calling [`Server::shutdown`])
/// stops the acceptor and joins the worker pool.
pub struct Server {
    local_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    stats: Arc<ServerStats>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Bind and start serving `cluster` on `config.workers` threads.
    pub fn start(cluster: Arc<Cluster>, config: ServerConfig) -> Result<Server> {
        let listener = TcpListener::bind(&config.addr)
            .map_err(|e| Error::Execution(format!("bind {}: {e}", config.addr)))?;
        let local_addr = listener
            .local_addr()
            .map_err(|e| Error::Execution(format!("local_addr: {e}")))?;
        let stop = Arc::new(AtomicBool::new(false));
        let stats = Arc::new(ServerStats::default());

        let (conn_tx, conn_rx) = mpsc::sync_channel::<TcpStream>(config.backlog.max(1));
        let conn_rx = Arc::new(Mutex::new(conn_rx));

        let mut workers = Vec::with_capacity(config.workers.max(1));
        for _ in 0..config.workers.max(1) {
            let cluster = cluster.clone();
            let rx = conn_rx.clone();
            let stats = stats.clone();
            let stop = stop.clone();
            workers.push(std::thread::spawn(move || loop {
                // Hold the lock only while dequeuing, not while serving.
                let conn = match rx.lock() {
                    Ok(rx) => rx.recv(),
                    Err(_) => break,
                };
                match conn {
                    Ok(stream) => serve_session(&cluster, stream, &stats, &stop),
                    Err(_) => break, // acceptor gone: shutdown
                }
            }));
        }

        let acceptor = {
            let stop = stop.clone();
            let stats = stats.clone();
            std::thread::spawn(move || {
                for stream in listener.incoming() {
                    if stop.load(Ordering::SeqCst) {
                        break;
                    }
                    match stream {
                        Ok(s) => {
                            stats.connections.fetch_add(1, Ordering::Relaxed);
                            // Blocks when all workers are busy and the
                            // backlog is full — natural admission control.
                            if conn_tx.send(s).is_err() {
                                break;
                            }
                        }
                        Err(_) => continue,
                    }
                }
                // conn_tx drops here; idle workers see RecvError and exit.
            })
        };

        Ok(Server {
            local_addr,
            stop,
            stats,
            acceptor: Some(acceptor),
            workers,
        })
    }

    /// The bound address (use this to connect when the port was 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Service counters.
    pub fn stats(&self) -> &ServerStats {
        &self.stats
    }

    /// Shared handle to the counters (for watcher threads that outlive
    /// a borrow of the server).
    pub fn stats_handle(&self) -> Arc<ServerStats> {
        self.stats.clone()
    }

    /// Stop accepting, finish in-flight sessions, join all threads.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        if self.acceptor.is_none() {
            return;
        }
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the acceptor's blocking `accept` with a dummy connect.
        let _ = TcpStream::connect(self.local_addr);
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

/// Serve one connection to completion: read request lines, route each
/// through the cluster, write one response per request.
fn serve_session(
    cluster: &Arc<Cluster>,
    stream: TcpStream,
    stats: &ServerStats,
    stop: &AtomicBool,
) {
    stats.active_sessions.fetch_add(1, Ordering::SeqCst);
    let _ = serve_session_inner(cluster, stream, stats, stop);
    stats.active_sessions.fetch_sub(1, Ordering::SeqCst);
}

/// Read one request line, waking up periodically to honor server
/// shutdown while the client is idle. Returns `Ok(0)` for EOF or
/// shutdown; partial data read before a timeout stays buffered in
/// `line` and the next attempt appends the rest.
fn read_request_line(
    reader: &mut BufReader<TcpStream>,
    line: &mut String,
    stop: &AtomicBool,
) -> std::io::Result<usize> {
    loop {
        match reader.read_line(line) {
            Ok(n) => return Ok(n),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if stop.load(Ordering::SeqCst) {
                    return Ok(0);
                }
            }
            Err(e) => return Err(e),
        }
    }
}

/// Write `resp` in the session's negotiated encoding (v1 text or v2
/// binary). `scratch` is a per-session reusable encode buffer so the
/// per-response hot path allocates nothing. Flushing is the caller's
/// decision — see the pipelining policy in [`serve_session_inner`].
fn write_versioned<W: Write>(
    w: &mut W,
    resp: &Response,
    version: u32,
    scratch: &mut Vec<u8>,
) -> std::io::Result<()> {
    if version >= 2 {
        scratch.clear();
        encode_response_v2(scratch, resp);
        w.write_all(scratch)
    } else {
        write_response(w, resp)
    }
}

/// Apply one `SET` to the session state.
fn apply_setting(session: &mut ExecOpts, setting: SessionSetting) {
    match setting {
        SessionSetting::Consistency(c) => session.consistency = Some(c),
        SessionSetting::ForceEngine(f) => session.force_engine = f,
    }
}

/// Read the `n` request lines of a `BATCH <n>` body. Returns `None` on
/// EOF/shutdown mid-batch — a partial batch is never executed.
///
/// Takes the session writer because the flush-before-blocking rule of
/// [`serve_session_inner`] applies to every blocking read, including
/// body lines: a pipelining client may legitimately wait for earlier
/// responses before sending the body, and responses still sitting in
/// the write buffer would deadlock the session.
fn read_batch_body<W: Write>(
    reader: &mut BufReader<TcpStream>,
    writer: &mut W,
    n: usize,
    stop: &AtomicBool,
) -> std::io::Result<Option<Vec<Request>>> {
    let mut reqs = Vec::with_capacity(n);
    let mut line = String::new();
    for _ in 0..n {
        if reader.buffer().is_empty() {
            writer.flush()?;
        }
        line.clear();
        if read_request_line(reader, &mut line, stop)? == 0 {
            return Ok(None);
        }
        reqs.push(parse_request(unescape_request(&line).trim()));
    }
    Ok(Some(reqs))
}

/// Execute a batch: `SET`s apply in order, and **consecutive** SQL
/// statements go through [`Cluster::execute_many`], which resolves
/// proxy routing once per run instead of once per statement. One
/// sub-response per request, in order.
fn execute_batch(
    cluster: &Arc<Cluster>,
    session: &mut ExecOpts,
    reqs: Vec<Request>,
    stats: &ServerStats,
) -> Response {
    let mut parts = Vec::with_capacity(reqs.len());
    let mut i = 0;
    while i < reqs.len() {
        match &reqs[i] {
            Request::Set(setting) => {
                apply_setting(session, *setting);
                parts.push(Response::Ok { affected: 0 });
                i += 1;
            }
            Request::Hello(_) | Request::Batch(_) => {
                parts.push(Response::Err {
                    kind: "execution".into(),
                    msg: "HELLO/BATCH cannot appear inside a batch".into(),
                });
                i += 1;
            }
            Request::Query(_) => {
                let mut sqls: Vec<&str> = Vec::new();
                while let Some(Request::Query(sql)) = reqs.get(i) {
                    sqls.push(sql);
                    i += 1;
                }
                stats
                    .queries
                    .fetch_add(sqls.len() as u64, Ordering::Relaxed);
                let results = cluster.execute_many(&sqls, *session);
                for (k, result) in results.into_iter().enumerate() {
                    match result {
                        Ok(r) => {
                            let read_only = imci_sql::is_read_only(sqls[k]);
                            parts.push(response_of(r, read_only));
                        }
                        Err(e) => {
                            stats.errors.fetch_add(1, Ordering::Relaxed);
                            parts.push(Response::from_error(&e));
                        }
                    }
                }
                debug_assert_eq!(parts.len(), i, "one response per request");
            }
        }
    }
    Response::Batch(parts)
}

fn serve_session_inner(
    cluster: &Arc<Cluster>,
    stream: TcpStream,
    stats: &ServerStats,
    stop: &AtomicBool,
) -> std::io::Result<()> {
    // Periodic read timeouts let idle sessions notice server shutdown
    // instead of pinning a worker until the client hangs up.
    stream.set_read_timeout(Some(std::time::Duration::from_millis(100)))?;
    let mut reader = BufReader::new(stream.try_clone()?);
    // Responses buffer up here while the client is still pipelining
    // requests at us; 256 KiB absorbs a deep pipeline of point-read
    // results between flushes.
    let mut writer = BufWriter::with_capacity(1 << 18, stream);
    let mut session = ExecOpts::default();
    let mut version: u32 = 1;
    let mut line = String::new();
    // Reused v2 encode buffer (see `write_versioned`).
    let mut scratch: Vec<u8> = Vec::with_capacity(4096);
    loop {
        // Sessions end at the next request boundary once the server is
        // stopping, even if the client keeps a statement stream going.
        if stop.load(Ordering::SeqCst) {
            break;
        }
        // Pipelining flush policy: only flush when no further request
        // is already buffered — while the client keeps requests coming,
        // responses coalesce into few large writes instead of one
        // syscall + TCP packet per query. Must happen before we block
        // in read below, or a waiting client deadlocks the session.
        if reader.buffer().is_empty() {
            writer.flush()?;
        }
        line.clear();
        let n = match read_request_line(&mut reader, &mut line, stop) {
            Ok(n) => n,
            Err(e) if e.kind() == std::io::ErrorKind::InvalidData => {
                // Non-UTF-8 input: tell the client why before closing
                // (the line framing can't be trusted after this).
                let _ = write_versioned(
                    &mut writer,
                    &Response::Err {
                        kind: "execution".into(),
                        msg: "request was not valid UTF-8".into(),
                    },
                    version,
                    &mut scratch,
                );
                let _ = writer.flush();
                break;
            }
            Err(_) => break, // client went away
        };
        if n == 0 {
            // EOF or shutdown. Anything left in `line` is a request the
            // client never finished sending — never execute a fragment.
            break;
        }
        let line = unescape_request(&line);
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        if trimmed.eq_ignore_ascii_case("quit") || trimmed.eq_ignore_ascii_case("exit") {
            break;
        }
        let resp = match parse_request(trimmed) {
            Request::Hello(v) => {
                // Negotiate down to what both sides speak. The reply is
                // always a text line — the encoding switch applies from
                // the *next* response on.
                version = v.clamp(1, MAX_VERSION);
                if writeln!(writer, "HELLO {version}").is_err() || writer.flush().is_err() {
                    break;
                }
                continue;
            }
            Request::Batch(count) => {
                if count > MAX_BATCH {
                    // The batch body is in flight and cannot be skipped
                    // without reading `count` lines we refuse to buffer
                    // or execute — report the error and drop the
                    // connection, exactly like the non-UTF-8 case:
                    // request framing can no longer be trusted.
                    let _ = write_versioned(
                        &mut writer,
                        &Response::Err {
                            kind: "execution".into(),
                            msg: format!("batch of {count} exceeds limit {MAX_BATCH}"),
                        },
                        version,
                        &mut scratch,
                    );
                    let _ = writer.flush();
                    break;
                }
                match read_batch_body(&mut reader, &mut writer, count, stop) {
                    Ok(None) => break, // EOF mid-batch: drop the fragment
                    Ok(Some(reqs)) => execute_batch(cluster, &mut session, reqs, stats),
                    Err(e) if e.kind() == std::io::ErrorKind::InvalidData => {
                        // Same courtesy as the top-level non-UTF-8 case:
                        // report why, flush what executed, then close.
                        let _ = write_versioned(
                            &mut writer,
                            &Response::Err {
                                kind: "execution".into(),
                                msg: "request was not valid UTF-8".into(),
                            },
                            version,
                            &mut scratch,
                        );
                        let _ = writer.flush();
                        break;
                    }
                    Err(_) => break, // client went away mid-body
                }
            }
            Request::Set(setting) => {
                apply_setting(&mut session, setting);
                Response::Ok { affected: 0 }
            }
            Request::Query(sql) => {
                stats.queries.fetch_add(1, Ordering::Relaxed);
                let read_only = imci_sql::is_read_only(&sql);
                match cluster.execute_opts(&sql, session) {
                    Ok(result) => response_of(result, read_only),
                    Err(e) => {
                        stats.errors.fetch_add(1, Ordering::Relaxed);
                        Response::from_error(&e)
                    }
                }
            }
        };
        if write_versioned(&mut writer, &resp, version, &mut scratch).is_err() {
            break; // client went away mid-response
        }
    }
    let _ = writer.flush();
    Ok(())
}
