//! Binary primitives for protocol v2: LEB128 varints, zigzag signed
//! integers, and length-prefixed tagged values.
//!
//! Everything here is length-prefixed or fixed-width — no per-cell
//! string formatting, no escaping, no line framing. The v1 text
//! protocol (see [`crate::protocol`]) pays an escape pass plus a
//! `format!` per cell; v2 writes raw bytes and a varint length.

use imci_common::{Error, Result, Value};
use std::io::Read;

/// Value tag bytes on the wire.
pub const TAG_NULL: u8 = 0;
pub const TAG_INT: u8 = 1;
pub const TAG_DOUBLE: u8 = 2;
pub const TAG_DATE: u8 = 3;
pub const TAG_STR: u8 = 4;

/// Append an unsigned LEB128 varint.
pub fn put_uvarint(out: &mut Vec<u8>, mut v: u64) {
    while v >= 0x80 {
        out.push((v as u8 & 0x7f) | 0x80);
        v >>= 7;
    }
    out.push(v as u8);
}

/// Append a zigzag-encoded signed varint.
pub fn put_ivarint(out: &mut Vec<u8>, v: i64) {
    put_uvarint(out, ((v << 1) ^ (v >> 63)) as u64);
}

/// Append a length-prefixed byte string.
pub fn put_bytes(out: &mut Vec<u8>, b: &[u8]) {
    put_uvarint(out, b.len() as u64);
    out.extend_from_slice(b);
}

fn read_byte<R: Read>(r: &mut R) -> Result<u8> {
    let mut b = [0u8; 1];
    r.read_exact(&mut b)
        .map_err(|e| Error::Execution(format!("connection read failed: {e}")))?;
    Ok(b[0])
}

/// Read an unsigned LEB128 varint (max 10 bytes).
pub fn get_uvarint<R: Read>(r: &mut R) -> Result<u64> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let b = read_byte(r)?;
        if shift == 63 && b > 1 {
            return Err(Error::Execution("varint overflows u64".into()));
        }
        v |= u64::from(b & 0x7f) << shift;
        if b & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
        if shift > 63 {
            return Err(Error::Execution("varint too long".into()));
        }
    }
}

/// Read a zigzag-encoded signed varint.
pub fn get_ivarint<R: Read>(r: &mut R) -> Result<i64> {
    let u = get_uvarint(r)?;
    Ok(((u >> 1) as i64) ^ -((u & 1) as i64))
}

/// Read a length-prefixed byte string, bounded by `max_len` to keep a
/// corrupt length prefix from allocating unbounded memory.
pub fn get_bytes<R: Read>(r: &mut R, max_len: u64) -> Result<Vec<u8>> {
    let len = get_uvarint(r)?;
    if len > max_len {
        return Err(Error::Execution(format!(
            "length {len} exceeds limit {max_len}"
        )));
    }
    let mut buf = vec![0u8; len as usize];
    r.read_exact(&mut buf)
        .map_err(|e| Error::Execution(format!("connection read failed: {e}")))?;
    Ok(buf)
}

/// Read a length-prefixed UTF-8 string.
pub fn get_string<R: Read>(r: &mut R, max_len: u64) -> Result<String> {
    String::from_utf8(get_bytes(r, max_len)?)
        .map_err(|e| Error::Execution(format!("invalid utf-8 on wire: {e}")))
}

/// Append one tagged value. Doubles travel as raw IEEE bits (exact,
/// including NaN and infinities); strings as raw length-prefixed bytes.
pub fn put_value(out: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Null => out.push(TAG_NULL),
        Value::Int(i) => {
            out.push(TAG_INT);
            put_ivarint(out, *i);
        }
        Value::Double(d) => {
            out.push(TAG_DOUBLE);
            out.extend_from_slice(&d.to_bits().to_le_bytes());
        }
        Value::Date(d) => {
            out.push(TAG_DATE);
            put_ivarint(out, *d);
        }
        Value::Str(s) => {
            out.push(TAG_STR);
            put_bytes(out, s.as_bytes());
        }
    }
}

/// Read one tagged value.
pub fn get_value<R: Read>(r: &mut R, max_str: u64) -> Result<Value> {
    match read_byte(r)? {
        TAG_NULL => Ok(Value::Null),
        TAG_INT => get_ivarint(r).map(Value::Int),
        TAG_DOUBLE => {
            let mut b = [0u8; 8];
            r.read_exact(&mut b)
                .map_err(|e| Error::Execution(format!("connection read failed: {e}")))?;
            Ok(Value::Double(f64::from_bits(u64::from_le_bytes(b))))
        }
        TAG_DATE => get_ivarint(r).map(Value::Date),
        TAG_STR => get_string(r, max_str).map(Value::Str),
        t => Err(Error::Execution(format!("unknown value tag {t:#x}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uvarint_roundtrip(v: u64) -> u64 {
        let mut buf = Vec::new();
        put_uvarint(&mut buf, v);
        get_uvarint(&mut &buf[..]).unwrap()
    }

    #[test]
    fn varints_roundtrip() {
        for v in [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX] {
            assert_eq!(uvarint_roundtrip(v), v);
        }
        for v in [0i64, 1, -1, 63, -64, i64::MAX, i64::MIN] {
            let mut buf = Vec::new();
            put_ivarint(&mut buf, v);
            assert_eq!(get_ivarint(&mut &buf[..]).unwrap(), v);
        }
    }

    #[test]
    fn varint_sizes_are_compact() {
        let mut buf = Vec::new();
        put_uvarint(&mut buf, 100);
        assert_eq!(buf.len(), 1);
        buf.clear();
        put_ivarint(&mut buf, -3);
        assert_eq!(buf.len(), 1);
    }

    #[test]
    fn overlong_and_oversized_inputs_rejected() {
        // 11-byte varint.
        let bad = [0x80u8; 11];
        assert!(get_uvarint(&mut &bad[..]).is_err());
        // Length prefix beyond the cap.
        let mut buf = Vec::new();
        put_uvarint(&mut buf, 1 << 40);
        assert!(get_bytes(&mut &buf[..], 1 << 20).is_err());
    }

    #[test]
    fn values_roundtrip_exactly() {
        let vals = [
            Value::Null,
            Value::Int(i64::MIN),
            Value::Int(-1),
            Value::Double(f64::NAN),
            Value::Double(f64::NEG_INFINITY),
            Value::Double(-0.0),
            Value::Date(19720),
            Value::Str("tab\there \\ and\nnewline".into()),
            Value::Str(String::new()),
        ];
        let mut buf = Vec::new();
        for v in &vals {
            put_value(&mut buf, v);
        }
        let mut r = &buf[..];
        for v in &vals {
            let got = get_value(&mut r, 1 << 20).unwrap();
            // Compare bit patterns: NaN != NaN under PartialEq.
            match (&got, v) {
                (Value::Double(a), Value::Double(b)) => {
                    assert_eq!(a.to_bits(), b.to_bits())
                }
                _ => assert_eq!(&got, v),
            }
        }
        assert!(r.is_empty());
    }
}
