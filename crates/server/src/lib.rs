//! `imci-server`: the concurrent multi-client SQL service layer over
//! the simulated PolarDB-IMCI cluster.
//!
//! The paper serves transactional and analytical traffic through a
//! stateless proxy that does read/write splitting, session-count load
//! balancing across RO nodes (§6.1, Fig. 2), and consistency-level
//! enforcement — strong reads wait until an RO's applied LSN reaches
//! the RW's written LSN (§6.4). This crate exposes that tier as an
//! actual network service:
//!
//! * [`protocol`] — the line-oriented text protocol: SQL statements
//!   plus per-session `SET CONSISTENCY STRONG|EVENTUAL` and
//!   `SET FORCE_ENGINE ROW|COLUMN|AUTO`;
//! * [`server`] — a bounded thread-pool TCP server
//!   ([`Server`]) mapping sessions onto [`imci_cluster::Cluster`]'s
//!   proxy routing;
//! * [`client`] — a blocking client ([`Client`]) for tests, examples,
//!   and the `server_throughput` bench.

pub mod client;
pub mod protocol;
pub mod server;

pub use client::Client;
pub use protocol::{Request, Response, SessionSetting};
pub use server::{Server, ServerConfig, ServerStats};

#[cfg(test)]
mod tests {
    use super::*;
    use imci_cluster::{Cluster, ClusterConfig, Consistency};
    use imci_common::Value;
    use imci_sql::EngineChoice;
    use std::sync::Arc;

    fn serve_small_cluster() -> (Server, Arc<Cluster>) {
        let cluster = Cluster::start(ClusterConfig {
            group_cap: 64,
            ..Default::default()
        });
        let server = Server::start(cluster.clone(), ServerConfig::default()).unwrap();
        (server, cluster)
    }

    #[test]
    fn ddl_dml_select_over_the_wire() {
        let (server, cluster) = serve_small_cluster();
        let mut c = Client::connect(server.local_addr()).unwrap();
        c.execute(
            "CREATE TABLE kv (id INT NOT NULL, v INT, PRIMARY KEY(id),
             KEY COLUMN_INDEX(id, v))",
        )
        .unwrap();
        assert_eq!(
            c.execute("INSERT INTO kv VALUES (1, 10), (2, 20)")
                .unwrap()
                .affected,
            2
        );
        c.set_consistency(Consistency::Strong).unwrap();
        let res = c.execute("SELECT v FROM kv WHERE id = 2").unwrap();
        assert_eq!(res.rows, vec![vec![Value::Int(20)]]);
        server.shutdown();
        cluster.shutdown();
    }

    #[test]
    fn sql_with_embedded_newline_roundtrips() {
        let (server, cluster) = serve_small_cluster();
        let mut c = Client::connect(server.local_addr()).unwrap();
        c.execute(
            "CREATE TABLE nl (id INT NOT NULL, note VARCHAR(64), PRIMARY KEY(id))",
        )
        .unwrap();
        // A literal newline inside a SQL string value must survive the
        // line-oriented framing byte-exactly.
        c.execute("INSERT INTO nl VALUES (1, 'line1\nline2')").unwrap();
        c.set_consistency(Consistency::Strong).unwrap();
        let res = c.execute("SELECT note FROM nl WHERE id = 1").unwrap();
        assert_eq!(res.rows, vec![vec![Value::Str("line1\nline2".into())]]);
        server.shutdown();
        cluster.shutdown();
    }

    #[test]
    fn shutdown_terminates_busy_sessions() {
        let (server, cluster) = serve_small_cluster();
        let addr = server.local_addr();
        let mut c = Client::connect(addr).unwrap();
        c.execute("CREATE TABLE busy (id INT NOT NULL, PRIMARY KEY(id))")
            .unwrap();
        // A client that never stops issuing statements must not be able
        // to hang Server::shutdown: sessions end at the next request
        // boundary.
        let h = std::thread::spawn(move || {
            let mut i = 0i64;
            loop {
                i += 1;
                if c.execute(&format!("INSERT INTO busy VALUES ({i})")).is_err() {
                    break i;
                }
            }
        });
        std::thread::sleep(std::time::Duration::from_millis(200));
        server.shutdown(); // must return even though the client is mid-stream
        let issued = h.join().unwrap();
        assert!(issued > 0, "client never got going");
        cluster.shutdown();
    }

    #[test]
    fn session_errors_do_not_kill_the_session() {
        let (server, cluster) = serve_small_cluster();
        let mut c = Client::connect(server.local_addr()).unwrap();
        assert!(c.execute("SELECT * FROM missing").is_err());
        c.execute("CREATE TABLE t (id INT NOT NULL, PRIMARY KEY(id))")
            .unwrap();
        assert_eq!(c.execute("INSERT INTO t VALUES (1)").unwrap().affected, 1);
        server.shutdown();
        cluster.shutdown();
    }

    #[test]
    fn force_engine_is_per_session() {
        let (server, cluster) = serve_small_cluster();
        let mut a = Client::connect(server.local_addr()).unwrap();
        let mut b = Client::connect(server.local_addr()).unwrap();
        a.execute(
            "CREATE TABLE ft (id INT NOT NULL, v INT, PRIMARY KEY(id),
             KEY COLUMN_INDEX(id, v))",
        )
        .unwrap();
        for i in 0..50 {
            a.execute(&format!("INSERT INTO ft VALUES ({i}, {i})"))
                .unwrap();
        }
        a.set_consistency(Consistency::Strong).unwrap();
        b.set_consistency(Consistency::Strong).unwrap();
        a.set_force_engine(Some(EngineChoice::Column)).unwrap();
        b.set_force_engine(Some(EngineChoice::Row)).unwrap();
        let ra = a.execute("SELECT SUM(v) FROM ft").unwrap();
        let rb = b.execute("SELECT SUM(v) FROM ft").unwrap();
        assert_eq!(ra.engine, EngineChoice::Column, "session A pinned to column");
        assert_eq!(rb.engine, EngineChoice::Row, "session B pinned to row");
        assert_eq!(ra.rows, rb.rows);
        server.shutdown();
        cluster.shutdown();
    }
}
