//! `imci-server`: the concurrent multi-client SQL service layer over
//! the simulated PolarDB-IMCI cluster.
//!
//! The paper serves transactional and analytical traffic through a
//! stateless proxy that does read/write splitting, session-count load
//! balancing across RO nodes (§6.1, Fig. 2), and consistency-level
//! enforcement — strong reads wait until an RO's applied LSN reaches
//! the RW's written LSN (§6.4). This crate exposes that tier as an
//! actual network service:
//!
//! * [`protocol`] — the wire protocol: text request lines (SQL plus
//!   per-session `SET CONSISTENCY STRONG|EVENTUAL`,
//!   `SET FORCE_ENGINE ROW|COLUMN|AUTO` and `SET TENANT <name>`),
//!   `HELLO` version negotiation, `BATCH <n>` framing, and two response
//!   encodings — v1 text (netcat friendly) and v2 length-prefixed
//!   binary rows;
//! * [`wire`] — varint / tagged-value primitives behind the v2
//!   encoding;
//! * [`server`] — the protocol hosted on the [`imci_net`] reactor tier
//!   ([`Server`]): epoll readiness loops plus a shared worker pool map
//!   sessions onto [`imci_cluster::Cluster`]'s proxy routing, with
//!   pipelining (many requests in flight per connection, responses
//!   strictly ordered), a batch fast path through
//!   [`imci_cluster::Cluster::execute_many`], and admission control
//!   that sheds overload with retryable `busy` errors instead of
//!   queueing unboundedly;
//! * [`client`] — a blocking client ([`Client`]) for tests, examples,
//!   and the `server_throughput` bench, supporting `send`/`recv`
//!   pipelining, `execute_batch`, and opt-in automatic retry
//!   ([`RetryPolicy`]) of the retryable error categories (`failover`,
//!   `busy`).

pub mod client;
pub mod protocol;
pub mod server;
pub mod wire;

pub use client::{Client, RetryPolicy};
pub use protocol::{Request, Response, SessionSetting};
pub use server::{Server, ServerConfig, ServerStats};

#[cfg(test)]
mod tests {
    use super::*;
    use imci_cluster::{Cluster, ClusterConfig, Consistency};
    use imci_common::Value;
    use imci_sql::EngineChoice;
    use std::sync::Arc;

    fn serve_small_cluster() -> (Server, Arc<Cluster>) {
        let cluster = Cluster::start(ClusterConfig {
            group_cap: 64,
            ..Default::default()
        });
        let server = Server::start(cluster.clone(), ServerConfig::default()).unwrap();
        (server, cluster)
    }

    #[test]
    fn ddl_dml_select_over_the_wire() {
        let (server, cluster) = serve_small_cluster();
        let mut c = Client::connect(server.local_addr()).unwrap();
        c.execute(
            "CREATE TABLE kv (id INT NOT NULL, v INT, PRIMARY KEY(id),
             KEY COLUMN_INDEX(id, v))",
        )
        .unwrap();
        assert_eq!(
            c.execute("INSERT INTO kv VALUES (1, 10), (2, 20)")
                .unwrap()
                .affected,
            2
        );
        c.set_consistency(Consistency::Strong).unwrap();
        let res = c.execute("SELECT v FROM kv WHERE id = 2").unwrap();
        assert_eq!(res.rows, vec![vec![Value::Int(20)]]);
        server.shutdown();
        cluster.shutdown();
    }

    #[test]
    fn sql_with_embedded_newline_roundtrips() {
        let (server, cluster) = serve_small_cluster();
        let mut c = Client::connect(server.local_addr()).unwrap();
        c.execute("CREATE TABLE nl (id INT NOT NULL, note VARCHAR(64), PRIMARY KEY(id))")
            .unwrap();
        // A literal newline inside a SQL string value must survive the
        // line-oriented framing byte-exactly.
        c.execute("INSERT INTO nl VALUES (1, 'line1\nline2')")
            .unwrap();
        c.set_consistency(Consistency::Strong).unwrap();
        let res = c.execute("SELECT note FROM nl WHERE id = 1").unwrap();
        assert_eq!(res.rows, vec![vec![Value::Str("line1\nline2".into())]]);
        server.shutdown();
        cluster.shutdown();
    }

    #[test]
    fn shutdown_terminates_busy_sessions() {
        let (server, cluster) = serve_small_cluster();
        let addr = server.local_addr();
        let mut c = Client::connect(addr).unwrap();
        c.execute("CREATE TABLE busy (id INT NOT NULL, PRIMARY KEY(id))")
            .unwrap();
        // A client that never stops issuing statements must not be able
        // to hang Server::shutdown: sessions end at the next request
        // boundary.
        let h = std::thread::spawn(move || {
            let mut i = 0i64;
            loop {
                i += 1;
                if c.execute(&format!("INSERT INTO busy VALUES ({i})"))
                    .is_err()
                {
                    break i;
                }
            }
        });
        std::thread::sleep(std::time::Duration::from_millis(200));
        server.shutdown(); // must return even though the client is mid-stream
        let issued = h.join().unwrap();
        assert!(issued > 0, "client never got going");
        cluster.shutdown();
    }

    #[test]
    fn session_errors_do_not_kill_the_session() {
        let (server, cluster) = serve_small_cluster();
        let mut c = Client::connect(server.local_addr()).unwrap();
        assert!(c.execute("SELECT * FROM missing").is_err());
        c.execute("CREATE TABLE t (id INT NOT NULL, PRIMARY KEY(id))")
            .unwrap();
        assert_eq!(c.execute("INSERT INTO t VALUES (1)").unwrap().affected, 1);
        server.shutdown();
        cluster.shutdown();
    }

    #[test]
    fn oversized_batch_is_rejected_without_executing_its_body() {
        use std::io::{BufRead, BufReader, Write};
        let (server, cluster) = serve_small_cluster();
        let mut admin = Client::connect(server.local_addr()).unwrap();
        admin
            .execute("CREATE TABLE ob (id INT NOT NULL, PRIMARY KEY(id))")
            .unwrap();
        // Hand-rolled v1 session: announce an over-limit batch, then
        // send body lines anyway. The server must reply with one error
        // and close the connection — the body statements must never
        // execute as stray individual requests.
        let stream = std::net::TcpStream::connect(server.local_addr()).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut w = stream;
        writeln!(w, "BATCH 999999").unwrap();
        writeln!(w, "INSERT INTO ob VALUES (1)").unwrap();
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert!(line.starts_with("ERR execution batch of"), "got {line:?}");
        line.clear();
        assert_eq!(reader.read_line(&mut line).unwrap(), 0, "must close");
        admin
            .set_consistency(imci_cluster::Consistency::Strong)
            .unwrap();
        let res = admin.execute("SELECT COUNT(*) FROM ob").unwrap();
        assert_eq!(res.rows[0][0], Value::Int(0), "body must not execute");
        server.shutdown();
        cluster.shutdown();
    }

    #[test]
    fn batch_header_pipelined_behind_unread_response_does_not_deadlock() {
        use std::io::{BufRead, BufReader, Write};
        let (server, cluster) = serve_small_cluster();
        // Raw v1 session: pipeline a statement AND a BATCH header in
        // one write, then wait for the statement's response before
        // sending the batch body. The server must flush the buffered
        // response while blocked on the body, or both sides deadlock.
        let stream = std::net::TcpStream::connect(server.local_addr()).unwrap();
        stream
            .set_read_timeout(Some(std::time::Duration::from_secs(10)))
            .unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut w = stream;
        write!(
            w,
            "CREATE TABLE dl (id INT NOT NULL, PRIMARY KEY(id))\nBATCH 1\n"
        )
        .unwrap();
        let mut line = String::new();
        reader.read_line(&mut line).unwrap(); // would time out before the fix
        assert_eq!(line.trim(), "OK 0");
        writeln!(w, "INSERT INTO dl VALUES (1)").unwrap();
        line.clear();
        reader.read_line(&mut line).unwrap();
        assert_eq!(line.trim(), "BATCH 1");
        line.clear();
        reader.read_line(&mut line).unwrap();
        assert_eq!(line.trim(), "OK 1");
        server.shutdown();
        cluster.shutdown();
    }

    #[test]
    fn batch_refused_while_pipelined_responses_pending() {
        let (server, cluster) = serve_small_cluster();
        let mut c = Client::connect(server.local_addr()).unwrap();
        c.execute("CREATE TABLE bp (id INT NOT NULL, PRIMARY KEY(id))")
            .unwrap();
        c.send("INSERT INTO bp VALUES (1)").unwrap();
        // Batching now would misread the pending insert's response as
        // the batch reply; the client must refuse without touching the
        // wire, and the session must stay fully usable.
        assert!(c.execute_batch(&["SELECT COUNT(*) FROM bp"]).is_err());
        assert_eq!(c.recv().unwrap().affected, 1);
        let results = c.execute_batch(&["SELECT COUNT(*) FROM bp"]).unwrap();
        assert!(results[0].is_ok());
        server.shutdown();
        cluster.shutdown();
    }

    #[test]
    fn pipelining_100_requests_before_reading() {
        let (server, cluster) = serve_small_cluster();
        let mut c = Client::connect(server.local_addr()).unwrap();
        assert_eq!(c.protocol_version(), 2);
        c.execute("CREATE TABLE p (id INT NOT NULL, v INT, PRIMARY KEY(id))")
            .unwrap();
        c.set_consistency(Consistency::Strong).unwrap();
        // Write 100 requests before reading a single response.
        for i in 0..50 {
            c.send(&format!("INSERT INTO p VALUES ({i}, {i})")).unwrap();
        }
        for i in 0..50 {
            c.send(&format!("SELECT v FROM p WHERE id = {i}")).unwrap();
        }
        assert_eq!(c.pending(), 100);
        // Responses come back strictly in request order.
        for _ in 0..50 {
            assert_eq!(c.recv().unwrap().affected, 1);
        }
        for i in 0..50 {
            let res = c.recv().unwrap();
            assert_eq!(res.rows, vec![vec![Value::Int(i)]]);
        }
        assert_eq!(c.pending(), 0);
        server.shutdown();
        cluster.shutdown();
    }

    #[test]
    fn batch_executes_in_one_roundtrip() {
        let (server, cluster) = serve_small_cluster();
        let mut c = Client::connect(server.local_addr()).unwrap();
        c.execute(
            "CREATE TABLE b (id INT NOT NULL, v INT, PRIMARY KEY(id),
             KEY COLUMN_INDEX(id, v))",
        )
        .unwrap();
        let mut stmts: Vec<String> = vec!["SET CONSISTENCY STRONG".into()];
        for i in 0..30 {
            stmts.push(format!("INSERT INTO b VALUES ({i}, {i})"));
        }
        stmts.push("SELECT COUNT(*) FROM b".into());
        stmts.push("INSERT INTO b VALUES (0, 0)".into()); // dup pk -> error
        stmts.push("SELECT MAX(v) FROM b".into());
        let results = c.execute_batch(&stmts).unwrap();
        assert_eq!(results.len(), 34);
        assert!(results[0].as_ref().unwrap().rows.is_empty(), "SET ok");
        for r in &results[1..31] {
            assert_eq!(r.as_ref().unwrap().affected, 1);
        }
        // Read-your-writes inside the batch.
        assert_eq!(
            results[31].as_ref().unwrap().rows,
            vec![vec![Value::Int(30)]]
        );
        // The duplicate-key failure keeps its category and does not
        // void the statements after it.
        assert!(matches!(
            results[32],
            Err(imci_common::Error::Constraint(_))
        ));
        assert_eq!(
            results[33].as_ref().unwrap().rows,
            vec![vec![Value::Int(29)]]
        );
        server.shutdown();
        cluster.shutdown();
    }

    #[test]
    fn v1_text_client_interoperates_with_v2_server() {
        let (server, cluster) = serve_small_cluster();
        // No HELLO: the session stays on the v1 text protocol.
        let mut c = Client::connect_v1(server.local_addr()).unwrap();
        assert_eq!(c.protocol_version(), 1);
        c.execute("CREATE TABLE iv (id INT NOT NULL, note VARCHAR(64), PRIMARY KEY(id))")
            .unwrap();
        c.execute("INSERT INTO iv VALUES (1, 'text\nstill works')")
            .unwrap();
        c.set_consistency(Consistency::Strong).unwrap();
        let res = c.execute("SELECT note FROM iv WHERE id = 1").unwrap();
        assert_eq!(res.rows, vec![vec![Value::Str("text\nstill works".into())]]);
        // v1 and v2 sessions coexist on one server.
        let mut c2 = Client::connect(server.local_addr()).unwrap();
        c2.set_consistency(Consistency::Strong).unwrap();
        let res2 = c2.execute("SELECT note FROM iv WHERE id = 1").unwrap();
        assert_eq!(res2.rows, res.rows);
        server.shutdown();
        cluster.shutdown();
    }

    #[test]
    fn raw_v1_line_session_like_netcat() {
        use std::io::{BufRead, BufReader, Write};
        let (server, cluster) = serve_small_cluster();
        // Hand-rolled text session: no Client involved at all.
        let stream = std::net::TcpStream::connect(server.local_addr()).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut w = stream;
        let mut line = String::new();
        writeln!(w, "CREATE TABLE nc (id INT NOT NULL, PRIMARY KEY(id))").unwrap();
        reader.read_line(&mut line).unwrap();
        assert_eq!(line.trim(), "OK 0");
        line.clear();
        writeln!(w, "INSERT INTO nc VALUES (7)").unwrap();
        reader.read_line(&mut line).unwrap();
        assert_eq!(line.trim(), "OK 1");
        line.clear();
        writeln!(w, "SET CONSISTENCY STRONG").unwrap();
        reader.read_line(&mut line).unwrap();
        assert_eq!(line.trim(), "OK 0");
        line.clear();
        writeln!(w, "SELECT id FROM nc").unwrap();
        reader.read_line(&mut line).unwrap();
        assert!(line.starts_with("ROWS 1"), "got {line:?}");
        server.shutdown();
        cluster.shutdown();
    }

    #[test]
    fn error_categories_reach_the_client() {
        let (server, cluster) = serve_small_cluster();
        let mut c = Client::connect(server.local_addr()).unwrap();
        // Parse failure.
        assert!(matches!(
            c.execute("SELEC 1"),
            Err(imci_common::Error::Parse(_))
        ));
        c.execute("CREATE TABLE ec (id INT NOT NULL, PRIMARY KEY(id))")
            .unwrap();
        c.execute("INSERT INTO ec VALUES (1)").unwrap();
        // Constraint violation.
        assert!(matches!(
            c.execute("INSERT INTO ec VALUES (1)"),
            Err(imci_common::Error::Constraint(_))
        ));
        server.shutdown();
        cluster.shutdown();
    }

    #[test]
    fn failover_errors_are_retryable_over_the_wire() {
        let (server, cluster) = serve_small_cluster();
        let mut c = Client::connect(server.local_addr()).unwrap();
        c.execute(
            "CREATE TABLE ha (id INT NOT NULL, v INT, PRIMARY KEY(id),
             KEY COLUMN_INDEX(id, v))",
        )
        .unwrap();
        c.execute("INSERT INTO ha VALUES (1, 10)").unwrap();

        // RW goes down mid-session: the write fails with the retryable
        // failover category — the session itself stays alive.
        cluster.crash_rw();
        let err = c.execute("INSERT INTO ha VALUES (2, 20)").unwrap_err();
        assert!(
            matches!(err, imci_common::Error::Failover(_)),
            "category must survive the wire: {err}"
        );
        assert!(err.is_retryable());
        // Reads still serve from the RO while the writer is vacant.
        c.set_consistency(Consistency::Strong).unwrap();
        c.set_force_engine(Some(EngineChoice::Column)).unwrap();
        let res = c.execute("SELECT v FROM ha WHERE id = 1").unwrap();
        assert_eq!(res.rows, vec![vec![Value::Int(10)]]);
        c.set_force_engine(None).unwrap();

        // Promotion completes while the client is already retrying with
        // backoff: one `execute` call rides through the failover window
        // on the same connection and lands exactly once.
        c.set_retry_policy(Some(RetryPolicy::default()));
        let promoting = cluster.clone();
        let promoter = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(50));
            promoting.failover().unwrap();
        });
        assert_eq!(
            c.execute("INSERT INTO ha VALUES (2, 20)").unwrap().affected,
            1
        );
        promoter.join().unwrap();
        let res = c.execute("SELECT COUNT(*) FROM ha").unwrap();
        assert_eq!(res.rows, vec![vec![Value::Int(2)]]);
        server.shutdown();
        cluster.shutdown();
    }

    #[test]
    fn commented_select_routes_to_ro_through_server() {
        let (server, cluster) = serve_small_cluster();
        let mut c = Client::connect(server.local_addr()).unwrap();
        c.execute(
            "CREATE TABLE cr (id INT NOT NULL, v INT, PRIMARY KEY(id),
             KEY COLUMN_INDEX(id, v))",
        )
        .unwrap();
        for i in 0..20 {
            c.execute(&format!("INSERT INTO cr VALUES ({i}, {i})"))
                .unwrap();
        }
        c.set_consistency(Consistency::Strong).unwrap();
        // Only RO nodes have a column store: COLUMN proves RO routing
        // even with the SELECT hidden behind a comment.
        c.set_force_engine(Some(EngineChoice::Column)).unwrap();
        let res = c
            .execute("-- routed through the proxy\nSELECT SUM(v) FROM cr")
            .unwrap();
        assert_eq!(res.engine, EngineChoice::Column);
        assert_eq!(res.rows, vec![vec![Value::Int((0..20).sum::<i64>())]]);
        server.shutdown();
        cluster.shutdown();
    }

    #[test]
    fn force_engine_is_per_session() {
        let (server, cluster) = serve_small_cluster();
        let mut a = Client::connect(server.local_addr()).unwrap();
        let mut b = Client::connect(server.local_addr()).unwrap();
        a.execute(
            "CREATE TABLE ft (id INT NOT NULL, v INT, PRIMARY KEY(id),
             KEY COLUMN_INDEX(id, v))",
        )
        .unwrap();
        for i in 0..50 {
            a.execute(&format!("INSERT INTO ft VALUES ({i}, {i})"))
                .unwrap();
        }
        a.set_consistency(Consistency::Strong).unwrap();
        b.set_consistency(Consistency::Strong).unwrap();
        a.set_force_engine(Some(EngineChoice::Column)).unwrap();
        b.set_force_engine(Some(EngineChoice::Row)).unwrap();
        let ra = a.execute("SELECT SUM(v) FROM ft").unwrap();
        let rb = b.execute("SELECT SUM(v) FROM ft").unwrap();
        assert_eq!(
            ra.engine,
            EngineChoice::Column,
            "session A pinned to column"
        );
        assert_eq!(rb.engine, EngineChoice::Row, "session B pinned to row");
        assert_eq!(ra.rows, rb.rows);
        server.shutdown();
        cluster.shutdown();
    }
}
