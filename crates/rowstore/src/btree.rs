//! B+tree-organized table storage with physiological REDO emission.
//!
//! Every mutation of a page emits exactly one REDO record *for that
//! page*, while holding the page's write latch, so the per-page LSN
//! order in the log equals the mutation order — the invariant Phase-1's
//! page-partitioned parallel replay relies on (paper §5.2).
//!
//! User DML records carry the user TID; split/SMO records carry
//! [`SYSTEM_TID`] so replay applies them physically but never interprets
//! them as user changes (paper §5.3, challenge 2).

use crate::alloc::PageAllocator;
use crate::bufferpool::BufferPool;
use crate::page::{Page, PageKind, INTERNAL_KEY_CAPACITY, PAGE_BYTE_CAPACITY};
use imci_common::{Error, PageId, Result, RowDiff, TableId, Tid, SYSTEM_TID};
use imci_wal::{LogWriter, RedoPayload};
use std::sync::Arc;

/// Context threaded through mutations: where to emit REDO and on whose
/// behalf. `log == None` means "apply without logging" (unit tests and
/// locally-rebuilt replicas).
#[derive(Clone)]
pub struct RedoCtx {
    /// Log writer (RW node) or None.
    pub log: Option<Arc<LogWriter>>,
    /// User transaction id for DML records.
    pub tid: Tid,
    /// Table being modified.
    pub table_id: TableId,
}

impl RedoCtx {
    /// No-logging context (tests, local rebuilds).
    pub fn unlogged(table_id: TableId) -> RedoCtx {
        RedoCtx {
            log: None,
            tid: Tid(1),
            table_id,
        }
    }

    fn emit(&self, page: &mut Page, slot: u32, tid: Tid, payload: RedoPayload) -> Result<()> {
        if let Some(log) = &self.log {
            // A fenced append (this writer lost the RW role) errors out
            // before the page's LSN moves; the local mutation stays, but
            // the deposed node is permanently out of the cluster anyway.
            let lsn = log.append(tid, self.table_id, page.id, slot, payload)?;
            page.last_lsn = lsn;
        }
        page.dirty = true;
        Ok(())
    }

    /// Emit a user-DML record against `page`.
    pub fn emit_dml(&self, page: &mut Page, slot: u32, payload: RedoPayload) -> Result<()> {
        self.emit(page, slot, self.tid, payload)
    }

    /// Emit a structure-modification record against `page`.
    pub fn emit_smo(&self, page: &mut Page, payload: RedoPayload) -> Result<()> {
        self.emit(page, 0, SYSTEM_TID, payload)
    }
}

/// A B+tree over `(i64 pk, row image)` pairs, rooted at a meta page.
pub struct BTree {
    meta_page: PageId,
    bp: Arc<BufferPool>,
    page_alloc: Arc<PageAllocator>,
}

impl BTree {
    /// Create a brand-new tree: a meta page and one empty root leaf.
    /// Emits SMO records so RO replicas can replay the creation, and
    /// flushes both pages so replicas can also cold-load them.
    pub fn create(
        bp: Arc<BufferPool>,
        page_alloc: Arc<PageAllocator>,
        ctx: &RedoCtx,
    ) -> Result<BTree> {
        let meta_id = page_alloc.alloc();
        let root_id = page_alloc.alloc();
        let root_arc = bp.install(Page::new_leaf(root_id));
        {
            let mut root = root_arc.write();
            ctx.emit_smo(
                &mut root,
                RedoPayload::SmoLeafWrite {
                    entries: Vec::new(),
                    next_leaf: None,
                },
            )?;
        }
        let meta_arc = bp.install(Page::new_meta(meta_id, root_id));
        {
            let mut meta = meta_arc.write();
            ctx.emit_smo(&mut meta, RedoPayload::SmoSetRoot { root: root_id })?;
        }
        let tree = BTree {
            meta_page: meta_id,
            bp,
            page_alloc,
        };
        tree.flush_page(meta_id)?;
        tree.flush_page(root_id)?;
        Ok(tree)
    }

    /// Open an existing tree by its meta page.
    pub fn open(bp: Arc<BufferPool>, page_alloc: Arc<PageAllocator>, meta_page: PageId) -> BTree {
        BTree {
            meta_page,
            bp,
            page_alloc,
        }
    }

    /// The meta page id (stored in the catalog).
    pub fn meta_page(&self) -> PageId {
        self.meta_page
    }

    /// Every page id this tree owns: meta, internals, leaves. Used by
    /// `DROP TABLE` to recycle the tree's pages through the free list.
    pub fn all_pages(&self) -> Result<Vec<PageId>> {
        let mut out = vec![self.meta_page];
        let mut stack = vec![self.root()?];
        while let Some(id) = stack.pop() {
            out.push(id);
            let arc = self.bp.get(id)?;
            let p = arc.read();
            if let PageKind::Internal { children, .. } = &p.kind {
                stack.extend(children.iter().copied());
            }
        }
        Ok(out)
    }

    fn flush_page(&self, id: PageId) -> Result<()> {
        let arc = self.bp.get(id)?;
        let mut p = arc.write();
        self.bp.fs().write_page(
            crate::bufferpool::PAGE_SPACE,
            id,
            bytes::Bytes::from(p.encode()),
        );
        p.dirty = false;
        Ok(())
    }

    fn root(&self) -> Result<PageId> {
        let meta = self.bp.get(self.meta_page)?;
        let m = meta.read();
        match &m.kind {
            PageKind::Meta { root } => Ok(*root),
            _ => Err(Error::Storage("meta page corrupted".into())),
        }
    }

    /// Path of page ids from root (inclusive) to the leaf for `pk`.
    fn descend(&self, pk: i64) -> Result<Vec<PageId>> {
        let mut path = Vec::with_capacity(4);
        let mut cur = self.root()?;
        loop {
            path.push(cur);
            let arc = self.bp.get(cur)?;
            let p = arc.read();
            match &p.kind {
                PageKind::Leaf { .. } => return Ok(path),
                PageKind::Internal { .. } => {
                    let child = p.child_for(pk)?;
                    drop(p);
                    cur = child;
                }
                PageKind::Meta { .. } => {
                    return Err(Error::Storage("meta page inside tree".into()))
                }
            }
            if path.len() > 64 {
                return Err(Error::Storage("btree descent too deep".into()));
            }
        }
    }

    /// Point lookup.
    pub fn get(&self, pk: i64) -> Result<Option<Vec<u8>>> {
        let path = self.descend(pk)?;
        let leaf = self.bp.get(*path.last().unwrap())?;
        let p = leaf.read();
        Ok(match p.leaf_slot(pk)? {
            Ok(idx) => Some(p.leaf_entries()?[idx].1.clone()),
            Err(_) => None,
        })
    }

    /// Insert; errors on duplicate key.
    pub fn insert(&self, pk: i64, image: Vec<u8>, ctx: &RedoCtx) -> Result<()> {
        let path = self.descend(pk)?;
        let leaf_id = *path.last().unwrap();
        let leaf_arc = self.bp.get(leaf_id)?;
        let needs_split;
        {
            let mut leaf = leaf_arc.write();
            let slot = match leaf.leaf_slot(pk)? {
                Ok(_) => return Err(Error::Constraint(format!("duplicate primary key {pk}"))),
                Err(pos) => pos,
            };
            leaf.leaf_entries_mut()?.insert(slot, (pk, image.clone()));
            ctx.emit_dml(&mut leaf, slot as u32, RedoPayload::Insert { pk, image })?;
            needs_split = leaf.byte_size() > PAGE_BYTE_CAPACITY && leaf.leaf_entries()?.len() >= 4;
        }
        if needs_split {
            self.split_leaf(&path, ctx)?;
        }
        Ok(())
    }

    /// Update the row at `pk` with a new image; returns the old image.
    pub fn update(&self, pk: i64, new_image: Vec<u8>, ctx: &RedoCtx) -> Result<Vec<u8>> {
        let path = self.descend(pk)?;
        let leaf_id = *path.last().unwrap();
        let leaf_arc = self.bp.get(leaf_id)?;
        let (old, needs_split);
        {
            let mut leaf = leaf_arc.write();
            let idx = match leaf.leaf_slot(pk)? {
                Ok(i) => i,
                Err(_) => return Err(Error::Storage(format!("update: pk {pk} not found"))),
            };
            let entries = leaf.leaf_entries_mut()?;
            old = std::mem::replace(&mut entries[idx].1, new_image.clone());
            let diff = RowDiff::between(&old, &new_image);
            ctx.emit_dml(&mut leaf, idx as u32, RedoPayload::Update { pk, diff })?;
            needs_split = leaf.byte_size() > PAGE_BYTE_CAPACITY && leaf.leaf_entries()?.len() >= 4;
        }
        if needs_split {
            self.split_leaf(&path, ctx)?;
        }
        Ok(old)
    }

    /// Delete the row at `pk`; returns the old image.
    pub fn delete(&self, pk: i64, ctx: &RedoCtx) -> Result<Vec<u8>> {
        let path = self.descend(pk)?;
        let leaf_arc = self.bp.get(*path.last().unwrap())?;
        let mut leaf = leaf_arc.write();
        let idx = match leaf.leaf_slot(pk)? {
            Ok(i) => i,
            Err(_) => return Err(Error::Storage(format!("delete: pk {pk} not found"))),
        };
        let (_, old) = leaf.leaf_entries_mut()?.remove(idx);
        ctx.emit_dml(&mut leaf, idx as u32, RedoPayload::Delete { pk })?;
        Ok(old)
    }

    fn split_leaf(&self, path: &[PageId], ctx: &RedoCtx) -> Result<()> {
        let leaf_id = *path.last().unwrap();
        let right_id = self.page_alloc.alloc();
        let split_key;
        {
            // Build the right sibling first so concurrent readers that
            // follow the (not-yet-updated) next pointer never miss rows.
            let leaf_arc = self.bp.get(leaf_id)?;
            let mut leaf = leaf_arc.write();
            let old_next = match &leaf.kind {
                PageKind::Leaf { next, .. } => *next,
                _ => return Err(Error::Storage("split target not a leaf".into())),
            };
            let entries = leaf.leaf_entries_mut()?;
            let mid = entries.len() / 2;
            split_key = entries[mid].0;
            let moved: Vec<(i64, Vec<u8>)> = entries.split_off(mid);

            let right_arc = self.bp.install(Page::new_leaf(right_id));
            {
                let mut right = right_arc.write();
                *right.leaf_entries_mut()? = moved.clone();
                if let PageKind::Leaf { next, .. } = &mut right.kind {
                    *next = old_next;
                }
                ctx.emit_smo(
                    &mut right,
                    RedoPayload::SmoLeafWrite {
                        entries: moved,
                        next_leaf: old_next,
                    },
                )?;
            }
            ctx.emit_smo(&mut leaf, RedoPayload::SmoTruncate { from_pk: split_key })?;
            if let PageKind::Leaf { next, .. } = &mut leaf.kind {
                *next = Some(right_id);
            }
            ctx.emit_smo(
                &mut leaf,
                RedoPayload::SmoSetNext {
                    next_leaf: Some(right_id),
                },
            )?;
        }
        self.insert_into_parent(&path[..path.len() - 1], leaf_id, split_key, right_id, ctx)
    }

    fn insert_into_parent(
        &self,
        ancestors: &[PageId],
        left: PageId,
        key: i64,
        right: PageId,
        ctx: &RedoCtx,
    ) -> Result<()> {
        if ancestors.is_empty() {
            // Root split: new internal root over (left, right).
            let new_root_id = self.page_alloc.alloc();
            let root_arc = self.bp.install(Page {
                id: new_root_id,
                last_lsn: imci_common::Lsn::ZERO,
                dirty: true,
                kind: PageKind::Internal {
                    keys: vec![key],
                    children: vec![left, right],
                },
            });
            {
                let mut r = root_arc.write();
                ctx.emit_smo(
                    &mut r,
                    RedoPayload::SmoInternalWrite {
                        keys: vec![key],
                        children: vec![left, right],
                    },
                )?;
            }
            let meta_arc = self.bp.get(self.meta_page)?;
            let mut meta = meta_arc.write();
            meta.kind = PageKind::Meta { root: new_root_id };
            ctx.emit_smo(&mut meta, RedoPayload::SmoSetRoot { root: new_root_id })?;
            return Ok(());
        }
        let parent_id = *ancestors.last().unwrap();
        let parent_arc = self.bp.get(parent_id)?;
        let needs_split;
        {
            let mut parent = parent_arc.write();
            match &mut parent.kind {
                PageKind::Internal { keys, children } => {
                    let pos = keys.binary_search(&key).unwrap_or_else(|p| p);
                    keys.insert(pos, key);
                    children.insert(pos + 1, right);
                    needs_split = keys.len() > INTERNAL_KEY_CAPACITY;
                }
                _ => return Err(Error::Storage("parent is not internal".into())),
            }
            ctx.emit_smo(
                &mut parent,
                RedoPayload::SmoParentInsert { key, child: right },
            )?;
        }
        if needs_split {
            self.split_internal(ancestors, ctx)?;
        }
        Ok(())
    }

    fn split_internal(&self, ancestors: &[PageId], ctx: &RedoCtx) -> Result<()> {
        let page_id = *ancestors.last().unwrap();
        let right_id = self.page_alloc.alloc();
        let up_key;
        {
            let arc = self.bp.get(page_id)?;
            let mut p = arc.write();
            let (lk, lc, rk, rc);
            match &mut p.kind {
                PageKind::Internal { keys, children } => {
                    let mid = keys.len() / 2;
                    up_key = keys[mid];
                    rk = keys.split_off(mid + 1);
                    keys.pop(); // up_key moves up, not right
                    rc = children.split_off(mid + 1);
                    lk = keys.clone();
                    lc = children.clone();
                }
                _ => return Err(Error::Storage("split target not internal".into())),
            }
            let right_arc = self.bp.install(Page {
                id: right_id,
                last_lsn: imci_common::Lsn::ZERO,
                dirty: true,
                kind: PageKind::Internal {
                    keys: rk.clone(),
                    children: rc.clone(),
                },
            });
            {
                let mut right = right_arc.write();
                ctx.emit_smo(
                    &mut right,
                    RedoPayload::SmoInternalWrite {
                        keys: rk,
                        children: rc,
                    },
                )?;
            }
            ctx.emit_smo(
                &mut p,
                RedoPayload::SmoInternalWrite {
                    keys: lk,
                    children: lc,
                },
            )?;
        }
        self.insert_into_parent(
            &ancestors[..ancestors.len() - 1],
            page_id,
            up_key,
            right_id,
            ctx,
        )
    }

    /// Leftmost leaf (start of the leaf chain).
    pub fn first_leaf(&self) -> Result<PageId> {
        let mut cur = self.root()?;
        loop {
            let arc = self.bp.get(cur)?;
            let p = arc.read();
            match &p.kind {
                PageKind::Leaf { .. } => return Ok(cur),
                PageKind::Internal { children, .. } => {
                    let c = children[0];
                    drop(p);
                    cur = c;
                }
                PageKind::Meta { .. } => return Err(Error::Storage("meta inside tree".into())),
            }
        }
    }

    /// Scan rows with `lo <= pk <= hi` into a callback; returns count.
    pub fn scan_range<F: FnMut(i64, &[u8])>(&self, lo: i64, hi: i64, mut f: F) -> Result<usize> {
        let mut count = 0;
        let path = self.descend(lo)?;
        let mut cur = Some(*path.last().unwrap());
        while let Some(id) = cur {
            let arc = self.bp.get(id)?;
            let p = arc.read();
            let entries = p.leaf_entries()?;
            for (pk, img) in entries {
                if *pk > hi {
                    return Ok(count);
                }
                if *pk >= lo {
                    f(*pk, img);
                    count += 1;
                }
            }
            cur = match &p.kind {
                PageKind::Leaf { next, .. } => *next,
                _ => None,
            };
        }
        Ok(count)
    }

    /// Full scan in key order.
    pub fn scan_all<F: FnMut(i64, &[u8])>(&self, f: F) -> Result<usize> {
        self.scan_range(i64::MIN, i64::MAX, f)
    }

    /// Number of rows (full scan; for tests and stats).
    pub fn count(&self) -> Result<usize> {
        self.scan_all(|_, _| {})
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use polarfs_sim::PolarFs;

    fn fresh_tree() -> (BTree, RedoCtx) {
        let fs = PolarFs::instant();
        let bp = BufferPool::new(fs, 1024);
        let alloc = Arc::new(PageAllocator::new(1));
        let ctx = RedoCtx::unlogged(TableId(1));
        let t = BTree::create(bp, alloc, &ctx).unwrap();
        (t, ctx)
    }

    #[test]
    fn insert_get_roundtrip() {
        let (t, ctx) = fresh_tree();
        for pk in [5i64, 1, 9, 3, 7] {
            t.insert(pk, vec![pk as u8], &ctx).unwrap();
        }
        for pk in [1i64, 3, 5, 7, 9] {
            assert_eq!(t.get(pk).unwrap(), Some(vec![pk as u8]));
        }
        assert_eq!(t.get(2).unwrap(), None);
        assert_eq!(t.count().unwrap(), 5);
    }

    #[test]
    fn duplicate_insert_rejected() {
        let (t, ctx) = fresh_tree();
        t.insert(1, vec![1], &ctx).unwrap();
        assert!(t.insert(1, vec![2], &ctx).is_err());
    }

    #[test]
    fn update_and_delete() {
        let (t, ctx) = fresh_tree();
        t.insert(1, vec![1], &ctx).unwrap();
        let old = t.update(1, vec![9, 9], &ctx).unwrap();
        assert_eq!(old, vec![1]);
        assert_eq!(t.get(1).unwrap(), Some(vec![9, 9]));
        let old = t.delete(1, &ctx).unwrap();
        assert_eq!(old, vec![9, 9]);
        assert_eq!(t.get(1).unwrap(), None);
        assert!(t.delete(1, &ctx).is_err());
        assert!(t.update(1, vec![0], &ctx).is_err());
    }

    #[test]
    fn many_inserts_force_splits_and_stay_sorted() {
        let (t, ctx) = fresh_tree();
        let n = 5000i64;
        // Big images so leaves split quickly.
        for pk in (0..n).rev() {
            t.insert(pk, vec![(pk % 251) as u8; 64], &ctx).unwrap();
        }
        assert_eq!(t.count().unwrap(), n as usize);
        let mut last = i64::MIN;
        let mut seen = 0;
        t.scan_all(|pk, img| {
            assert!(pk > last, "keys must be strictly increasing");
            assert_eq!(img[0], (pk % 251) as u8);
            last = pk;
            seen += 1;
        })
        .unwrap();
        assert_eq!(seen, n);
        // Point lookups still work post-split.
        for pk in [0i64, 1, 2499, 2500, 4999] {
            assert!(t.get(pk).unwrap().is_some(), "pk {pk} lost after splits");
        }
    }

    #[test]
    fn all_pages_covers_meta_internals_and_leaves() {
        let (t, ctx) = fresh_tree();
        // Force a multi-level tree.
        for pk in 0..3000i64 {
            t.insert(pk, vec![0u8; 64], &ctx).unwrap();
        }
        let pages = t.all_pages().unwrap();
        assert!(pages.contains(&t.meta_page()));
        // One page per allocation: nothing double-counted, nothing lost.
        let mut dedup = pages.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), pages.len(), "no duplicate page ids");
        assert!(pages.len() > 10, "splits created internal + leaf pages");
    }

    #[test]
    fn range_scan_bounds() {
        let (t, ctx) = fresh_tree();
        for pk in 0..100i64 {
            t.insert(pk, vec![], &ctx).unwrap();
        }
        let mut got = Vec::new();
        t.scan_range(10, 19, |pk, _| got.push(pk)).unwrap();
        assert_eq!(got, (10..20).collect::<Vec<i64>>());
    }

    #[test]
    fn split_emits_system_records_only_for_structure() {
        use imci_wal::{LogReader, PropagationMode};
        let fs = PolarFs::instant();
        let bp = BufferPool::new(fs.clone(), 1024);
        let alloc = Arc::new(PageAllocator::new(1));
        let log = LogWriter::new(fs.clone(), PropagationMode::ReuseRedo);
        let ctx = RedoCtx {
            log: Some(log),
            tid: Tid(42),
            table_id: TableId(1),
        };
        let t = BTree::create(bp, alloc, &ctx).unwrap();
        for pk in 0..2000i64 {
            t.insert(pk, vec![0u8; 64], &ctx).unwrap();
        }
        let mut r = LogReader::new(fs, 0);
        let entries = r.read_available();
        let smo = entries.iter().filter(|e| e.payload.is_smo()).count();
        let dml = entries
            .iter()
            .filter(|e| !e.payload.is_smo() && !e.payload.is_decision())
            .count();
        assert_eq!(dml, 2000, "one DML record per user insert");
        assert!(smo > 4, "splits must have occurred");
        for e in &entries {
            if e.payload.is_smo() {
                assert_eq!(e.tid, SYSTEM_TID, "SMO records carry the system TID");
            } else {
                assert_eq!(e.tid, Tid(42));
            }
        }
    }

    #[test]
    fn reopen_from_meta_page_after_flush() {
        let fs = PolarFs::instant();
        let bp = BufferPool::new(fs.clone(), 1024);
        let alloc = Arc::new(PageAllocator::new(1));
        let ctx = RedoCtx::unlogged(TableId(1));
        let t = BTree::create(bp.clone(), alloc.clone(), &ctx).unwrap();
        for pk in 0..500i64 {
            t.insert(pk, vec![1, 2, 3], &ctx).unwrap();
        }
        bp.flush_all();
        let meta = t.meta_page();
        // A different node opens the same tree from shared storage.
        let bp2 = BufferPool::new(fs, 1024);
        let t2 = BTree::open(bp2, alloc, meta);
        assert_eq!(t2.count().unwrap(), 500);
        assert_eq!(t2.get(250).unwrap(), Some(vec![1, 2, 3]));
    }
}
