//! Row-based OLTP storage engine (the "PolarDB row store" substrate).
//!
//! This crate implements the row side of the dual-format design:
//!
//! * B+tree-organized tables with 16 KiB slotted leaf pages ([`page`],
//!   [`btree`]);
//! * an LRU buffer pool over the simulated shared storage ([`bufferpool`]);
//! * a transaction manager issuing TIDs and commit sequence numbers,
//!   with undo-based rollback ([`txn`]);
//! * physiological REDO emission for every page change — user DMLs carry
//!   the user TID, B+tree structure changes carry [`imci_common::SYSTEM_TID`]
//!   (this distinction is what Phase-1 replay filters on, paper §5.3);
//! * page-level REDO application used by RO nodes' Phase-1 replay
//!   ([`apply`]), which also extracts logical DMLs with old/new images.
//!
//! The same [`engine::RowEngine`] type serves as the RW node's storage
//! engine (with a log writer attached) and as an RO node's row-store
//! replica (without one).

pub mod alloc;
pub mod apply;
pub mod btree;
pub mod bufferpool;
pub mod engine;
pub mod page;
pub mod recovery;
pub mod table;
pub mod txn;

pub use alloc::PageAllocator;
pub use apply::{apply_entry, LogicalChange, LogicalDml};
pub use bufferpool::BufferPool;
pub use engine::RowEngine;
pub use page::{Page, PageKind, PAGE_BYTE_CAPACITY};
pub use recovery::{RecoverOptions, RecoveryReport};
pub use table::TableRt;
pub use txn::{Txn, TxnManager, UndoOp};
