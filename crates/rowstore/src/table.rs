//! Runtime table object: B+tree + secondary indexes + write serialization.

use crate::btree::BTree;
use imci_common::{Error, Result, Row, Schema, Value};
use parking_lot::{Mutex, RwLock};
use std::collections::BTreeMap;
use std::ops::Bound;

/// An in-memory secondary index: `(key value, pk) -> ()`.
///
/// Secondary indexes are node-local acceleration structures for the
/// row-based executor (point and low-selectivity queries, the kind the
/// paper's Q2 discussion covers). They are rebuilt on node start and
/// maintained by DML (RW) or Phase-1 replay (RO).
pub struct SecondaryIndex {
    /// Indexed column ordinal.
    pub col: usize,
    /// Index name.
    pub name: String,
    map: RwLock<BTreeMap<(Value, i64), ()>>,
}

impl SecondaryIndex {
    fn new(name: String, col: usize) -> SecondaryIndex {
        SecondaryIndex {
            col,
            name,
            map: RwLock::new(BTreeMap::new()),
        }
    }

    /// Insert an entry.
    pub fn add(&self, key: Value, pk: i64) {
        self.map.write().insert((key, pk), ());
    }

    /// Remove an entry.
    pub fn remove(&self, key: &Value, pk: i64) {
        self.map.write().remove(&(key.clone(), pk));
    }

    /// Primary keys whose indexed value lies in `[lo, hi]`.
    pub fn lookup_range(&self, lo: &Value, hi: &Value) -> Vec<i64> {
        let m = self.map.read();
        m.range((
            Bound::Included((lo.clone(), i64::MIN)),
            Bound::Included((hi.clone(), i64::MAX)),
        ))
        .map(|((_, pk), _)| *pk)
        .collect()
    }

    /// Primary keys whose indexed value equals `v`.
    pub fn lookup_eq(&self, v: &Value) -> Vec<i64> {
        self.lookup_range(v, v)
    }

    /// Entry count.
    pub fn len(&self) -> usize {
        self.map.read().len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Runtime state of one table on one node.
pub struct TableRt {
    /// Approximate live row count (maintained by DML and replay; feeds
    /// the optimizer's cardinality estimates).
    pub row_counter: std::sync::atomic::AtomicU64,
    /// Schema (with table id).
    pub schema: Schema,
    /// Primary B+tree.
    pub tree: BTree,
    /// Secondary indexes (one per declared secondary index).
    pub secondaries: Vec<SecondaryIndex>,
    /// Serializes writers on this table (single-writer-per-table; the
    /// single-RW-node design means there is no cross-node writer).
    pub write_lock: Mutex<()>,
    /// Set (under `write_lock`) by `DROP TABLE` before its DDL record
    /// is appended. A DML that resolved this runtime before the drop
    /// must observe the flag under the same lock and fail instead of
    /// appending log entries *after* the drop's DDL record — replicas
    /// treat a DML following its table's drop as a replay error.
    pub dropped: std::sync::atomic::AtomicBool,
}

impl TableRt {
    /// Build runtime state from a schema and an opened tree.
    pub fn new(schema: Schema, tree: BTree) -> TableRt {
        let secondaries = schema
            .secondary_indexes()
            .map(|idx| SecondaryIndex::new(idx.name.clone(), idx.columns[0]))
            .collect();
        TableRt {
            row_counter: std::sync::atomic::AtomicU64::new(0),
            schema,
            tree,
            secondaries,
            write_lock: Mutex::new(()),
            dropped: std::sync::atomic::AtomicBool::new(false),
        }
    }

    /// Fail if `DROP TABLE` has claimed this table. Callers must hold
    /// `write_lock` (the flag is set under it) so the check and the
    /// subsequent log appends are atomic with respect to the drop.
    pub fn ensure_live(&self) -> Result<()> {
        if self.dropped.load(std::sync::atomic::Ordering::Acquire) {
            return Err(Error::Catalog(format!(
                "table {} was dropped",
                self.schema.name
            )));
        }
        Ok(())
    }

    /// Approximate live rows (cheap, lock-free).
    pub fn approx_rows(&self) -> u64 {
        self.row_counter.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Bump the row counter.
    pub fn count_insert(&self) {
        self.row_counter
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    }

    /// Decrement the row counter.
    pub fn count_delete(&self) {
        let _ = self.row_counter.fetch_update(
            std::sync::atomic::Ordering::Relaxed,
            std::sync::atomic::Ordering::Relaxed,
            |v| Some(v.saturating_sub(1)),
        );
    }

    /// Maintain secondaries for an inserted row.
    pub fn sec_add(&self, pk: i64, values: &[Value]) {
        for s in &self.secondaries {
            s.add(values[s.col].clone(), pk);
        }
    }

    /// Maintain secondaries for a deleted row.
    pub fn sec_remove(&self, pk: i64, values: &[Value]) {
        for s in &self.secondaries {
            s.remove(&values[s.col], pk);
        }
    }

    /// Maintain secondaries across an update.
    pub fn sec_update(&self, pk: i64, old: &[Value], new: &[Value]) {
        for s in &self.secondaries {
            if old[s.col] != new[s.col] {
                s.remove(&old[s.col], pk);
                s.add(new[s.col].clone(), pk);
            }
        }
    }

    /// Rebuild all secondary indexes from a full scan (node start).
    pub fn rebuild_secondaries(&self) -> Result<()> {
        if self.secondaries.is_empty() {
            return Ok(());
        }
        self.tree.scan_all(|pk, img| {
            if let Ok(row) = Row::decode(img) {
                self.sec_add(pk, &row.values);
            }
        })?;
        Ok(())
    }

    /// Find a secondary index on `col`.
    pub fn secondary_on(&self, col: usize) -> Option<&SecondaryIndex> {
        self.secondaries.iter().find(|s| s.col == col)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn secondary_index_range_and_eq() {
        let idx = SecondaryIndex::new("s".into(), 1);
        idx.add(Value::Int(10), 1);
        idx.add(Value::Int(10), 2);
        idx.add(Value::Int(20), 3);
        idx.add(Value::Int(30), 4);
        assert_eq!(idx.lookup_eq(&Value::Int(10)), vec![1, 2]);
        assert_eq!(
            idx.lookup_range(&Value::Int(10), &Value::Int(20)),
            vec![1, 2, 3]
        );
        idx.remove(&Value::Int(10), 1);
        assert_eq!(idx.lookup_eq(&Value::Int(10)), vec![2]);
        assert_eq!(idx.len(), 3);
    }

    #[test]
    fn secondary_handles_string_keys() {
        let idx = SecondaryIndex::new("s".into(), 0);
        idx.add(Value::Str("alpha".into()), 1);
        idx.add(Value::Str("beta".into()), 2);
        assert_eq!(idx.lookup_eq(&Value::Str("beta".into())), vec![2]);
        assert!(idx
            .lookup_range(&Value::Str("a".into()), &Value::Str("b".into()))
            .contains(&1));
    }
}
