//! Physical pages of the row store.
//!
//! Three kinds: leaf pages (sorted `(pk, row image)` slots + leaf-chain
//! pointer), internal pages (separator keys + children), and one meta
//! page per table holding the root pointer. Every page tracks the LSN of
//! the last REDO entry applied to it, which makes replay idempotent
//! (ARIES-style page-LSN test): a page flushed to shared storage after
//! LSN *x* silently absorbs re-applied entries with LSN ≤ *x*.

use imci_common::{Error, Lsn, PageId, Result};

/// Soft byte capacity of a leaf page (16 KiB like InnoDB).
pub const PAGE_BYTE_CAPACITY: usize = 16 * 1024;

/// Max separator keys in an internal page before it splits.
pub const INTERNAL_KEY_CAPACITY: usize = 256;

/// Page content.
#[derive(Debug, Clone, PartialEq)]
pub enum PageKind {
    /// Leaf: sorted row slots plus the next-leaf pointer.
    Leaf {
        /// `(primary key, row image)` sorted by key.
        entries: Vec<(i64, Vec<u8>)>,
        /// Next leaf in key order (None = rightmost).
        next: Option<PageId>,
    },
    /// Internal node: `children.len() == keys.len() + 1`; subtree `i`
    /// holds keys `< keys[i]` (and the last subtree the rest).
    Internal {
        /// Separator keys.
        keys: Vec<i64>,
        /// Child page ids.
        children: Vec<PageId>,
    },
    /// Per-table metadata: the root pointer.
    Meta {
        /// Current root page of the table's B+tree.
        root: PageId,
    },
}

/// A buffered page.
#[derive(Debug, Clone, PartialEq)]
pub struct Page {
    /// Page identifier (unique per cluster).
    pub id: PageId,
    /// LSN of the last entry applied to this page.
    pub last_lsn: Lsn,
    /// Whether the buffered copy is newer than shared storage.
    pub dirty: bool,
    /// Content.
    pub kind: PageKind,
}

impl Page {
    /// New empty leaf.
    pub fn new_leaf(id: PageId) -> Page {
        Page {
            id,
            last_lsn: Lsn::ZERO,
            dirty: true,
            kind: PageKind::Leaf {
                entries: Vec::new(),
                next: None,
            },
        }
    }

    /// New meta page pointing at `root`.
    pub fn new_meta(id: PageId, root: PageId) -> Page {
        Page {
            id,
            last_lsn: Lsn::ZERO,
            dirty: true,
            kind: PageKind::Meta { root },
        }
    }

    /// Approximate byte footprint (drives leaf splits).
    pub fn byte_size(&self) -> usize {
        match &self.kind {
            PageKind::Leaf { entries, .. } => entries.iter().map(|(_, img)| 16 + img.len()).sum(),
            PageKind::Internal { keys, children } => keys.len() * 8 + children.len() * 8,
            PageKind::Meta { .. } => 16,
        }
    }

    /// Leaf entries accessor (error on wrong kind).
    pub fn leaf_entries(&self) -> Result<&Vec<(i64, Vec<u8>)>> {
        match &self.kind {
            PageKind::Leaf { entries, .. } => Ok(entries),
            _ => Err(Error::Storage(format!("page {} is not a leaf", self.id))),
        }
    }

    /// Mutable leaf entries accessor.
    pub fn leaf_entries_mut(&mut self) -> Result<&mut Vec<(i64, Vec<u8>)>> {
        match &mut self.kind {
            PageKind::Leaf { entries, .. } => Ok(entries),
            _ => Err(Error::Storage(format!("page {} is not a leaf", self.id))),
        }
    }

    /// Find the slot of `pk` in a leaf: `Ok(idx)` if present,
    /// `Err(insert_pos)` if absent.
    pub fn leaf_slot(&self, pk: i64) -> Result<std::result::Result<usize, usize>> {
        Ok(self.leaf_entries()?.binary_search_by_key(&pk, |(k, _)| *k))
    }

    /// In an internal page, the child index to descend into for `pk`.
    pub fn child_for(&self, pk: i64) -> Result<PageId> {
        match &self.kind {
            PageKind::Internal { keys, children } => {
                let idx = match keys.binary_search(&pk) {
                    Ok(i) => i + 1,
                    Err(i) => i,
                };
                Ok(children[idx])
            }
            _ => Err(Error::Storage(format!("page {} is not internal", self.id))),
        }
    }

    // ---- binary codec for shared-storage spill ----

    /// Encode for the page store.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.byte_size() + 64);
        out.extend_from_slice(&self.id.get().to_le_bytes());
        out.extend_from_slice(&self.last_lsn.get().to_le_bytes());
        match &self.kind {
            PageKind::Leaf { entries, next } => {
                out.push(1);
                out.extend_from_slice(&(entries.len() as u32).to_le_bytes());
                for (pk, img) in entries {
                    out.extend_from_slice(&pk.to_le_bytes());
                    out.extend_from_slice(&(img.len() as u32).to_le_bytes());
                    out.extend_from_slice(img);
                }
                out.extend_from_slice(&next.map_or(u64::MAX, |p| p.get()).to_le_bytes());
            }
            PageKind::Internal { keys, children } => {
                out.push(2);
                out.extend_from_slice(&(keys.len() as u32).to_le_bytes());
                for k in keys {
                    out.extend_from_slice(&k.to_le_bytes());
                }
                out.extend_from_slice(&(children.len() as u32).to_le_bytes());
                for c in children {
                    out.extend_from_slice(&c.get().to_le_bytes());
                }
            }
            PageKind::Meta { root } => {
                out.push(3);
                out.extend_from_slice(&root.get().to_le_bytes());
            }
        }
        out
    }

    /// Decode a page image from the page store.
    pub fn decode(bytes: &[u8]) -> Result<Page> {
        let err = || Error::Storage("page image truncated".into());
        let mut pos = 0usize;
        let u64_at = |p: &mut usize| -> Result<u64> {
            if *p + 8 > bytes.len() {
                return Err(err());
            }
            let v = u64::from_le_bytes(bytes[*p..*p + 8].try_into().unwrap());
            *p += 8;
            Ok(v)
        };
        let id = PageId(u64_at(&mut pos)?);
        let last_lsn = Lsn(u64_at(&mut pos)?);
        if pos >= bytes.len() {
            return Err(err());
        }
        let tag = bytes[pos];
        pos += 1;
        let read_u32 = |p: &mut usize| -> Result<u32> {
            if *p + 4 > bytes.len() {
                return Err(err());
            }
            let v = u32::from_le_bytes(bytes[*p..*p + 4].try_into().unwrap());
            *p += 4;
            Ok(v)
        };
        let read_u64 = |p: &mut usize| -> Result<u64> {
            if *p + 8 > bytes.len() {
                return Err(err());
            }
            let v = u64::from_le_bytes(bytes[*p..*p + 8].try_into().unwrap());
            *p += 8;
            Ok(v)
        };
        let kind = match tag {
            1 => {
                let n = read_u32(&mut pos)? as usize;
                let mut entries = Vec::with_capacity(n);
                for _ in 0..n {
                    let pk = read_u64(&mut pos)? as i64;
                    let len = read_u32(&mut pos)? as usize;
                    if pos + len > bytes.len() {
                        return Err(err());
                    }
                    entries.push((pk, bytes[pos..pos + len].to_vec()));
                    pos += len;
                }
                let nxt = read_u64(&mut pos)?;
                PageKind::Leaf {
                    entries,
                    next: (nxt != u64::MAX).then_some(PageId(nxt)),
                }
            }
            2 => {
                let nk = read_u32(&mut pos)? as usize;
                let mut keys = Vec::with_capacity(nk);
                for _ in 0..nk {
                    keys.push(read_u64(&mut pos)? as i64);
                }
                let nc = read_u32(&mut pos)? as usize;
                let mut children = Vec::with_capacity(nc);
                for _ in 0..nc {
                    children.push(PageId(read_u64(&mut pos)?));
                }
                PageKind::Internal { keys, children }
            }
            3 => PageKind::Meta {
                root: PageId(read_u64(&mut pos)?),
            },
            t => return Err(Error::Storage(format!("bad page tag {t}"))),
        };
        Ok(Page {
            id,
            last_lsn,
            dirty: false,
            kind,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leaf_codec_roundtrip() {
        let p = Page {
            id: PageId(5),
            last_lsn: Lsn(77),
            dirty: true,
            kind: PageKind::Leaf {
                entries: vec![(1, vec![1, 2, 3]), (9, vec![]), (12, vec![0xFF])],
                next: Some(PageId(6)),
            },
        };
        let dec = Page::decode(&p.encode()).unwrap();
        assert_eq!(dec.id, p.id);
        assert_eq!(dec.last_lsn, p.last_lsn);
        assert_eq!(dec.kind, p.kind);
        assert!(!dec.dirty, "freshly-loaded pages are clean");
    }

    #[test]
    fn internal_and_meta_codec_roundtrip() {
        let p = Page {
            id: PageId(2),
            last_lsn: Lsn(3),
            dirty: false,
            kind: PageKind::Internal {
                keys: vec![10, 20],
                children: vec![PageId(4), PageId(5), PageId(6)],
            },
        };
        assert_eq!(Page::decode(&p.encode()).unwrap().kind, p.kind);

        let m = Page::new_meta(PageId(1), PageId(2));
        assert_eq!(
            Page::decode(&m.encode()).unwrap().kind,
            PageKind::Meta { root: PageId(2) }
        );
    }

    #[test]
    fn child_for_routes_by_separator() {
        let p = Page {
            id: PageId(2),
            last_lsn: Lsn::ZERO,
            dirty: false,
            kind: PageKind::Internal {
                keys: vec![10, 20],
                children: vec![PageId(4), PageId(5), PageId(6)],
            },
        };
        assert_eq!(p.child_for(5).unwrap(), PageId(4));
        assert_eq!(p.child_for(10).unwrap(), PageId(5));
        assert_eq!(p.child_for(15).unwrap(), PageId(5));
        assert_eq!(p.child_for(20).unwrap(), PageId(6));
        assert_eq!(p.child_for(99).unwrap(), PageId(6));
    }

    #[test]
    fn leaf_slot_search() {
        let mut p = Page::new_leaf(PageId(3));
        p.leaf_entries_mut()
            .unwrap()
            .extend([(2, vec![]), (4, vec![]), (8, vec![])]);
        assert_eq!(p.leaf_slot(4).unwrap(), Ok(1));
        assert_eq!(p.leaf_slot(5).unwrap(), Err(2));
        assert_eq!(p.leaf_slot(1).unwrap(), Err(0));
    }

    #[test]
    fn byte_size_counts_images() {
        let mut p = Page::new_leaf(PageId(3));
        assert_eq!(p.byte_size(), 0);
        p.leaf_entries_mut().unwrap().push((1, vec![0u8; 100]));
        assert_eq!(p.byte_size(), 116);
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(Page::decode(&[1, 2, 3]).is_err());
        let mut ok = Page::new_leaf(PageId(1)).encode();
        ok[16] = 200; // corrupt kind tag
        assert!(Page::decode(&ok).is_err());
    }
}
