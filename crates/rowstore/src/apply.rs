//! Page-level REDO application — the substrate of Phase-1 replay.
//!
//! An RO node starts from an empty (or checkpoint-loaded) local buffer
//! pool and applies every REDO entry to its own copy of the pages. This
//! is where the paper's three challenges of reusing REDO (§5.2) are
//! solved:
//!
//! 1. *"REDO logs lack table-level information"* — our physiological
//!    records carry the table id, and the catalog maps it to a schema
//!    (real InnoDB recovers it from page headers; same effect). The
//!    catalog itself is versioned with the log: `Ddl` records precede
//!    every DML of their table, so replay never sees an unknown id.
//! 2. *"Page changes caused by the row store itself"* — SMO records are
//!    applied physically but excluded from logical extraction (they
//!    carry [`SYSTEM_TID`]); so are the page changes of undo/rollback.
//! 3. *"REDO logs only include differences"* — for updates, the worker
//!    reads the **old row image from its page copy**, uses it to build
//!    the delete half of the logical DML, applies the differential to
//!    produce the new image, and builds the insert half (paper §5.3).

use crate::bufferpool::BufferPool;
use crate::engine::RowEngine;
use crate::page::{Page, PageKind};
use imci_common::{Error, Lsn, Result, Row, TableId, Tid, SYSTEM_TID};
use imci_wal::{RedoEntry, RedoPayload};

/// A logical DML reconstructed from physical log replay.
#[derive(Debug, Clone, PartialEq)]
pub enum LogicalDml {
    /// A row was inserted.
    Insert { pk: i64, new: Row },
    /// A row was updated (out-of-place on the column side: delete old,
    /// insert new).
    Update { pk: i64, old: Row, new: Row },
    /// A row was deleted; the full old image is recovered from the page.
    Delete { pk: i64, old: Row },
}

/// A logical change with provenance, handed from Phase 1 to Phase 2.
#[derive(Debug, Clone, PartialEq)]
pub struct LogicalChange {
    /// Affected table.
    pub table_id: TableId,
    /// Source log entry.
    pub lsn: Lsn,
    /// Producing user transaction.
    pub tid: Tid,
    /// The reconstructed DML.
    pub dml: LogicalDml,
}

impl LogicalChange {
    /// The inverse of this DML — what rolls it back if its transaction
    /// never reaches a decision record. One definition shared by crash
    /// recovery's replay loop and the promotion drain's undo mirror.
    pub fn undo(&self) -> crate::txn::UndoOp {
        use crate::txn::UndoOp;
        match &self.dml {
            LogicalDml::Insert { pk, .. } => UndoOp::Insert {
                table: self.table_id,
                pk: *pk,
            },
            LogicalDml::Update { pk, old, .. } => UndoOp::Update {
                table: self.table_id,
                pk: *pk,
                old: old.clone(),
            },
            LogicalDml::Delete { pk, old } => UndoOp::Delete {
                table: self.table_id,
                pk: *pk,
                old: old.clone(),
            },
        }
    }
}

/// Find a table's runtime state. With DDL shipped through the REDO
/// stream, a table's `Ddl` record precedes every one of its DMLs in LSN
/// order, so by the time a DML entry is applied the table is always
/// registered — no lazy catalog refresh. An unknown id therefore
/// indicates a replay-ordering bug and surfaces as a replication error
/// (it used to be silently papered over by an out-of-band refresh).
fn table_of(engine: &RowEngine, id: TableId) -> Result<std::sync::Arc<crate::table::TableRt>> {
    engine.table_by_id(id).map_err(|_| {
        Error::Replication(format!(
            "replay references table {id} before its DDL record"
        ))
    })
}

fn local_page(
    bp: &BufferPool,
    id: imci_common::PageId,
) -> Result<std::sync::Arc<parking_lot::RwLock<Page>>> {
    bp.get_local(id).ok_or_else(|| {
        Error::Replication(format!(
            "replay references page {id} before its creation record"
        ))
    })
}

/// Block until page `id` exists in this node's pool.
///
/// Phase-1 replay is page-partitioned: a split's full-page image
/// (`SmoLeafWrite` / `SmoInternalWrite`) and the pointer records that
/// reference it (`SmoSetNext`, `SmoParentInsert`, `SmoSetRoot`) hash to
/// *different* workers, so the pointer can reach its page before the
/// sibling exists locally — and a concurrent reader descending the tree
/// would chase the dangling pointer out of the pool into shared storage.
/// The creating record always carries a lower LSN than the pointer, so
/// by the time any worker gets here it is already queued (or applied) at
/// its own page's worker: the wait is short and, because every wait
/// targets a strictly earlier record, cycle-free. The deadline only
/// trips on a corrupt log, where the creation record never existed.
fn await_page_birth(bp: &BufferPool, id: imci_common::PageId) -> Result<()> {
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
    while bp.get_local(id).is_none() {
        if std::time::Instant::now() >= deadline {
            return Err(Error::Replication(format!(
                "replay references page {id} before its creation record"
            )));
        }
        std::thread::yield_now();
    }
    Ok(())
}

/// Apply one REDO entry to the node-local pages; returns the extracted
/// logical DML for user entries (None for SMO / decision / system undo).
///
/// Also maintains the node's secondary indexes, since the row images
/// pass through here anyway.
pub fn apply_entry(engine: &RowEngine, e: &RedoEntry) -> Result<Option<LogicalChange>> {
    let bp = engine.buffer_pool();
    // Track the page high-water mark: replicas never allocate ids, but
    // a promoted replica (RO→RW failover) must allocate above every id
    // it has ever replayed.
    if e.page_id != imci_common::PageId::ZERO {
        engine.page_allocator().ensure_above(e.page_id);
    }
    match &e.payload {
        RedoPayload::Commit { .. } | RedoPayload::Abort => Ok(None),

        // Writer-ownership marker (crash recovery / promotion): nothing
        // to apply — fencing is enforced by shared storage, not replay.
        RedoPayload::EpochBump { .. } => Ok(None),

        // Catalog record: apply to this node's catalog (version-gated,
        // so mixed replay paths stay idempotent). Column-store side
        // effects are the replication layer's job — this function only
        // owns the row replica.
        RedoPayload::Ddl { version, op } => {
            engine.apply_ddl(*version, op)?;
            Ok(None)
        }

        RedoPayload::Insert { pk, image } => {
            let arc = local_page(bp, e.page_id)?;
            let mut page = arc.write();
            if e.lsn <= page.last_lsn {
                return Ok(None); // already applied (idempotent replay)
            }
            let pos = match page.leaf_slot(*pk)? {
                Ok(_) => {
                    return Err(Error::Replication(format!(
                        "replay insert: pk {pk} already on page {}",
                        e.page_id
                    )))
                }
                Err(p) => p,
            };
            page.leaf_entries_mut()?.insert(pos, (*pk, image.clone()));
            page.last_lsn = e.lsn;
            page.dirty = true;
            drop(page);
            let new = Row::decode(image)?;
            let rt = table_of(engine, e.table_id)?;
            rt.sec_add(*pk, &new.values);
            rt.count_insert();
            if e.tid == SYSTEM_TID {
                return Ok(None); // undo application, not a user DML
            }
            Ok(Some(LogicalChange {
                table_id: e.table_id,
                lsn: e.lsn,
                tid: e.tid,
                dml: LogicalDml::Insert { pk: *pk, new },
            }))
        }

        RedoPayload::Update { pk, diff } => {
            let arc = local_page(bp, e.page_id)?;
            let mut page = arc.write();
            if e.lsn <= page.last_lsn {
                return Ok(None);
            }
            let idx = match page.leaf_slot(*pk)? {
                Ok(i) => i,
                Err(_) => {
                    return Err(Error::Replication(format!(
                        "replay update: pk {pk} missing on page {}",
                        e.page_id
                    )))
                }
            };
            // Challenge 3: recover the full old image from the page,
            // apply the differential to synthesize the new image.
            let old_image = page.leaf_entries()?[idx].1.clone();
            let new_image = diff.apply(&old_image)?;
            page.leaf_entries_mut()?[idx].1 = new_image.clone();
            page.last_lsn = e.lsn;
            page.dirty = true;
            drop(page);
            let old = Row::decode(&old_image)?;
            let new = Row::decode(&new_image)?;
            let rt = table_of(engine, e.table_id)?;
            rt.sec_update(*pk, &old.values, &new.values);
            if e.tid == SYSTEM_TID {
                return Ok(None);
            }
            Ok(Some(LogicalChange {
                table_id: e.table_id,
                lsn: e.lsn,
                tid: e.tid,
                dml: LogicalDml::Update { pk: *pk, old, new },
            }))
        }

        RedoPayload::Delete { pk } => {
            let arc = local_page(bp, e.page_id)?;
            let mut page = arc.write();
            if e.lsn <= page.last_lsn {
                return Ok(None);
            }
            let idx = match page.leaf_slot(*pk)? {
                Ok(i) => i,
                Err(_) => {
                    return Err(Error::Replication(format!(
                        "replay delete: pk {pk} missing on page {}",
                        e.page_id
                    )))
                }
            };
            let (_, old_image) = page.leaf_entries_mut()?.remove(idx);
            page.last_lsn = e.lsn;
            page.dirty = true;
            drop(page);
            let old = Row::decode(&old_image)?;
            let rt = table_of(engine, e.table_id)?;
            rt.sec_remove(*pk, &old.values);
            rt.count_delete();
            if e.tid == SYSTEM_TID {
                return Ok(None);
            }
            Ok(Some(LogicalChange {
                table_id: e.table_id,
                lsn: e.lsn,
                tid: e.tid,
                dml: LogicalDml::Delete { pk: *pk, old },
            }))
        }

        // ---- SMO records: physical only ----
        RedoPayload::SmoLeafWrite { entries, next_leaf } => {
            let arc = match bp.get_local(e.page_id) {
                Some(a) => a,
                // Install fully formed: concurrent readers that follow a
                // pointer here (once the pointer records land) must never
                // observe an empty half-built sibling.
                None => {
                    bp.install(Page {
                        id: e.page_id,
                        last_lsn: e.lsn,
                        dirty: true,
                        kind: PageKind::Leaf {
                            entries: entries.clone(),
                            next: *next_leaf,
                        },
                    });
                    return Ok(None);
                }
            };
            let mut page = arc.write();
            if e.lsn <= page.last_lsn {
                return Ok(None);
            }
            page.kind = PageKind::Leaf {
                entries: entries.clone(),
                next: *next_leaf,
            };
            page.last_lsn = e.lsn;
            page.dirty = true;
            Ok(None)
        }
        RedoPayload::SmoTruncate { from_pk } => {
            let arc = local_page(bp, e.page_id)?;
            let mut page = arc.write();
            if e.lsn <= page.last_lsn {
                return Ok(None);
            }
            let entries = page.leaf_entries_mut()?;
            let cut = entries.partition_point(|(k, _)| k < from_pk);
            entries.truncate(cut);
            page.last_lsn = e.lsn;
            page.dirty = true;
            Ok(None)
        }
        RedoPayload::SmoSetNext { next_leaf } => {
            if let Some(next) = next_leaf {
                await_page_birth(bp, *next)?;
            }
            let arc = local_page(bp, e.page_id)?;
            let mut page = arc.write();
            if e.lsn <= page.last_lsn {
                return Ok(None);
            }
            match &mut page.kind {
                PageKind::Leaf { next, .. } => *next = *next_leaf,
                _ => return Err(Error::Replication("SmoSetNext on non-leaf".into())),
            }
            page.last_lsn = e.lsn;
            page.dirty = true;
            Ok(None)
        }
        RedoPayload::SmoParentInsert { key, child } => {
            await_page_birth(bp, *child)?;
            let arc = local_page(bp, e.page_id)?;
            let mut page = arc.write();
            if e.lsn <= page.last_lsn {
                return Ok(None);
            }
            match &mut page.kind {
                PageKind::Internal { keys, children } => {
                    let pos = keys.binary_search(key).unwrap_or_else(|p| p);
                    keys.insert(pos, *key);
                    children.insert(pos + 1, *child);
                }
                _ => return Err(Error::Replication("SmoParentInsert on non-internal".into())),
            }
            page.last_lsn = e.lsn;
            page.dirty = true;
            Ok(None)
        }
        RedoPayload::SmoInternalWrite { keys, children } => {
            // An internal rewrite can hand out pointers to a page born
            // by an earlier record on another worker (root split: the
            // fresh right sibling). Existing children hit the pool
            // directly, so the waits are free in the common case.
            for c in children {
                await_page_birth(bp, *c)?;
            }
            let arc = match bp.get_local(e.page_id) {
                Some(a) => a,
                None => {
                    bp.install(Page {
                        id: e.page_id,
                        last_lsn: e.lsn,
                        dirty: true,
                        kind: PageKind::Internal {
                            keys: keys.clone(),
                            children: children.clone(),
                        },
                    });
                    return Ok(None);
                }
            };
            let mut page = arc.write();
            if e.lsn <= page.last_lsn {
                return Ok(None);
            }
            page.kind = PageKind::Internal {
                keys: keys.clone(),
                children: children.clone(),
            };
            page.last_lsn = e.lsn;
            page.dirty = true;
            Ok(None)
        }
        RedoPayload::SmoSetRoot { root } => {
            await_page_birth(bp, *root)?;
            let arc = match bp.get_local(e.page_id) {
                Some(a) => a,
                None => bp.install(Page::new_meta(e.page_id, *root)),
            };
            let mut page = arc.write();
            if e.lsn <= page.last_lsn {
                return Ok(None);
            }
            page.kind = PageKind::Meta { root: *root };
            page.last_lsn = e.lsn;
            page.dirty = true;
            Ok(None)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use imci_common::{ColumnDef, DataType, IndexDef, IndexKind, Value};
    use imci_wal::{LogReader, LogWriter, PropagationMode};
    use polarfs_sim::PolarFs;

    fn schema_parts() -> (Vec<ColumnDef>, Vec<IndexDef>) {
        (
            vec![
                ColumnDef::not_null("id", DataType::Int),
                ColumnDef::new("v", DataType::Int),
                ColumnDef::new("s", DataType::Str),
            ],
            vec![
                IndexDef {
                    kind: IndexKind::Primary,
                    name: "PRIMARY".into(),
                    columns: vec![0],
                },
                IndexDef {
                    kind: IndexKind::Secondary,
                    name: "v_idx".into(),
                    columns: vec![1],
                },
            ],
        )
    }

    /// End-to-end: RW executes a workload; a replica replays the log
    /// from LSN 0 and must converge to identical table contents.
    #[test]
    fn replica_converges_via_log_replay() {
        let fs = PolarFs::instant();
        let log = LogWriter::new(fs.clone(), PropagationMode::ReuseRedo);
        let rw = RowEngine::new_rw(fs.clone(), log, 1 << 20);
        let (cols, idxs) = schema_parts();
        rw.create_table("t", cols, idxs).unwrap();

        let mut txn = rw.begin();
        for i in 0..3000i64 {
            rw.insert(
                &mut txn,
                "t",
                vec![
                    Value::Int(i),
                    Value::Int(i % 10),
                    Value::Str(format!("r{i}")),
                ],
            )
            .unwrap();
        }
        rw.commit(txn).unwrap();
        let mut txn = rw.begin();
        for i in (0..3000i64).step_by(3) {
            rw.update(
                &mut txn,
                "t",
                i,
                vec![Value::Int(i), Value::Int(99), Value::Str(format!("u{i}"))],
            )
            .unwrap();
        }
        for i in (1..3000i64).step_by(5) {
            if i % 3 != 0 {
                rw.delete(&mut txn, "t", i).unwrap();
            }
        }
        rw.commit(txn).unwrap();
        // An aborted transaction must leave no trace on the replica.
        let mut bad = rw.begin();
        rw.insert(
            &mut bad,
            "t",
            vec![Value::Int(100000), Value::Int(0), Value::Null],
        )
        .unwrap();
        rw.update(
            &mut bad,
            "t",
            0,
            vec![Value::Int(0), Value::Int(-1), Value::Null],
        )
        .unwrap();
        rw.abort(bad).unwrap();

        // Replay on a fresh replica.
        // No catalog refresh: the CREATE TABLE's DDL record is in the
        // log and registers the table during replay.
        let ro = RowEngine::new_replica(fs.clone(), 1 << 20);
        let mut reader = LogReader::new(fs, 0);
        let mut user_dmls = 0;
        for e in reader.read_available() {
            if apply_entry(&ro, &e).unwrap().is_some() {
                user_dmls += 1;
            }
        }
        // 3000 inserts + 1000 updates + deletes; aborted txn's 2 DMLs
        // WERE extracted (they carry a user TID) — the replication layer
        // is responsible for dropping them on Abort. Here we only check
        // page-level convergence.
        assert!(user_dmls >= 4000);

        assert_eq!(
            ro.row_count("t").unwrap(),
            rw.row_count("t").unwrap(),
            "replica row count must match RW"
        );
        let mut rw_rows = Vec::new();
        rw.scan("t", i64::MIN, i64::MAX, |pk, r| rw_rows.push((pk, r)))
            .unwrap();
        let mut ro_rows = Vec::new();
        ro.scan("t", i64::MIN, i64::MAX, |pk, r| ro_rows.push((pk, r)))
            .unwrap();
        assert_eq!(rw_rows, ro_rows, "replica content must match RW");

        // Secondary index on the replica matches too.
        let rt = ro.table("t").unwrap();
        let rw_rt = rw.table("t").unwrap();
        assert_eq!(
            rt.secondaries[0].lookup_eq(&Value::Int(99)).len(),
            rw_rt.secondaries[0].lookup_eq(&Value::Int(99)).len()
        );
    }

    #[test]
    fn update_extraction_recovers_old_and_new_images() {
        let fs = PolarFs::instant();
        let log = LogWriter::new(fs.clone(), PropagationMode::ReuseRedo);
        let rw = RowEngine::new_rw(fs.clone(), log, 1 << 20);
        let (cols, idxs) = schema_parts();
        rw.create_table("t", cols, idxs).unwrap();
        let mut txn = rw.begin();
        rw.insert(
            &mut txn,
            "t",
            vec![Value::Int(7), Value::Int(1), Value::Str("before".into())],
        )
        .unwrap();
        rw.update(
            &mut txn,
            "t",
            7,
            vec![Value::Int(7), Value::Int(2), Value::Str("after".into())],
        )
        .unwrap();
        rw.commit(txn).unwrap();

        // No catalog refresh: the CREATE TABLE's DDL record is in the
        // log and registers the table during replay.
        let ro = RowEngine::new_replica(fs.clone(), 1 << 20);
        let mut reader = LogReader::new(fs, 0);
        let changes: Vec<LogicalChange> = reader
            .read_available()
            .iter()
            .filter_map(|e| apply_entry(&ro, e).unwrap())
            .collect();
        assert_eq!(changes.len(), 2);
        match &changes[1].dml {
            LogicalDml::Update { pk, old, new } => {
                assert_eq!(*pk, 7);
                assert_eq!(old.values[2], Value::Str("before".into()));
                assert_eq!(new.values[2], Value::Str("after".into()));
            }
            other => panic!("expected update, got {other:?}"),
        }
    }

    #[test]
    fn replay_is_idempotent() {
        let fs = PolarFs::instant();
        let log = LogWriter::new(fs.clone(), PropagationMode::ReuseRedo);
        let rw = RowEngine::new_rw(fs.clone(), log, 1 << 20);
        let (cols, idxs) = schema_parts();
        rw.create_table("t", cols, idxs).unwrap();
        let mut txn = rw.begin();
        for i in 0..50 {
            rw.insert(
                &mut txn,
                "t",
                vec![Value::Int(i), Value::Int(0), Value::Null],
            )
            .unwrap();
        }
        rw.commit(txn).unwrap();

        // No catalog refresh: the CREATE TABLE's DDL record is in the
        // log and registers the table during replay.
        let ro = RowEngine::new_replica(fs.clone(), 1 << 20);
        let mut reader = LogReader::new(fs, 0);
        let entries = reader.read_available();
        for e in &entries {
            apply_entry(&ro, e).unwrap();
        }
        // Second replay of the same entries: all skipped by page-LSN.
        for e in &entries {
            assert_eq!(apply_entry(&ro, e).unwrap(), None);
        }
        assert_eq!(ro.row_count("t").unwrap(), 50);
    }

    /// Page-partitioned Phase-1 replay: a pointer record (here
    /// `SmoSetNext`) can reach its worker before the pointed-to page's
    /// full-page image is applied by a *different* worker. The pointer
    /// apply must wait for the page's birth instead of exposing a
    /// dangling reference to concurrent readers.
    #[test]
    fn pointer_records_wait_for_page_birth() {
        let fs = PolarFs::instant();
        let ro = RowEngine::new_replica(fs, 1 << 20);
        let smo = |lsn: u64, page: u64, payload: RedoPayload| RedoEntry {
            lsn: Lsn(lsn),
            prev_lsn: Lsn(0),
            tid: SYSTEM_TID,
            table_id: TableId(1),
            page_id: imci_common::PageId(page),
            slot_id: 0,
            payload,
        };
        apply_entry(
            &ro,
            &smo(
                1,
                5,
                RedoPayload::SmoLeafWrite {
                    entries: vec![(1, vec![1u8])],
                    next_leaf: None,
                },
            ),
        )
        .unwrap();

        // The sibling's image (LSN 2) lands late, from another thread —
        // the out-of-order interleaving two page-hashed workers produce.
        let late = {
            let ro = ro.clone();
            let e = smo(
                2,
                7,
                RedoPayload::SmoLeafWrite {
                    entries: vec![(9, vec![9u8])],
                    next_leaf: None,
                },
            );
            std::thread::spawn(move || {
                std::thread::sleep(std::time::Duration::from_millis(30));
                apply_entry(&ro, &e).unwrap();
            })
        };
        apply_entry(
            &ro,
            &smo(
                3,
                5,
                RedoPayload::SmoSetNext {
                    next_leaf: Some(imci_common::PageId(7)),
                },
            ),
        )
        .unwrap();
        // By the time the pointer is visible, its target must exist.
        assert!(ro.buffer_pool().get_local(imci_common::PageId(7)).is_some());
        late.join().unwrap();
    }

    #[test]
    fn dml_against_missing_page_errors() {
        let fs = PolarFs::instant();
        let ro = RowEngine::new_replica(fs, 1 << 20);
        let e = RedoEntry {
            lsn: Lsn(5),
            prev_lsn: Lsn(0),
            tid: Tid(3),
            table_id: TableId(1),
            page_id: imci_common::PageId(999),
            slot_id: 0,
            payload: RedoPayload::Delete { pk: 1 },
        };
        assert!(apply_entry(&ro, &e).is_err());
    }
}
