//! Transactions on the RW node.
//!
//! TIDs are assigned at `begin`; commit sequence numbers ([`Vid`]) are
//! assigned at commit, under a commit mutex, so that the order of commit
//! records in the REDO log equals VID order — Phase-2 replay processes
//! transactions "in the commit order" (paper §5.4) and stamps their VIDs
//! into the column index, so the two orders must agree.
//!
//! Rollback is undo-based: the engine records inverse operations while a
//! transaction executes and applies them (as SYSTEM_TID page changes) if
//! it aborts. RO nodes therefore "simply free the transaction buffer and
//! no data need to be rolled back" on the column side (paper §5.1) while
//! their row pages are fixed up by the logged undo application.

use imci_common::{Result, Row, TableId, Tid, Vid};
use imci_wal::LogWriter;
use parking_lot::{Mutex, RwLock};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Inverse of one executed DML, replayed on abort.
#[derive(Debug, Clone)]
pub enum UndoOp {
    /// Undo an insert: delete `pk`.
    Insert { table: TableId, pk: i64 },
    /// Undo an update: restore the old row.
    Update { table: TableId, pk: i64, old: Row },
    /// Undo a delete: re-insert the old row.
    Delete { table: TableId, pk: i64, old: Row },
}

/// An open transaction handle.
pub struct Txn {
    /// Transaction id.
    pub tid: Tid,
    /// Undo log, in execution order.
    pub(crate) undo: Vec<UndoOp>,
}

impl Txn {
    /// Number of DMLs executed so far.
    pub fn n_ops(&self) -> usize {
        self.undo.len()
    }
}

/// Issues TIDs and commit sequence numbers; owns the commit path.
pub struct TxnManager {
    next_tid: AtomicU64,
    commit_seq: AtomicU64,
    /// Serializes VID assignment with commit-record append (see module
    /// docs). The fsync inside also rides under this lock, which models
    /// a serialized group-commit pipeline.
    commit_mutex: Mutex<()>,
    /// Behind a lock so a replica engine can be flipped into writer
    /// mode in place (RO→RW promotion attaches a log writer to a
    /// manager that started unlogged).
    log: RwLock<Option<Arc<LogWriter>>>,
}

impl TxnManager {
    /// Create a manager; `log` is None for unlogged (test) engines.
    pub fn new(log: Option<Arc<LogWriter>>) -> TxnManager {
        TxnManager {
            // TID 0 is SYSTEM_TID; start user transactions at 1.
            next_tid: AtomicU64::new(1),
            commit_seq: AtomicU64::new(0),
            commit_mutex: Mutex::new(()),
            log: RwLock::new(log),
        }
    }

    /// Begin a transaction.
    pub fn begin(&self) -> Txn {
        Txn {
            tid: Tid(self.next_tid.fetch_add(1, Ordering::SeqCst)),
            undo: Vec::new(),
        }
    }

    /// Commit: assign the VID, write + fsync the commit record. A
    /// fenced writer (deposed by failover) fails here with the commit
    /// record unwritten — the VID is not consumed and the transaction
    /// is not durable anywhere, so the client can safely retry on the
    /// new RW.
    pub fn commit(&self, txn: Txn) -> Result<Vid> {
        let _g = self.commit_mutex.lock();
        let vid = Vid(self.commit_seq.load(Ordering::SeqCst) + 1);
        if let Some(log) = self.log.read().as_ref() {
            log.commit(txn.tid, vid)?;
        }
        self.commit_seq.store(vid.get(), Ordering::SeqCst);
        Ok(vid)
    }

    /// Write the abort record (the engine has already applied undo).
    /// Best-effort on a fenced writer: the abort gates nothing.
    pub fn log_abort(&self, tid: Tid) {
        if let Some(log) = self.log.read().as_ref() {
            let _ = log.abort(tid);
        }
    }

    /// Highest commit sequence number issued.
    pub fn last_commit_vid(&self) -> Vid {
        Vid(self.commit_seq.load(Ordering::SeqCst))
    }

    /// The attached log writer, if any.
    pub fn log(&self) -> Option<Arc<LogWriter>> {
        self.log.read().clone()
    }

    /// Attach a log writer and fast-forward the counters — the
    /// writer-mode flip of crash recovery / RO→RW promotion. `next_tid`
    /// must exceed every TID in the log (a reused TID would corrupt the
    /// prev-LSN chains); `commit_seq` is the highest committed VID, so
    /// the first post-promotion commit continues the VID sequence the
    /// column-store watermarks advance on.
    pub fn promote(&self, log: Arc<LogWriter>, next_tid: u64, commit_seq: u64) {
        let _g = self.commit_mutex.lock();
        self.next_tid.fetch_max(next_tid, Ordering::SeqCst);
        self.commit_seq.fetch_max(commit_seq, Ordering::SeqCst);
        *self.log.write() = Some(log);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use imci_wal::{LogReader, PropagationMode, RedoPayload};
    use polarfs_sim::PolarFs;

    #[test]
    fn tids_and_vids_are_dense() {
        let m = TxnManager::new(None);
        let t1 = m.begin();
        let t2 = m.begin();
        assert_eq!(t1.tid, Tid(1));
        assert_eq!(t2.tid, Tid(2));
        assert_eq!(m.commit(t1).unwrap(), Vid(1));
        assert_eq!(m.commit(t2).unwrap(), Vid(2));
        assert_eq!(m.last_commit_vid(), Vid(2));
    }

    #[test]
    fn fenced_commit_burns_no_vid_and_is_retryable() {
        let fs = PolarFs::instant();
        let log = LogWriter::new(fs.clone(), PropagationMode::ReuseRedo);
        let m = TxnManager::new(Some(log));
        m.commit(m.begin()).unwrap();
        fs.bump_epoch(); // a new writer took over
        let err = m.commit(m.begin()).unwrap_err();
        assert!(err.is_retryable(), "failover errors are retryable");
        assert_eq!(
            m.last_commit_vid(),
            Vid(1),
            "a fenced commit must not consume a VID: the next writer \
             resumes the VID sequence from the log"
        );
    }

    #[test]
    fn commit_records_appear_in_vid_order() {
        let fs = PolarFs::instant();
        let log = LogWriter::new(fs.clone(), PropagationMode::ReuseRedo);
        let m = Arc::new(TxnManager::new(Some(log)));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let m = m.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..50 {
                    let t = m.begin();
                    m.commit(t).unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let mut r = LogReader::new(fs, 0);
        let mut last = 0u64;
        for e in r.read_available() {
            if let RedoPayload::Commit { commit_vid } = e.payload {
                assert!(
                    commit_vid.get() > last,
                    "VIDs must be monotone in log order"
                );
                last = commit_vid.get();
            }
        }
        assert_eq!(last, 400);
    }
}
