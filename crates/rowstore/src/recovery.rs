//! RW crash recovery (paper §2.2: "all states of the computation nodes
//! can be rebuilt from shared storage").
//!
//! An RW crash loses every in-memory structure — buffer pool, catalog
//! maps, transaction counters, secondary indexes — but nothing durable:
//! the REDO log, the page-store checkpoints, and the catalog snapshots
//! all live in PolarFS. [`RowEngine::recover`] rebuilds a writer from
//! those three, ARIES-style but leaning on two properties of this
//! codebase instead of classic analysis/redo/undo passes:
//!
//! 1. **Replay is the same code replicas run.** [`crate::apply_entry`]
//!    applies every entry (committed or not) to local pages and hands
//!    back the logical DML with full old/new row images. Recovery uses
//!    those images to build per-transaction undo lists on the fly — no
//!    separate analysis pass.
//! 2. **Rollback is logged.** Transactions with no decision record at
//!    the log's end are undone through the *new* writer as
//!    [`imci_common::SYSTEM_TID`] compensation records followed by an
//!    abort record — exactly what a live abort writes — so every RO
//!    replica tailing the log converges to the same post-crash state
//!    without any special-casing.
//!
//! Before touching anything, recovery bumps the shared-storage writer
//! epoch: the crashed RW may still have threads alive somewhere (a
//! "zombie"), and from that bump on, its appends are rejected, making
//! the log tail recovery replays from final.

use crate::apply::apply_entry;
use crate::engine::RowEngine;
use crate::txn::UndoOp;
use imci_common::{FxHashMap, Result, Tid};
use imci_wal::{LogReader, LogWriter, PropagationMode, RedoPayload};
use polarfs_sim::PolarFs;
use std::sync::atomic::Ordering;
use std::sync::Arc;

/// Flatten per-transaction undo buffers — each op stamped with its
/// global replay/drain sequence — into one list in original log order,
/// ready for [`RowEngine::rollback_inflight`]. Also returns the number
/// of distinct transactions. Shared by crash recovery and the
/// promotion handshake so the ordering discipline lives in one place.
pub fn order_inflight(inflight: FxHashMap<Tid, Vec<(u64, UndoOp)>>) -> (Vec<(Tid, UndoOp)>, usize) {
    let txns = inflight.len();
    let mut flat: Vec<(Tid, u64, UndoOp)> = inflight
        .into_iter()
        .flat_map(|(tid, ops)| ops.into_iter().map(move |(s, op)| (tid, s, op)))
        .collect();
    flat.sort_by_key(|(_, s, _)| *s);
    (
        flat.into_iter().map(|(tid, _, op)| (tid, op)).collect(),
        txns,
    )
}

/// Inputs to [`RowEngine::recover`]. The caller (the cluster layer)
/// resolves the newest checkpoint; recovery itself only sees bytes, so
/// the storage crate stays independent of the checkpoint key schema.
pub struct RecoverOptions {
    /// Propagation mode for the resumed log writer.
    pub mode: PropagationMode,
    /// Buffer-pool capacity. Must hold the working set: replay (like
    /// replica replay) requires every replayed page to stay resident.
    pub bp_capacity: usize,
    /// REDO byte offset to start applying from (the newest checkpoint's
    /// redo cursor; 0 = replay everything).
    pub start_offset: u64,
    /// The checkpoint's catalog snapshot (`RowEngine::export_catalog`
    /// bytes), if a checkpoint is used.
    pub catalog_snapshot: Option<bytes::Bytes>,
    /// The checkpoint's row-page images, if a checkpoint is used.
    pub checkpoint_pages: Vec<bytes::Bytes>,
}

impl RecoverOptions {
    /// Recover purely from the log (no checkpoint).
    pub fn from_log_start(mode: PropagationMode, bp_capacity: usize) -> RecoverOptions {
        RecoverOptions {
            mode,
            bp_capacity,
            start_offset: 0,
            catalog_snapshot: None,
            checkpoint_pages: Vec::new(),
        }
    }
}

/// What recovery did — the numbers ablation E and the crash-recovery
/// tests assert on.
#[derive(Debug, Clone)]
pub struct RecoveryReport {
    /// The recovered writer's fencing epoch.
    pub epoch: u64,
    /// Whether a checkpoint seeded the state.
    pub from_checkpoint: bool,
    /// REDO entries applied (checkpoint suffix only).
    pub entries_replayed: usize,
    /// Commit records seen in the replayed suffix.
    pub committed_txns: u64,
    /// In-flight transactions rolled back (logged undo + abort record).
    pub rolled_back_txns: usize,
    /// Individual DMLs undone during rollback.
    pub rolled_back_ops: usize,
    /// Last LSN in the log at recovery time; the resumed writer
    /// continues at `last_lsn + 1`.
    pub last_lsn: u64,
}

impl RowEngine {
    /// Rebuild a writer engine from shared storage after an RW crash:
    /// checkpoint pages + catalog snapshot, REDO replay from the
    /// checkpoint cursor (catalog changes come purely from the log's
    /// versioned DDL records), logged rollback of transactions that
    /// never reached a decision record, and a resumed, epoch-fenced log
    /// writer. Returns the engine ready to serve as the new RW.
    pub fn recover(fs: PolarFs, opts: RecoverOptions) -> Result<(Arc<RowEngine>, RecoveryReport)> {
        // Fence first: from here on the log tail cannot move under us.
        let epoch = fs.bump_epoch();

        let engine = RowEngine::new_replica(fs.clone(), opts.bp_capacity);
        let from_checkpoint = opts.catalog_snapshot.is_some();
        if let Some(cat) = &opts.catalog_snapshot {
            engine.import_catalog(cat)?;
        }
        for bytes in &opts.checkpoint_pages {
            engine.buffer_pool().import_page(bytes)?;
        }
        // Node-local runtime caches for checkpoint-loaded tables; the
        // replayed suffix maintains them incrementally from here.
        for name in engine.table_names() {
            let rt = engine.table(&name)?;
            rt.rebuild_secondaries()?;
            rt.row_counter
                .store(rt.tree.count()? as u64, Ordering::SeqCst);
        }

        // The skipped prefix still owns LSN/TID/VID ranges: decode it
        // (without applying) so the resumed writer's counters clear
        // everything ever written. Cheap relative to state rebuild.
        let mut last_lsn = 0u64;
        let mut written_lsn = 0u64;
        let mut max_tid = 0u64;
        let mut max_vid = 0u64;
        if opts.start_offset > 0 {
            let mut prefix = LogReader::new(fs.clone(), 0);
            for e in prefix.read_until(opts.start_offset) {
                last_lsn = last_lsn.max(e.lsn.get());
                max_tid = max_tid.max(e.tid.get());
                if let RedoPayload::Commit { commit_vid } = &e.payload {
                    max_vid = max_vid.max(commit_vid.get());
                    written_lsn = written_lsn.max(e.lsn.get());
                }
            }
        }

        // Replay the suffix, building undo lists for whatever has no
        // decision record yet. `seq` preserves global DML order so the
        // rollback below can run in exact reverse.
        let mut inflight: FxHashMap<Tid, Vec<(u64, UndoOp)>> = FxHashMap::default();
        let mut seq = 0u64;
        let mut entries_replayed = 0usize;
        let mut committed_txns = 0u64;
        let mut reader = LogReader::new(fs.clone(), opts.start_offset);
        for e in reader.read_available() {
            entries_replayed += 1;
            last_lsn = last_lsn.max(e.lsn.get());
            max_tid = max_tid.max(e.tid.get());
            match &e.payload {
                RedoPayload::Commit { commit_vid } => {
                    inflight.remove(&e.tid);
                    committed_txns += 1;
                    max_vid = max_vid.max(commit_vid.get());
                    written_lsn = written_lsn.max(e.lsn.get());
                }
                RedoPayload::Abort => {
                    // The log also contains the abort's SYSTEM_TID
                    // compensation entries; they replay like any page
                    // change, so dropping the undo list is all that's
                    // left to do.
                    inflight.remove(&e.tid);
                }
                _ => {
                    if let Some(change) = apply_entry(&engine, &e)? {
                        inflight
                            .entry(change.tid)
                            .or_default()
                            .push((seq, change.undo()));
                        seq += 1;
                    }
                }
            }
        }

        // Become the writer: LSNs continue after the tail, the
        // written-LSN fence floor is the last durable commit (strong
        // reads never regress), and TID/VID counters clear the log.
        let log = LogWriter::resume(fs, opts.mode, last_lsn + 1, written_lsn)?;
        engine.promote_to_writer(log, max_tid + 1, max_vid);

        // Logged rollback of everything in flight at the crash.
        let (ordered, _) = order_inflight(inflight);
        let rolled_back_ops = ordered.len();
        let rolled_back_txns = engine.rollback_inflight(&ordered)?;

        Ok((
            engine,
            RecoveryReport {
                epoch,
                from_checkpoint,
                entries_replayed,
                committed_txns,
                rolled_back_txns,
                rolled_back_ops,
                last_lsn,
            },
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use imci_common::{ColumnDef, DataType, IndexDef, IndexKind, Value};

    fn schema_parts() -> (Vec<ColumnDef>, Vec<IndexDef>) {
        (
            vec![
                ColumnDef::not_null("id", DataType::Int),
                ColumnDef::new("v", DataType::Int),
            ],
            vec![
                IndexDef {
                    kind: IndexKind::Primary,
                    name: "PRIMARY".into(),
                    columns: vec![0],
                },
                IndexDef {
                    kind: IndexKind::Secondary,
                    name: "v_idx".into(),
                    columns: vec![1],
                },
            ],
        )
    }

    fn rw_engine(fs: &PolarFs) -> Arc<RowEngine> {
        let log = LogWriter::new(fs.clone(), PropagationMode::ReuseRedo);
        RowEngine::new_rw(fs.clone(), log, 1 << 20)
    }

    #[test]
    fn recover_restores_committed_and_rolls_back_inflight() {
        let fs = PolarFs::instant();
        let rw = rw_engine(&fs);
        let (cols, idxs) = schema_parts();
        rw.create_table("t", cols, idxs).unwrap();
        let mut txn = rw.begin();
        for pk in 0..200i64 {
            rw.insert(&mut txn, "t", vec![Value::Int(pk), Value::Int(pk)])
                .unwrap();
        }
        rw.commit(txn).unwrap();
        let mut committed = rw.begin();
        rw.update(&mut committed, "t", 5, vec![Value::Int(5), Value::Int(-5)])
            .unwrap();
        rw.delete(&mut committed, "t", 6).unwrap();
        rw.commit(committed).unwrap();
        // In flight at the crash: never committed, must vanish.
        let mut doomed = rw.begin();
        rw.insert(&mut doomed, "t", vec![Value::Int(999), Value::Int(0)])
            .unwrap();
        rw.update(&mut doomed, "t", 10, vec![Value::Int(10), Value::Int(-10)])
            .unwrap();
        rw.delete(&mut doomed, "t", 11).unwrap();
        let last_vid = rw.txns.last_commit_vid();
        drop((rw, doomed)); // crash: all in-memory state gone

        let (rec, report) = RowEngine::recover(
            fs,
            RecoverOptions::from_log_start(PropagationMode::ReuseRedo, 1 << 20),
        )
        .unwrap();
        assert_eq!(report.rolled_back_txns, 1);
        assert_eq!(report.rolled_back_ops, 3);
        assert!(!report.from_checkpoint);
        // Committed effects all present...
        assert_eq!(rec.row_count("t").unwrap(), 199);
        assert_eq!(
            rec.get_row("t", 5).unwrap().unwrap().values[1],
            Value::Int(-5)
        );
        assert!(rec.get_row("t", 6).unwrap().is_none());
        // ...uncommitted effects all gone.
        assert!(rec.get_row("t", 999).unwrap().is_none(), "inflight insert");
        assert_eq!(
            rec.get_row("t", 10).unwrap().unwrap().values[1],
            Value::Int(10),
            "inflight update undone"
        );
        assert_eq!(
            rec.get_row("t", 11).unwrap().unwrap().values[1],
            Value::Int(11),
            "inflight delete undone"
        );
        // Secondary indexes were maintained through replay + rollback.
        let rt = rec.table("t").unwrap();
        assert_eq!(rt.secondaries[0].lookup_eq(&Value::Int(-5)), vec![5]);
        assert!(rt.secondaries[0].lookup_eq(&Value::Int(-10)).is_empty());
        // The recovered node is a live writer: counters resume.
        let mut txn = rec.begin();
        rec.insert(&mut txn, "t", vec![Value::Int(500), Value::Int(1)])
            .unwrap();
        let vid = rec.commit(txn).unwrap();
        assert!(vid > last_vid, "VID sequence continues, never reuses");
    }

    #[test]
    fn recovered_log_is_replayable_by_a_fresh_replica() {
        // The compensation records recovery writes must leave the log
        // replayable end-to-end: a cold replica converges to the
        // recovered writer's exact state.
        let fs = PolarFs::instant();
        let rw = rw_engine(&fs);
        let (cols, idxs) = schema_parts();
        rw.create_table("t", cols, idxs).unwrap();
        let mut txn = rw.begin();
        for pk in 0..50i64 {
            rw.insert(&mut txn, "t", vec![Value::Int(pk), Value::Int(pk)])
                .unwrap();
        }
        rw.commit(txn).unwrap();
        let mut doomed = rw.begin();
        rw.insert(&mut doomed, "t", vec![Value::Int(100), Value::Int(1)])
            .unwrap();
        rw.update(&mut doomed, "t", 3, vec![Value::Int(3), Value::Int(-3)])
            .unwrap();
        drop((rw, doomed));

        let (rec, _) = RowEngine::recover(
            fs.clone(),
            RecoverOptions::from_log_start(PropagationMode::ReuseRedo, 1 << 20),
        )
        .unwrap();
        // Post-recovery traffic from the new writer.
        let mut txn = rec.begin();
        rec.insert(&mut txn, "t", vec![Value::Int(200), Value::Int(2)])
            .unwrap();
        rec.commit(txn).unwrap();

        let replica = RowEngine::new_replica(fs.clone(), 1 << 20);
        let mut reader = LogReader::new(fs, 0);
        for e in reader.read_available() {
            apply_entry(&replica, &e).unwrap();
        }
        let mut rec_rows = Vec::new();
        rec.scan("t", i64::MIN, i64::MAX, |pk, r| rec_rows.push((pk, r)))
            .unwrap();
        let mut rep_rows = Vec::new();
        replica
            .scan("t", i64::MIN, i64::MAX, |pk, r| rep_rows.push((pk, r)))
            .unwrap();
        assert_eq!(rec_rows, rep_rows, "replica matches recovered writer");
        assert!(replica.get_row("t", 100).unwrap().is_none());
        assert_eq!(
            replica.get_row("t", 3).unwrap().unwrap().values[1],
            Value::Int(3)
        );
    }

    #[test]
    fn zombie_writer_is_fenced_after_recovery() {
        let fs = PolarFs::instant();
        let zombie = rw_engine(&fs);
        let (cols, idxs) = schema_parts();
        zombie.create_table("t", cols, idxs).unwrap();
        let mut txn = zombie.begin();
        zombie
            .insert(&mut txn, "t", vec![Value::Int(1), Value::Int(1)])
            .unwrap();
        zombie.commit(txn).unwrap();

        // Recovery takes over while the old writer object stays alive.
        let (rec, report) = RowEngine::recover(
            fs.clone(),
            RecoverOptions::from_log_start(PropagationMode::ReuseRedo, 1 << 20),
        )
        .unwrap();
        assert_eq!(report.epoch, 1);

        // The zombie can no longer write anything durable.
        let mut txn = zombie.begin();
        let err = zombie
            .insert(&mut txn, "t", vec![Value::Int(2), Value::Int(2)])
            .unwrap_err();
        assert!(err.is_retryable(), "fenced append surfaces as failover");
        // An empty-bodied commit is fenced too: no record, no ack.
        let err = zombie.commit(zombie.begin()).unwrap_err();
        assert!(err.is_retryable());

        // The new writer is unaffected.
        let mut txn = rec.begin();
        rec.insert(&mut txn, "t", vec![Value::Int(3), Value::Int(3)])
            .unwrap();
        rec.commit(txn).unwrap();
        assert_eq!(rec.row_count("t").unwrap(), 2);
    }
}
