//! LRU buffer pool over the simulated shared storage.
//!
//! Both the RW node and every RO node keep one. The RO-side pool is the
//! optimization called out in paper §5.3: Phase-1 replay reads old row
//! images from pages, and "REDO logs under real workloads always act on
//! hot pages so that the buffer pool has a hit rate close to 99%" — the
//! hit/miss counters here let the benches verify that claim in the repro.

use crate::page::Page;
use bytes::Bytes;
use imci_common::{Error, FxHashMap, PageId, Result};
use parking_lot::{Mutex, RwLock};
use polarfs_sim::PolarFs;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Shared-storage namespace for row-store pages. All nodes read the
/// same space — that is the "shared storage" in the architecture figure.
pub const PAGE_SPACE: &str = "rowstore-pages";

struct Frame {
    page: Arc<RwLock<Page>>,
    last_used: AtomicU64,
}

/// A fixed-capacity page cache with LRU eviction; dirty pages are
/// written back to shared storage on eviction or explicit flush.
pub struct BufferPool {
    fs: PolarFs,
    frames: Mutex<FxHashMap<PageId, Arc<Frame>>>,
    capacity: usize,
    tick: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl BufferPool {
    /// Create a pool holding up to `capacity` pages.
    pub fn new(fs: PolarFs, capacity: usize) -> Arc<BufferPool> {
        Arc::new(BufferPool {
            fs,
            frames: Mutex::new(FxHashMap::default()),
            capacity: capacity.max(8),
            tick: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        })
    }

    /// Shared storage behind this pool.
    pub fn fs(&self) -> &PolarFs {
        &self.fs
    }

    fn touch(&self, f: &Frame) {
        f.last_used
            .store(self.tick.fetch_add(1, Ordering::Relaxed), Ordering::Relaxed);
    }

    /// Fetch a page, loading from shared storage on miss.
    pub fn get(&self, id: PageId) -> Result<Arc<RwLock<Page>>> {
        {
            let frames = self.frames.lock();
            if let Some(f) = frames.get(&id) {
                self.touch(f);
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Ok(f.page.clone());
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let bytes = self.fs.read_page(PAGE_SPACE, id)?;
        let page = Page::decode(&bytes)?;
        if page.id != id {
            return Err(Error::Storage(format!(
                "page store returned page {} for request {}",
                page.id, id
            )));
        }
        Ok(self.install(page))
    }

    /// Fetch a page if it exists in the pool or shared storage.
    pub fn try_get(&self, id: PageId) -> Option<Arc<RwLock<Page>>> {
        self.get(id).ok()
    }

    /// Fetch a page only if it is resident in this pool (no fallback to
    /// shared storage). Replay uses this: an RO node's pages are created
    /// exclusively by its own log replay (or checkpoint load), so a miss
    /// here means the log is being consumed out of order.
    pub fn get_local(&self, id: PageId) -> Option<Arc<RwLock<Page>>> {
        let frames = self.frames.lock();
        frames.get(&id).map(|f| {
            self.touch(f);
            f.page.clone()
        })
    }

    /// Install a brand-new page (e.g. the right sibling of a split, or a
    /// page materialized by replay).
    pub fn install(&self, page: Page) -> Arc<RwLock<Page>> {
        let id = page.id;
        let mut frames = self.frames.lock();
        if let Some(existing) = frames.get(&id) {
            // Racing loads of the same page: keep the first copy.
            self.touch(existing);
            return existing.page.clone();
        }
        let frame = Arc::new(Frame {
            page: Arc::new(RwLock::new(page)),
            last_used: AtomicU64::new(self.tick.fetch_add(1, Ordering::Relaxed)),
        });
        let out = frame.page.clone();
        frames.insert(id, frame);
        if frames.len() > self.capacity {
            self.evict_one(&mut frames);
        }
        out
    }

    fn evict_one(&self, frames: &mut FxHashMap<PageId, Arc<Frame>>) {
        // O(n) coldest-victim scan; pools in this repro are small enough
        // that a heap would be noise. Skip pages currently borrowed.
        let victim = frames
            .iter()
            .filter(|(_, f)| Arc::strong_count(&f.page) == 1)
            .min_by_key(|(_, f)| f.last_used.load(Ordering::Relaxed))
            .map(|(id, _)| *id);
        if let Some(id) = victim {
            if let Some(f) = frames.remove(&id) {
                let page = f.page.read();
                if page.dirty {
                    self.fs
                        .write_page(PAGE_SPACE, id, Bytes::from(page.encode()));
                }
            }
        }
    }

    /// Write every dirty page back to shared storage (RW checkpoint /
    /// pre-scale-out flush). Pages stay cached.
    pub fn flush_all(&self) {
        let frames: Vec<Arc<Frame>> = self.frames.lock().values().cloned().collect();
        for f in frames {
            let mut page = f.page.write();
            if page.dirty {
                self.fs
                    .write_page(PAGE_SPACE, page.id, Bytes::from(page.encode()));
                page.dirty = false;
            }
        }
    }

    /// Encode every resident page (checkpointing an RO replica whose
    /// pages exist only locally — they were materialized by log replay).
    pub fn export_pages(&self) -> Vec<(PageId, Vec<u8>)> {
        let frames: Vec<(PageId, Arc<Frame>)> = self
            .frames
            .lock()
            .iter()
            .map(|(id, f)| (*id, f.clone()))
            .collect();
        frames
            .into_iter()
            .map(|(id, f)| (id, f.page.read().encode()))
            .collect()
    }

    /// Install a page from an encoded image (checkpoint load).
    pub fn import_page(&self, bytes: &[u8]) -> Result<()> {
        let page = Page::decode(bytes)?;
        self.install(page);
        Ok(())
    }

    /// Drop a page from the pool without writing it back. Used when a
    /// table's pages are recycled (`DROP TABLE`): the stale frame must
    /// not shadow a future [`BufferPool::install`] of the reused id.
    pub fn discard(&self, id: PageId) {
        self.frames.lock().remove(&id);
    }

    /// Number of buffered pages.
    pub fn len(&self) -> usize {
        self.frames.lock().len()
    }

    /// True when no pages are buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Cache hits since creation.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Cache misses since creation.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Hit rate in [0, 1]; 1.0 when no accesses yet.
    pub fn hit_rate(&self) -> f64 {
        let h = self.hits() as f64;
        let m = self.misses() as f64;
        if h + m == 0.0 {
            1.0
        } else {
            h / (h + m)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::page::PageKind;

    #[test]
    fn install_then_get_hits() {
        let fs = PolarFs::instant();
        let bp = BufferPool::new(fs, 16);
        bp.install(Page::new_leaf(PageId(1)));
        assert!(bp.get(PageId(1)).is_ok());
        assert_eq!(bp.hits(), 1);
        assert_eq!(bp.misses(), 0);
    }

    #[test]
    fn miss_loads_from_shared_storage() {
        let fs = PolarFs::instant();
        let p = Page::new_leaf(PageId(9));
        fs.write_page(PAGE_SPACE, PageId(9), Bytes::from(p.encode()));
        let bp = BufferPool::new(fs, 16);
        let got = bp.get(PageId(9)).unwrap();
        assert_eq!(got.read().id, PageId(9));
        assert_eq!(bp.misses(), 1);
        assert!(bp.get(PageId(99)).is_err());
    }

    #[test]
    fn eviction_writes_dirty_pages_back() {
        let fs = PolarFs::instant();
        let bp = BufferPool::new(fs.clone(), 8);
        for i in 0..40u64 {
            let mut p = Page::new_leaf(PageId(i));
            if let PageKind::Leaf { entries, .. } = &mut p.kind {
                entries.push((i as i64, vec![i as u8]));
            }
            bp.install(p);
        }
        assert!(bp.len() <= 9, "capacity respected (one transient over)");
        // Early pages were evicted and must be readable from storage.
        let reloaded = bp.get(PageId(0)).unwrap();
        assert_eq!(reloaded.read().leaf_entries().unwrap()[0].0, 0);
    }

    #[test]
    fn flush_all_clears_dirty_and_persists() {
        let fs = PolarFs::instant();
        let bp = BufferPool::new(fs.clone(), 16);
        bp.install(Page::new_leaf(PageId(3)));
        bp.flush_all();
        assert!(fs.page_exists(PAGE_SPACE, PageId(3)));
        // Another pool (another node) can now read it.
        let bp2 = BufferPool::new(fs, 16);
        assert!(bp2.get(PageId(3)).is_ok());
    }

    #[test]
    fn install_is_idempotent_under_races() {
        let fs = PolarFs::instant();
        let bp = BufferPool::new(fs, 16);
        let a = bp.install(Page::new_leaf(PageId(5)));
        let b = bp.install(Page::new_leaf(PageId(5)));
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn hit_rate_reported() {
        let fs = PolarFs::instant();
        let bp = BufferPool::new(fs, 16);
        assert_eq!(bp.hit_rate(), 1.0);
        bp.install(Page::new_leaf(PageId(1)));
        for _ in 0..99 {
            bp.get(PageId(1)).unwrap();
        }
        let _ = bp.get(PageId(2));
        assert!(bp.hit_rate() > 0.98);
    }
}
