//! Page-id allocation with a free list.
//!
//! Page ids used to come from a bare monotonic counter, so `DROP TABLE`
//! leaked every page the table ever owned (the DDL-churn follow-up in
//! the ROADMAP). The allocator now keeps a free list: a dropped table's
//! pages are recycled by later allocations, keeping the page high-water
//! mark flat under tenant-per-table churn.
//!
//! Recycling is safe for replicas without any coordination because
//! every allocation path (tree creation, leaf/internal splits) emits a
//! *full-page* SMO record (`SmoLeafWrite` / `SmoInternalWrite` /
//! `SmoSetRoot`) as its first touch of the page, and per-page replay is
//! LSN-ordered — a reused id is completely rewritten before any
//! incremental record lands on it. Replicas therefore never recycle
//! ids themselves (they never allocate); they only track the high-water
//! mark so a promoted replica allocates above every id it has seen.
//!
//! Freed-but-unreused ids are lost across a crash (the free list is
//! volatile); recovery resumes allocation above the highest id in the
//! log, which only re-opens the leak for tables dropped just before the
//! crash — bounded and harmless.

use imci_common::PageId;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};

/// Node-local page-id allocator: monotonic high-water mark + free list.
pub struct PageAllocator {
    next: AtomicU64,
    free: Mutex<Vec<PageId>>,
}

impl PageAllocator {
    /// Create an allocator whose first fresh id is `start`.
    pub fn new(start: u64) -> PageAllocator {
        PageAllocator {
            next: AtomicU64::new(start.max(1)),
            free: Mutex::new(Vec::new()),
        }
    }

    /// Allocate a page id, preferring recycled ones.
    pub fn alloc(&self) -> PageId {
        if let Some(id) = self.free.lock().pop() {
            return id;
        }
        PageId(self.next.fetch_add(1, Ordering::SeqCst))
    }

    /// Return a batch of ids to the free list (table drop).
    pub fn release(&self, ids: impl IntoIterator<Item = PageId>) {
        let mut free = self.free.lock();
        free.extend(ids);
    }

    /// Make sure no future fresh allocation collides with `id` — called
    /// whenever an id enters this node from outside its own allocator
    /// (log replay, checkpoint import, catalog snapshots).
    pub fn ensure_above(&self, id: PageId) {
        self.next.fetch_max(id.get() + 1, Ordering::SeqCst);
    }

    /// Highest fresh id ever handed out, plus one (the catalog's
    /// persisted `alloc` field; also the page-leak metric the
    /// `ddl_churn` ablation asserts on).
    pub fn high_water(&self) -> u64 {
        self.next.load(Ordering::SeqCst)
    }

    /// Ids currently waiting for reuse.
    pub fn free_count(&self) -> usize {
        self.free.lock().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_ids_are_monotonic() {
        let a = PageAllocator::new(1);
        assert_eq!(a.alloc(), PageId(1));
        assert_eq!(a.alloc(), PageId(2));
        assert_eq!(a.high_water(), 3);
    }

    #[test]
    fn released_ids_are_recycled_before_fresh_ones() {
        let a = PageAllocator::new(1);
        let p1 = a.alloc();
        let p2 = a.alloc();
        let hw = a.high_water();
        a.release([p1, p2]);
        assert_eq!(a.free_count(), 2);
        // Recycled allocations don't move the high-water mark.
        let r1 = a.alloc();
        let r2 = a.alloc();
        assert_eq!(
            {
                let mut v = [r1, r2];
                v.sort();
                v
            },
            [p1, p2]
        );
        assert_eq!(a.high_water(), hw);
        assert_eq!(a.free_count(), 0);
        // Free list empty again: back to fresh ids.
        assert_eq!(a.alloc(), PageId(3));
    }

    #[test]
    fn ensure_above_protects_imported_ids() {
        let a = PageAllocator::new(1);
        a.ensure_above(PageId(41));
        assert_eq!(a.alloc(), PageId(42));
        // Lower imports never regress the mark.
        a.ensure_above(PageId(5));
        assert_eq!(a.alloc(), PageId(43));
    }
}
