//! The row storage engine: catalog + DML + recovery entry points.
//!
//! One [`RowEngine`] instance is the storage engine of one node. On the
//! RW node it carries a [`LogWriter`] and emits REDO for every change;
//! on RO nodes it runs unlogged and is mutated exclusively by Phase-1
//! replay ([`crate::apply`]), making it a physical replica of the RW
//! row store ("PolarDB-IMCI lets RO nodes maintain the buffer pool of
//! the row store like RW", paper §5.3).

use crate::btree::{BTree, RedoCtx};
use crate::bufferpool::BufferPool;
use crate::table::TableRt;
use crate::txn::{Txn, TxnManager, UndoOp};
use imci_common::{
    DataType, Error, FxHashMap, Result, Row, Schema, TableId, Value, Vid, SYSTEM_TID,
};
use imci_wal::{BinlogEvent, BinlogKind, LogWriter, PropagationMode};
use parking_lot::RwLock;
use polarfs_sim::PolarFs;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Object-store key of the persisted catalog.
pub const CATALOG_KEY: &str = "catalog";

/// A node's row storage engine.
pub struct RowEngine {
    fs: PolarFs,
    bp: Arc<BufferPool>,
    page_alloc: Arc<AtomicU64>,
    tables: RwLock<FxHashMap<String, Arc<TableRt>>>,
    tables_by_id: RwLock<FxHashMap<TableId, Arc<TableRt>>>,
    log: Option<Arc<LogWriter>>,
    /// Transaction manager (meaningful on the RW node).
    pub txns: TxnManager,
    next_table_id: AtomicU64,
}

impl RowEngine {
    /// Create the RW-node engine with REDO logging attached.
    pub fn new_rw(fs: PolarFs, log: Arc<LogWriter>, bp_capacity: usize) -> Arc<RowEngine> {
        Arc::new(RowEngine {
            bp: BufferPool::new(fs.clone(), bp_capacity),
            fs,
            page_alloc: Arc::new(AtomicU64::new(1)),
            tables: RwLock::new(FxHashMap::default()),
            tables_by_id: RwLock::new(FxHashMap::default()),
            txns: TxnManager::new(Some(log.clone())),
            log: Some(log),
            next_table_id: AtomicU64::new(1),
        })
    }

    /// Create an RO-node replica engine (no logging; mutated by replay).
    pub fn new_replica(fs: PolarFs, bp_capacity: usize) -> Arc<RowEngine> {
        Arc::new(RowEngine {
            bp: BufferPool::new(fs.clone(), bp_capacity),
            fs,
            page_alloc: Arc::new(AtomicU64::new(1)),
            tables: RwLock::new(FxHashMap::default()),
            tables_by_id: RwLock::new(FxHashMap::default()),
            txns: TxnManager::new(None),
            log: None,
            next_table_id: AtomicU64::new(1),
        })
    }

    /// Shared storage handle.
    pub fn fs(&self) -> &PolarFs {
        &self.fs
    }

    /// This node's buffer pool.
    pub fn buffer_pool(&self) -> &Arc<BufferPool> {
        &self.bp
    }

    /// The attached log writer (RW only).
    pub fn log(&self) -> Option<&Arc<LogWriter>> {
        self.log.as_ref()
    }

    fn ctx_for(&self, tid: imci_common::Tid, table_id: TableId) -> RedoCtx {
        RedoCtx {
            log: self.log.clone(),
            tid,
            table_id,
        }
    }

    // ---- catalog ----

    /// Create a table (DDL). Emits creation SMO records, persists the
    /// catalog to shared storage, and flushes the initial pages so any
    /// node can open the table.
    pub fn create_table(
        &self,
        name: &str,
        columns: Vec<imci_common::ColumnDef>,
        indexes: Vec<imci_common::IndexDef>,
    ) -> Result<Arc<TableRt>> {
        let lname = name.to_ascii_lowercase();
        if self.tables.read().contains_key(&lname) {
            return Err(Error::Catalog(format!("table {lname} already exists")));
        }
        let table_id = TableId(self.next_table_id.fetch_add(1, Ordering::SeqCst));
        let schema = Schema::new(table_id, lname.clone(), columns, indexes)?;
        let ctx = self.ctx_for(SYSTEM_TID, table_id);
        let tree = BTree::create(self.bp.clone(), self.page_alloc.clone(), &ctx)?;
        let rt = Arc::new(TableRt::new(schema, tree));
        self.tables.write().insert(lname, rt.clone());
        self.tables_by_id.write().insert(table_id, rt.clone());
        self.persist_catalog();
        Ok(rt)
    }

    /// Register an already-existing table (used by replicas during
    /// catalog refresh and by checkpoint loading).
    pub fn register_table(&self, schema: Schema, meta_page: imci_common::PageId) {
        let rt = Arc::new(TableRt::new(
            schema.clone(),
            BTree::open(self.bp.clone(), self.page_alloc.clone(), meta_page),
        ));
        self.tables.write().insert(schema.name.clone(), rt.clone());
        self.tables_by_id.write().insert(schema.table_id, rt);
    }

    /// Replace a table's schema in place (online DDL such as
    /// `ALTER TABLE ... ADD COLUMN INDEX`, §3.3). Runtime state (tree,
    /// secondaries, counters) is preserved; the catalog is re-persisted
    /// so replicas pick the change up on refresh.
    pub fn replace_table_schema(&self, name: &str, schema: Schema) -> Result<()> {
        let old = self.table(name)?;
        let new_rt = Arc::new(TableRt::new(
            schema.clone(),
            BTree::open(
                self.bp.clone(),
                self.page_alloc.clone(),
                old.tree.meta_page(),
            ),
        ));
        new_rt
            .row_counter
            .store(old.approx_rows(), Ordering::SeqCst);
        new_rt.rebuild_secondaries()?;
        self.tables
            .write()
            .insert(schema.name.clone(), new_rt.clone());
        self.tables_by_id.write().insert(schema.table_id, new_rt);
        self.persist_catalog();
        Ok(())
    }

    /// Look up a table by name.
    pub fn table(&self, name: &str) -> Result<Arc<TableRt>> {
        self.tables
            .read()
            .get(&name.to_ascii_lowercase())
            .cloned()
            .ok_or_else(|| Error::Catalog(format!("unknown table {name}")))
    }

    /// Look up a table by id.
    pub fn table_by_id(&self, id: TableId) -> Result<Arc<TableRt>> {
        self.tables_by_id
            .read()
            .get(&id)
            .cloned()
            .ok_or_else(|| Error::Catalog(format!("unknown table id {id}")))
    }

    /// All table names.
    pub fn table_names(&self) -> Vec<String> {
        let mut v: Vec<String> = self.tables.read().keys().cloned().collect();
        v.sort();
        v
    }

    fn persist_catalog(&self) {
        let mut out = String::new();
        for rt in self.tables.read().values() {
            let s = &rt.schema;
            out.push_str(&format!(
                "table\t{}\t{}\t{}\n",
                s.table_id.get(),
                s.name,
                rt.tree.meta_page().get()
            ));
            for c in &s.columns {
                out.push_str(&format!("col\t{}\t{}\t{}\n", c.name, c.ty, c.nullable));
            }
            for i in &s.indexes {
                let kind = match i.kind {
                    imci_common::IndexKind::Primary => "primary",
                    imci_common::IndexKind::Secondary => "secondary",
                    imci_common::IndexKind::Column => "column",
                };
                let cols: Vec<String> = i.columns.iter().map(|c| c.to_string()).collect();
                out.push_str(&format!("idx\t{}\t{}\t{}\n", kind, i.name, cols.join(",")));
            }
            out.push_str("end\n");
        }
        out.push_str(&format!(
            "alloc\t{}\t{}\n",
            self.page_alloc.load(Ordering::SeqCst),
            self.next_table_id.load(Ordering::SeqCst)
        ));
        self.fs.put_object(CATALOG_KEY, bytes::Bytes::from(out));
    }

    /// (Re)load the catalog from shared storage. Newly-seen tables are
    /// registered; existing ones are kept (their runtime state stays).
    pub fn refresh_catalog(&self) -> Result<()> {
        let bytes = match self.fs.get_object(CATALOG_KEY) {
            Ok(b) => b,
            Err(_) => return Ok(()), // no tables yet
        };
        let text = std::str::from_utf8(&bytes)
            .map_err(|e| Error::Catalog(format!("catalog not utf8: {e}")))?;
        let mut lines = text.lines().peekable();
        while let Some(line) = lines.next() {
            let parts: Vec<&str> = line.split('\t').collect();
            match parts[0] {
                "table" => {
                    let id = TableId(
                        parts[1]
                            .parse()
                            .map_err(|_| Error::Catalog("bad table id in catalog".into()))?,
                    );
                    let name = parts[2].to_string();
                    let meta = imci_common::PageId(
                        parts[3]
                            .parse()
                            .map_err(|_| Error::Catalog("bad meta page in catalog".into()))?,
                    );
                    let mut columns = Vec::new();
                    let mut indexes = Vec::new();
                    for l in lines.by_ref() {
                        let p: Vec<&str> = l.split('\t').collect();
                        match p[0] {
                            "col" => columns.push(imci_common::ColumnDef {
                                name: p[1].to_string(),
                                ty: DataType::parse_sql(p[2])?,
                                nullable: p[3] == "true",
                            }),
                            "idx" => {
                                let kind = match p[1] {
                                    "primary" => imci_common::IndexKind::Primary,
                                    "secondary" => imci_common::IndexKind::Secondary,
                                    _ => imci_common::IndexKind::Column,
                                };
                                let cols: Vec<usize> = if p[3].is_empty() {
                                    Vec::new()
                                } else {
                                    p[3].split(',').map(|c| c.parse().unwrap_or(0)).collect()
                                };
                                indexes.push(imci_common::IndexDef {
                                    kind,
                                    name: p[2].to_string(),
                                    columns: cols,
                                });
                            }
                            "end" => break,
                            other => {
                                return Err(Error::Catalog(format!("bad catalog line: {other}")))
                            }
                        }
                    }
                    if !self.tables.read().contains_key(&name) {
                        let schema = Schema::new(id, name, columns, indexes)?;
                        self.register_table(schema, meta);
                        let nid = self.next_table_id.load(Ordering::SeqCst);
                        if id.get() >= nid {
                            self.next_table_id.store(id.get() + 1, Ordering::SeqCst);
                        }
                    }
                }
                "alloc" => {
                    let pa: u64 = parts[1].parse().unwrap_or(1);
                    self.page_alloc.fetch_max(pa, Ordering::SeqCst);
                }
                "" => {}
                other => return Err(Error::Catalog(format!("bad catalog line: {other}"))),
            }
        }
        Ok(())
    }

    // ---- DML ----

    fn maybe_binlog(&self, ev: BinlogEvent) {
        if let Some(log) = &self.log {
            if log.mode() == PropagationMode::Binlog {
                log.binlog().log_event(&ev);
            }
        }
    }

    /// Insert a row.
    pub fn insert(&self, txn: &mut Txn, table: &str, values: Vec<Value>) -> Result<()> {
        let rt = self.table(table)?;
        rt.schema.validate_row(&values)?;
        let pk = rt.schema.pk_of(&values)?;
        let row = Row::new(values);
        let image = row.encode();
        let ctx = self.ctx_for(txn.tid, rt.schema.table_id);
        {
            let _g = rt.write_lock.lock();
            rt.tree.insert(pk, image, &ctx)?;
            rt.sec_add(pk, &row.values);
            rt.count_insert();
        }
        txn.undo.push(UndoOp::Insert {
            table: rt.schema.table_id,
            pk,
        });
        self.maybe_binlog(BinlogEvent {
            tid: txn.tid,
            table_id: rt.schema.table_id,
            kind: BinlogKind::Insert { row },
        });
        Ok(())
    }

    /// Replace the full row at `pk`. The primary key must not change.
    pub fn update(
        &self,
        txn: &mut Txn,
        table: &str,
        pk: i64,
        new_values: Vec<Value>,
    ) -> Result<()> {
        let rt = self.table(table)?;
        rt.schema.validate_row(&new_values)?;
        if rt.schema.pk_of(&new_values)? != pk {
            return Err(Error::Unsupported(
                "primary key updates are not supported; delete + insert instead".into(),
            ));
        }
        let new_row = Row::new(new_values);
        let ctx = self.ctx_for(txn.tid, rt.schema.table_id);
        let old_image;
        {
            let _g = rt.write_lock.lock();
            old_image = rt.tree.update(pk, new_row.encode(), &ctx)?;
            let old_row = Row::decode(&old_image)?;
            rt.sec_update(pk, &old_row.values, &new_row.values);
            txn.undo.push(UndoOp::Update {
                table: rt.schema.table_id,
                pk,
                old: old_row,
            });
        }
        self.maybe_binlog(BinlogEvent {
            tid: txn.tid,
            table_id: rt.schema.table_id,
            kind: BinlogKind::Update { pk, row: new_row },
        });
        Ok(())
    }

    /// Delete the row at `pk`.
    pub fn delete(&self, txn: &mut Txn, table: &str, pk: i64) -> Result<()> {
        let rt = self.table(table)?;
        let ctx = self.ctx_for(txn.tid, rt.schema.table_id);
        {
            let _g = rt.write_lock.lock();
            let old_image = rt.tree.delete(pk, &ctx)?;
            let old_row = Row::decode(&old_image)?;
            rt.sec_remove(pk, &old_row.values);
            rt.count_delete();
            txn.undo.push(UndoOp::Delete {
                table: rt.schema.table_id,
                pk,
                old: old_row,
            });
        }
        self.maybe_binlog(BinlogEvent {
            tid: txn.tid,
            table_id: rt.schema.table_id,
            kind: BinlogKind::Delete { pk },
        });
        Ok(())
    }

    /// Begin a transaction.
    pub fn begin(&self) -> Txn {
        self.txns.begin()
    }

    /// Commit a transaction; returns its commit sequence number.
    pub fn commit(&self, txn: Txn) -> Vid {
        self.txns.commit(txn)
    }

    /// Abort: physically roll back with SYSTEM_TID page changes (so RO
    /// replicas roll back too), then log the abort record.
    pub fn abort(&self, txn: Txn) -> Result<()> {
        for op in txn.undo.iter().rev() {
            match op {
                UndoOp::Insert { table, pk } => {
                    let rt = self.table_by_id(*table)?;
                    let ctx = self.ctx_for(SYSTEM_TID, *table);
                    let _g = rt.write_lock.lock();
                    let old = rt.tree.delete(*pk, &ctx)?;
                    let old_row = Row::decode(&old)?;
                    rt.sec_remove(*pk, &old_row.values);
                    rt.count_delete();
                }
                UndoOp::Update { table, pk, old } => {
                    let rt = self.table_by_id(*table)?;
                    let ctx = self.ctx_for(SYSTEM_TID, *table);
                    let _g = rt.write_lock.lock();
                    let cur = rt.tree.update(*pk, old.encode(), &ctx)?;
                    let cur_row = Row::decode(&cur)?;
                    rt.sec_update(*pk, &cur_row.values, &old.values);
                }
                UndoOp::Delete { table, pk, old } => {
                    let rt = self.table_by_id(*table)?;
                    let ctx = self.ctx_for(SYSTEM_TID, *table);
                    let _g = rt.write_lock.lock();
                    rt.tree.insert(*pk, old.encode(), &ctx)?;
                    rt.sec_add(*pk, &old.values);
                    rt.count_insert();
                }
            }
        }
        self.txns.log_abort(txn.tid);
        Ok(())
    }

    // ---- reads ----

    /// Point lookup by primary key.
    pub fn get_row(&self, table: &str, pk: i64) -> Result<Option<Row>> {
        let rt = self.table(table)?;
        match rt.tree.get(pk)? {
            Some(img) => Ok(Some(Row::decode(&img)?)),
            None => Ok(None),
        }
    }

    /// Scan rows with `lo <= pk <= hi`.
    pub fn scan(
        &self,
        table: &str,
        lo: i64,
        hi: i64,
        mut f: impl FnMut(i64, Row),
    ) -> Result<usize> {
        let rt = self.table(table)?;
        rt.tree.scan_range(lo, hi, |pk, img| {
            if let Ok(row) = Row::decode(img) {
                f(pk, row);
            }
        })
    }

    /// Total rows in a table.
    pub fn row_count(&self, table: &str) -> Result<usize> {
        self.table(table)?.tree.count()
    }

    /// Flush all dirty pages (RW checkpoint / pre-snapshot step).
    pub fn flush_all(&self) {
        self.bp.flush_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use imci_common::{ColumnDef, IndexDef, IndexKind};
    use imci_wal::PropagationMode;

    fn demo_columns() -> (Vec<ColumnDef>, Vec<IndexDef>) {
        (
            vec![
                ColumnDef::not_null("id", DataType::Int),
                ColumnDef::new("grp", DataType::Int),
                ColumnDef::new("note", DataType::Str),
            ],
            vec![
                IndexDef {
                    kind: IndexKind::Primary,
                    name: "PRIMARY".into(),
                    columns: vec![0],
                },
                IndexDef {
                    kind: IndexKind::Secondary,
                    name: "grp_idx".into(),
                    columns: vec![1],
                },
            ],
        )
    }

    fn rw_engine() -> (Arc<RowEngine>, PolarFs) {
        let fs = PolarFs::instant();
        let log = LogWriter::new(fs.clone(), PropagationMode::ReuseRedo);
        (RowEngine::new_rw(fs.clone(), log, 4096), fs)
    }

    #[test]
    fn create_insert_get() {
        let (e, _) = rw_engine();
        let (cols, idxs) = demo_columns();
        e.create_table("t", cols, idxs).unwrap();
        let mut txn = e.begin();
        e.insert(
            &mut txn,
            "t",
            vec![Value::Int(1), Value::Int(10), Value::Str("a".into())],
        )
        .unwrap();
        e.commit(txn);
        let row = e.get_row("t", 1).unwrap().unwrap();
        assert_eq!(row.values[2], Value::Str("a".into()));
        assert_eq!(e.row_count("t").unwrap(), 1);
    }

    #[test]
    fn update_delete_and_secondary_maintenance() {
        let (e, _) = rw_engine();
        let (cols, idxs) = demo_columns();
        e.create_table("t", cols, idxs).unwrap();
        let mut txn = e.begin();
        for i in 0..10 {
            e.insert(
                &mut txn,
                "t",
                vec![Value::Int(i), Value::Int(i % 3), Value::Str("x".into())],
            )
            .unwrap();
        }
        e.commit(txn);
        let rt = e.table("t").unwrap();
        assert_eq!(rt.secondaries[0].lookup_eq(&Value::Int(0)).len(), 4);

        let mut txn = e.begin();
        e.update(
            &mut txn,
            "t",
            0,
            vec![Value::Int(0), Value::Int(2), Value::Str("y".into())],
        )
        .unwrap();
        e.delete(&mut txn, "t", 3).unwrap();
        e.commit(txn);
        assert_eq!(rt.secondaries[0].lookup_eq(&Value::Int(0)).len(), 2);
        assert_eq!(rt.secondaries[0].lookup_eq(&Value::Int(2)).len(), 4);
        assert_eq!(e.row_count("t").unwrap(), 9);
    }

    #[test]
    fn abort_rolls_back_everything() {
        let (e, _) = rw_engine();
        let (cols, idxs) = demo_columns();
        e.create_table("t", cols, idxs).unwrap();
        let mut setup = e.begin();
        e.insert(
            &mut setup,
            "t",
            vec![Value::Int(1), Value::Int(7), Value::Str("keep".into())],
        )
        .unwrap();
        e.commit(setup);

        let mut txn = e.begin();
        e.insert(
            &mut txn,
            "t",
            vec![Value::Int(2), Value::Int(8), Value::Str("new".into())],
        )
        .unwrap();
        e.update(
            &mut txn,
            "t",
            1,
            vec![Value::Int(1), Value::Int(9), Value::Str("mut".into())],
        )
        .unwrap();
        e.delete(&mut txn, "t", 2).unwrap(); // delete the row we inserted
        e.abort(txn).unwrap();

        assert_eq!(e.row_count("t").unwrap(), 1);
        let row = e.get_row("t", 1).unwrap().unwrap();
        assert_eq!(row.values[1], Value::Int(7));
        assert_eq!(row.values[2], Value::Str("keep".into()));
        let rt = e.table("t").unwrap();
        assert_eq!(rt.secondaries[0].lookup_eq(&Value::Int(7)), vec![1]);
        assert!(rt.secondaries[0].lookup_eq(&Value::Int(9)).is_empty());
    }

    #[test]
    fn pk_update_rejected() {
        let (e, _) = rw_engine();
        let (cols, idxs) = demo_columns();
        e.create_table("t", cols, idxs).unwrap();
        let mut txn = e.begin();
        e.insert(&mut txn, "t", vec![Value::Int(1), Value::Null, Value::Null])
            .unwrap();
        let r = e.update(
            &mut txn,
            "t",
            1,
            vec![Value::Int(2), Value::Null, Value::Null],
        );
        assert!(r.is_err());
        e.commit(txn);
    }

    #[test]
    fn catalog_roundtrips_to_replica() {
        let (e, fs) = rw_engine();
        let (cols, idxs) = demo_columns();
        e.create_table("t", cols, idxs).unwrap();
        let mut txn = e.begin();
        for i in 0..100 {
            e.insert(
                &mut txn,
                "t",
                vec![Value::Int(i), Value::Int(i), Value::Str("v".into())],
            )
            .unwrap();
        }
        e.commit(txn);
        e.flush_all();

        let replica = RowEngine::new_replica(fs, 4096);
        replica.refresh_catalog().unwrap();
        let rt = replica.table("t").unwrap();
        assert_eq!(rt.schema.columns.len(), 3);
        assert_eq!(replica.row_count("t").unwrap(), 100);
        rt.rebuild_secondaries().unwrap();
        assert_eq!(rt.secondaries[0].lookup_eq(&Value::Int(5)), vec![5]);
    }

    #[test]
    fn duplicate_table_rejected() {
        let (e, _) = rw_engine();
        let (cols, idxs) = demo_columns();
        e.create_table("t", cols.clone(), idxs.clone()).unwrap();
        assert!(e.create_table("t", cols, idxs).is_err());
    }
}
