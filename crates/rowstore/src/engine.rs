//! The row storage engine: catalog + DML + recovery entry points.
//!
//! One [`RowEngine`] instance is the storage engine of one node. On the
//! RW node it carries a [`LogWriter`] and emits REDO for every change;
//! on RO nodes it runs unlogged and is mutated exclusively by Phase-1
//! replay ([`crate::apply`]), making it a physical replica of the RW
//! row store ("PolarDB-IMCI lets RO nodes maintain the buffer pool of
//! the row store like RW", paper §5.3).

use crate::alloc::PageAllocator;
use crate::btree::{BTree, RedoCtx};
use crate::bufferpool::BufferPool;
use crate::table::TableRt;
use crate::txn::{Txn, TxnManager, UndoOp};
use imci_common::{
    DataType, DdlOp, Error, FxHashMap, PageId, Result, Row, Schema, TableId, Value, Vid, SYSTEM_TID,
};
use imci_wal::{BinlogEvent, BinlogKind, LogWriter, PropagationMode, RedoPayload};
use parking_lot::{Mutex, RwLock};
use polarfs_sim::PolarFs;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Object-store key of the persisted catalog.
pub const CATALOG_KEY: &str = "catalog";

/// A node's row storage engine.
pub struct RowEngine {
    fs: PolarFs,
    bp: Arc<BufferPool>,
    page_alloc: Arc<PageAllocator>,
    tables: RwLock<FxHashMap<String, Arc<TableRt>>>,
    tables_by_id: RwLock<FxHashMap<TableId, Arc<TableRt>>>,
    /// Behind a lock so recovery/promotion can flip a replica into
    /// writer mode in place ([`RowEngine::promote_to_writer`]).
    log: RwLock<Option<Arc<LogWriter>>>,
    /// Transaction manager (meaningful on the RW node).
    pub txns: TxnManager,
    next_table_id: AtomicU64,
    /// Monotonic catalog version. On the RW node it is bumped by each
    /// DDL (which ships a [`RedoPayload::Ddl`] record at that version);
    /// replicas track the maximum applied version for checkpoint
    /// snapshots.
    catalog_version: AtomicU64,
    /// Replica replay bookkeeping: last applied DDL version **per
    /// table**. The idempotency gate must be per-table, not the global
    /// scalar: the pipeline applies creates in the reader but defers
    /// drops/alters to the collector drain, so a create for table B can
    /// legitimately apply *before* an earlier-versioned drop of table A
    /// — a global gate would silently mask the drop.
    ddl_versions: RwLock<FxHashMap<TableId, u64>>,
    /// Serializes DDL so that catalog-version order equals log order.
    ddl_lock: Mutex<()>,
}

impl RowEngine {
    /// Create the RW-node engine with REDO logging attached.
    pub fn new_rw(fs: PolarFs, log: Arc<LogWriter>, bp_capacity: usize) -> Arc<RowEngine> {
        Arc::new(RowEngine {
            bp: BufferPool::new(fs.clone(), bp_capacity),
            fs,
            page_alloc: Arc::new(PageAllocator::new(1)),
            tables: RwLock::new(FxHashMap::default()),
            tables_by_id: RwLock::new(FxHashMap::default()),
            txns: TxnManager::new(Some(log.clone())),
            log: RwLock::new(Some(log)),
            next_table_id: AtomicU64::new(1),
            catalog_version: AtomicU64::new(0),
            ddl_versions: RwLock::new(FxHashMap::default()),
            ddl_lock: Mutex::new(()),
        })
    }

    /// Create an RO-node replica engine (no logging; mutated by replay).
    pub fn new_replica(fs: PolarFs, bp_capacity: usize) -> Arc<RowEngine> {
        Arc::new(RowEngine {
            bp: BufferPool::new(fs.clone(), bp_capacity),
            fs,
            page_alloc: Arc::new(PageAllocator::new(1)),
            tables: RwLock::new(FxHashMap::default()),
            tables_by_id: RwLock::new(FxHashMap::default()),
            txns: TxnManager::new(None),
            log: RwLock::new(None),
            next_table_id: AtomicU64::new(1),
            catalog_version: AtomicU64::new(0),
            ddl_versions: RwLock::new(FxHashMap::default()),
            ddl_lock: Mutex::new(()),
        })
    }

    /// Shared storage handle.
    pub fn fs(&self) -> &PolarFs {
        &self.fs
    }

    /// This node's buffer pool.
    pub fn buffer_pool(&self) -> &Arc<BufferPool> {
        &self.bp
    }

    /// The attached log writer (RW / promoted nodes only).
    pub fn log(&self) -> Option<Arc<LogWriter>> {
        self.log.read().clone()
    }

    /// This node's page-id allocator (high-water mark + free list).
    pub fn page_allocator(&self) -> &Arc<PageAllocator> {
        &self.page_alloc
    }

    /// Flip this (replica) engine into writer mode: attach the log
    /// writer and fast-forward the transaction counters past everything
    /// the log already contains. This is the storage-engine half of
    /// RO→RW promotion — the caller (cluster failover) is responsible
    /// for bumping the storage epoch first and rolling back in-flight
    /// transactions afterwards.
    pub fn promote_to_writer(&self, log: Arc<LogWriter>, next_tid: u64, commit_seq: u64) {
        self.txns.promote(log.clone(), next_tid, commit_seq);
        *self.log.write() = Some(log);
    }

    fn ctx_for(&self, tid: imci_common::Tid, table_id: TableId) -> RedoCtx {
        RedoCtx {
            log: self.log(),
            tid,
            table_id,
        }
    }

    // ---- catalog ----

    /// Emit a DDL log record (plus binlog event in Binlog mode) at the
    /// next catalog version, as its own committed transaction. Returns
    /// the pending transaction whose commit record the caller writes
    /// once its local catalog mutation is done — the commit advances the
    /// written LSN, so strong-consistency reads fence on DDL exactly
    /// like they fence on DML. Caller must hold `ddl_lock`.
    fn append_ddl(&self, op: &DdlOp) -> Result<Option<Txn>> {
        let log = match self.log() {
            Some(log) => log,
            None => return Ok(None),
        };
        let version = self.catalog_version.fetch_add(1, Ordering::SeqCst) + 1;
        let txn = self.begin();
        log.append(
            txn.tid,
            op.table_id(),
            PageId::ZERO,
            0,
            RedoPayload::Ddl {
                version,
                op: op.clone(),
            },
        )?;
        if log.mode() == PropagationMode::Binlog {
            log.binlog().log_event(&BinlogEvent {
                tid: txn.tid,
                table_id: op.table_id(),
                kind: BinlogKind::Ddl {
                    version,
                    op: op.clone(),
                },
            })?;
        }
        Ok(Some(txn))
    }

    /// Create a table (DDL). Emits creation SMO records, then a
    /// versioned [`RedoPayload::Ddl`] record carrying the full schema —
    /// the record is appended *before* the table becomes visible to
    /// local DML, so in the log every DML of the table follows its DDL —
    /// and finally a commit record that advances the written LSN.
    pub fn create_table(
        &self,
        name: &str,
        columns: Vec<imci_common::ColumnDef>,
        indexes: Vec<imci_common::IndexDef>,
    ) -> Result<Arc<TableRt>> {
        let _ddl = self.ddl_lock.lock();
        let lname = name.to_ascii_lowercase();
        if self.tables.read().contains_key(&lname) {
            return Err(Error::Catalog(format!("table {lname} already exists")));
        }
        let table_id = TableId(self.next_table_id.fetch_add(1, Ordering::SeqCst));
        let schema = Schema::new(table_id, lname.clone(), columns, indexes)?;
        let ctx = self.ctx_for(SYSTEM_TID, table_id);
        let tree = BTree::create(self.bp.clone(), self.page_alloc.clone(), &ctx)?;
        let pending = self.append_ddl(&DdlOp::CreateTable {
            schema: schema.clone(),
            meta_page: tree.meta_page(),
        })?;
        let rt = Arc::new(TableRt::new(schema, tree));
        self.tables.write().insert(lname, rt.clone());
        self.tables_by_id.write().insert(table_id, rt.clone());
        self.persist_catalog();
        if let Some(txn) = pending {
            self.txns.commit(txn)?;
        }
        Ok(rt)
    }

    /// Drop a table (DDL). The table is removed from the local catalog
    /// *before* the DDL record is appended, so in the log no DML of the
    /// table can follow its drop. Replicas destroy the row-table runtime
    /// and column index in LSN order with the data changes. The table's
    /// B+tree pages are recycled through the free list — every reuse
    /// path starts with a full-page SMO record, so replicas that replay
    /// a reused id simply overwrite the stale frame (see [`crate::alloc`]).
    pub fn drop_table(&self, name: &str) -> Result<()> {
        let _ddl = self.ddl_lock.lock();
        let rt = self.table(name)?;
        // Claim the table under its writer lock: a DML that already
        // resolved this runtime either finished its log appends before
        // this point, or will take the lock afterwards, observe the
        // flag, and fail — so no DML entry can follow the drop's DDL
        // record in the log.
        {
            let _g = rt.write_lock.lock();
            rt.dropped.store(true, std::sync::atomic::Ordering::Release);
        }
        // Collect the tree's pages while the runtime still exists; the
        // ids go back to the allocator only after the drop record is in
        // the log, so any reuse record strictly follows the drop.
        let pages = rt.tree.all_pages().unwrap_or_default();
        self.tables.write().remove(&rt.schema.name);
        self.tables_by_id.write().remove(&rt.schema.table_id);
        let pending = self.append_ddl(&DdlOp::DropTable {
            table_id: rt.schema.table_id,
            name: rt.schema.name.clone(),
        })?;
        self.persist_catalog();
        if let Some(txn) = pending {
            self.txns.commit(txn)?;
        }
        // Evict the stale frames (a future install of a reused id must
        // not be shadowed) and recycle the ids.
        for id in &pages {
            self.bp.discard(*id);
        }
        self.page_alloc.release(pages);
        Ok(())
    }

    /// Register an already-existing table (used by replicas applying
    /// DDL records and by checkpoint-catalog loading).
    pub fn register_table(&self, schema: Schema, meta_page: imci_common::PageId) {
        let rt = Arc::new(TableRt::new(
            schema.clone(),
            BTree::open(self.bp.clone(), self.page_alloc.clone(), meta_page),
        ));
        self.tables.write().insert(schema.name.clone(), rt.clone());
        self.tables_by_id.write().insert(schema.table_id, rt);
    }

    /// Replace a table's schema in place (online DDL such as
    /// `ALTER TABLE ... ADD COLUMN INDEX`, §3.3). Runtime state (tree,
    /// secondaries, counters) is preserved. The change ships through the
    /// REDO stream as a versioned DDL record, so replicas observe it in
    /// LSN order — previously this mutated only the shared catalog
    /// object, which replicas would never (re)read.
    pub fn replace_table_schema(&self, name: &str, schema: Schema) -> Result<()> {
        let _ddl = self.ddl_lock.lock();
        let old = self.table(name)?;
        let pending = self.append_ddl(&DdlOp::ReplaceSchema {
            schema: schema.clone(),
        })?;
        let new_rt = Arc::new(TableRt::new(
            schema.clone(),
            BTree::open(
                self.bp.clone(),
                self.page_alloc.clone(),
                old.tree.meta_page(),
            ),
        ));
        new_rt
            .row_counter
            .store(old.approx_rows(), Ordering::SeqCst);
        new_rt.rebuild_secondaries()?;
        self.tables
            .write()
            .insert(schema.name.clone(), new_rt.clone());
        self.tables_by_id.write().insert(schema.table_id, new_rt);
        self.persist_catalog();
        if let Some(txn) = pending {
            self.txns.commit(txn)?;
        }
        Ok(())
    }

    /// Current catalog version (0 = empty catalog).
    pub fn catalog_version(&self) -> u64 {
        self.catalog_version.load(Ordering::SeqCst)
    }

    /// Apply a DDL log record to this node's catalog (replica replay).
    /// Returns `false` — without touching anything — when `version` is
    /// not newer than the last version applied **for that table**,
    /// making replay idempotent (checkpoint catalogs embed their
    /// version). The gate is per-table because the pipeline applies
    /// creates in the reader but drops/alters in the collector drain:
    /// a later-versioned create of table B must not mask an
    /// earlier-versioned, still-undrained drop of table A.
    pub fn apply_ddl(&self, version: u64, op: &DdlOp) -> Result<bool> {
        let _ddl = self.ddl_lock.lock();
        let gate_id = op.table_id();
        if version <= self.ddl_versions.read().get(&gate_id).copied().unwrap_or(0) {
            return Ok(false);
        }
        match op {
            DdlOp::CreateTable { schema, meta_page } => {
                self.register_table(schema.clone(), *meta_page);
                let id = schema.table_id.get();
                self.next_table_id.fetch_max(id + 1, Ordering::SeqCst);
            }
            DdlOp::DropTable { table_id, name } => {
                // Remove the name entry only while it still maps to the
                // dropped id: a reader-applied re-create of the same
                // name (higher version, new id) may already own it.
                let mut tables = self.tables.write();
                if tables
                    .get(name)
                    .is_some_and(|rt| rt.schema.table_id == *table_id)
                {
                    tables.remove(name);
                }
                drop(tables);
                self.tables_by_id.write().remove(table_id);
            }
            DdlOp::ReplaceSchema { schema } => {
                let old = self.table_by_id(schema.table_id)?;
                let new_rt = Arc::new(TableRt::new(
                    schema.clone(),
                    BTree::open(
                        self.bp.clone(),
                        self.page_alloc.clone(),
                        old.tree.meta_page(),
                    ),
                ));
                new_rt
                    .row_counter
                    .store(old.approx_rows(), Ordering::SeqCst);
                new_rt.rebuild_secondaries()?;
                self.tables
                    .write()
                    .insert(schema.name.clone(), new_rt.clone());
                self.tables_by_id.write().insert(schema.table_id, new_rt);
            }
        }
        self.ddl_versions.write().insert(gate_id, version);
        self.catalog_version.fetch_max(version, Ordering::SeqCst);
        Ok(true)
    }

    /// Serialize the catalog (version + schemas + meta pages) for a
    /// checkpoint. A node booting from the checkpoint imports this and
    /// then applies only the DDL records *after* the checkpoint's redo
    /// cursor — the catalog stays versioned with the log end to end.
    pub fn export_catalog(&self) -> Vec<u8> {
        let tables = self.tables.read();
        let mut out = Vec::with_capacity(64);
        out.extend_from_slice(&self.catalog_version.load(Ordering::SeqCst).to_le_bytes());
        out.extend_from_slice(&self.page_alloc.high_water().to_le_bytes());
        out.extend_from_slice(&(tables.len() as u32).to_le_bytes());
        for rt in tables.values() {
            out.extend_from_slice(&rt.tree.meta_page().get().to_le_bytes());
            let enc = rt.schema.encode();
            out.extend_from_slice(&(enc.len() as u32).to_le_bytes());
            out.extend_from_slice(&enc);
        }
        out
    }

    /// Load a catalog snapshot produced by [`RowEngine::export_catalog`]
    /// into an empty node. Every imported table's per-table DDL gate is
    /// set to the snapshot version: records at or below it are covered
    /// by the snapshot, records after the checkpoint's redo cursor
    /// carry higher versions and apply normally.
    pub fn import_catalog(&self, bytes: &[u8]) -> Result<()> {
        let _ddl = self.ddl_lock.lock();
        let mut r = imci_common::ByteReader::new(bytes);
        let version = r.u64()?;
        let page_alloc = r.u64()?;
        let n = r.u32()? as usize;
        for _ in 0..n {
            let meta = PageId(r.u64()?);
            let len = r.u32()? as usize;
            let (schema, _) = Schema::decode(r.take(len)?)?;
            let id = schema.table_id;
            self.register_table(schema, meta);
            self.next_table_id.fetch_max(id.get() + 1, Ordering::SeqCst);
            self.ddl_versions.write().insert(id, version);
        }
        self.catalog_version.fetch_max(version, Ordering::SeqCst);
        if page_alloc > 0 {
            self.page_alloc.ensure_above(PageId(page_alloc - 1));
        }
        Ok(())
    }

    /// Look up a table by name.
    pub fn table(&self, name: &str) -> Result<Arc<TableRt>> {
        self.tables
            .read()
            .get(&name.to_ascii_lowercase())
            .cloned()
            .ok_or_else(|| Error::Catalog(format!("unknown table {name}")))
    }

    /// Look up a table by id.
    pub fn table_by_id(&self, id: TableId) -> Result<Arc<TableRt>> {
        self.tables_by_id
            .read()
            .get(&id)
            .cloned()
            .ok_or_else(|| Error::Catalog(format!("unknown table id {id}")))
    }

    /// All table names.
    pub fn table_names(&self) -> Vec<String> {
        let mut v: Vec<String> = self.tables.read().keys().cloned().collect();
        v.sort();
        v
    }

    fn persist_catalog(&self) {
        let mut out = String::new();
        for rt in self.tables.read().values() {
            let s = &rt.schema;
            out.push_str(&format!(
                "table\t{}\t{}\t{}\n",
                s.table_id.get(),
                s.name,
                rt.tree.meta_page().get()
            ));
            for c in &s.columns {
                out.push_str(&format!("col\t{}\t{}\t{}\n", c.name, c.ty, c.nullable));
            }
            for i in &s.indexes {
                let kind = match i.kind {
                    imci_common::IndexKind::Primary => "primary",
                    imci_common::IndexKind::Secondary => "secondary",
                    imci_common::IndexKind::Column => "column",
                };
                let cols: Vec<String> = i.columns.iter().map(|c| c.to_string()).collect();
                out.push_str(&format!("idx\t{}\t{}\t{}\n", kind, i.name, cols.join(",")));
            }
            out.push_str("end\n");
        }
        out.push_str(&format!(
            "alloc\t{}\t{}\n",
            self.page_alloc.high_water(),
            self.next_table_id.load(Ordering::SeqCst)
        ));
        out.push_str(&format!(
            "version\t{}\n",
            self.catalog_version.load(Ordering::SeqCst)
        ));
        self.fs.put_object(CATALOG_KEY, bytes::Bytes::from(out));
    }

    /// (Re)load the catalog from the shared-storage catalog *object*.
    /// Newly-seen tables are registered; existing ones are kept (their
    /// runtime state stays).
    ///
    /// NOTE: replication no longer uses this — RO catalogs are versioned
    /// with the REDO log via [`RedoPayload::Ddl`] records (created
    /// nodes replay DDL from the log or import a checkpoint catalog
    /// snapshot). This path remains for offline inspection and for
    /// opening an engine directly over an existing volume.
    pub fn refresh_catalog(&self) -> Result<()> {
        let bytes = match self.fs.get_object(CATALOG_KEY) {
            Ok(b) => b,
            Err(_) => return Ok(()), // no tables yet
        };
        let text = std::str::from_utf8(&bytes)
            .map_err(|e| Error::Catalog(format!("catalog not utf8: {e}")))?;
        let mut lines = text.lines().peekable();
        while let Some(line) = lines.next() {
            let parts: Vec<&str> = line.split('\t').collect();
            match parts[0] {
                "table" => {
                    let id = TableId(
                        parts[1]
                            .parse()
                            .map_err(|_| Error::Catalog("bad table id in catalog".into()))?,
                    );
                    let name = parts[2].to_string();
                    let meta = imci_common::PageId(
                        parts[3]
                            .parse()
                            .map_err(|_| Error::Catalog("bad meta page in catalog".into()))?,
                    );
                    let mut columns = Vec::new();
                    let mut indexes = Vec::new();
                    for l in lines.by_ref() {
                        let p: Vec<&str> = l.split('\t').collect();
                        match p[0] {
                            "col" => columns.push(imci_common::ColumnDef {
                                name: p[1].to_string(),
                                ty: DataType::parse_sql(p[2])?,
                                nullable: p[3] == "true",
                            }),
                            "idx" => {
                                let kind = match p[1] {
                                    "primary" => imci_common::IndexKind::Primary,
                                    "secondary" => imci_common::IndexKind::Secondary,
                                    _ => imci_common::IndexKind::Column,
                                };
                                let cols: Vec<usize> = if p[3].is_empty() {
                                    Vec::new()
                                } else {
                                    p[3].split(',').map(|c| c.parse().unwrap_or(0)).collect()
                                };
                                indexes.push(imci_common::IndexDef {
                                    kind,
                                    name: p[2].to_string(),
                                    columns: cols,
                                });
                            }
                            "end" => break,
                            other => {
                                return Err(Error::Catalog(format!("bad catalog line: {other}")))
                            }
                        }
                    }
                    if !self.tables.read().contains_key(&name) {
                        let schema = Schema::new(id, name, columns, indexes)?;
                        self.register_table(schema, meta);
                        let nid = self.next_table_id.load(Ordering::SeqCst);
                        if id.get() >= nid {
                            self.next_table_id.store(id.get() + 1, Ordering::SeqCst);
                        }
                    }
                }
                "alloc" => {
                    let pa: u64 = parts[1].parse().unwrap_or(1);
                    if pa > 0 {
                        self.page_alloc.ensure_above(PageId(pa - 1));
                    }
                }
                "version" => {
                    let v: u64 = parts[1].parse().unwrap_or(0);
                    self.catalog_version.fetch_max(v, Ordering::SeqCst);
                }
                "" => {}
                other => return Err(Error::Catalog(format!("bad catalog line: {other}"))),
            }
        }
        Ok(())
    }

    // ---- DML ----

    /// Ship a logical binlog event in Binlog mode. A fenced (deposed)
    /// writer propagates [`Error::Failover`]: the local mutation is
    /// moot because the commit fsync would be fenced anyway.
    fn maybe_binlog(&self, ev: BinlogEvent) -> Result<()> {
        if let Some(log) = self.log.read().as_ref() {
            if log.mode() == PropagationMode::Binlog {
                log.binlog().log_event(&ev)?;
            }
        }
        Ok(())
    }

    /// Insert a row.
    pub fn insert(&self, txn: &mut Txn, table: &str, values: Vec<Value>) -> Result<()> {
        let rt = self.table(table)?;
        rt.schema.validate_row(&values)?;
        let pk = rt.schema.pk_of(&values)?;
        let row = Row::new(values);
        let image = row.encode();
        let ctx = self.ctx_for(txn.tid, rt.schema.table_id);
        {
            let _g = rt.write_lock.lock();
            rt.ensure_live()?;
            rt.tree.insert(pk, image, &ctx)?;
            rt.sec_add(pk, &row.values);
            rt.count_insert();
        }
        txn.undo.push(UndoOp::Insert {
            table: rt.schema.table_id,
            pk,
        });
        self.maybe_binlog(BinlogEvent {
            tid: txn.tid,
            table_id: rt.schema.table_id,
            kind: BinlogKind::Insert { row },
        })?;
        Ok(())
    }

    /// Replace the full row at `pk`. The primary key must not change.
    pub fn update(
        &self,
        txn: &mut Txn,
        table: &str,
        pk: i64,
        new_values: Vec<Value>,
    ) -> Result<()> {
        let rt = self.table(table)?;
        rt.schema.validate_row(&new_values)?;
        if rt.schema.pk_of(&new_values)? != pk {
            return Err(Error::Unsupported(
                "primary key updates are not supported; delete + insert instead".into(),
            ));
        }
        let new_row = Row::new(new_values);
        let ctx = self.ctx_for(txn.tid, rt.schema.table_id);
        let old_image;
        {
            let _g = rt.write_lock.lock();
            rt.ensure_live()?;
            old_image = rt.tree.update(pk, new_row.encode(), &ctx)?;
            let old_row = Row::decode(&old_image)?;
            rt.sec_update(pk, &old_row.values, &new_row.values);
            txn.undo.push(UndoOp::Update {
                table: rt.schema.table_id,
                pk,
                old: old_row,
            });
        }
        self.maybe_binlog(BinlogEvent {
            tid: txn.tid,
            table_id: rt.schema.table_id,
            kind: BinlogKind::Update { pk, row: new_row },
        })?;
        Ok(())
    }

    /// Delete the row at `pk`.
    pub fn delete(&self, txn: &mut Txn, table: &str, pk: i64) -> Result<()> {
        let rt = self.table(table)?;
        let ctx = self.ctx_for(txn.tid, rt.schema.table_id);
        {
            let _g = rt.write_lock.lock();
            rt.ensure_live()?;
            let old_image = rt.tree.delete(pk, &ctx)?;
            let old_row = Row::decode(&old_image)?;
            rt.sec_remove(pk, &old_row.values);
            rt.count_delete();
            txn.undo.push(UndoOp::Delete {
                table: rt.schema.table_id,
                pk,
                old: old_row,
            });
        }
        self.maybe_binlog(BinlogEvent {
            tid: txn.tid,
            table_id: rt.schema.table_id,
            kind: BinlogKind::Delete { pk },
        })?;
        Ok(())
    }

    /// Begin a transaction.
    pub fn begin(&self) -> Txn {
        self.txns.begin()
    }

    /// Commit a transaction; returns its commit sequence number. Fails
    /// with a retryable [`Error::Failover`] when this node has been
    /// deposed (epoch-fenced) — the transaction is then not durable
    /// anywhere and must be retried against the new RW.
    pub fn commit(&self, txn: Txn) -> Result<Vid> {
        self.txns.commit(txn)
    }

    /// Apply one inverse operation with SYSTEM_TID page changes (so RO
    /// replicas roll back too). A table that no longer exists — or was
    /// claimed by `DROP TABLE` — is skipped: the drop destroyed the
    /// whole runtime, so there is nothing left to restore.
    fn apply_undo(&self, op: &UndoOp) -> Result<()> {
        let table = match op {
            UndoOp::Insert { table, .. }
            | UndoOp::Update { table, .. }
            | UndoOp::Delete { table, .. } => *table,
        };
        let rt = match self.table_by_id(table) {
            Ok(rt) => rt,
            Err(_) => return Ok(()),
        };
        let ctx = self.ctx_for(SYSTEM_TID, table);
        let _g = rt.write_lock.lock();
        if rt.ensure_live().is_err() {
            return Ok(());
        }
        match op {
            UndoOp::Insert { pk, .. } => {
                let old = rt.tree.delete(*pk, &ctx)?;
                let old_row = Row::decode(&old)?;
                rt.sec_remove(*pk, &old_row.values);
                rt.count_delete();
            }
            UndoOp::Update { pk, old, .. } => {
                let cur = rt.tree.update(*pk, old.encode(), &ctx)?;
                let cur_row = Row::decode(&cur)?;
                rt.sec_update(*pk, &cur_row.values, &old.values);
            }
            UndoOp::Delete { pk, old, .. } => {
                rt.tree.insert(*pk, old.encode(), &ctx)?;
                rt.sec_add(*pk, &old.values);
                rt.count_insert();
            }
        }
        Ok(())
    }

    /// Abort: physically roll back with SYSTEM_TID page changes (so RO
    /// replicas roll back too), then log the abort record.
    pub fn abort(&self, txn: Txn) -> Result<()> {
        for op in txn.undo.iter().rev() {
            self.apply_undo(op)?;
        }
        self.txns.log_abort(txn.tid);
        Ok(())
    }

    /// Roll back transactions that were still in flight when the writer
    /// role moved (RW crash recovery, RO→RW promotion). `ops` is every
    /// undecided DML in original log order, possibly from several
    /// interleaved transactions; they are undone in exact reverse, each
    /// as a logged SYSTEM_TID compensation, and then one abort record
    /// is written per transaction — byte-for-byte what a live abort
    /// produces, so replicas tailing the log converge with no special
    /// handling. Returns the number of transactions rolled back.
    pub fn rollback_inflight(&self, ops: &[(imci_common::Tid, UndoOp)]) -> Result<usize> {
        for (_, op) in ops.iter().rev() {
            self.apply_undo(op)?;
        }
        let mut tids: Vec<imci_common::Tid> = Vec::new();
        for (tid, _) in ops {
            if !tids.contains(tid) {
                tids.push(*tid);
            }
        }
        for tid in &tids {
            self.txns.log_abort(*tid);
        }
        Ok(tids.len())
    }

    // ---- reads ----

    /// Point lookup by primary key.
    pub fn get_row(&self, table: &str, pk: i64) -> Result<Option<Row>> {
        let rt = self.table(table)?;
        match rt.tree.get(pk)? {
            Some(img) => Ok(Some(Row::decode(&img)?)),
            None => Ok(None),
        }
    }

    /// Scan rows with `lo <= pk <= hi`.
    pub fn scan(
        &self,
        table: &str,
        lo: i64,
        hi: i64,
        mut f: impl FnMut(i64, Row),
    ) -> Result<usize> {
        let rt = self.table(table)?;
        rt.tree.scan_range(lo, hi, |pk, img| {
            if let Ok(row) = Row::decode(img) {
                f(pk, row);
            }
        })
    }

    /// Total rows in a table.
    pub fn row_count(&self, table: &str) -> Result<usize> {
        self.table(table)?.tree.count()
    }

    /// Flush all dirty pages (RW checkpoint / pre-snapshot step).
    pub fn flush_all(&self) {
        self.bp.flush_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use imci_common::{ColumnDef, IndexDef, IndexKind};
    use imci_wal::PropagationMode;

    fn demo_columns() -> (Vec<ColumnDef>, Vec<IndexDef>) {
        (
            vec![
                ColumnDef::not_null("id", DataType::Int),
                ColumnDef::new("grp", DataType::Int),
                ColumnDef::new("note", DataType::Str),
            ],
            vec![
                IndexDef {
                    kind: IndexKind::Primary,
                    name: "PRIMARY".into(),
                    columns: vec![0],
                },
                IndexDef {
                    kind: IndexKind::Secondary,
                    name: "grp_idx".into(),
                    columns: vec![1],
                },
            ],
        )
    }

    fn rw_engine() -> (Arc<RowEngine>, PolarFs) {
        let fs = PolarFs::instant();
        let log = LogWriter::new(fs.clone(), PropagationMode::ReuseRedo);
        (RowEngine::new_rw(fs.clone(), log, 4096), fs)
    }

    #[test]
    fn create_insert_get() {
        let (e, _) = rw_engine();
        let (cols, idxs) = demo_columns();
        e.create_table("t", cols, idxs).unwrap();
        let mut txn = e.begin();
        e.insert(
            &mut txn,
            "t",
            vec![Value::Int(1), Value::Int(10), Value::Str("a".into())],
        )
        .unwrap();
        e.commit(txn).unwrap();
        let row = e.get_row("t", 1).unwrap().unwrap();
        assert_eq!(row.values[2], Value::Str("a".into()));
        assert_eq!(e.row_count("t").unwrap(), 1);
    }

    #[test]
    fn update_delete_and_secondary_maintenance() {
        let (e, _) = rw_engine();
        let (cols, idxs) = demo_columns();
        e.create_table("t", cols, idxs).unwrap();
        let mut txn = e.begin();
        for i in 0..10 {
            e.insert(
                &mut txn,
                "t",
                vec![Value::Int(i), Value::Int(i % 3), Value::Str("x".into())],
            )
            .unwrap();
        }
        e.commit(txn).unwrap();
        let rt = e.table("t").unwrap();
        assert_eq!(rt.secondaries[0].lookup_eq(&Value::Int(0)).len(), 4);

        let mut txn = e.begin();
        e.update(
            &mut txn,
            "t",
            0,
            vec![Value::Int(0), Value::Int(2), Value::Str("y".into())],
        )
        .unwrap();
        e.delete(&mut txn, "t", 3).unwrap();
        e.commit(txn).unwrap();
        assert_eq!(rt.secondaries[0].lookup_eq(&Value::Int(0)).len(), 2);
        assert_eq!(rt.secondaries[0].lookup_eq(&Value::Int(2)).len(), 4);
        assert_eq!(e.row_count("t").unwrap(), 9);
    }

    #[test]
    fn abort_rolls_back_everything() {
        let (e, _) = rw_engine();
        let (cols, idxs) = demo_columns();
        e.create_table("t", cols, idxs).unwrap();
        let mut setup = e.begin();
        e.insert(
            &mut setup,
            "t",
            vec![Value::Int(1), Value::Int(7), Value::Str("keep".into())],
        )
        .unwrap();
        e.commit(setup).unwrap();

        let mut txn = e.begin();
        e.insert(
            &mut txn,
            "t",
            vec![Value::Int(2), Value::Int(8), Value::Str("new".into())],
        )
        .unwrap();
        e.update(
            &mut txn,
            "t",
            1,
            vec![Value::Int(1), Value::Int(9), Value::Str("mut".into())],
        )
        .unwrap();
        e.delete(&mut txn, "t", 2).unwrap(); // delete the row we inserted
        e.abort(txn).unwrap();

        assert_eq!(e.row_count("t").unwrap(), 1);
        let row = e.get_row("t", 1).unwrap().unwrap();
        assert_eq!(row.values[1], Value::Int(7));
        assert_eq!(row.values[2], Value::Str("keep".into()));
        let rt = e.table("t").unwrap();
        assert_eq!(rt.secondaries[0].lookup_eq(&Value::Int(7)), vec![1]);
        assert!(rt.secondaries[0].lookup_eq(&Value::Int(9)).is_empty());
    }

    #[test]
    fn pk_update_rejected() {
        let (e, _) = rw_engine();
        let (cols, idxs) = demo_columns();
        e.create_table("t", cols, idxs).unwrap();
        let mut txn = e.begin();
        e.insert(&mut txn, "t", vec![Value::Int(1), Value::Null, Value::Null])
            .unwrap();
        let r = e.update(
            &mut txn,
            "t",
            1,
            vec![Value::Int(2), Value::Null, Value::Null],
        );
        assert!(r.is_err());
        e.commit(txn).unwrap();
    }

    #[test]
    fn catalog_roundtrips_to_replica() {
        let (e, fs) = rw_engine();
        let (cols, idxs) = demo_columns();
        e.create_table("t", cols, idxs).unwrap();
        let mut txn = e.begin();
        for i in 0..100 {
            e.insert(
                &mut txn,
                "t",
                vec![Value::Int(i), Value::Int(i), Value::Str("v".into())],
            )
            .unwrap();
        }
        e.commit(txn).unwrap();
        e.flush_all();

        let replica = RowEngine::new_replica(fs, 4096);
        replica.refresh_catalog().unwrap();
        let rt = replica.table("t").unwrap();
        assert_eq!(rt.schema.columns.len(), 3);
        assert_eq!(replica.row_count("t").unwrap(), 100);
        rt.rebuild_secondaries().unwrap();
        assert_eq!(rt.secondaries[0].lookup_eq(&Value::Int(5)), vec![5]);
    }

    #[test]
    fn ddl_version_gate_is_per_table() {
        // The pipeline applies creates in the reader but drops in the
        // collector drain, so a later-versioned create can reach
        // apply_ddl *before* an earlier-versioned drop of a different
        // table. The gate must not mask the drop.
        let fs = PolarFs::instant();
        let ro = RowEngine::new_replica(fs, 4096);
        let (cols, idxs) = demo_columns();
        let s1 = Schema::new(TableId(1), "t1", cols.clone(), idxs.clone()).unwrap();
        let s2 = Schema::new(TableId(2), "t2", cols, idxs).unwrap();
        assert!(ro
            .apply_ddl(
                1,
                &DdlOp::CreateTable {
                    schema: s1,
                    meta_page: PageId(1)
                }
            )
            .unwrap());
        // Reader races ahead: create of t2 at version 3 applies first.
        assert!(ro
            .apply_ddl(
                3,
                &DdlOp::CreateTable {
                    schema: s2,
                    meta_page: PageId(2)
                }
            )
            .unwrap());
        // The deferred drop of t1 at version 2 must still apply.
        assert!(ro
            .apply_ddl(
                2,
                &DdlOp::DropTable {
                    table_id: TableId(1),
                    name: "t1".into()
                }
            )
            .unwrap());
        assert!(ro.table("t1").is_err(), "drop must not be version-masked");
        assert!(ro.table("t2").is_ok());
        // Same-name re-create racing a deferred drop: the drop of the
        // *old* id must not evict the new table's name mapping.
        let (cols, idxs) = demo_columns();
        let s3 = Schema::new(TableId(3), "t2", cols, idxs).unwrap();
        assert!(ro
            .apply_ddl(
                5,
                &DdlOp::CreateTable {
                    schema: s3,
                    meta_page: PageId(3)
                }
            )
            .unwrap());
        assert!(ro
            .apply_ddl(
                4,
                &DdlOp::DropTable {
                    table_id: TableId(2),
                    name: "t2".into()
                }
            )
            .unwrap());
        assert_eq!(
            ro.table("t2").unwrap().schema.table_id,
            TableId(3),
            "deferred drop of the old id must not evict the re-created name"
        );
        assert!(ro.table_by_id(TableId(2)).is_err());
        // Idempotency still holds per table: replaying any of them is
        // a no-op.
        assert!(!ro
            .apply_ddl(
                2,
                &DdlOp::DropTable {
                    table_id: TableId(1),
                    name: "t1".into()
                }
            )
            .unwrap());
        assert_eq!(ro.catalog_version(), 5, "max applied version overall");
    }

    #[test]
    fn concurrent_drop_and_dml_keep_log_replayable() {
        // A DML that resolved the table runtime just before DROP TABLE
        // must not append entries after the drop's DDL record — the
        // replica treats DML-after-drop as a hard replay error. Hammer
        // inserts from another thread while dropping, then replay the
        // whole log and require zero errors.
        let (e, fs) = rw_engine();
        let (cols, idxs) = demo_columns();
        e.create_table("t", cols, idxs).unwrap();
        let writer = {
            let e = e.clone();
            std::thread::spawn(move || {
                let mut i = 0i64;
                loop {
                    let mut txn = e.begin();
                    let r = e.insert(
                        &mut txn,
                        "t",
                        vec![Value::Int(i), Value::Int(0), Value::Null],
                    );
                    match r {
                        Ok(()) => e.commit(txn).unwrap(),
                        Err(_) => {
                            // Table dropped mid-flight: abort may also
                            // fail (runtime gone) — either way no log
                            // entries for the dead table were appended.
                            let _ = e.abort(txn);
                            break;
                        }
                    };
                    i += 1;
                }
                i
            })
        };
        std::thread::sleep(std::time::Duration::from_millis(5));
        e.drop_table("t").unwrap();
        let inserted = writer.join().unwrap();
        assert!(inserted > 0, "writer must have made progress");

        let ro = RowEngine::new_replica(fs.clone(), 1 << 20);
        let mut reader = imci_wal::LogReader::new(fs, 0);
        for entry in reader.read_available() {
            crate::apply::apply_entry(&ro, &entry)
                .unwrap_or_else(|err| panic!("log must stay replayable: {err}"));
        }
        assert!(ro.table("t").is_err(), "replica observed the drop");
    }

    #[test]
    fn drop_table_recycles_pages() {
        let (e, _) = rw_engine();
        let mut high_water = 0;
        for round in 0..8 {
            let (cols, idxs) = demo_columns();
            e.create_table("churn", cols, idxs).unwrap();
            let mut txn = e.begin();
            for i in 0..500 {
                e.insert(
                    &mut txn,
                    "churn",
                    vec![Value::Int(i), Value::Int(i % 3), Value::Str("x".repeat(40))],
                )
                .unwrap();
            }
            e.commit(txn).unwrap();
            e.drop_table("churn").unwrap();
            let hw = e.page_allocator().high_water();
            if round == 0 {
                high_water = hw;
            } else {
                assert_eq!(
                    hw, high_water,
                    "round {round}: dropped tables' pages must be recycled, \
                     not leaked (ROADMAP DDL-churn follow-up)"
                );
            }
            assert!(e.page_allocator().free_count() > 0, "free list populated");
        }
    }

    #[test]
    fn duplicate_table_rejected() {
        let (e, _) = rw_engine();
        let (cols, idxs) = demo_columns();
        e.create_table("t", cols.clone(), idxs.clone()).unwrap();
        assert!(e.create_table("t", cols, idxs).is_err());
    }
}
