//! Row representation and a compact binary row codec.
//!
//! The REDO log (paper Fig. 7) carries *differential* payloads over the
//! byte image of a row; the buffer-pool pages of the row store hold the
//! same byte images in their slots. This module defines that canonical
//! encoding so that the RW node, the log, and the RO replay agree.
//!
//! Encoding, per value:
//! * tag byte: 0 = NULL, 1 = Int, 2 = Double, 3 = Str, 4 = Date
//! * Int/Date: 8-byte little-endian i64
//! * Double: 8-byte little-endian IEEE bits
//! * Str: u32 LE length + UTF-8 bytes

use crate::error::{Error, Result};
use crate::value::Value;
use serde::{Deserialize, Serialize};

/// An owned row: just the ordered values.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Row {
    /// Values in schema column order.
    pub values: Vec<Value>,
}

impl Row {
    /// Wrap values in a row.
    pub fn new(values: Vec<Value>) -> Row {
        Row { values }
    }

    /// Number of columns.
    pub fn width(&self) -> usize {
        self.values.len()
    }

    /// Encode to the canonical byte image.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.values.len() * 9 + 4);
        out.extend_from_slice(&(self.values.len() as u32).to_le_bytes());
        for v in &self.values {
            encode_value(v, &mut out);
        }
        out
    }

    /// Decode from the canonical byte image.
    pub fn decode(bytes: &[u8]) -> Result<Row> {
        let mut cur = Cursor { buf: bytes, pos: 0 };
        let n = cur.read_u32()? as usize;
        if n > 4096 {
            return Err(Error::Storage(format!("row width {n} implausible")));
        }
        let mut values = Vec::with_capacity(n);
        for _ in 0..n {
            values.push(decode_value(&mut cur)?);
        }
        Ok(Row { values })
    }
}

impl From<Vec<Value>> for Row {
    fn from(values: Vec<Value>) -> Self {
        Row { values }
    }
}

/// Append the canonical encoding of one value.
pub fn encode_value(v: &Value, out: &mut Vec<u8>) {
    match v {
        Value::Null => out.push(0),
        Value::Int(x) => {
            out.push(1);
            out.extend_from_slice(&x.to_le_bytes());
        }
        Value::Double(x) => {
            out.push(2);
            out.extend_from_slice(&x.to_bits().to_le_bytes());
        }
        Value::Str(s) => {
            out.push(3);
            out.extend_from_slice(&(s.len() as u32).to_le_bytes());
            out.extend_from_slice(s.as_bytes());
        }
        Value::Date(x) => {
            out.push(4);
            out.extend_from_slice(&x.to_le_bytes());
        }
    }
}

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.pos + n > self.buf.len() {
            return Err(Error::Storage("row image truncated".into()));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn read_u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn read_u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn read_i64(&mut self) -> Result<i64> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
}

fn decode_value(cur: &mut Cursor<'_>) -> Result<Value> {
    match cur.read_u8()? {
        0 => Ok(Value::Null),
        1 => Ok(Value::Int(cur.read_i64()?)),
        2 => Ok(Value::Double(f64::from_bits(cur.read_i64()? as u64))),
        3 => {
            let len = cur.read_u32()? as usize;
            let bytes = cur.take(len)?;
            let s = std::str::from_utf8(bytes)
                .map_err(|e| Error::Storage(format!("row image bad utf8: {e}")))?;
            Ok(Value::Str(s.to_owned()))
        }
        4 => Ok(Value::Date(cur.read_i64()?)),
        t => Err(Error::Storage(format!("row image bad value tag {t}"))),
    }
}

/// Byte-level differential between two row images, as carried in the
/// REDO log's Data field (paper Fig. 7: "contains the difference between
/// the updated value and the original value").
///
/// Represented as a list of `(offset, replacement bytes)` splices plus
/// the new total length; applying it to the old image yields the new one.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RowDiff {
    /// Length of the new image.
    pub new_len: u32,
    /// Splices: replace bytes starting at `offset` with `bytes`.
    pub splices: Vec<(u32, Vec<u8>)>,
}

impl RowDiff {
    /// Compute a diff that transforms `old` into `new`.
    ///
    /// Strategy: find the longest common prefix and suffix, and emit one
    /// splice for the middle. This is what real engines approximate with
    /// field-level diffs; one splice is optimal for single-column
    /// updates, which dominate OLTP workloads.
    pub fn between(old: &[u8], new: &[u8]) -> RowDiff {
        let mut pre = 0;
        let max_pre = old.len().min(new.len());
        while pre < max_pre && old[pre] == new[pre] {
            pre += 1;
        }
        let mut suf = 0;
        while suf < max_pre - pre && old[old.len() - 1 - suf] == new[new.len() - 1 - suf] {
            suf += 1;
        }
        let mid = new[pre..new.len() - suf].to_vec();
        let splices = if mid.is_empty() && old.len() == new.len() {
            Vec::new()
        } else {
            vec![(pre as u32, mid)]
        };
        RowDiff {
            new_len: new.len() as u32,
            splices,
        }
    }

    /// Apply the diff to `old`, producing the new image.
    pub fn apply(&self, old: &[u8]) -> Result<Vec<u8>> {
        // Single-splice fast path (the only shape `between` produces).
        let mut out = Vec::with_capacity(self.new_len as usize);
        match self.splices.as_slice() {
            [] => {
                if old.len() != self.new_len as usize {
                    return Err(Error::Storage("empty diff but length changed".into()));
                }
                out.extend_from_slice(old);
            }
            [(off, bytes)] => {
                let off = *off as usize;
                if off > old.len() || off > self.new_len as usize {
                    return Err(Error::Storage("diff offset out of range".into()));
                }
                let suffix_len = self.new_len as usize - off - bytes.len();
                if suffix_len > old.len() {
                    return Err(Error::Storage("diff suffix out of range".into()));
                }
                out.extend_from_slice(&old[..off]);
                out.extend_from_slice(bytes);
                out.extend_from_slice(&old[old.len() - suffix_len..]);
            }
            _ => {
                return Err(Error::Storage(
                    "multi-splice diffs are not produced by this codec".into(),
                ))
            }
        }
        Ok(out)
    }

    /// Size in bytes of the payload this diff would occupy in a log
    /// entry (used for log-volume accounting in the benches).
    pub fn payload_size(&self) -> usize {
        8 + self.splices.iter().map(|(_, b)| 8 + b.len()).sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_row() -> Row {
        Row::new(vec![
            Value::Int(42),
            Value::Null,
            Value::Double(1.25),
            Value::Str("hello world".into()),
            Value::Date(9000),
        ])
    }

    #[test]
    fn codec_roundtrip() {
        let r = sample_row();
        let enc = r.encode();
        let dec = Row::decode(&enc).unwrap();
        assert_eq!(r, dec);
    }

    #[test]
    fn decode_rejects_truncation() {
        let enc = sample_row().encode();
        for cut in [1, 5, enc.len() - 1] {
            assert!(Row::decode(&enc[..cut]).is_err());
        }
    }

    #[test]
    fn diff_roundtrip_single_column_update() {
        let old = sample_row();
        let mut new = old.clone();
        new.values[2] = Value::Double(9.75);
        let (oe, ne) = (old.encode(), new.encode());
        let diff = RowDiff::between(&oe, &ne);
        assert_eq!(diff.apply(&oe).unwrap(), ne);
        // Single-column numeric update should be a small payload compared
        // to the whole image — that's the point of differential logging.
        assert!(diff.payload_size() < ne.len());
    }

    #[test]
    fn diff_roundtrip_length_change() {
        let old = sample_row();
        let mut new = old.clone();
        new.values[3] = Value::Str("a much longer string than before!".into());
        let (oe, ne) = (old.encode(), new.encode());
        let diff = RowDiff::between(&oe, &ne);
        assert_eq!(diff.apply(&oe).unwrap(), ne);
    }

    #[test]
    fn diff_identity() {
        let e = sample_row().encode();
        let diff = RowDiff::between(&e, &e);
        assert!(diff.splices.is_empty());
        assert_eq!(diff.apply(&e).unwrap(), e);
    }

    #[test]
    fn diff_empty_to_full() {
        let e = sample_row().encode();
        let diff = RowDiff::between(&[], &e);
        assert_eq!(diff.apply(&[]).unwrap(), e);
    }
}
