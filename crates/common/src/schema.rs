//! Table schemas and index definitions.
//!
//! Mirrors the user interface of paper §3.3 / Figure 3: a table has a
//! primary key index, optional secondary indexes, and an optional
//! *column index* covering a chosen subset of columns.

use crate::error::{Error, Result};
use crate::ids::TableId;
use crate::value::{DataType, Value};
use serde::{Deserialize, Serialize};

/// Definition of one column.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ColumnDef {
    /// Column name (lower-cased at parse time).
    pub name: String,
    /// Declared data type.
    pub ty: DataType,
    /// Whether NULL is allowed.
    pub nullable: bool,
}

impl ColumnDef {
    /// Convenience constructor for a nullable column.
    pub fn new(name: impl Into<String>, ty: DataType) -> ColumnDef {
        ColumnDef {
            name: name.into(),
            ty,
            nullable: true,
        }
    }

    /// Convenience constructor for a NOT NULL column.
    pub fn not_null(name: impl Into<String>, ty: DataType) -> ColumnDef {
        ColumnDef {
            name: name.into(),
            ty,
            nullable: false,
        }
    }
}

/// Kind of an index declared on a table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum IndexKind {
    /// Primary key (row store is organized by it).
    Primary,
    /// Secondary B+tree index in the row store.
    Secondary,
    /// In-memory column index on the RO nodes (the paper's IMCI).
    Column,
}

/// A declared index: kind + covered column positions.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct IndexDef {
    /// Index kind.
    pub kind: IndexKind,
    /// Index name (e.g. `SEC_INDEX`); primary key is `PRIMARY`.
    pub name: String,
    /// Ordinal positions of covered columns in the table schema.
    pub columns: Vec<usize>,
}

/// A table schema: columns plus index definitions.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Schema {
    /// Table id assigned by the catalog.
    pub table_id: TableId,
    /// Table name (lower-cased).
    pub name: String,
    /// Ordered column definitions.
    pub columns: Vec<ColumnDef>,
    /// Indexes; exactly one must be `IndexKind::Primary` over one column.
    pub indexes: Vec<IndexDef>,
}

impl Schema {
    /// Build a schema, validating the primary key declaration.
    pub fn new(
        table_id: TableId,
        name: impl Into<String>,
        columns: Vec<ColumnDef>,
        indexes: Vec<IndexDef>,
    ) -> Result<Schema> {
        let name = name.into().to_ascii_lowercase();
        let pk: Vec<&IndexDef> = indexes
            .iter()
            .filter(|i| i.kind == IndexKind::Primary)
            .collect();
        if pk.len() != 1 {
            return Err(Error::Catalog(format!(
                "table {name} must declare exactly one primary key (got {})",
                pk.len()
            )));
        }
        if pk[0].columns.len() != 1 {
            return Err(Error::Unsupported(format!(
                "table {name}: composite primary keys are not supported in this reproduction"
            )));
        }
        let pk_col = pk[0].columns[0];
        if pk_col >= columns.len() {
            return Err(Error::Catalog(format!(
                "table {name}: primary key column index {pk_col} out of range"
            )));
        }
        if columns[pk_col].ty != DataType::Int {
            return Err(Error::Unsupported(format!(
                "table {name}: primary key must be INT in this reproduction"
            )));
        }
        for idx in &indexes {
            for &c in &idx.columns {
                if c >= columns.len() {
                    return Err(Error::Catalog(format!(
                        "table {name}: index {} references column {c} out of range",
                        idx.name
                    )));
                }
            }
        }
        Ok(Schema {
            table_id,
            name,
            columns,
            indexes,
        })
    }

    /// Ordinal of the primary key column.
    pub fn pk_col(&self) -> usize {
        self.indexes
            .iter()
            .find(|i| i.kind == IndexKind::Primary)
            .expect("validated at construction")
            .columns[0]
    }

    /// Columns covered by the column index (empty slice = none declared).
    pub fn column_index_cols(&self) -> &[usize] {
        self.indexes
            .iter()
            .find(|i| i.kind == IndexKind::Column)
            .map(|i| i.columns.as_slice())
            .unwrap_or(&[])
    }

    /// Whether a column index exists on this table.
    pub fn has_column_index(&self) -> bool {
        self.indexes.iter().any(|i| i.kind == IndexKind::Column)
    }

    /// Secondary index definitions.
    pub fn secondary_indexes(&self) -> impl Iterator<Item = &IndexDef> {
        self.indexes
            .iter()
            .filter(|i| i.kind == IndexKind::Secondary)
    }

    /// Find a column ordinal by (case-insensitive) name.
    pub fn col_index(&self, name: &str) -> Option<usize> {
        let lower = name.to_ascii_lowercase();
        self.columns.iter().position(|c| c.name == lower)
    }

    /// Number of columns.
    pub fn width(&self) -> usize {
        self.columns.len()
    }

    /// Extract the primary key (INT) from a row's values.
    pub fn pk_of(&self, values: &[Value]) -> Result<i64> {
        values
            .get(self.pk_col())
            .and_then(|v| v.as_int())
            .ok_or_else(|| {
                Error::Constraint(format!(
                    "table {}: row missing integer primary key",
                    self.name
                ))
            })
    }

    /// Validate a row against the schema (arity, types, NOT NULL).
    pub fn validate_row(&self, values: &[Value]) -> Result<()> {
        if values.len() != self.columns.len() {
            return Err(Error::Constraint(format!(
                "table {}: expected {} values, got {}",
                self.name,
                self.columns.len(),
                values.len()
            )));
        }
        for (v, c) in values.iter().zip(&self.columns) {
            match v.data_type() {
                None => {
                    if !c.nullable {
                        return Err(Error::Constraint(format!(
                            "table {}: column {} is NOT NULL",
                            self.name, c.name
                        )));
                    }
                }
                Some(t) if t == c.ty => {}
                Some(t) => {
                    return Err(Error::Constraint(format!(
                        "table {}: column {} expects {}, got {}",
                        self.name, c.name, c.ty, t
                    )));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_schema() -> Schema {
        // The DDL of Figure 3: PK on c1, secondary on c2, column index on
        // c3, c4, c5.
        Schema::new(
            TableId(1),
            "demo_table",
            vec![
                ColumnDef::not_null("c1", DataType::Int),
                ColumnDef::new("c2", DataType::Int),
                ColumnDef::new("c3", DataType::Int),
                ColumnDef::new("c4", DataType::Int),
                ColumnDef::new("c5", DataType::Str),
            ],
            vec![
                IndexDef {
                    kind: IndexKind::Primary,
                    name: "PRIMARY".into(),
                    columns: vec![0],
                },
                IndexDef {
                    kind: IndexKind::Secondary,
                    name: "sec_index".into(),
                    columns: vec![1],
                },
                IndexDef {
                    kind: IndexKind::Column,
                    name: "column_index".into(),
                    columns: vec![2, 3, 4],
                },
            ],
        )
        .unwrap()
    }

    #[test]
    fn figure3_ddl_shape() {
        let s = demo_schema();
        assert_eq!(s.pk_col(), 0);
        assert_eq!(s.column_index_cols(), &[2, 3, 4]);
        assert!(s.has_column_index());
        assert_eq!(s.secondary_indexes().count(), 1);
        assert_eq!(s.col_index("C3"), Some(2));
    }

    #[test]
    fn rejects_missing_pk() {
        let r = Schema::new(
            TableId(2),
            "t",
            vec![ColumnDef::new("a", DataType::Int)],
            vec![],
        );
        assert!(r.is_err());
    }

    #[test]
    fn rejects_non_int_pk() {
        let r = Schema::new(
            TableId(3),
            "t",
            vec![ColumnDef::not_null("a", DataType::Str)],
            vec![IndexDef {
                kind: IndexKind::Primary,
                name: "PRIMARY".into(),
                columns: vec![0],
            }],
        );
        assert!(r.is_err());
    }

    #[test]
    fn validate_row_checks_arity_null_type() {
        let s = demo_schema();
        assert!(s.validate_row(&[Value::Int(1)]).is_err());
        assert!(s
            .validate_row(&[
                Value::Null,
                Value::Null,
                Value::Null,
                Value::Null,
                Value::Null
            ])
            .is_err()); // c1 NOT NULL
        assert!(s
            .validate_row(&[
                Value::Int(1),
                Value::Str("oops".into()),
                Value::Null,
                Value::Null,
                Value::Null
            ])
            .is_err()); // c2 type mismatch
        assert!(s
            .validate_row(&[
                Value::Int(1),
                Value::Int(2),
                Value::Int(3),
                Value::Int(4),
                Value::Str("ok".into())
            ])
            .is_ok());
    }

    #[test]
    fn pk_extraction() {
        let s = demo_schema();
        let row = vec![
            Value::Int(77),
            Value::Null,
            Value::Null,
            Value::Null,
            Value::Null,
        ];
        assert_eq!(s.pk_of(&row).unwrap(), 77);
    }
}
