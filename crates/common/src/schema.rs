//! Table schemas and index definitions.
//!
//! Mirrors the user interface of paper §3.3 / Figure 3: a table has a
//! primary key index, optional secondary indexes, and an optional
//! *column index* covering a chosen subset of columns.

use crate::error::{Error, Result};
use crate::ids::{PageId, TableId};
use crate::value::{DataType, Value};
use serde::{Deserialize, Serialize};

/// Definition of one column.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ColumnDef {
    /// Column name (lower-cased at parse time).
    pub name: String,
    /// Declared data type.
    pub ty: DataType,
    /// Whether NULL is allowed.
    pub nullable: bool,
}

impl ColumnDef {
    /// Convenience constructor for a nullable column.
    pub fn new(name: impl Into<String>, ty: DataType) -> ColumnDef {
        ColumnDef {
            name: name.into(),
            ty,
            nullable: true,
        }
    }

    /// Convenience constructor for a NOT NULL column.
    pub fn not_null(name: impl Into<String>, ty: DataType) -> ColumnDef {
        ColumnDef {
            name: name.into(),
            ty,
            nullable: false,
        }
    }
}

/// Kind of an index declared on a table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum IndexKind {
    /// Primary key (row store is organized by it).
    Primary,
    /// Secondary B+tree index in the row store.
    Secondary,
    /// In-memory column index on the RO nodes (the paper's IMCI).
    Column,
}

/// A declared index: kind + covered column positions.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct IndexDef {
    /// Index kind.
    pub kind: IndexKind,
    /// Index name (e.g. `SEC_INDEX`); primary key is `PRIMARY`.
    pub name: String,
    /// Ordinal positions of covered columns in the table schema.
    pub columns: Vec<usize>,
}

/// A table schema: columns plus index definitions.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Schema {
    /// Table id assigned by the catalog.
    pub table_id: TableId,
    /// Table name (lower-cased).
    pub name: String,
    /// Ordered column definitions.
    pub columns: Vec<ColumnDef>,
    /// Indexes; exactly one must be `IndexKind::Primary` over one column.
    pub indexes: Vec<IndexDef>,
}

impl Schema {
    /// Build a schema, validating the primary key declaration.
    pub fn new(
        table_id: TableId,
        name: impl Into<String>,
        columns: Vec<ColumnDef>,
        indexes: Vec<IndexDef>,
    ) -> Result<Schema> {
        let name = name.into().to_ascii_lowercase();
        let pk: Vec<&IndexDef> = indexes
            .iter()
            .filter(|i| i.kind == IndexKind::Primary)
            .collect();
        if pk.len() != 1 {
            return Err(Error::Catalog(format!(
                "table {name} must declare exactly one primary key (got {})",
                pk.len()
            )));
        }
        if pk[0].columns.len() != 1 {
            return Err(Error::Unsupported(format!(
                "table {name}: composite primary keys are not supported in this reproduction"
            )));
        }
        let pk_col = pk[0].columns[0];
        if pk_col >= columns.len() {
            return Err(Error::Catalog(format!(
                "table {name}: primary key column index {pk_col} out of range"
            )));
        }
        if columns[pk_col].ty != DataType::Int {
            return Err(Error::Unsupported(format!(
                "table {name}: primary key must be INT in this reproduction"
            )));
        }
        for idx in &indexes {
            for &c in &idx.columns {
                if c >= columns.len() {
                    return Err(Error::Catalog(format!(
                        "table {name}: index {} references column {c} out of range",
                        idx.name
                    )));
                }
            }
        }
        Ok(Schema {
            table_id,
            name,
            columns,
            indexes,
        })
    }

    /// Ordinal of the primary key column.
    pub fn pk_col(&self) -> usize {
        self.indexes
            .iter()
            .find(|i| i.kind == IndexKind::Primary)
            .expect("validated at construction")
            .columns[0]
    }

    /// Columns covered by the column index (empty slice = none declared).
    pub fn column_index_cols(&self) -> &[usize] {
        self.indexes
            .iter()
            .find(|i| i.kind == IndexKind::Column)
            .map(|i| i.columns.as_slice())
            .unwrap_or(&[])
    }

    /// Whether a column index exists on this table.
    pub fn has_column_index(&self) -> bool {
        self.indexes.iter().any(|i| i.kind == IndexKind::Column)
    }

    /// Secondary index definitions.
    pub fn secondary_indexes(&self) -> impl Iterator<Item = &IndexDef> {
        self.indexes
            .iter()
            .filter(|i| i.kind == IndexKind::Secondary)
    }

    /// Find a column ordinal by (case-insensitive) name.
    pub fn col_index(&self, name: &str) -> Option<usize> {
        let lower = name.to_ascii_lowercase();
        self.columns.iter().position(|c| c.name == lower)
    }

    /// Number of columns.
    pub fn width(&self) -> usize {
        self.columns.len()
    }

    /// Extract the primary key (INT) from a row's values.
    pub fn pk_of(&self, values: &[Value]) -> Result<i64> {
        values
            .get(self.pk_col())
            .and_then(|v| v.as_int())
            .ok_or_else(|| {
                Error::Constraint(format!(
                    "table {}: row missing integer primary key",
                    self.name
                ))
            })
    }

    /// Validate a row against the schema (arity, types, NOT NULL).
    pub fn validate_row(&self, values: &[Value]) -> Result<()> {
        if values.len() != self.columns.len() {
            return Err(Error::Constraint(format!(
                "table {}: expected {} values, got {}",
                self.name,
                self.columns.len(),
                values.len()
            )));
        }
        for (v, c) in values.iter().zip(&self.columns) {
            match v.data_type() {
                None => {
                    if !c.nullable {
                        return Err(Error::Constraint(format!(
                            "table {}: column {} is NOT NULL",
                            self.name, c.name
                        )));
                    }
                }
                Some(t) if t == c.ty => {}
                Some(t) => {
                    return Err(Error::Constraint(format!(
                        "table {}: column {} expects {}, got {}",
                        self.name, c.name, c.ty, t
                    )));
                }
            }
        }
        Ok(())
    }
}

// ---- binary codec (DDL log records, catalog snapshots) ----

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

/// Minimal bounds-checked cursor over a byte slice, shared by the
/// schema/DDL codecs and the rowstore's catalog-snapshot codec.
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// Start reading at the front of `buf`.
    pub fn new(buf: &'a [u8]) -> ByteReader<'a> {
        ByteReader { buf, pos: 0 }
    }

    /// Bytes consumed so far.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Consume exactly `n` bytes; errors when the buffer is short.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.pos + n > self.buf.len() {
            return Err(Error::Storage("byte stream truncated".into()));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Consume one byte.
    pub fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    /// Consume a little-endian u32.
    pub fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Consume a little-endian u64.
    pub fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Consume a u32-length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String> {
        let n = self.u32()? as usize;
        String::from_utf8(self.take(n)?.to_vec())
            .map_err(|e| Error::Storage(format!("string not utf8: {e}")))
    }
}

fn datatype_tag(ty: DataType) -> u8 {
    match ty {
        DataType::Int => 0,
        DataType::Double => 1,
        DataType::Str => 2,
        DataType::Date => 3,
    }
}

fn datatype_from_tag(tag: u8) -> Result<DataType> {
    match tag {
        0 => Ok(DataType::Int),
        1 => Ok(DataType::Double),
        2 => Ok(DataType::Str),
        3 => Ok(DataType::Date),
        t => Err(Error::Storage(format!("unknown data type tag {t}"))),
    }
}

fn indexkind_tag(kind: IndexKind) -> u8 {
    match kind {
        IndexKind::Primary => 0,
        IndexKind::Secondary => 1,
        IndexKind::Column => 2,
    }
}

fn indexkind_from_tag(tag: u8) -> Result<IndexKind> {
    match tag {
        0 => Ok(IndexKind::Primary),
        1 => Ok(IndexKind::Secondary),
        2 => Ok(IndexKind::Column),
        t => Err(Error::Storage(format!("unknown index kind tag {t}"))),
    }
}

impl Schema {
    /// Serialize to the compact binary form used by DDL log records and
    /// checkpoint catalog snapshots.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64);
        out.extend_from_slice(&self.table_id.get().to_le_bytes());
        put_str(&mut out, &self.name);
        put_u32(&mut out, self.columns.len() as u32);
        for c in &self.columns {
            put_str(&mut out, &c.name);
            out.push(datatype_tag(c.ty));
            out.push(c.nullable as u8);
        }
        put_u32(&mut out, self.indexes.len() as u32);
        for i in &self.indexes {
            out.push(indexkind_tag(i.kind));
            put_str(&mut out, &i.name);
            put_u32(&mut out, i.columns.len() as u32);
            for &c in &i.columns {
                put_u32(&mut out, c as u32);
            }
        }
        out
    }

    /// Decode a schema from the front of `buf`; returns the schema and
    /// the number of bytes consumed. Validates the same invariants as
    /// [`Schema::new`].
    pub fn decode(buf: &[u8]) -> Result<(Schema, usize)> {
        let mut r = ByteReader { buf, pos: 0 };
        let schema = Schema::decode_reader(&mut r)?;
        Ok((schema, r.pos))
    }

    fn decode_reader(r: &mut ByteReader<'_>) -> Result<Schema> {
        let table_id = TableId(r.u64()?);
        let name = r.str()?;
        let n_cols = r.u32()? as usize;
        let mut columns = Vec::with_capacity(n_cols);
        for _ in 0..n_cols {
            let cname = r.str()?;
            let ty = datatype_from_tag(r.u8()?)?;
            let nullable = r.u8()? != 0;
            columns.push(ColumnDef {
                name: cname,
                ty,
                nullable,
            });
        }
        let n_idx = r.u32()? as usize;
        let mut indexes = Vec::with_capacity(n_idx);
        for _ in 0..n_idx {
            let kind = indexkind_from_tag(r.u8()?)?;
            let iname = r.str()?;
            let nc = r.u32()? as usize;
            let mut cols = Vec::with_capacity(nc);
            for _ in 0..nc {
                cols.push(r.u32()? as usize);
            }
            indexes.push(IndexDef {
                kind,
                name: iname,
                columns: cols,
            });
        }
        Schema::new(table_id, name, columns, indexes)
    }
}

/// A catalog change, shipped through the REDO stream as a first-class
/// log record (the versioned-catalog design: schema changes are ordered
/// with data changes in LSN order instead of being discovered
/// out-of-band via lazy catalog refresh).
#[derive(Debug, Clone, PartialEq)]
pub enum DdlOp {
    /// A table was created; carries the full schema plus the meta page
    /// of its (already SMO-logged) B+tree so replicas can open it.
    CreateTable {
        /// Full schema of the new table.
        schema: Schema,
        /// Meta page of the table's primary B+tree.
        meta_page: PageId,
    },
    /// A table was dropped.
    DropTable {
        /// Id of the dropped table.
        table_id: TableId,
        /// Name of the dropped table (lower-cased).
        name: String,
    },
    /// A table's schema was replaced in place (online DDL such as
    /// `ALTER TABLE ... ADD COLUMN INDEX`, §3.3); runtime state is
    /// preserved, replicas rebuild derived structures.
    ReplaceSchema {
        /// The replacement schema (same table id and name).
        schema: Schema,
    },
}

impl DdlOp {
    /// The table this DDL affects.
    pub fn table_id(&self) -> TableId {
        match self {
            DdlOp::CreateTable { schema, .. } | DdlOp::ReplaceSchema { schema } => schema.table_id,
            DdlOp::DropTable { table_id, .. } => *table_id,
        }
    }

    /// Serialize to the binary form embedded in log records.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64);
        match self {
            DdlOp::CreateTable { schema, meta_page } => {
                out.push(1);
                out.extend_from_slice(&meta_page.get().to_le_bytes());
                out.extend_from_slice(&schema.encode());
            }
            DdlOp::DropTable { table_id, name } => {
                out.push(2);
                out.extend_from_slice(&table_id.get().to_le_bytes());
                put_str(&mut out, name);
            }
            DdlOp::ReplaceSchema { schema } => {
                out.push(3);
                out.extend_from_slice(&schema.encode());
            }
        }
        out
    }

    /// Decode from the front of `buf`; returns the op and the bytes
    /// consumed.
    pub fn decode(buf: &[u8]) -> Result<(DdlOp, usize)> {
        let mut r = ByteReader { buf, pos: 0 };
        let op = match r.u8()? {
            1 => {
                let meta_page = PageId(r.u64()?);
                let schema = Schema::decode_reader(&mut r)?;
                DdlOp::CreateTable { schema, meta_page }
            }
            2 => DdlOp::DropTable {
                table_id: TableId(r.u64()?),
                name: r.str()?,
            },
            3 => DdlOp::ReplaceSchema {
                schema: Schema::decode_reader(&mut r)?,
            },
            t => return Err(Error::Storage(format!("unknown ddl op tag {t}"))),
        };
        Ok((op, r.pos))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_schema() -> Schema {
        // The DDL of Figure 3: PK on c1, secondary on c2, column index on
        // c3, c4, c5.
        Schema::new(
            TableId(1),
            "demo_table",
            vec![
                ColumnDef::not_null("c1", DataType::Int),
                ColumnDef::new("c2", DataType::Int),
                ColumnDef::new("c3", DataType::Int),
                ColumnDef::new("c4", DataType::Int),
                ColumnDef::new("c5", DataType::Str),
            ],
            vec![
                IndexDef {
                    kind: IndexKind::Primary,
                    name: "PRIMARY".into(),
                    columns: vec![0],
                },
                IndexDef {
                    kind: IndexKind::Secondary,
                    name: "sec_index".into(),
                    columns: vec![1],
                },
                IndexDef {
                    kind: IndexKind::Column,
                    name: "column_index".into(),
                    columns: vec![2, 3, 4],
                },
            ],
        )
        .unwrap()
    }

    #[test]
    fn figure3_ddl_shape() {
        let s = demo_schema();
        assert_eq!(s.pk_col(), 0);
        assert_eq!(s.column_index_cols(), &[2, 3, 4]);
        assert!(s.has_column_index());
        assert_eq!(s.secondary_indexes().count(), 1);
        assert_eq!(s.col_index("C3"), Some(2));
    }

    #[test]
    fn rejects_missing_pk() {
        let r = Schema::new(
            TableId(2),
            "t",
            vec![ColumnDef::new("a", DataType::Int)],
            vec![],
        );
        assert!(r.is_err());
    }

    #[test]
    fn rejects_non_int_pk() {
        let r = Schema::new(
            TableId(3),
            "t",
            vec![ColumnDef::not_null("a", DataType::Str)],
            vec![IndexDef {
                kind: IndexKind::Primary,
                name: "PRIMARY".into(),
                columns: vec![0],
            }],
        );
        assert!(r.is_err());
    }

    #[test]
    fn validate_row_checks_arity_null_type() {
        let s = demo_schema();
        assert!(s.validate_row(&[Value::Int(1)]).is_err());
        assert!(s
            .validate_row(&[
                Value::Null,
                Value::Null,
                Value::Null,
                Value::Null,
                Value::Null
            ])
            .is_err()); // c1 NOT NULL
        assert!(s
            .validate_row(&[
                Value::Int(1),
                Value::Str("oops".into()),
                Value::Null,
                Value::Null,
                Value::Null
            ])
            .is_err()); // c2 type mismatch
        assert!(s
            .validate_row(&[
                Value::Int(1),
                Value::Int(2),
                Value::Int(3),
                Value::Int(4),
                Value::Str("ok".into())
            ])
            .is_ok());
    }

    #[test]
    fn schema_binary_roundtrip() {
        let s = demo_schema();
        let enc = s.encode();
        let (dec, used) = Schema::decode(&enc).unwrap();
        assert_eq!(used, enc.len());
        assert_eq!(dec, s);
    }

    #[test]
    fn ddl_op_roundtrips() {
        let ops = [
            DdlOp::CreateTable {
                schema: demo_schema(),
                meta_page: PageId(42),
            },
            DdlOp::DropTable {
                table_id: TableId(7),
                name: "gone".into(),
            },
            DdlOp::ReplaceSchema {
                schema: demo_schema(),
            },
        ];
        for op in ops {
            let enc = op.encode();
            let (dec, used) = DdlOp::decode(&enc).unwrap();
            assert_eq!(used, enc.len());
            assert_eq!(dec, op);
        }
        assert!(DdlOp::decode(&[9]).is_err());
    }

    #[test]
    fn pk_extraction() {
        let s = demo_schema();
        let row = vec![
            Value::Int(77),
            Value::Null,
            Value::Null,
            Value::Null,
            Value::Null,
        ];
        assert_eq!(s.pk_of(&row).unwrap(), 77);
    }
}
