//! Shared foundation types for the PolarDB-IMCI reproduction.
//!
//! Every other crate in the workspace builds on the types defined here:
//! SQL values and data types ([`Value`], [`DataType`]), table schemas
//! ([`Schema`], [`ColumnDef`]), strongly-typed identifiers ([`Lsn`],
//! [`Tid`], [`PageId`], [`Rid`], [`Vid`]), the workspace-wide error type
//! ([`Error`]), and a fast non-cryptographic hasher used for dispatch
//! decisions in the replication pipeline.

pub mod error;
pub mod hash;
pub mod ids;
pub mod row;
pub mod schema;
pub mod value;

pub use error::{Error, Result};
pub use hash::{fx_hash_bytes, fx_hash_u64, FxBuildHasher, FxHashMap, FxHashSet};
pub use ids::{Csn, Lsn, PageId, Rid, TableId, Tid, Vid, INVALID_VID, SYSTEM_TID};
pub use row::{Row, RowDiff};
pub use schema::{ByteReader, ColumnDef, DdlOp, IndexDef, IndexKind, Schema};
pub use value::{DataType, Value};
