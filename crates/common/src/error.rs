//! Workspace-wide error type.

use std::fmt;

/// Convenience alias used across all crates in the workspace.
pub type Result<T, E = Error> = std::result::Result<T, E>;

/// Unified error type for the PolarDB-IMCI reproduction.
///
/// Variants are intentionally coarse: each maps to a distinct failure
/// domain so callers can decide whether to retry, fall back (e.g. the
/// column engine falling back to the row engine, paper §6.2), or abort.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// A SQL string failed to lex or parse.
    Parse(String),
    /// A plan could not be built (unknown table/column, type mismatch...).
    Plan(String),
    /// Runtime execution failure in either engine.
    Execution(String),
    /// The column engine cannot run this plan; caller should fall back to
    /// the row-oriented plan (paper §6.2 run-time fallback).
    ColumnEngineUnsupported(String),
    /// Storage-layer failure (page not found, corrupt encoding...).
    Storage(String),
    /// Transaction aborted (explicitly or by conflict).
    TxnAborted(String),
    /// Constraint violation, e.g. duplicate primary key.
    Constraint(String),
    /// Catalog-level failure (duplicate table, unknown index...).
    Catalog(String),
    /// Replication / log-replay failure.
    Replication(String),
    /// Simulated shared-storage failure.
    PolarFs(String),
    /// The cluster's writer role moved (RW crashed, is recovering, or
    /// an RO was promoted) — the statement did not take effect and is
    /// safe to retry once the new RW is serving. Also raised by the
    /// shared-storage epoch fence when a deposed ("zombie") RW tries to
    /// append after a promotion.
    Failover(String),
    /// The service tier shed this statement under overload (admission
    /// queue full, connection budget exhausted, or a drain in
    /// progress). The statement was never executed, so it is safe to
    /// retry after a backoff — the wire-level sibling of [`Error::Failover`].
    Busy(String),
    /// Feature intentionally out of scope for the reproduction.
    Unsupported(String),
}

impl Error {
    /// The bare message, without the failure-domain tag that
    /// [`fmt::Display`] prepends.
    pub fn message(&self) -> &str {
        match self {
            Error::Parse(m)
            | Error::Plan(m)
            | Error::Execution(m)
            | Error::ColumnEngineUnsupported(m)
            | Error::Storage(m)
            | Error::TxnAborted(m)
            | Error::Constraint(m)
            | Error::Catalog(m)
            | Error::Replication(m)
            | Error::PolarFs(m)
            | Error::Failover(m)
            | Error::Busy(m)
            | Error::Unsupported(m) => m,
        }
    }

    /// Whether the statement is safe to retry verbatim. Two categories
    /// qualify, and both guarantee the statement never took effect:
    /// failover (the write was fenced out of shared storage, so
    /// re-issuing it against the promoted/recovered RW is exactly-once
    /// from the client's point of view) and busy (the service tier
    /// shed the statement before executing it).
    pub fn is_retryable(&self) -> bool {
        matches!(self, Error::Failover(_) | Error::Busy(_))
    }

    /// Rebuild an error from a [`Error::kind`] tag and a bare message —
    /// the inverse used by wire protocols that ship the two parts
    /// separately so clients can preserve the failure domain. Unknown
    /// tags (from a newer peer) degrade to [`Error::Execution`].
    pub fn from_kind(kind: &str, msg: String) -> Error {
        match kind {
            "parse" => Error::Parse(msg),
            "plan" => Error::Plan(msg),
            "execution" => Error::Execution(msg),
            "column_engine_unsupported" => Error::ColumnEngineUnsupported(msg),
            "storage" => Error::Storage(msg),
            "txn_aborted" => Error::TxnAborted(msg),
            "constraint" => Error::Constraint(msg),
            "catalog" => Error::Catalog(msg),
            "replication" => Error::Replication(msg),
            "polarfs" => Error::PolarFs(msg),
            "failover" => Error::Failover(msg),
            "busy" => Error::Busy(msg),
            "unsupported" => Error::Unsupported(msg),
            _ => Error::Execution(msg),
        }
    }

    /// Short machine-readable tag for the failure domain.
    pub fn kind(&self) -> &'static str {
        match self {
            Error::Parse(_) => "parse",
            Error::Plan(_) => "plan",
            Error::Execution(_) => "execution",
            Error::ColumnEngineUnsupported(_) => "column_engine_unsupported",
            Error::Storage(_) => "storage",
            Error::TxnAborted(_) => "txn_aborted",
            Error::Constraint(_) => "constraint",
            Error::Catalog(_) => "catalog",
            Error::Replication(_) => "replication",
            Error::PolarFs(_) => "polarfs",
            Error::Failover(_) => "failover",
            Error::Busy(_) => "busy",
            Error::Unsupported(_) => "unsupported",
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (tag, msg) = match self {
            Error::Parse(m) => ("parse error", m),
            Error::Plan(m) => ("plan error", m),
            Error::Execution(m) => ("execution error", m),
            Error::ColumnEngineUnsupported(m) => ("column engine unsupported", m),
            Error::Storage(m) => ("storage error", m),
            Error::TxnAborted(m) => ("transaction aborted", m),
            Error::Constraint(m) => ("constraint violation", m),
            Error::Catalog(m) => ("catalog error", m),
            Error::Replication(m) => ("replication error", m),
            Error::PolarFs(m) => ("polarfs error", m),
            Error::Failover(m) => ("failover", m),
            Error::Busy(m) => ("busy", m),
            Error::Unsupported(m) => ("unsupported", m),
        };
        write!(f, "{tag}: {msg}")
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_tag_and_message() {
        let e = Error::Parse("unexpected token".into());
        assert_eq!(e.to_string(), "parse error: unexpected token");
        assert_eq!(e.kind(), "parse");
    }

    #[test]
    fn kind_message_roundtrip() {
        let all = [
            Error::Parse("a".into()),
            Error::Plan("b".into()),
            Error::Execution("c".into()),
            Error::ColumnEngineUnsupported("d".into()),
            Error::Storage("e".into()),
            Error::TxnAborted("f".into()),
            Error::Constraint("g".into()),
            Error::Catalog("h".into()),
            Error::Replication("i".into()),
            Error::PolarFs("j".into()),
            Error::Failover("l".into()),
            Error::Busy("n".into()),
            Error::Unsupported("k".into()),
        ];
        for e in all {
            let rebuilt = Error::from_kind(e.kind(), e.message().to_string());
            assert_eq!(rebuilt, e);
        }
        assert_eq!(
            Error::from_kind("no_such_kind", "m".into()),
            Error::Execution("m".into())
        );
    }

    #[test]
    fn only_failover_and_busy_are_retryable() {
        assert!(Error::Failover("rw down".into()).is_retryable());
        assert!(Error::Busy("statement queue full".into()).is_retryable());
        assert!(!Error::Execution("boom".into()).is_retryable());
        assert!(!Error::Constraint("dup".into()).is_retryable());
        // The categories survive a wire roundtrip, so clients can retry.
        for e in [
            Error::Failover("promotion in progress".into()),
            Error::Busy("overloaded".into()),
        ] {
            assert!(Error::from_kind(e.kind(), e.message().into()).is_retryable());
        }
    }

    #[test]
    fn kinds_are_distinct() {
        let all = [
            Error::Parse(String::new()),
            Error::Plan(String::new()),
            Error::Execution(String::new()),
            Error::ColumnEngineUnsupported(String::new()),
            Error::Storage(String::new()),
            Error::TxnAborted(String::new()),
            Error::Constraint(String::new()),
            Error::Catalog(String::new()),
            Error::Replication(String::new()),
            Error::PolarFs(String::new()),
            Error::Failover(String::new()),
            Error::Busy(String::new()),
            Error::Unsupported(String::new()),
        ];
        let mut kinds: Vec<_> = all.iter().map(|e| e.kind()).collect();
        kinds.sort_unstable();
        kinds.dedup();
        assert_eq!(kinds.len(), all.len());
    }
}
