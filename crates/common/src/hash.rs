//! A small FxHash-style hasher.
//!
//! The replication dispatchers (paper §5.2–5.4) route work by
//! `hash(page_id) % N` (Phase 1) and `hash(primary_key) % N` (Phase 2).
//! These are extremely hot paths, so we use the multiply-xor scheme from
//! rustc's FxHash rather than SipHash. HashDoS is not a concern: keys are
//! internal identifiers, never attacker-controlled strings.

use std::hash::{BuildHasherDefault, Hasher};

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// FxHash-style streaming hasher (word-at-a-time multiply-rotate-xor).
#[derive(Default, Clone)]
pub struct FxHasher {
    state: u64,
}

impl FxHasher {
    #[inline]
    fn add_word(&mut self, word: u64) {
        self.state = (self.state.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add_word(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_word(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add_word(v);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add_word(v as u64);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add_word(v as u64);
    }

    #[inline]
    fn write_i64(&mut self, v: i64) {
        self.add_word(v as u64);
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;
/// Drop-in `HashMap` with the fast hasher.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;
/// Drop-in `HashSet` with the fast hasher.
pub type FxHashSet<T> = std::collections::HashSet<T, FxBuildHasher>;

/// Hash a single `u64` (used for `hash(page_id) % workers` dispatch).
#[inline]
pub fn fx_hash_u64(v: u64) -> u64 {
    let mut h = FxHasher::default();
    h.write_u64(v);
    h.finish()
}

/// Hash a byte slice (used for `hash(primary_key) % workers` dispatch
/// when the key is composite).
#[inline]
pub fn fx_hash_bytes(bytes: &[u8]) -> u64 {
    let mut h = FxHasher::default();
    h.write(bytes);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        assert_eq!(fx_hash_u64(42), fx_hash_u64(42));
        assert_eq!(fx_hash_bytes(b"hello"), fx_hash_bytes(b"hello"));
    }

    #[test]
    fn distinct_inputs_usually_differ() {
        let a = fx_hash_u64(1);
        let b = fx_hash_u64(2);
        assert_ne!(a, b);
    }

    #[test]
    fn spreads_sequential_keys_across_buckets() {
        // Dispatch quality check: sequential PKs must not all land in the
        // same worker bucket, or Phase-2 parallelism collapses.
        const WORKERS: usize = 8;
        let mut counts = [0usize; WORKERS];
        for pk in 0..8000u64 {
            counts[(fx_hash_u64(pk) % WORKERS as u64) as usize] += 1;
        }
        for &c in &counts {
            // Perfectly uniform would be 1000 per bucket; allow wide slack.
            assert!(c > 500, "bucket starved: {counts:?}");
            assert!(c < 1500, "bucket overloaded: {counts:?}");
        }
    }

    #[test]
    fn byte_hash_handles_non_multiple_of_8() {
        for len in 0..32 {
            let data: Vec<u8> = (0..len as u8).collect();
            let h1 = fx_hash_bytes(&data);
            let h2 = fx_hash_bytes(&data);
            assert_eq!(h1, h2);
        }
    }
}
