//! SQL values and data types.
//!
//! The reproduction supports the types the paper's workloads need:
//! 64-bit integers (INT/BIGINT), doubles (DOUBLE / DECIMAL surrogate),
//! UTF-8 strings (CHAR/VARCHAR/LONGTEXT), and DATE (days since the Unix
//! epoch). `NULL` is a first-class value of any type.

use crate::error::{Error, Result};
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;

/// Column data type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DataType {
    /// 64-bit signed integer (covers MySQL INT(11) and BIGINT).
    Int,
    /// 64-bit IEEE float (covers DOUBLE and, in this repro, DECIMAL).
    Double,
    /// UTF-8 string (covers CHAR/VARCHAR/LONGTEXT).
    Str,
    /// Days since 1970-01-01 stored as i64 (covers DATE).
    Date,
}

impl DataType {
    /// Whether the type is stored in a fixed-width numeric pack.
    pub fn is_numeric(self) -> bool {
        matches!(self, DataType::Int | DataType::Double | DataType::Date)
    }

    /// Parse a MySQL-ish type name, e.g. `INT(11)`, `VARCHAR(32)`.
    pub fn parse_sql(name: &str) -> Result<DataType> {
        let base = name
            .split('(')
            .next()
            .unwrap_or("")
            .trim()
            .to_ascii_uppercase();
        match base.as_str() {
            "INT" | "INTEGER" | "BIGINT" | "SMALLINT" | "TINYINT" => Ok(DataType::Int),
            "DOUBLE" | "FLOAT" | "DECIMAL" | "NUMERIC" | "REAL" => Ok(DataType::Double),
            "CHAR" | "VARCHAR" | "TEXT" | "LONGTEXT" | "STRING" => Ok(DataType::Str),
            "DATE" | "DATETIME" | "TIMESTAMP" => Ok(DataType::Date),
            other => Err(Error::Parse(format!("unknown type name: {other}"))),
        }
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DataType::Int => "INT",
            DataType::Double => "DOUBLE",
            DataType::Str => "VARCHAR",
            DataType::Date => "DATE",
        };
        f.write_str(s)
    }
}

/// A single SQL value.
///
/// `Value` implements a *total* ordering (NULLs first, doubles via
/// `f64::total_cmp`) so it can be used directly as a sort key and inside
/// `BTreeMap`s in the row store.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Value {
    /// SQL NULL.
    Null,
    /// 64-bit integer.
    Int(i64),
    /// 64-bit float.
    Double(f64),
    /// UTF-8 string.
    Str(String),
    /// Days since the Unix epoch.
    Date(i64),
}

impl Value {
    /// Runtime type of this value, `None` for NULL.
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Value::Null => None,
            Value::Int(_) => Some(DataType::Int),
            Value::Double(_) => Some(DataType::Double),
            Value::Str(_) => Some(DataType::Str),
            Value::Date(_) => Some(DataType::Date),
        }
    }

    /// True iff this is SQL NULL.
    #[inline]
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Integer view; Dates coerce to their day number.
    #[inline]
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(v) | Value::Date(v) => Some(*v),
            _ => None,
        }
    }

    /// Float view; Ints and Dates coerce (MySQL-style implicit cast).
    #[inline]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(v) | Value::Date(v) => Some(*v as f64),
            Value::Double(v) => Some(*v),
            _ => None,
        }
    }

    /// String view.
    #[inline]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Coerce to `ty`, applying MySQL-flavoured implicit casts. Used by
    /// the column plan generator which must "strictly follow up on
    /// original implicit type casts" (paper §6.2).
    pub fn coerce_to(&self, ty: DataType) -> Result<Value> {
        if self.is_null() {
            return Ok(Value::Null);
        }
        let out = match (self, ty) {
            (Value::Int(v), DataType::Int) => Value::Int(*v),
            (Value::Int(v), DataType::Double) => Value::Double(*v as f64),
            (Value::Int(v), DataType::Date) => Value::Date(*v),
            (Value::Double(v), DataType::Double) => Value::Double(*v),
            (Value::Double(v), DataType::Int) => Value::Int(*v as i64),
            (Value::Str(s), DataType::Str) => Value::Str(s.clone()),
            (Value::Str(s), DataType::Int) => Value::Int(
                s.trim()
                    .parse::<i64>()
                    .map_err(|e| Error::Execution(format!("cannot cast '{s}' to INT: {e}")))?,
            ),
            (Value::Str(s), DataType::Double) => Value::Double(
                s.trim()
                    .parse::<f64>()
                    .map_err(|e| Error::Execution(format!("cannot cast '{s}' to DOUBLE: {e}")))?,
            ),
            (Value::Str(s), DataType::Date) => Value::Date(parse_date_str(s)?),
            (Value::Date(v), DataType::Date) => Value::Date(*v),
            (Value::Date(v), DataType::Int) => Value::Int(*v),
            (Value::Date(v), DataType::Double) => Value::Double(*v as f64),
            (v, t) => return Err(Error::Execution(format!("cannot cast {v} to {t}"))),
        };
        Ok(out)
    }

    /// SQL comparison: returns `None` when either side is NULL
    /// (three-valued logic), otherwise a total comparison.
    #[inline]
    pub fn sql_cmp(&self, other: &Value) -> Option<Ordering> {
        if self.is_null() || other.is_null() {
            return None;
        }
        Some(self.cmp(other))
    }
}

/// Parse `YYYY-MM-DD` into days since the Unix epoch (proleptic
/// Gregorian, valid for years 1..=9999 — enough for TPC-H's 1992-1998).
pub fn parse_date_str(s: &str) -> Result<i64> {
    let parts: Vec<&str> = s.trim().split('-').collect();
    if parts.len() != 3 {
        return Err(Error::Parse(format!("bad date literal: {s}")));
    }
    let y: i64 = parts[0]
        .parse()
        .map_err(|_| Error::Parse(format!("bad year in date: {s}")))?;
    let m: i64 = parts[1]
        .parse()
        .map_err(|_| Error::Parse(format!("bad month in date: {s}")))?;
    let d: i64 = parts[2]
        .parse()
        .map_err(|_| Error::Parse(format!("bad day in date: {s}")))?;
    if !(1..=12).contains(&m) || !(1..=31).contains(&d) {
        return Err(Error::Parse(format!("date out of range: {s}")));
    }
    Ok(days_from_civil(y, m, d))
}

/// Render days-since-epoch back to `YYYY-MM-DD`.
pub fn format_date(days: i64) -> String {
    let (y, m, d) = civil_from_days(days);
    format!("{y:04}-{m:02}-{d:02}")
}

// Howard Hinnant's civil-days algorithms.
fn days_from_civil(y: i64, m: i64, d: i64) -> i64 {
    let y = if m <= 2 { y - 1 } else { y };
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = y - era * 400;
    let mp = (m + 9) % 12;
    let doy = (153 * mp + 2) / 5 + d - 1;
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
    era * 146097 + doe - 719468
}

fn civil_from_days(z: i64) -> (i64, i64, i64) {
    let z = z + 719468;
    let era = if z >= 0 { z } else { z - 146096 } / 146097;
    let doe = z - era * 146097;
    let yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let m = if mp < 10 { mp + 3 } else { mp - 9 };
    (if m <= 2 { y + 1 } else { y }, m, d)
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    /// Total order: NULL < Int/Date/Double (numerically, cross-type) < Str.
    fn cmp(&self, other: &Self) -> Ordering {
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Null, _) => Ordering::Less,
            (_, Null) => Ordering::Greater,
            (Int(a), Int(b)) => a.cmp(b),
            (Date(a), Date(b)) => a.cmp(b),
            (Int(a), Date(b)) | (Date(a), Int(b)) => a.cmp(b),
            (Double(a), Double(b)) => a.total_cmp(b),
            (Int(a), Double(b)) | (Date(a), Double(b)) => (*a as f64).total_cmp(b),
            (Double(a), Int(b)) | (Double(a), Date(b)) => a.total_cmp(&(*b as f64)),
            (Str(a), Str(b)) => a.cmp(b),
            (Str(_), _) => Ordering::Greater,
            (_, Str(_)) => Ordering::Less,
        }
    }
}

impl std::hash::Hash for Value {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => state.write_u8(0),
            Value::Int(v) | Value::Date(v) => {
                state.write_u8(1);
                state.write_i64(*v);
            }
            Value::Double(v) => {
                state.write_u8(2);
                // Normalize -0.0 so hash agrees with total_cmp-based Eq for
                // the values we actually produce.
                let v = if *v == 0.0 { 0.0f64 } else { *v };
                state.write_u64(v.to_bits());
            }
            Value::Str(s) => {
                state.write_u8(3);
                state.write(s.as_bytes());
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("NULL"),
            Value::Int(v) => write!(f, "{v}"),
            Value::Double(v) => write!(f, "{v}"),
            Value::Str(s) => f.write_str(s),
            Value::Date(d) => f.write_str(&format_date(*d)),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Double(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_owned())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn date_roundtrip() {
        for s in ["1992-01-01", "1998-12-01", "1995-06-17", "2024-02-29"] {
            let d = parse_date_str(s).unwrap();
            assert_eq!(format_date(d), s);
        }
    }

    #[test]
    fn date_epoch() {
        assert_eq!(parse_date_str("1970-01-01").unwrap(), 0);
        assert_eq!(parse_date_str("1970-01-02").unwrap(), 1);
        assert_eq!(parse_date_str("1969-12-31").unwrap(), -1);
    }

    #[test]
    fn sql_cmp_null_propagates() {
        assert_eq!(Value::Null.sql_cmp(&Value::Int(1)), None);
        assert_eq!(Value::Int(1).sql_cmp(&Value::Null), None);
        assert_eq!(Value::Int(1).sql_cmp(&Value::Int(2)), Some(Ordering::Less));
    }

    #[test]
    fn cross_type_numeric_compare() {
        assert_eq!(Value::Int(3).cmp(&Value::Double(3.0)), Ordering::Equal);
        assert!(Value::Int(3) < Value::Double(3.5));
        assert!(Value::Double(2.5) < Value::Int(3));
    }

    #[test]
    fn total_order_null_first_str_last() {
        let mut vs = [
            Value::Str("a".into()),
            Value::Int(5),
            Value::Null,
            Value::Double(1.5),
        ];
        vs.sort();
        assert_eq!(vs[0], Value::Null);
        assert!(matches!(vs[3], Value::Str(_)));
    }

    #[test]
    fn coercions() {
        assert_eq!(
            Value::Str("42".into()).coerce_to(DataType::Int).unwrap(),
            Value::Int(42)
        );
        assert_eq!(
            Value::Int(42).coerce_to(DataType::Double).unwrap(),
            Value::Double(42.0)
        );
        assert!(Value::Str("xyz".into()).coerce_to(DataType::Int).is_err());
        assert_eq!(Value::Null.coerce_to(DataType::Int).unwrap(), Value::Null);
    }

    #[test]
    fn parse_sql_types() {
        assert_eq!(DataType::parse_sql("INT(11)").unwrap(), DataType::Int);
        assert_eq!(DataType::parse_sql("varchar(44)").unwrap(), DataType::Str);
        assert_eq!(DataType::parse_sql("LONGTEXT").unwrap(), DataType::Str);
        assert_eq!(
            DataType::parse_sql("DECIMAL(15,2)").unwrap(),
            DataType::Double
        );
        assert_eq!(DataType::parse_sql("DATE").unwrap(), DataType::Date);
        assert!(DataType::parse_sql("BLOB").is_err());
    }

    #[test]
    fn hash_eq_consistent_for_int_date() {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let h = |v: &Value| {
            let mut s = DefaultHasher::new();
            v.hash(&mut s);
            s.finish()
        };
        // Int and Date with same payload are Eq by our Ord; hashes agree.
        assert_eq!(Value::Int(7), Value::Date(7));
        assert_eq!(h(&Value::Int(7)), h(&Value::Date(7)));
    }
}
