//! Criterion micro-benchmarks over the core data structures (M1 in
//! DESIGN.md): RID locator, pack codec, VID maps, expression eval,
//! and the late-materialization scan kernels (bulk unpack,
//! filter-on-compressed vs decode-then-filter).

use criterion::{criterion_group, criterion_main, Criterion};
use imci_common::{DataType, Rid, Value, Vid};
use imci_core::{BitPacked, ColumnData, Pack, RidLocator, SelVec, VidMap};

fn bench_locator(c: &mut Criterion) {
    let loc = RidLocator::new(4096);
    for pk in 0..100_000i64 {
        loc.insert(pk, Rid(pk as u64));
    }
    let mut next = 100_000i64;
    c.bench_function("locator_insert", |b| {
        b.iter(|| {
            loc.insert(next, Rid(next as u64));
            next += 1;
        })
    });
    c.bench_function("locator_get", |b| {
        let mut pk = 0i64;
        b.iter(|| {
            let r = loc.get(pk % 100_000);
            pk += 7;
            r
        })
    });
}

fn bench_pack(c: &mut Criterion) {
    let mut col = ColumnData::new(DataType::Int);
    for i in 0..65_536 {
        col.set(i, &Value::Int(1_000_000 + (i as i64 % 500)))
            .unwrap();
    }
    c.bench_function("pack_seal_64k_ints", |b| b.iter(|| Pack::seal(&col)));
    let pack = Pack::seal(&col);
    c.bench_function("pack_point_get", |b| {
        let mut i = 0usize;
        b.iter(|| {
            let v = pack.get(i % 65_536);
            i += 13;
            v
        })
    });
}

fn bench_kernels(c: &mut Criterion) {
    use imci_executor::{compressible, eval_sel, CmpOp, ColView, Expr};
    // 64 Ki values, 13-bit packed.
    let values: Vec<u64> = (0..65_536u64).map(|i| (i * 2654435761) % 8000).collect();
    let bp = BitPacked::pack(&values);
    c.bench_function("bitpacked_unpack_bulk_64k", |b| {
        let mut out = Vec::new();
        b.iter(|| {
            bp.unpack_into(&mut out);
            out.len()
        })
    });

    let mut col = ColumnData::new(DataType::Int);
    for (i, &v) in values.iter().enumerate() {
        col.set(i, &Value::Int(1_000_000 + v as i64)).unwrap();
    }
    let pack = Pack::seal(&col);
    // ~5% selectivity predicate over the compressed pack.
    let pred = Expr::cmp(CmpOp::Lt, Expr::col(0), Expr::lit(1_000_400i64));
    c.bench_function("pack_filter_on_compressed_64k", |b| {
        let views = [ColView::Pack(&pack)];
        assert!(compressible(&pred, &views));
        b.iter(|| {
            eval_sel(&pred, &views, SelVec::identity(pack.len()))
                .unwrap()
                .len()
        })
    });
    c.bench_function("pack_decode_then_filter_64k", |b| {
        use imci_executor::Batch;
        b.iter(|| {
            let decoded = pack.decode();
            let batch = Batch {
                cols: vec![decoded],
                len: pack.len(),
            };
            let mask = pred.eval_mask(&batch).unwrap();
            batch.filter(&mask).unwrap().len
        })
    });
}

fn bench_vidmap(c: &mut Criterion) {
    let m = VidMap::new(65_536);
    c.bench_function("vidmap_set_get", |b| {
        let mut i = 0usize;
        b.iter(|| {
            m.set(i % 65_536, Vid(i as u64));
            let v = m.get(i % 65_536);
            i += 1;
            v
        })
    });
}

fn bench_expr(c: &mut Criterion) {
    use imci_executor::{Batch, CmpOp, Expr};
    let mut col = ColumnData::new(DataType::Int);
    for i in 0..65_536 {
        col.set(i, &Value::Int(i as i64)).unwrap();
    }
    let batch = Batch {
        cols: vec![col],
        len: 65_536,
    };
    let e = Expr::cmp(CmpOp::Lt, Expr::col(0), Expr::lit(32_768i64));
    c.bench_function("expr_int_cmp_64k", |b| {
        b.iter(|| e.eval_mask(&batch).unwrap())
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_locator, bench_pack, bench_kernels, bench_vidmap, bench_expr
}
criterion_main!(benches);
