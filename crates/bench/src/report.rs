//! Machine-readable bench output and the regression gate behind it.
//!
//! Every harness binary that CI smoke-runs can emit a `BENCH_*.json`
//! file (`--json <path>`): scenario → metric → value, stamped with the
//! git SHA and whether it was a `--smoke` run. CI uploads the files as
//! artifacts (the bench trajectory) and `bench-check` compares them
//! against the committed baselines under `crates/bench/baselines/`,
//! failing the build when a perf metric regresses beyond a generous
//! tolerance.
//!
//! The JSON codec is hand-rolled (the workspace builds offline; the
//! serde shim is a no-op) and covers exactly the subset these reports
//! use: two-level objects with string/bool/number leaves.

use std::fmt::Write as _;

/// A bench run's metrics, grouped by scenario, in insertion order.
pub struct BenchReport {
    smoke: bool,
    scenarios: Vec<(String, Vec<(String, f64)>)>,
}

impl BenchReport {
    /// Start a report; `smoke` marks reduced-scale CI runs so
    /// `bench-check` refuses to compare smoke against full-scale.
    pub fn new(smoke: bool) -> BenchReport {
        BenchReport {
            smoke,
            scenarios: Vec::new(),
        }
    }

    /// Record one metric (overwrites an earlier value of the same name).
    pub fn set(&mut self, scenario: &str, metric: &str, value: f64) {
        let group = match self.scenarios.iter_mut().find(|(s, _)| s == scenario) {
            Some((_, g)) => g,
            None => {
                self.scenarios.push((scenario.to_string(), Vec::new()));
                &mut self.scenarios.last_mut().unwrap().1
            }
        };
        match group.iter_mut().find(|(m, _)| m == metric) {
            Some((_, v)) => *v = value,
            None => group.push((metric.to_string(), value)),
        }
    }

    /// Serialize to the `BENCH_*.json` format.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"git_sha\": {},", quote(&git_sha()));
        let _ = writeln!(out, "  \"smoke\": {},", self.smoke);
        out.push_str("  \"scenarios\": {\n");
        for (si, (scenario, metrics)) in self.scenarios.iter().enumerate() {
            let _ = writeln!(out, "    {}: {{", quote(scenario));
            for (mi, (metric, value)) in metrics.iter().enumerate() {
                let comma = if mi + 1 == metrics.len() { "" } else { "," };
                let _ = writeln!(out, "      {}: {}{comma}", quote(metric), fmt_num(*value));
            }
            let comma = if si + 1 == self.scenarios.len() {
                ""
            } else {
                ","
            };
            let _ = writeln!(out, "    }}{comma}");
        }
        out.push_str("  }\n}\n");
        out
    }

    /// Write the report to `path`.
    pub fn write(&self, path: &str) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }
}

fn fmt_num(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// The commit this run measured: `GITHUB_SHA` in CI, `git rev-parse`
/// locally, `"unknown"` otherwise.
pub fn git_sha() -> String {
    if let Ok(sha) = std::env::var("GITHUB_SHA") {
        if !sha.is_empty() {
            return sha;
        }
    }
    std::process::Command::new("git")
        .args(["rev-parse", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// Pull `--json <path>` out of the process args (harness binaries share
/// this flag).
pub fn json_path_arg() -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1))
        .cloned()
}

// ---- parsing (bench-check's side) ----

/// A parsed `BENCH_*.json` file.
#[derive(Debug, Clone, PartialEq)]
pub struct ParsedReport {
    /// Commit the numbers came from.
    pub git_sha: String,
    /// Reduced-scale run?
    pub smoke: bool,
    /// scenario → metric → value.
    pub scenarios: Vec<(String, Vec<(String, f64)>)>,
}

impl ParsedReport {
    /// Look up one metric.
    pub fn get(&self, scenario: &str, metric: &str) -> Option<f64> {
        self.scenarios
            .iter()
            .find(|(s, _)| s == scenario)
            .and_then(|(_, g)| g.iter().find(|(m, _)| m == metric))
            .map(|(_, v)| *v)
    }
}

/// Parse the report subset of JSON. Errors carry a byte position.
pub fn parse_report(text: &str) -> Result<ParsedReport, String> {
    let mut p = Parser {
        b: text.as_bytes(),
        i: 0,
    };
    let top = p.object()?;
    p.skip_ws();
    if p.i != p.b.len() {
        return Err(format!("trailing bytes at {}", p.i));
    }
    let mut git_sha = "unknown".to_string();
    let mut smoke = false;
    let mut scenarios = Vec::new();
    for (k, v) in top {
        match (k.as_str(), v) {
            ("git_sha", Json::Str(s)) => git_sha = s,
            ("smoke", Json::Bool(b)) => smoke = b,
            ("scenarios", Json::Obj(groups)) => {
                for (scenario, group) in groups {
                    let Json::Obj(metrics) = group else {
                        return Err(format!("scenario {scenario} is not an object"));
                    };
                    let mut flat = Vec::new();
                    for (metric, value) in metrics {
                        let Json::Num(n) = value else {
                            return Err(format!("metric {scenario}/{metric} is not a number"));
                        };
                        flat.push((metric, n));
                    }
                    scenarios.push((scenario, flat));
                }
            }
            _ => {} // unknown top-level keys are fine (forward compat)
        }
    }
    Ok(ParsedReport {
        git_sha,
        smoke,
        scenarios,
    })
}

enum Json {
    Str(String),
    Num(f64),
    Bool(bool),
    Obj(Vec<(String, Json)>),
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self.i < self.b.len() && self.b[self.i].is_ascii_whitespace() {
            self.i += 1;
        }
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        self.skip_ws();
        if self.i < self.b.len() && self.b[self.i] == c {
            self.i += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", c as char, self.i))
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.b.get(self.i).copied()
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        while let Some(&c) = self.b.get(self.i) {
            self.i += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = *self
                        .b
                        .get(self.i)
                        .ok_or_else(|| "unterminated escape".to_string())?;
                    self.i += 1;
                    out.push(match esc {
                        b'n' => '\n',
                        b't' => '\t',
                        other => other as char,
                    });
                }
                c => out.push(c as char),
            }
        }
        Err("unterminated string".to_string())
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'{') => Ok(Json::Obj(self.object()?)),
            Some(b't') | Some(b'f') => {
                let word: &[u8] = if self.b[self.i] == b't' {
                    b"true"
                } else {
                    b"false"
                };
                if self.b[self.i..].starts_with(word) {
                    self.i += word.len();
                    Ok(Json::Bool(word == b"true"))
                } else {
                    Err(format!("bad literal at byte {}", self.i))
                }
            }
            Some(c) if c == b'-' || c.is_ascii_digit() => {
                let start = self.i;
                while self.b.get(self.i).is_some_and(|c| {
                    c.is_ascii_digit() || matches!(c, b'-' | b'+' | b'.' | b'e' | b'E')
                }) {
                    self.i += 1;
                }
                std::str::from_utf8(&self.b[start..self.i])
                    .ok()
                    .and_then(|s| s.parse().ok())
                    .map(Json::Num)
                    .ok_or_else(|| format!("bad number at byte {start}"))
            }
            _ => Err(format!("unexpected value at byte {}", self.i)),
        }
    }

    fn object(&mut self) -> Result<Vec<(String, Json)>, String> {
        self.expect(b'{')?;
        let mut out = Vec::new();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(out);
        }
        loop {
            let key = self.string()?;
            self.expect(b':')?;
            out.push((key, self.value()?));
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(out);
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.i)),
            }
        }
    }
}

// ---- regression comparison (bench-check's policy) ----

/// Which way a metric is "better", inferred from its name.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Throughput-shaped: regression = drop.
    HigherIsBetter,
    /// Latency-shaped: regression = growth.
    LowerIsBetter,
    /// Counts/flags: informational, never gated.
    Informational,
}

/// Classify a metric name. Conservative: anything unrecognized is
/// informational rather than a false-positive gate.
pub fn direction_of(metric: &str) -> Direction {
    if metric.contains("per_s") || metric.contains("qps") || metric.contains("speedup") {
        return Direction::HigherIsBetter;
    }
    if metric.ends_with("_ms")
        || metric.ends_with("_us")
        || metric.ends_with("_ns")
        || metric.contains("latency")
        || metric.contains("_vd")
        || metric.contains("rss")
        || metric.ends_with("_kib")
        || metric.ends_with("_mib")
    {
        return Direction::LowerIsBetter;
    }
    Direction::Informational
}

/// The stem of a core-count-labeled scenario name: `mixed_scaling_c4`
/// → `Some("mixed_scaling")`, everything without a `_c<digits>` suffix
/// → `None`. Scenarios whose numbers only make sense on a given core
/// count carry this label so [`compare`] never gates a 1-core baseline
/// against a 4-core run.
pub fn core_label_stem(scenario: &str) -> Option<&str> {
    let (stem, suffix) = scenario.rsplit_once("_c")?;
    (!stem.is_empty() && !suffix.is_empty() && suffix.bytes().all(|b| b.is_ascii_digit()))
        .then_some(stem)
}

/// One baseline-vs-current comparison.
#[derive(Debug)]
pub struct Comparison {
    /// `scenario/metric`.
    pub key: String,
    /// Committed baseline value.
    pub baseline: f64,
    /// This run's value.
    pub current: f64,
    /// Relative change, sign-normalized so positive = worse.
    pub regression: f64,
    /// Beyond tolerance?
    pub failed: bool,
}

/// Compare every gated metric present in both reports. `tolerance` is
/// the allowed relative regression (0.5 = current may be 50% worse).
/// Metrics missing from `current` fail (a deleted metric silently
/// un-gates itself otherwise); metrics only in `current` are new and
/// pass.
///
/// Exception: a baseline scenario carrying a core-count label
/// ([`core_label_stem`]) whose current run produced the *same* scenario
/// under a *different* core count is skipped entirely — the baseline
/// was measured on other hardware, and comparing a 1-core curve to a
/// 4-core curve gates scheduler topology, not code.
pub fn compare(baseline: &ParsedReport, current: &ParsedReport, tolerance: f64) -> Vec<Comparison> {
    let mut out = Vec::new();
    for (scenario, metrics) in &baseline.scenarios {
        if let Some(stem) = core_label_stem(scenario) {
            let present = current.scenarios.iter().any(|(s, _)| s == scenario);
            let sibling = current
                .scenarios
                .iter()
                .any(|(s, _)| s != scenario && core_label_stem(s) == Some(stem));
            if !present && sibling {
                continue;
            }
        }
        for (metric, base) in metrics {
            let dir = direction_of(metric);
            if dir == Direction::Informational || *base <= 0.0 {
                continue;
            }
            let key = format!("{scenario}/{metric}");
            match current.get(scenario, metric) {
                Some(cur) => {
                    let regression = match dir {
                        Direction::LowerIsBetter => cur / base - 1.0,
                        Direction::HigherIsBetter => base / cur.max(f64::MIN_POSITIVE) - 1.0,
                        Direction::Informational => unreachable!(),
                    };
                    out.push(Comparison {
                        key,
                        baseline: *base,
                        current: cur,
                        regression,
                        failed: regression > tolerance,
                    });
                }
                None => out.push(Comparison {
                    key,
                    baseline: *base,
                    current: f64::NAN,
                    regression: f64::INFINITY,
                    failed: true,
                }),
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_roundtrips_through_json() {
        let mut rep = BenchReport::new(true);
        rep.set("failover", "recover_ms", 12.5);
        rep.set("failover", "failover_ms", 3.0);
        rep.set("server", "pipelined_qps", 540000.0);
        rep.set("failover", "recover_ms", 11.0); // overwrite
        let parsed = parse_report(&rep.to_json()).unwrap();
        assert!(parsed.smoke);
        assert_eq!(parsed.get("failover", "recover_ms"), Some(11.0));
        assert_eq!(parsed.get("failover", "failover_ms"), Some(3.0));
        assert_eq!(parsed.get("server", "pipelined_qps"), Some(540000.0));
        assert_eq!(parsed.get("server", "missing"), None);
        assert!(!parsed.git_sha.is_empty());
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(parse_report("not json").is_err());
        assert!(parse_report("{\"scenarios\": {\"a\": 5}}").is_err());
        assert!(parse_report("{} trailing").is_err());
        assert!(parse_report("{\"scenarios\": {\"a\": {\"m\": \"x\"}}}").is_err());
    }

    #[test]
    fn directions_are_inferred_from_names() {
        assert_eq!(direction_of("mean_vd_us"), Direction::LowerIsBetter);
        assert_eq!(direction_of("recover_ms"), Direction::LowerIsBetter);
        assert_eq!(direction_of("pipelined_qps"), Direction::HigherIsBetter);
        assert_eq!(
            direction_of("scan_mrows_per_s_on"),
            Direction::HigherIsBetter
        );
        assert_eq!(direction_of("speedup"), Direction::HigherIsBetter);
        assert_eq!(direction_of("rss_mib"), Direction::LowerIsBetter);
        assert_eq!(direction_of("peak_rss_kib"), Direction::LowerIsBetter);
        assert_eq!(direction_of("rows_selected"), Direction::Informational);
        assert_eq!(direction_of("read_retries"), Direction::Informational);
    }

    #[test]
    fn core_labels_are_recognized() {
        assert_eq!(core_label_stem("mixed_scaling_c4"), Some("mixed_scaling"));
        assert_eq!(core_label_stem("mixed_scaling_c16"), Some("mixed_scaling"));
        assert_eq!(core_label_stem("mixed_scaling"), None);
        assert_eq!(core_label_stem("idle_conns"), None);
        assert_eq!(core_label_stem("x_core"), None); // suffix not digits
        assert_eq!(core_label_stem("_c4"), None); // empty stem
    }

    #[test]
    fn core_labeled_scenarios_skip_cross_core_comparison() {
        let mut base = BenchReport::new(true);
        base.set("mixed_scaling_c1", "conns4_total_qps", 40000.0);
        base.set("protocol_modes", "pipelined_32_qps", 500000.0);
        let base = parse_report(&base.to_json()).unwrap();

        // Same metrics measured on a 4-core box: the core-labeled
        // scenario is skipped (not failed-as-missing), the unlabeled
        // one still gates.
        let mut other = BenchReport::new(true);
        other.set("mixed_scaling_c4", "conns4_total_qps", 90000.0);
        other.set("protocol_modes", "pipelined_32_qps", 480000.0);
        let other = parse_report(&other.to_json()).unwrap();
        let cmps = compare(&base, &other, 0.5);
        assert!(cmps.iter().all(|c| !c.key.starts_with("mixed_scaling")));
        assert!(cmps.iter().any(|c| c.key.starts_with("protocol_modes")));
        assert!(cmps.iter().all(|c| !c.failed));

        // Same core count still compares (and catches regressions).
        let mut same = BenchReport::new(true);
        same.set("mixed_scaling_c1", "conns4_total_qps", 4000.0);
        same.set("protocol_modes", "pipelined_32_qps", 500000.0);
        let same = parse_report(&same.to_json()).unwrap();
        assert!(compare(&base, &same, 0.5)
            .iter()
            .any(|c| c.key == "mixed_scaling_c1/conns4_total_qps" && c.failed));

        // Scenario vanished with no sibling either: that is a real
        // deletion and must fail.
        let mut gone = BenchReport::new(true);
        gone.set("protocol_modes", "pipelined_32_qps", 500000.0);
        let gone = parse_report(&gone.to_json()).unwrap();
        assert!(compare(&base, &gone, 0.5)
            .iter()
            .any(|c| c.key.starts_with("mixed_scaling_c1") && c.failed));
    }

    #[test]
    fn compare_flags_real_regressions_only() {
        let mut base = BenchReport::new(true);
        base.set("a", "lat_ms", 10.0);
        base.set("a", "tput_qps", 1000.0);
        base.set("a", "rows_selected", 42.0); // informational
        let base = parse_report(&base.to_json()).unwrap();

        // Within tolerance: 30% worse latency, 20% lower throughput.
        let mut ok = BenchReport::new(true);
        ok.set("a", "lat_ms", 13.0);
        ok.set("a", "tput_qps", 800.0);
        let ok = parse_report(&ok.to_json()).unwrap();
        assert!(compare(&base, &ok, 0.5).iter().all(|c| !c.failed));

        // Beyond tolerance both ways.
        let mut bad = BenchReport::new(true);
        bad.set("a", "lat_ms", 40.0); // 4x slower
        bad.set("a", "tput_qps", 400.0); // 2.5x less
        let bad = parse_report(&bad.to_json()).unwrap();
        let cmps = compare(&base, &bad, 0.5);
        assert_eq!(cmps.iter().filter(|c| c.failed).count(), 2);

        // A gated metric vanishing from the current run fails.
        let mut gone = BenchReport::new(true);
        gone.set("a", "lat_ms", 10.0);
        let gone = parse_report(&gone.to_json()).unwrap();
        assert!(compare(&base, &gone, 0.5).iter().any(|c| c.failed));

        // Improvements never fail.
        let mut fast = BenchReport::new(true);
        fast.set("a", "lat_ms", 1.0);
        fast.set("a", "tput_qps", 9000.0);
        let fast = parse_report(&fast.to_json()).unwrap();
        assert!(compare(&base, &fast, 0.5).iter().all(|c| !c.failed));
    }
}
