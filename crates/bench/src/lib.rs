//! Shared helpers for the figure/table harness binaries.
//!
//! Every binary prints TSV rows matching the series/axes of one paper
//! artifact, preceded by `# paper:` comment lines stating the paper's
//! qualitative expectation (see DESIGN.md §5 and EXPERIMENTS.md).

use imci_cluster::{Cluster, ClusterConfig};
use imci_sql::{EngineChoice, QueryOptions};
use std::time::{Duration, Instant};

pub mod report;

pub use report::{compare, parse_report, BenchReport, Direction, ParsedReport};

/// Read an env var with a default (benches are parameterized by env so
/// `cargo bench`/CI stay fast while bigger runs remain one-liner away).
pub fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Integer env parameter.
pub fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Run one SELECT on a chosen engine of the first RO node; returns
/// (elapsed, row count).
pub fn run_query_on(cluster: &Cluster, sql: &str, engine: EngineChoice) -> (Duration, usize) {
    run_query_opts(cluster, sql, &QueryOptions::forced(Some(engine)))
}

/// Run one SELECT on the first RO node with full per-call options;
/// returns (elapsed, row count).
pub fn run_query_opts(cluster: &Cluster, sql: &str, opts: &QueryOptions) -> (Duration, usize) {
    let node = cluster.ros.read()[0].clone();
    let t = Instant::now();
    let out = node.query.run(sql, opts);
    let dt = t.elapsed();
    match out {
        Ok(res) => (dt, res.rows.len()),
        Err(e) => panic!("query failed with {opts:?}: {e}\n{sql}"),
    }
}

/// Geometric mean of positive samples.
pub fn geomean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    (xs.iter().map(|x| x.max(1e-12).ln()).sum::<f64>() / xs.len() as f64).exp()
}

/// Percentile (0..=100) of a sorted-or-not sample set, in place.
pub fn percentile(samples: &mut [f64], p: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    samples.sort_by(|a, b| a.total_cmp(b));
    let idx = ((p / 100.0) * (samples.len() - 1) as f64).round() as usize;
    samples[idx.min(samples.len() - 1)]
}

/// A small default cluster for harness binaries.
pub fn bench_cluster(n_ro: usize) -> std::sync::Arc<Cluster> {
    Cluster::start(ClusterConfig {
        n_ro,
        group_cap: env_usize("GROUP_CAP", 8192),
        ..Default::default()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_and_percentile() {
        assert!((geomean(&[1.0, 100.0]) - 10.0).abs() < 1e-9);
        let mut xs = vec![5.0, 1.0, 3.0, 2.0, 4.0];
        assert_eq!(percentile(&mut xs, 50.0), 3.0);
        assert_eq!(percentile(&mut xs, 100.0), 5.0);
        assert_eq!(percentile(&mut [][..].to_vec(), 50.0), 0.0);
    }

    #[test]
    fn env_defaults() {
        assert_eq!(env_f64("NOT_SET_VAR_XYZ", 1.5), 1.5);
        assert_eq!(env_usize("NOT_SET_VAR_XYZ", 7), 7);
    }
}
