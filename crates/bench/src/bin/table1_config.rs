//! Table 1: configuration of the (simulated) evaluation setup.

fn main() {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(0);
    println!("# paper: Table 1 — 32 vCPU / 256GB nodes, 10Gb network, PolarFS 288k IOPS");
    println!("component\tpaper\tthis reproduction");
    println!("RW/RO node\t32 vCPU, 256GB DRAM\tsimulated in-process node, {cores} host threads");
    println!("client\t32 vCPU ECS\tin-process driver threads");
    println!("network\t10Gbit/s RDMA\tshared-memory channels + injected latency");
    println!("PolarFS\t288k IOPS RandRead-16K, 18k IOPS SeqWrite-128K\tLatencyProfile::polarfs_like(): fsync 30us, page read 50us, append 1us+0.4us/KiB");
}
