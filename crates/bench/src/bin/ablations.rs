//! Ablations of DESIGN.md §3: pack pruning on/off, CALS on/off,
//! late-materialized scans on/off, and DDL churn visibility.
//!
//! `--smoke` runs every ablation at a tiny scale — CI uses it to keep
//! this binary from rotting without paying for real measurements.

use imci_bench::{bench_cluster, run_query_on};
use imci_cluster::{Cluster, ClusterConfig, Consistency, ExecOpts};
use imci_common::{
    ColumnDef, DataType, FxHashMap, IndexDef, IndexKind, Schema, TableId, Value, Vid,
};
use imci_core::ColumnIndex;
use imci_executor::{execute, CmpOp, ExecContext, Expr, PhysicalPlan};
use imci_replication::{ReplicationConfig, ShipMode};
use imci_sql::EngineChoice;
use rand::{rngs::StdRng, Rng, SeedableRng};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    ablation_a(smoke);
    ablation_b(smoke);
    ablation_c(smoke);
    ablation_d(smoke);
}

/// (A) pack pruning: selective Q6-style scan with/without min-max skipping.
fn ablation_a(smoke: bool) {
    println!("## ablation A: pack min/max pruning (TPC-H Q6-style scan)");
    let cluster = bench_cluster(1);
    let sf = if smoke { 0.0005 } else { 0.002 };
    imci_workloads::tpch::load(&cluster, sf, 21).unwrap();
    assert!(cluster.wait_sync(Duration::from_secs(120)));
    let q6 = imci_workloads::tpch::queries()[5].1.clone();
    let node = cluster.ros.read()[0].clone();
    // Alternate and take the minimum of several runs (cache warm-up
    // otherwise dominates at this scale).
    let reps = if smoke { 1 } else { 5 };
    let mut t_on = f64::MAX;
    let mut t_off = f64::MAX;
    for _ in 0..reps {
        node.query.set_prune_enabled(true);
        let (t, _) = run_query_on(&cluster, &q6, EngineChoice::Column);
        t_on = t_on.min(t.as_secs_f64() * 1e3);
        node.query.set_prune_enabled(false);
        let (t, _) = run_query_on(&cluster, &q6, EngineChoice::Column);
        t_off = t_off.min(t.as_secs_f64() * 1e3);
    }
    node.query.set_prune_enabled(true);
    println!("pruning_on_ms\t{t_on:.2}");
    println!("pruning_off_ms\t{t_off:.2}");
    cluster.shutdown();
}

/// (B) CALS vs on-commit shipping: visibility delay comparison.
fn ablation_b(smoke: bool) {
    println!("## ablation B: commit-ahead log shipping vs on-commit shipping");
    println!("## (VD after a 2000-row transaction: CALS overlaps parse/apply with");
    println!("## the transaction's execution; OnCommit starts only after the fsync)");
    let (samples, txn_rows) = if smoke { (2, 200) } else { (10, 2000) };
    for (label, mode) in [
        ("CALS", ShipMode::CommitAhead),
        ("OnCommit", ShipMode::OnCommit),
    ] {
        let cluster = Cluster::start(ClusterConfig {
            n_ro: 1,
            group_cap: 4096,
            latency: polarfs_sim::LatencyProfile::polarfs_like(),
            replication: ReplicationConfig {
                ship_mode: mode,
                ..Default::default()
            },
            ..Default::default()
        });
        let _ = imci_workloads::sysbench::Sysbench::setup(&cluster, 1, 100).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let mut total = Duration::ZERO;
        let mut pk = 1_000_000i64;
        for _ in 0..samples {
            let rw = &cluster.rw;
            let mut txn = rw.begin();
            for _ in 0..txn_rows {
                let _ = rw.insert(
                    &mut txn,
                    "sbtest1",
                    vec![
                        imci_common::Value::Int(pk),
                        imci_common::Value::Int(rng.gen_range(0..1000)),
                        imci_common::Value::Str("x".repeat(100)),
                        imci_common::Value::Str("y".repeat(50)),
                    ],
                );
                pk += 1;
            }
            rw.commit(txn);
            total += cluster.measure_visibility_delay().unwrap_or(Duration::ZERO);
        }
        println!(
            "{label}\tmean_vd_us\t{:.1}",
            total.as_secs_f64() * 1e6 / samples as f64
        );
        cluster.shutdown();
    }
}

/// (C) late materialization: a selective (5%) filtered scan over a wide
/// table, filter evaluated on the compressed packs + one post-filter
/// gather vs the decode-everything-then-mask baseline.
fn ablation_c(smoke: bool) {
    let n: i64 = if smoke { 20_000 } else { 400_000 };
    let sel_limit = n / 20;
    println!("## ablation C: late-materialized scan (filter on compressed packs)");
    println!("## 6-column scan of {n} rows, key < {sel_limit} (5% selectivity)");
    let schema = Schema::new(
        TableId(99),
        "wide",
        vec![
            ColumnDef::not_null("id", DataType::Int),
            ColumnDef::new("key", DataType::Int),
            ColumnDef::new("qty", DataType::Int),
            ColumnDef::new("price", DataType::Double),
            ColumnDef::new("region", DataType::Str),
            ColumnDef::new("note", DataType::Str),
        ],
        vec![
            IndexDef {
                kind: IndexKind::Primary,
                name: "PRIMARY".into(),
                columns: vec![0],
            },
            IndexDef {
                kind: IndexKind::Column,
                name: "ci".into(),
                columns: vec![0, 1, 2, 3, 4, 5],
            },
        ],
    )
    .unwrap();
    let idx = ColumnIndex::for_schema(&schema, 65_536);
    let regions = [
        "east", "west", "north", "south", "eu", "apac", "latam", "mea",
    ];
    for i in 0..n {
        // 7919 is coprime to n: `key` is a uniform permutation, so every
        // pack spans the full key range and nothing min/max-prunes — the
        // measurement isolates the filter + gather path.
        let key = (i * 7919) % n;
        idx.insert(
            Vid(1),
            &[
                Value::Int(i),
                Value::Int(key),
                Value::Int(i % 50),
                Value::Double(i as f64 * 0.25),
                Value::Str(regions[(i % 8) as usize].into()),
                Value::Str(format!("note-{}", i % 997)),
            ],
        )
        .unwrap();
    }
    idx.advance_visible(Vid(1));
    let mut snaps = FxHashMap::default();
    snaps.insert(TableId(99), Arc::new(idx.snapshot()));
    let mut ctx = ExecContext::new(snaps);
    let plan = PhysicalPlan::ColumnScan {
        table: TableId(99),
        cols: vec![0, 1, 2, 3, 4, 5],
        prune: vec![],
        filter: Some(Expr::cmp(CmpOp::Lt, Expr::col(1), Expr::lit(sel_limit))),
    };
    let reps = if smoke { 2 } else { 7 };
    let mut t_on = f64::MAX;
    let mut t_off = f64::MAX;
    let mut rows = 0;
    for _ in 0..reps {
        ctx.late_materialization = true;
        let t0 = Instant::now();
        let on = execute(&plan, &ctx).unwrap();
        t_on = t_on.min(t0.elapsed().as_secs_f64() * 1e3);
        ctx.late_materialization = false;
        let t0 = Instant::now();
        let off = execute(&plan, &ctx).unwrap();
        t_off = t_off.min(t0.elapsed().as_secs_f64() * 1e3);
        assert_eq!(on.len, off.len, "ablation modes disagree");
        rows = on.len;
    }
    println!("rows_selected\t{rows}");
    println!("late_mat_on_ms\t{t_on:.2}");
    println!("late_mat_off_ms\t{t_off:.2}");
    println!("scan_mrows_per_s_on\t{:.1}", n as f64 / t_on / 1e3);
    println!("speedup\t{:.2}x", t_off / t_on);
}

/// (D) DDL churn: tenant-per-table workloads create tables constantly.
/// Measures CREATE TABLE → INSERT → first row-returning SELECT on an RO
/// node, per consistency level. DDL ships through the REDO stream and
/// its commit advances the written LSN, so strong reads fence on the
/// replica having applied the DDL (zero retries by construction);
/// eventual reads poll until the replica catches up, which is the
/// actual visibility latency.
fn ablation_d(smoke: bool) {
    println!("## ablation D: ddl_churn (create-table → RO visibility latency)");
    let tenants = if smoke { 5 } else { 50 };
    for (label, level) in [
        ("eventual", Consistency::Eventual),
        ("strong", Consistency::Strong),
    ] {
        let cluster = Cluster::start(ClusterConfig {
            n_ro: 1,
            group_cap: 64,
            ..Default::default()
        });
        let opts = ExecOpts {
            consistency: Some(level),
            force_engine: None,
        };
        let mut total = Duration::ZERO;
        let mut retries = 0u64;
        for t in 0..tenants {
            let name = format!("tenant_{t}");
            let t0 = Instant::now();
            cluster
                .execute(&format!(
                    "CREATE TABLE {name} (id INT NOT NULL, v INT, PRIMARY KEY(id),
                     KEY COLUMN_INDEX(id, v))"
                ))
                .unwrap();
            cluster
                .execute(&format!("INSERT INTO {name} VALUES (1, {t})"))
                .unwrap();
            let deadline = Instant::now() + Duration::from_secs(10);
            loop {
                match cluster.execute_opts(&format!("SELECT v FROM {name} WHERE id = 1"), opts) {
                    Ok(res) if res.rows.len() == 1 => break,
                    r => {
                        assert!(
                            Instant::now() < deadline,
                            "tenant {t} never became visible: {r:?}"
                        );
                        retries += 1;
                        std::thread::yield_now();
                    }
                }
            }
            total += t0.elapsed();
        }
        println!(
            "{label}\tmean_create_to_visible_us\t{:.1}\tread_retries\t{retries}",
            total.as_secs_f64() * 1e6 / tenants as f64
        );
        cluster.shutdown();
    }
}
