//! Ablations of DESIGN.md §3: pack pruning on/off, CALS on/off.

use imci_bench::{bench_cluster, run_query_on};
use imci_cluster::{Cluster, ClusterConfig};
use imci_replication::{ReplicationConfig, ShipMode};
use imci_sql::EngineChoice;
use rand::{rngs::StdRng, Rng, SeedableRng};
use std::time::Duration;

fn main() {
    // (A) pack pruning: selective Q6-style scan with/without min-max skipping.
    println!("## ablation A: pack min/max pruning (TPC-H Q6-style scan)");
    let cluster = bench_cluster(1);
    imci_workloads::tpch::load(&cluster, 0.002, 21).unwrap();
    assert!(cluster.wait_sync(Duration::from_secs(120)));
    let q6 = imci_workloads::tpch::queries()[5].1.clone();
    let node = cluster.ros.read()[0].clone();
    // Alternate and take the minimum of several runs (cache warm-up
    // otherwise dominates at this scale).
    let mut t_on = f64::MAX;
    let mut t_off = f64::MAX;
    for _ in 0..5 {
        node.query.set_prune_enabled(true);
        let (t, _) = run_query_on(&cluster, &q6, EngineChoice::Column);
        t_on = t_on.min(t.as_secs_f64() * 1e3);
        node.query.set_prune_enabled(false);
        let (t, _) = run_query_on(&cluster, &q6, EngineChoice::Column);
        t_off = t_off.min(t.as_secs_f64() * 1e3);
    }
    node.query.set_prune_enabled(true);
    println!("pruning_on_ms\t{t_on:.2}");
    println!("pruning_off_ms\t{t_off:.2}");
    cluster.shutdown();

    // (B) CALS vs on-commit shipping: visibility delay comparison.
    println!("## ablation B: commit-ahead log shipping vs on-commit shipping");
    println!("## (VD after a 2000-row transaction: CALS overlaps parse/apply with");
    println!("## the transaction's execution; OnCommit starts only after the fsync)");
    for (label, mode) in [
        ("CALS", ShipMode::CommitAhead),
        ("OnCommit", ShipMode::OnCommit),
    ] {
        let cluster = Cluster::start(ClusterConfig {
            n_ro: 1,
            group_cap: 4096,
            latency: polarfs_sim::LatencyProfile::polarfs_like(),
            replication: ReplicationConfig {
                ship_mode: mode,
                ..Default::default()
            },
            ..Default::default()
        });
        let _ = imci_workloads::sysbench::Sysbench::setup(&cluster, 1, 100).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let mut total = Duration::ZERO;
        let samples = 10;
        let mut pk = 1_000_000i64;
        for _ in 0..samples {
            let rw = &cluster.rw;
            let mut txn = rw.begin();
            for _ in 0..2000 {
                let _ = rw.insert(
                    &mut txn,
                    "sbtest1",
                    vec![
                        imci_common::Value::Int(pk),
                        imci_common::Value::Int(rng.gen_range(0..1000)),
                        imci_common::Value::Str("x".repeat(100)),
                        imci_common::Value::Str("y".repeat(50)),
                    ],
                );
                pk += 1;
            }
            rw.commit(txn);
            total += cluster.measure_visibility_delay().unwrap_or(Duration::ZERO);
        }
        println!(
            "{label}\tmean_vd_us\t{:.1}",
            total.as_secs_f64() * 1e6 / samples as f64
        );
        cluster.shutdown();
    }
}
