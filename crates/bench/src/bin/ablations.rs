//! Ablations of DESIGN.md §3: pack pruning on/off, CALS on/off,
//! late-materialized scans on/off, DDL churn visibility, and
//! crash-recovery / RO→RW failover latency.
//!
//! `--smoke` runs every ablation at a tiny scale — CI uses it to keep
//! this binary from rotting without paying for real measurements.
//! `--json <path>` additionally writes the metrics as a `BENCH_*.json`
//! report (scenario → metric → value + git SHA) that CI uploads as an
//! artifact and gates with `bench-check` against the committed
//! baselines.

use imci_bench::{bench_cluster, run_query_on, BenchReport};
use imci_cluster::{Cluster, ClusterConfig, Consistency, ExecOpts};
use imci_common::{
    ColumnDef, DataType, FxHashMap, IndexDef, IndexKind, Schema, TableId, Value, Vid,
};
use imci_core::ColumnIndex;
use imci_executor::{execute, CmpOp, ExecContext, Expr, PhysicalPlan};
use imci_replication::{ReplicationConfig, ShipMode};
use imci_sql::EngineChoice;
use rand::{rngs::StdRng, Rng, SeedableRng};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let mut rep = BenchReport::new(smoke);
    ablation_a(smoke, &mut rep);
    ablation_b(smoke, &mut rep);
    ablation_c(smoke, &mut rep);
    ablation_d(smoke, &mut rep);
    ablation_e(smoke, &mut rep);
    ablation_e_plus(smoke, &mut rep);
    ablation_f(smoke, &mut rep);
    if let Some(path) = imci_bench::report::json_path_arg() {
        rep.write(&path).expect("write bench json");
        println!("\nwrote {path}");
    }
}

/// (A) pack pruning: selective Q6-style scan with/without min-max skipping.
fn ablation_a(smoke: bool, rep: &mut BenchReport) {
    println!("## ablation A: pack min/max pruning (TPC-H Q6-style scan)");
    let cluster = bench_cluster(1);
    let sf = if smoke { 0.0005 } else { 0.002 };
    imci_workloads::tpch::load(&cluster, sf, 21).unwrap();
    assert!(cluster.wait_sync(Duration::from_secs(120)));
    let q6 = imci_workloads::tpch::queries()[5].1.clone();
    let node = cluster.ros.read()[0].clone();
    // Alternate and take the minimum of several runs (cache warm-up
    // otherwise dominates at this scale).
    let reps = if smoke { 1 } else { 5 };
    let mut t_on = f64::MAX;
    let mut t_off = f64::MAX;
    for _ in 0..reps {
        node.query.set_prune_enabled(true);
        let (t, _) = run_query_on(&cluster, &q6, EngineChoice::Column);
        t_on = t_on.min(t.as_secs_f64() * 1e3);
        node.query.set_prune_enabled(false);
        let (t, _) = run_query_on(&cluster, &q6, EngineChoice::Column);
        t_off = t_off.min(t.as_secs_f64() * 1e3);
    }
    node.query.set_prune_enabled(true);
    println!("pruning_on_ms\t{t_on:.2}");
    println!("pruning_off_ms\t{t_off:.2}");
    rep.set("pruning", "pruning_on_ms", t_on);
    rep.set("pruning", "pruning_off_ms", t_off);
    cluster.shutdown();
}

/// (B) CALS vs on-commit shipping: visibility delay comparison.
fn ablation_b(smoke: bool, rep: &mut BenchReport) {
    println!("## ablation B: commit-ahead log shipping vs on-commit shipping");
    println!("## (VD after a 2000-row transaction: CALS overlaps parse/apply with");
    println!("## the transaction's execution; OnCommit starts only after the fsync)");
    let (samples, txn_rows) = if smoke { (2, 200) } else { (10, 2000) };
    for (label, mode) in [
        ("CALS", ShipMode::CommitAhead),
        ("OnCommit", ShipMode::OnCommit),
    ] {
        let cluster = Cluster::start(ClusterConfig {
            n_ro: 1,
            group_cap: 4096,
            latency: polarfs_sim::LatencyProfile::polarfs_like(),
            replication: ReplicationConfig {
                ship_mode: mode,
                ..Default::default()
            },
            ..Default::default()
        });
        let _ = imci_workloads::sysbench::Sysbench::setup(&cluster, 1, 100).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let mut total = Duration::ZERO;
        let mut pk = 1_000_000i64;
        for _ in 0..samples {
            let rw = cluster.rw().expect("RW node is up");
            let mut txn = rw.begin();
            for _ in 0..txn_rows {
                let _ = rw.insert(
                    &mut txn,
                    "sbtest1",
                    vec![
                        imci_common::Value::Int(pk),
                        imci_common::Value::Int(rng.gen_range(0..1000)),
                        imci_common::Value::Str("x".repeat(100)),
                        imci_common::Value::Str("y".repeat(50)),
                    ],
                );
                pk += 1;
            }
            rw.commit(txn).unwrap();
            total += cluster.measure_visibility_delay().unwrap_or(Duration::ZERO);
        }
        let mean_us = total.as_secs_f64() * 1e6 / samples as f64;
        println!("{label}\tmean_vd_us\t{mean_us:.1}");
        rep.set(
            "ship_mode",
            &format!("{}_mean_vd_us", label.to_ascii_lowercase()),
            mean_us,
        );
        cluster.shutdown();
    }
}

/// (C) late materialization: a selective (5%) filtered scan over a wide
/// table, filter evaluated on the compressed packs + one post-filter
/// gather vs the decode-everything-then-mask baseline.
fn ablation_c(smoke: bool, rep: &mut BenchReport) {
    let n: i64 = if smoke { 20_000 } else { 400_000 };
    let sel_limit = n / 20;
    println!("## ablation C: late-materialized scan (filter on compressed packs)");
    println!("## 6-column scan of {n} rows, key < {sel_limit} (5% selectivity)");
    let schema = Schema::new(
        TableId(99),
        "wide",
        vec![
            ColumnDef::not_null("id", DataType::Int),
            ColumnDef::new("key", DataType::Int),
            ColumnDef::new("qty", DataType::Int),
            ColumnDef::new("price", DataType::Double),
            ColumnDef::new("region", DataType::Str),
            ColumnDef::new("note", DataType::Str),
        ],
        vec![
            IndexDef {
                kind: IndexKind::Primary,
                name: "PRIMARY".into(),
                columns: vec![0],
            },
            IndexDef {
                kind: IndexKind::Column,
                name: "ci".into(),
                columns: vec![0, 1, 2, 3, 4, 5],
            },
        ],
    )
    .unwrap();
    let idx = ColumnIndex::for_schema(&schema, 65_536);
    let regions = [
        "east", "west", "north", "south", "eu", "apac", "latam", "mea",
    ];
    for i in 0..n {
        // 7919 is coprime to n: `key` is a uniform permutation, so every
        // pack spans the full key range and nothing min/max-prunes — the
        // measurement isolates the filter + gather path.
        let key = (i * 7919) % n;
        idx.insert(
            Vid(1),
            &[
                Value::Int(i),
                Value::Int(key),
                Value::Int(i % 50),
                Value::Double(i as f64 * 0.25),
                Value::Str(regions[(i % 8) as usize].into()),
                Value::Str(format!("note-{}", i % 997)),
            ],
        )
        .unwrap();
    }
    idx.advance_visible(Vid(1));
    let mut snaps = FxHashMap::default();
    snaps.insert(TableId(99), Arc::new(idx.snapshot()));
    let mut ctx = ExecContext::new(snaps);
    let plan = PhysicalPlan::ColumnScan {
        table: TableId(99),
        cols: vec![0, 1, 2, 3, 4, 5],
        prune: vec![],
        filter: Some(Expr::cmp(CmpOp::Lt, Expr::col(1), Expr::lit(sel_limit))),
    };
    let reps = if smoke { 2 } else { 7 };
    let mut t_on = f64::MAX;
    let mut t_off = f64::MAX;
    let mut rows = 0;
    for _ in 0..reps {
        ctx.late_materialization = true;
        let t0 = Instant::now();
        let on = execute(&plan, &ctx).unwrap();
        t_on = t_on.min(t0.elapsed().as_secs_f64() * 1e3);
        ctx.late_materialization = false;
        let t0 = Instant::now();
        let off = execute(&plan, &ctx).unwrap();
        t_off = t_off.min(t0.elapsed().as_secs_f64() * 1e3);
        assert_eq!(on.len, off.len, "ablation modes disagree");
        rows = on.len;
    }
    println!("rows_selected\t{rows}");
    println!("late_mat_on_ms\t{t_on:.2}");
    println!("late_mat_off_ms\t{t_off:.2}");
    println!("scan_mrows_per_s_on\t{:.1}", n as f64 / t_on / 1e3);
    println!("speedup\t{:.2}x", t_off / t_on);
    rep.set("late_mat", "rows_selected", rows as f64);
    rep.set("late_mat", "late_mat_on_ms", t_on);
    rep.set("late_mat", "late_mat_off_ms", t_off);
    rep.set("late_mat", "scan_mrows_per_s_on", n as f64 / t_on / 1e3);
    rep.set("late_mat", "speedup", t_off / t_on);
}

/// (D) DDL churn: tenant-per-table workloads create and drop tables
/// constantly. Measures CREATE TABLE → INSERT → first row-returning
/// SELECT on an RO node, per consistency level. DDL ships through the
/// REDO stream and its commit advances the written LSN, so strong reads
/// fence on the replica having applied the DDL (zero retries by
/// construction); eventual reads poll until the replica catches up,
/// which is the actual visibility latency. Each tenant's table is
/// dropped after the measurement, and the ablation asserts the page
/// high-water mark stays flat — dropped tables' B+tree pages are
/// recycled through the free list, not leaked.
fn ablation_d(smoke: bool, rep: &mut BenchReport) {
    println!("## ablation D: ddl_churn (create/drop-table → RO visibility latency)");
    let tenants = if smoke { 5 } else { 50 };
    for (label, level) in [
        ("eventual", Consistency::Eventual),
        ("strong", Consistency::Strong),
    ] {
        let cluster = Cluster::start(ClusterConfig {
            n_ro: 1,
            group_cap: 64,
            ..Default::default()
        });
        let opts = ExecOpts {
            consistency: Some(level),
            ..Default::default()
        };
        let mut total = Duration::ZERO;
        let mut retries = 0u64;
        let mut high_water_after_first = 0u64;
        for t in 0..tenants {
            let name = format!("tenant_{t}");
            let t0 = Instant::now();
            cluster
                .execute(&format!(
                    "CREATE TABLE {name} (id INT NOT NULL, v INT, PRIMARY KEY(id),
                     KEY COLUMN_INDEX(id, v))"
                ))
                .unwrap();
            cluster
                .execute(&format!("INSERT INTO {name} VALUES (1, {t})"))
                .unwrap();
            let deadline = Instant::now() + Duration::from_secs(10);
            loop {
                match cluster.execute_opts(&format!("SELECT v FROM {name} WHERE id = 1"), opts) {
                    Ok(res) if res.rows.len() == 1 => break,
                    r => {
                        assert!(
                            Instant::now() < deadline,
                            "tenant {t} never became visible: {r:?}"
                        );
                        retries += 1;
                        std::thread::yield_now();
                    }
                }
            }
            total += t0.elapsed();
            // Tenant churn: the table goes away once measured; its
            // pages must be recycled by the next tenant's CREATE.
            cluster.execute(&format!("DROP TABLE {name}")).unwrap();
            if t == 0 {
                high_water_after_first = cluster.rw().unwrap().page_allocator().high_water();
            }
        }
        let high_water_delta =
            cluster.rw().unwrap().page_allocator().high_water() - high_water_after_first;
        assert_eq!(
            high_water_delta, 0,
            "{label}: dropped tenants' pages must be recycled, not leaked"
        );
        let mean_us = total.as_secs_f64() * 1e6 / tenants as f64;
        println!(
            "{label}\tmean_create_to_visible_us\t{mean_us:.1}\tread_retries\t{retries}\tpage_high_water_delta\t{high_water_delta}"
        );
        rep.set(
            "ddl_churn",
            &format!("{label}_mean_create_to_visible_us"),
            mean_us,
        );
        rep.set(
            "ddl_churn",
            &format!("{label}_read_retries"),
            retries as f64,
        );
        rep.set(
            "ddl_churn",
            "page_high_water_delta",
            high_water_delta as f64,
        );
        cluster.shutdown();
    }
}

/// (F) morsel-driven parallelism: the same filtered scan and group-by
/// aggregation at `parallelism = 1` vs `parallelism = cores`. Scenario
/// names carry a `_c<cores>` label so bench-check never gates a 1-core
/// baseline against a multi-core run — on a 1-core container the
/// speedup is honestly ~1.0 (the pool adds only dispatch overhead);
/// the ≥1.5× expectation applies to multi-core hosts.
fn ablation_f(smoke: bool, rep: &mut BenchReport) {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let n: i64 = if smoke { 20_000 } else { 400_000 };
    println!("## ablation F: morsel-driven parallel execution ({cores} cores)");
    println!("## {n}-row scan + group-by agg, parallelism 1 vs {cores}");
    let schema = Schema::new(
        TableId(98),
        "mp",
        vec![
            ColumnDef::not_null("id", DataType::Int),
            ColumnDef::new("key", DataType::Int),
            ColumnDef::new("grp", DataType::Int),
            ColumnDef::new("amt", DataType::Double),
        ],
        vec![
            IndexDef {
                kind: IndexKind::Primary,
                name: "PRIMARY".into(),
                columns: vec![0],
            },
            IndexDef {
                kind: IndexKind::Column,
                name: "ci".into(),
                columns: vec![0, 1, 2, 3],
            },
        ],
    )
    .unwrap();
    // 4096-row groups → ~n/4096 morsels: enough units for every worker.
    let idx = ColumnIndex::for_schema(&schema, 4096);
    for i in 0..n {
        idx.insert(
            Vid(1),
            &[
                Value::Int(i),
                Value::Int((i * 7919) % n),
                Value::Int(i % 64),
                Value::Double(i as f64 * 0.25),
            ],
        )
        .unwrap();
    }
    idx.advance_visible(Vid(1));
    let mut snaps = FxHashMap::default();
    snaps.insert(TableId(98), Arc::new(idx.snapshot()));
    let mut ctx = ExecContext::new(snaps);
    let scan = PhysicalPlan::ColumnScan {
        table: TableId(98),
        cols: vec![0, 1, 2, 3],
        prune: vec![],
        filter: Some(Expr::cmp(CmpOp::Lt, Expr::col(1), Expr::lit(n / 2))),
    };
    let agg = PhysicalPlan::HashAgg {
        input: Box::new(scan.clone()),
        group_by: vec![Expr::col(2)],
        aggs: vec![
            imci_executor::AggCall {
                func: imci_executor::AggFunc::Count,
                arg: Some(Expr::col(0)),
                distinct: false,
            },
            imci_executor::AggCall {
                func: imci_executor::AggFunc::Sum,
                arg: Some(Expr::col(3)),
                distinct: false,
            },
        ],
    };
    let reps = if smoke { 2 } else { 7 };
    for (stem, plan) in [("parallel_scan", &scan), ("parallel_agg", &agg)] {
        let mut serial_ms = f64::MAX;
        let mut parallel_ms = f64::MAX;
        for _ in 0..reps {
            ctx.parallelism = 1;
            let t0 = Instant::now();
            let a = execute(plan, &ctx).unwrap();
            serial_ms = serial_ms.min(t0.elapsed().as_secs_f64() * 1e3);
            ctx.parallelism = cores;
            let t0 = Instant::now();
            let b = execute(plan, &ctx).unwrap();
            parallel_ms = parallel_ms.min(t0.elapsed().as_secs_f64() * 1e3);
            assert_eq!(a.len, b.len, "parallel and serial runs disagree");
        }
        let speedup = serial_ms / parallel_ms;
        let scenario = format!("{stem}_c{cores}");
        println!("{scenario}\tserial_ms\t{serial_ms:.2}\tparallel_ms\t{parallel_ms:.2}\tspeedup\t{speedup:.2}x");
        rep.set(&scenario, "serial_ms", serial_ms);
        rep.set(&scenario, "parallel_ms", parallel_ms);
        rep.set(&scenario, "speedup", speedup);
    }
}

/// (E) failover: the fault-tolerance workload class. Crash the RW and
/// measure (1) crash→recovered latency (restart recovery: checkpoint +
/// REDO suffix + in-flight rollback), then crash again and measure
/// (2) crash→promoted latency (RO→RW failover: epoch fence, pipeline
/// drain to the log tail, writer-mode flip) and (3) post-failover
/// freshness (visibility delay through the new RW to the surviving RO).
fn ablation_e(smoke: bool, rep: &mut BenchReport) {
    println!("## ablation E: failover (crash→recovered / crash→promoted)");
    let rows: i64 = if smoke { 2_000 } else { 50_000 };
    let cluster = Cluster::start(ClusterConfig {
        n_ro: 2,
        group_cap: 4096,
        ..Default::default()
    });
    cluster
        .execute(
            "CREATE TABLE ha (id INT NOT NULL, v INT, PRIMARY KEY(id),
             KEY COLUMN_INDEX(id, v))",
        )
        .unwrap();
    let rw = cluster.rw().unwrap();
    let mut txn = rw.begin();
    for i in 0..rows {
        rw.insert(&mut txn, "ha", vec![Value::Int(i), Value::Int(i)])
            .unwrap();
    }
    rw.commit(txn).unwrap();
    assert!(cluster.wait_sync(Duration::from_secs(120)));
    cluster.checkpoint_now().unwrap();
    // Post-checkpoint traffic: recovery replays this suffix.
    let suffix = rows / 10;
    let mut txn = rw.begin();
    for i in rows..rows + suffix {
        rw.insert(&mut txn, "ha", vec![Value::Int(i), Value::Int(i)])
            .unwrap();
    }
    rw.commit(txn).unwrap();
    // One transaction is in flight at the crash.
    let mut doomed = rw.begin();
    rw.insert(&mut doomed, "ha", vec![Value::Int(-1), Value::Int(0)])
        .unwrap();
    drop(rw);
    let committed = rows + suffix;

    // Best-of-N cycles for the gated latencies: a single sub-ms sample
    // is dominated by thread spawn/scheduler noise, and bench-check
    // gates these against the committed baselines.
    let cycles = if smoke { 3 } else { 5 };

    // (1) crash → restart recovery (crash/recover repeats in place;
    // each cycle replays the same checkpoint suffix plus the few
    // compensation records earlier cycles appended).
    let mut recover_ms = f64::MAX;
    let mut replayed = 0usize;
    let mut rolled_back = 0usize;
    for _ in 0..cycles {
        cluster.crash_rw();
        let t0 = Instant::now();
        let rec = cluster.recover_rw().unwrap();
        recover_ms = recover_ms.min(t0.elapsed().as_secs_f64() * 1e3);
        replayed = rec.entries_replayed;
        rolled_back += rec.rolled_back_txns;
        let count = cluster.rw().unwrap().row_count("ha").unwrap() as i64;
        assert_eq!(
            count, committed,
            "recovery must restore every committed txn"
        );
    }
    println!("recover_ms\t{recover_ms:.2}");
    println!("recover_replayed_entries\t{replayed}\trolled_back_txns\t{rolled_back}");
    rep.set("failover", "recover_ms", recover_ms);
    rep.set("failover", "recover_replayed_entries", replayed as f64);

    // (2) crash again → RO→RW promotion. Each cycle consumes an RO, so
    // replenish with a checkpoint-seeded scale-out between cycles.
    let mut failover_ms = f64::MAX;
    let mut drain_ms = f64::MAX;
    let mut promoted = String::new();
    for cycle in 0..cycles {
        cluster.crash_rw();
        let t0 = Instant::now();
        let fo = cluster.failover().unwrap();
        failover_ms = failover_ms.min(t0.elapsed().as_secs_f64() * 1e3);
        drain_ms = drain_ms.min(fo.drain_time.as_secs_f64() * 1e3);
        promoted = fo.promoted;
        let count = cluster.rw().unwrap().row_count("ha").unwrap() as i64;
        assert_eq!(count, committed, "promotion must keep every committed txn");
        if cycle + 1 < cycles {
            cluster.scale_out().unwrap();
        }
    }
    println!("failover_ms\t{failover_ms:.2}\tpromoted\t{promoted}\tdrain_ms\t{drain_ms:.2}");
    rep.set("failover", "failover_ms", failover_ms);
    rep.set("failover", "drain_ms", drain_ms);

    // (3) post-failover freshness: writes through the promoted RW reach
    // the surviving RO with ordinary CALS latency. Best-of-several
    // probes — a single µs-scale condvar wakeup is scheduler noise,
    // and this metric is gated by bench-check.
    cluster
        .execute(&format!("INSERT INTO ha VALUES ({}, 0)", rows * 2))
        .unwrap();
    let vd_us = (0..10)
        .map(|_| {
            cluster
                .measure_visibility_delay()
                .expect("surviving RO serves")
                .as_secs_f64()
                * 1e6
        })
        .fold(f64::MAX, f64::min);
    println!("post_failover_vd_us\t{vd_us:.1}");
    rep.set("failover", "post_failover_vd_us", vd_us);
    cluster.shutdown();
}

/// (E+) crash under load: sustained mixed traffic through the **server
/// tier** while the RW is killed. Nobody calls `failover()` — the
/// cluster supervisor detects the silent lease and promotes, and the
/// server transparently replays the statements caught in flight.
/// Reports the supervisor's detection latency, the client-visible
/// error count (asserted zero: every statement in this workload is
/// replayable — reads plus `STMT`-tagged writes), and the throughput
/// dip of the kill→detect→promote→recover window relative to steady
/// state.
fn ablation_e_plus(smoke: bool, rep: &mut BenchReport) {
    use imci_cluster::SupervisorConfig;
    use imci_server::{Client, Server, ServerConfig};
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

    println!("## ablation E+: crash under load (kill → detect → promote → recover)");
    let cluster = Cluster::start(ClusterConfig {
        n_ro: 2,
        group_cap: 4096,
        heartbeat_interval: Duration::from_millis(5),
        supervisor: Some(SupervisorConfig {
            lease_timeout: Duration::from_millis(60),
            jitter: Duration::from_millis(20),
            seed: 0x0ab1_a7e5,
        }),
        ..Default::default()
    });
    let server = Server::start(cluster.clone(), ServerConfig::default()).expect("server start");
    let addr = server.local_addr();
    {
        let mut c = Client::connect(addr).expect("bootstrap client");
        c.execute(
            "CREATE TABLE load (id INT NOT NULL, v INT, PRIMARY KEY(id),
             KEY COLUMN_INDEX(id, v))",
        )
        .unwrap();
    }
    let n_workers: u64 = if smoke { 2 } else { 4 };
    let steady = if smoke {
        Duration::from_millis(400)
    } else {
        Duration::from_secs(2)
    };
    let ops = Arc::new(AtomicU64::new(0));
    let errors = Arc::new(AtomicU64::new(0));
    let stop = Arc::new(AtomicBool::new(false));
    let workers: Vec<_> = (0..n_workers)
        .map(|w| {
            let (ops, errors, stop) = (ops.clone(), errors.clone(), stop.clone());
            std::thread::spawn(move || {
                let mut c = Client::connect(addr).expect("worker connect");
                let mut seq = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    // 1 tagged write : 1 read, unique ids per worker.
                    let id = w * 10_000_000 + seq;
                    let write =
                        c.execute_tagged(id, &format!("INSERT INTO load VALUES ({id}, {w})"));
                    let read = c.execute("SELECT COUNT(*) FROM load");
                    for result in [write.map(drop), read.map(drop)] {
                        match result {
                            Ok(()) => ops.fetch_add(1, Ordering::Relaxed),
                            Err(_) => errors.fetch_add(1, Ordering::Relaxed),
                        };
                    }
                    seq += 1;
                }
            })
        })
        .collect();

    // Steady-state throughput window.
    let t0 = Instant::now();
    std::thread::sleep(steady);
    let steady_ops = ops.load(Ordering::Relaxed);
    let steady_rate = steady_ops as f64 / t0.elapsed().as_secs_f64();

    // Kill the writer mid-traffic. The supervisor must notice the
    // silent lease and promote on its own.
    let kill_t = Instant::now();
    cluster.crash_rw();
    assert!(
        cluster.wait_for_writer(Duration::from_secs(30)),
        "supervisor never promoted a new writer"
    );
    // The detection counter lands moments after the writer install.
    let deadline = Instant::now() + Duration::from_secs(10);
    while cluster.auto_failovers() == 0 {
        assert!(Instant::now() < deadline, "promotion not recorded");
        std::thread::yield_now();
    }
    let detect_ms = cluster.detection_ms_last() as f64;

    // Measure the outage window over the same wall-clock length as the
    // steady window, anchored at the kill, so it contains detection,
    // promotion, column rebuild, and the post-promotion ramp.
    let elapsed = kill_t.elapsed();
    if elapsed < steady {
        std::thread::sleep(steady - elapsed);
    }
    let outage_ops = ops.load(Ordering::Relaxed) - steady_ops;
    let outage_rate = outage_ops as f64 / kill_t.elapsed().as_secs_f64();
    let dip_pct = ((1.0 - outage_rate / steady_rate) * 100.0).max(0.0);

    stop.store(true, Ordering::Relaxed);
    for worker in workers {
        worker.join().expect("load worker");
    }
    // The error window: every statement here is replayable, so the
    // target is *zero* client-visible errors across the whole cycle.
    let client_errors = errors.load(Ordering::Relaxed);
    assert_eq!(
        client_errors, 0,
        "replayable statements must ride through the failover without errors"
    );
    let replayed = server.stats().replayed_stmts.load(Ordering::Relaxed);

    // Full HTAP after promotion, end to end through the server.
    let mut c = Client::connect(addr).expect("post-promotion client");
    c.set_force_engine(Some(imci_sql::EngineChoice::Column))
        .unwrap();
    let agg = c
        .execute("SELECT v, COUNT(*) FROM load GROUP BY v")
        .unwrap();
    assert_eq!(
        agg.engine,
        EngineChoice::Column,
        "promoted topology must serve column plans"
    );

    println!("detect_ms\t{detect_ms:.1}");
    println!("throughput_dip_pct\t{dip_pct:.1}");
    println!("client_errors\t{client_errors}\treplayed_stmts\t{replayed}");
    rep.set("crash_under_load", "detect_ms", detect_ms);
    rep.set("crash_under_load", "throughput_dip_pct", dip_pct);
    rep.set("crash_under_load", "client_errors", client_errors as f64);
    rep.set("crash_under_load", "replayed_stmts", replayed as f64);
    server.shutdown();
    cluster.shutdown();
}
