//! Fig. 9: TPC-H execution time — column engine vs row engine vs a
//! naive-columnar baseline (the ClickHouse stand-in: no pack pruning,
//! single-threaded scans; see DESIGN.md §4).

use imci_bench::{bench_cluster, env_f64, geomean, run_query_on};
use imci_sql::EngineChoice;

fn main() {
    let sf = env_f64("SF", 0.002);
    println!("# paper: Fig 9 — IMCI ~5.6x (100G) / ~12x (1T) geomean over row engine; comparable to ClickHouse");
    println!("# sf={sf}");
    let cluster = bench_cluster(1);
    let rows = imci_workloads::tpch::load(&cluster, sf, 42).unwrap();
    assert!(cluster.wait_sync(std::time::Duration::from_secs(300)));
    println!("# loaded {rows} rows");
    println!("query\tcolumn_ms\tnaive_columnar_ms\trow_ms\tspeedup_vs_row");
    let (mut col, mut naive, mut row) = (Vec::new(), Vec::new(), Vec::new());
    for (name, sql) in imci_workloads::tpch::queries() {
        let (tc, n1) = run_query_on(&cluster, &sql, EngineChoice::Column);
        // naive columnar: pruning off, parallelism 1
        let node = cluster.ros.read()[0].clone();
        let saved = (node.query.get_parallelism(), node.query.get_prune_enabled());
        node.query.set_parallelism(1);
        node.query.set_prune_enabled(false);
        let (tn, n2) = run_query_on(&cluster, &sql, EngineChoice::Column);
        node.query.set_parallelism(saved.0);
        node.query.set_prune_enabled(saved.1);
        let (tr, n3) = run_query_on(&cluster, &sql, EngineChoice::Row);
        assert_eq!(n1, n3, "{name}: engines disagree on row count");
        assert_eq!(n2, n3, "{name}: naive engine disagrees");
        let (c, nv, r) = (
            tc.as_secs_f64() * 1e3,
            tn.as_secs_f64() * 1e3,
            tr.as_secs_f64() * 1e3,
        );
        println!("{name}\t{c:.2}\t{nv:.2}\t{r:.2}\t{:.1}", r / c.max(1e-6));
        col.push(c);
        naive.push(nv);
        row.push(r);
    }
    println!(
        "Gmean\t{:.2}\t{:.2}\t{:.2}\t{:.1}",
        geomean(&col),
        geomean(&naive),
        geomean(&row),
        geomean(&row) / geomean(&col).max(1e-9)
    );
    cluster.shutdown();
}
