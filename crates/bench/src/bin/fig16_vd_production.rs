//! Fig. 16: visibility delay over a compressed "24-hour" diurnal load.

use imci_bench::{bench_cluster, env_usize};
use rand::{rngs::StdRng, SeedableRng};
use std::time::Duration;

fn main() {
    println!("# paper: Fig 16 — VD tracks the customer's OLTP rate over 24h and stays < 20ms");
    let cluster = bench_cluster(1);
    let wl = imci_workloads::sysbench::Sysbench::setup(&cluster, 2, 200).unwrap();
    assert!(cluster.wait_sync(Duration::from_secs(60)));
    let hours = env_usize("VIRTUAL_HOURS", 24);
    let ops_peak = env_usize("PEAK_OPS_PER_HOUR", 400);
    println!("virtual_hour\tops_issued\tvd_ms");
    let mut rng = StdRng::seed_from_u64(4);
    for h in 0..hours {
        // diurnal curve: trough at 4am, peak at 4pm
        let phase = (h as f64 - 16.0) / 24.0 * std::f64::consts::TAU;
        let rate = ((1.0 + phase.cos()) / 2.0 * ops_peak as f64) as usize + 10;
        for _ in 0..rate {
            let _ = wl.insert_one(&cluster, &mut rng);
        }
        let vd = cluster.measure_visibility_delay().unwrap_or(Duration::ZERO);
        println!("{h}\t{rate}\t{:.3}", vd.as_secs_f64() * 1e3);
    }
    cluster.shutdown();
}
