//! Fig. 10: CH-benCHmark performance isolation — OLTP throughput while
//! AP clients grow (a), OLAP throughput while TP clients grow (b).

use imci_bench::{bench_cluster, env_usize};
use imci_sql::EngineChoice;
use rand::{rngs::StdRng, SeedableRng};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn main() {
    let warehouses = env_usize("WAREHOUSES", 2) as i64;
    let window_ms = env_usize("WINDOW_MS", 1500) as u64;
    println!(
        "# paper: Fig 10 — OLTP loss <5% as AP clients grow; OLAP loss <20% as TP clients grow"
    );
    let cluster = bench_cluster(1);
    let ch = Arc::new(imci_workloads::chbench::ChBench::setup(&cluster, warehouses).unwrap());
    assert!(cluster.wait_sync(Duration::from_secs(120)));
    cluster.ros.read()[0]
        .query
        .set_force(Some(EngineChoice::Column));
    let queries = imci_workloads::chbench::analytical_queries();

    let run_mix = |tp_threads: usize, ap_threads: usize| -> (f64, f64) {
        let stop = Arc::new(AtomicBool::new(false));
        let tp_ops = Arc::new(AtomicU64::new(0));
        let ap_ops = Arc::new(AtomicU64::new(0));
        let mut handles = Vec::new();
        for t in 0..tp_threads {
            let (c, ch, stop, ops) = (cluster.clone(), ch.clone(), stop.clone(), tp_ops.clone());
            handles.push(std::thread::spawn(move || {
                let mut rng = StdRng::seed_from_u64(t as u64 + 1);
                while !stop.load(Ordering::Relaxed) {
                    if ch.new_order(&c, &mut rng).is_ok() {
                        ops.fetch_add(1, Ordering::Relaxed);
                    }
                    if ch.payment(&c, &mut rng).is_ok() {
                        ops.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }));
        }
        for t in 0..ap_threads {
            let (c, stop, ops, qs) = (
                cluster.clone(),
                stop.clone(),
                ap_ops.clone(),
                queries.clone(),
            );
            handles.push(std::thread::spawn(move || {
                let mut i = t;
                while !stop.load(Ordering::Relaxed) {
                    let (_, sql) = &qs[i % qs.len()];
                    if c.execute(sql).is_ok() {
                        ops.fetch_add(1, Ordering::Relaxed);
                    }
                    i += 1;
                }
            }));
        }
        std::thread::sleep(Duration::from_millis(window_ms));
        stop.store(true, Ordering::SeqCst);
        for h in handles {
            let _ = h.join();
        }
        let secs = window_ms as f64 / 1e3;
        (
            tp_ops.load(Ordering::SeqCst) as f64 / secs,
            ap_ops.load(Ordering::SeqCst) as f64 / secs,
        )
    };

    println!("## (a) fixed TP clients, growing AP clients");
    println!("ap_clients\toltp_tps\tolap_qps");
    let base_tp = env_usize("TP_THREADS", 4);
    for ap in [0usize, 1, 2, 4, 8] {
        let (tp, apq) = run_mix(base_tp, ap);
        println!("{ap}\t{tp:.0}\t{apq:.1}");
    }
    println!("## (b) fixed AP clients, growing TP clients");
    println!("tp_clients\toltp_tps\tolap_qps");
    for tp in [0usize, 2, 4, 8] {
        let (tps, apq) = run_mix(tp, 2);
        println!("{tp}\t{tps:.0}\t{apq:.1}");
    }
    cluster.shutdown();
}
