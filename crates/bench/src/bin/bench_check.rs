//! `bench-check`: gate CI on the bench JSON trajectory.
//!
//! ```text
//! bench-check <baseline.json> <current.json> [--tolerance 0.5]
//! ```
//!
//! Compares every perf-shaped metric (latencies lower-is-better,
//! throughputs higher-is-better; see `report::direction_of`) in the
//! committed baseline against the current run and exits non-zero when
//! any regresses beyond the tolerance. Counts and flags are printed but
//! never gated. Smoke baselines only compare against smoke runs: the
//! scales differ by design, so a cross comparison would gate nothing
//! real.

use imci_bench::report::{compare, parse_report, ParsedReport};

fn load(path: &str) -> ParsedReport {
    let text =
        std::fs::read_to_string(path).unwrap_or_else(|e| die(&format!("cannot read {path}: {e}")));
    parse_report(&text).unwrap_or_else(|e| die(&format!("cannot parse {path}: {e}")))
}

fn die(msg: &str) -> ! {
    eprintln!("bench-check: {msg}");
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut paths = Vec::new();
    let mut tolerance = 0.5f64;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--tolerance" => {
                tolerance = args
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--tolerance needs a number"));
                i += 2;
            }
            other => {
                paths.push(other.to_string());
                i += 1;
            }
        }
    }
    if paths.len() != 2 {
        die("usage: bench-check <baseline.json> <current.json> [--tolerance 0.5]");
    }
    let baseline = load(&paths[0]);
    let current = load(&paths[1]);
    if baseline.smoke != current.smoke {
        die(&format!(
            "scale mismatch: baseline smoke={} vs current smoke={} — \
             comparing different scales gates nothing",
            baseline.smoke, current.smoke
        ));
    }

    let comparisons = compare(&baseline, &current, tolerance);
    if comparisons.is_empty() {
        println!(
            "bench-check: no gated metrics in {} — nothing to compare",
            paths[0]
        );
        return;
    }
    println!(
        "bench-check: {} vs {} (tolerance {:.0}%, baseline sha {})",
        paths[0],
        paths[1],
        tolerance * 100.0,
        &baseline.git_sha[..baseline.git_sha.len().min(12)],
    );
    let mut failures = 0;
    for c in &comparisons {
        let status = if c.failed { "FAIL" } else { "ok  " };
        println!(
            "  {status} {:<45} base {:>12.2}  now {:>12.2}  ({:+.1}% worse)",
            c.key,
            c.baseline,
            c.current,
            c.regression * 100.0
        );
        if c.failed {
            failures += 1;
        }
    }
    if failures > 0 {
        eprintln!(
            "bench-check: {failures}/{} metric(s) regressed beyond {:.0}% — failing the build",
            comparisons.len(),
            tolerance * 100.0
        );
        std::process::exit(1);
    }
    println!(
        "bench-check: all {} gated metric(s) within tolerance",
        comparisons.len()
    );
}
