//! `server_throughput`: queries/sec through the full service stack
//! (client → TCP → thread-pool server → proxy routing → RW/RO nodes)
//! for a mixed OLTP point-read + OLAP aggregate workload at 1, 4, and
//! 16 client connections.
//!
//! The paper's claim this exercises: the stateless proxy tier scales
//! concurrent mixed traffic by read/write splitting and RO
//! load-balancing (§6.1), without analytical queries starving point
//! reads (Fig. 10's HTAP mix, here at the service layer).

use imci_cluster::{Cluster, ClusterConfig, Consistency};
use imci_server::{Client, Server, ServerConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const ROWS: i64 = 20_000;
const GROUPS: i64 = 16;
/// One OLAP aggregate per this many OLTP point reads.
const OLAP_EVERY: u64 = 20;
const MEASURE: Duration = Duration::from_secs(3);

fn main() {
    let cluster = Cluster::start(ClusterConfig {
        n_ro: 2,
        group_cap: 4096,
        ..Default::default()
    });
    cluster
        .execute(
            "CREATE TABLE mix (id INT NOT NULL, grp INT, val DOUBLE, note VARCHAR(32),
             PRIMARY KEY(id), KEY COLUMN_INDEX(id, grp, val, note))",
        )
        .unwrap();
    // Bulk-load through the cluster API (batched inserts), then let the
    // ROs catch up before measuring.
    let mut batch = Vec::new();
    for i in 0..ROWS {
        batch.push(format!("({i}, {}, {}, 'n{}')", i % GROUPS, i as f64 * 0.5, i % 7));
        if batch.len() == 500 {
            cluster
                .execute(&format!("INSERT INTO mix VALUES {}", batch.join(", ")))
                .unwrap();
            batch.clear();
        }
    }
    if !batch.is_empty() {
        cluster
            .execute(&format!("INSERT INTO mix VALUES {}", batch.join(", ")))
            .unwrap();
    }
    assert!(cluster.wait_sync(Duration::from_secs(60)), "RO catch-up");

    let server = Server::start(
        cluster.clone(),
        ServerConfig {
            workers: 32,
            ..Default::default()
        },
    )
    .unwrap();
    let addr = server.local_addr();

    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    println!(
        "server_throughput: {ROWS} rows, OLTP:OLAP = {OLAP_EVERY}:1, {MEASURE:?} per point, {cores} core(s)"
    );
    if cores == 1 {
        println!("note: single-core host — expect a flat curve; connection scaling needs cores");
    }
    println!("{:>6} {:>12} {:>12} {:>12}", "conns", "queries/s", "oltp/s", "olap/s");
    for conns in [1usize, 4, 16] {
        let stop = Arc::new(AtomicBool::new(false));
        let mut handles = Vec::new();
        for t in 0..conns {
            let stop = stop.clone();
            let mut client = Client::connect(addr).unwrap();
            handles.push(std::thread::spawn(move || {
                client.set_consistency(Consistency::Eventual).unwrap();
                let mut rng = StdRng::seed_from_u64(t as u64 + 1);
                let (mut oltp, mut olap) = (0u64, 0u64);
                let mut n = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    n += 1;
                    if n % OLAP_EVERY == 0 {
                        client
                            .execute(
                                "SELECT grp, COUNT(*), SUM(val) FROM mix
                                 GROUP BY grp ORDER BY grp",
                            )
                            .unwrap();
                        olap += 1;
                    } else {
                        let id = rng.gen_range(0..ROWS);
                        client
                            .execute(&format!("SELECT note FROM mix WHERE id = {id}"))
                            .unwrap();
                        oltp += 1;
                    }
                }
                (oltp, olap)
            }));
        }
        let t0 = Instant::now();
        std::thread::sleep(MEASURE);
        stop.store(true, Ordering::Relaxed);
        let (mut oltp, mut olap) = (0u64, 0u64);
        for h in handles {
            let (a, b) = h.join().unwrap();
            oltp += a;
            olap += b;
        }
        let secs = t0.elapsed().as_secs_f64();
        println!(
            "{:>6} {:>12.0} {:>12.0} {:>12.0}",
            conns,
            (oltp + olap) as f64 / secs,
            oltp as f64 / secs,
            olap as f64 / secs
        );
    }
    server.shutdown();
    cluster.shutdown();
}
