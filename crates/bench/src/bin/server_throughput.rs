//! `server_throughput`: queries/sec through the full service stack
//! (client → TCP → thread-pool server → proxy routing → RW/RO nodes).
//!
//! Two measurements:
//!
//! 1. **Protocol modes** (1 connection, pure point reads): the same
//!    workload through the v1 text protocol, the v2 binary protocol
//!    one statement per roundtrip, v2 with a 32-deep pipeline, and v2
//!    with `BATCH 32` framing. This isolates the wire-layer overhead
//!    the v2 redesign removes — per-roundtrip syscalls/flushes and
//!    per-cell text formatting (~80µs/query before it).
//! 2. **Mixed workload scaling** (1/4/16 connections, OLTP point reads
//!    and OLAP aggregates): the paper's claim that the stateless proxy
//!    tier scales concurrent mixed traffic by read/write splitting and
//!    RO load-balancing (§6.1) without analytical queries starving
//!    point reads. The JSON scenario is labeled with the detected core
//!    count (`mixed_scaling_c<n>`) because the curve's shape *is* a
//!    function of cores; `bench-check` skips cross-core comparisons.
//!
//! A third measurement runs instead of the two above under
//! `--idle-conns`: the reactor tier's reason to exist. 1,000 idle
//! connections are held open while one session drives point-read
//! traffic and another churns connect/close in a loop. Reported:
//! resident memory with the sessions parked (thread-per-connection
//! dies here; the reactor pays one fd + a few hundred bytes each),
//! active-traffic p99 latency (idle fds must not cost the busy session
//! anything), and the churn rate the acceptor sustains alongside.

use imci_bench::BenchReport;
use imci_cluster::{Cluster, ClusterConfig, Consistency};
use imci_server::{Client, Server, ServerConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const GROUPS: i64 = 16;
/// One OLAP aggregate per this many OLTP point reads.
const OLAP_EVERY: u64 = 20;
/// Pipeline depth / batch size for the protocol-mode comparison.
const WINDOW: usize = 32;

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    RoundtripV1,
    RoundtripV2,
    Pipelined,
    Batched,
}

impl Mode {
    fn name(self) -> &'static str {
        match self {
            Mode::RoundtripV1 => "roundtrip-v1",
            Mode::RoundtripV2 => "roundtrip-v2",
            Mode::Pipelined => "pipelined-32",
            Mode::Batched => "batched-32",
        }
    }
}

fn point_read(rng: &mut StdRng, rows: i64) -> String {
    let id = rng.gen_range(0..rows);
    format!("SELECT note FROM mix WHERE id = {id}")
}

/// Point-read throughput on one connection in the given protocol mode.
fn run_mode(addr: std::net::SocketAddr, mode: Mode, rows: i64, measure: Duration) -> f64 {
    let mut client = match mode {
        Mode::RoundtripV1 => Client::connect_v1(addr).unwrap(),
        _ => Client::connect(addr).unwrap(),
    };
    client.set_consistency(Consistency::Eventual).unwrap();
    let mut rng = StdRng::seed_from_u64(7);
    let mut done = 0u64;
    let t0 = Instant::now();
    while t0.elapsed() < measure {
        match mode {
            Mode::RoundtripV1 | Mode::RoundtripV2 => {
                client.execute(&point_read(&mut rng, rows)).unwrap();
                done += 1;
            }
            Mode::Pipelined => {
                for _ in 0..WINDOW {
                    client.send(&point_read(&mut rng, rows)).unwrap();
                }
                for _ in 0..WINDOW {
                    client.recv().unwrap();
                }
                done += WINDOW as u64;
            }
            Mode::Batched => {
                let stmts: Vec<String> = (0..WINDOW).map(|_| point_read(&mut rng, rows)).collect();
                for r in client.execute_batch(&stmts).unwrap() {
                    r.unwrap();
                }
                done += WINDOW as u64;
            }
        }
    }
    done as f64 / t0.elapsed().as_secs_f64()
}

/// Boot a cluster and bulk-load the `mix` table through the cluster
/// API (batched inserts), waiting for RO catch-up before measuring.
fn load_cluster(rows: i64) -> Arc<Cluster> {
    let cluster = Cluster::start(ClusterConfig {
        n_ro: 2,
        group_cap: 4096,
        ..Default::default()
    });
    cluster
        .execute(
            "CREATE TABLE mix (id INT NOT NULL, grp INT, val DOUBLE, note VARCHAR(32),
             PRIMARY KEY(id), KEY COLUMN_INDEX(id, grp, val, note))",
        )
        .unwrap();
    let mut batch = Vec::new();
    for i in 0..rows {
        batch.push(format!(
            "({i}, {}, {}, 'n{}')",
            i % GROUPS,
            i as f64 * 0.5,
            i % 7
        ));
        if batch.len() == 500 {
            cluster
                .execute(&format!("INSERT INTO mix VALUES {}", batch.join(", ")))
                .unwrap();
            batch.clear();
        }
    }
    if !batch.is_empty() {
        cluster
            .execute(&format!("INSERT INTO mix VALUES {}", batch.join(", ")))
            .unwrap();
    }
    assert!(cluster.wait_sync(Duration::from_secs(60)), "RO catch-up");
    cluster
}

/// This process's resident set in KiB (`VmRSS` from `/proc`), 0 where
/// /proc is unavailable.
fn rss_kib() -> u64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines().find_map(|l| {
                l.strip_prefix("VmRSS:")
                    .and_then(|v| v.split_whitespace().next().and_then(|n| n.parse().ok()))
            })
        })
        .unwrap_or(0)
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    if std::env::args().any(|a| a == "--idle-conns") {
        return run_idle_conns(smoke);
    }
    let mut rep = BenchReport::new(smoke);
    let rows: i64 = if smoke { 2_000 } else { 20_000 };
    let measure = if smoke {
        Duration::from_millis(300)
    } else {
        Duration::from_secs(3)
    };
    let conn_counts: &[usize] = if smoke { &[1, 4] } else { &[1, 4, 16] };
    let cluster = load_cluster(rows);

    let server = Server::start(
        cluster.clone(),
        ServerConfig {
            workers: 32,
            ..Default::default()
        },
    )
    .unwrap();
    let addr = server.local_addr();

    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!("server_throughput: {rows} rows, {measure:?} per point, {cores} core(s)");
    if cores == 1 {
        println!("note: single-core host — expect a flat connection curve; scaling needs cores");
    }

    // ---- 1. protocol modes, pure point reads, one connection ----
    println!("\nprotocol modes (point reads, 1 connection, window={WINDOW}):");
    println!(
        "{:>14} {:>12} {:>10} {:>12}",
        "mode", "queries/s", "µs/query", "vs roundtrip"
    );
    let baseline = run_mode(addr, Mode::RoundtripV2, rows, measure);
    for mode in [
        Mode::RoundtripV1,
        Mode::RoundtripV2,
        Mode::Pipelined,
        Mode::Batched,
    ] {
        let qps = if mode == Mode::RoundtripV2 {
            baseline
        } else {
            run_mode(addr, mode, rows, measure)
        };
        println!(
            "{:>14} {:>12.0} {:>10.1} {:>11.2}x",
            mode.name(),
            qps,
            1e6 / qps,
            qps / baseline
        );
        rep.set(
            "protocol_modes",
            &format!("{}_qps", mode.name().replace('-', "_")),
            qps,
        );
    }

    // ---- 2. mixed workload, connection scaling ----
    println!("\nmixed workload (OLTP:OLAP = {OLAP_EVERY}:1, per-statement roundtrips):");
    println!(
        "{:>6} {:>12} {:>12} {:>12}",
        "conns", "queries/s", "oltp/s", "olap/s"
    );
    for &conns in conn_counts {
        let stop = Arc::new(AtomicBool::new(false));
        let mut handles = Vec::new();
        for t in 0..conns {
            let stop = stop.clone();
            let mut client = Client::connect(addr).unwrap();
            handles.push(std::thread::spawn(move || {
                client.set_consistency(Consistency::Eventual).unwrap();
                let mut rng = StdRng::seed_from_u64(t as u64 + 1);
                let (mut oltp, mut olap) = (0u64, 0u64);
                let mut n = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    n += 1;
                    if n.is_multiple_of(OLAP_EVERY) {
                        client
                            .execute(
                                "SELECT grp, COUNT(*), SUM(val) FROM mix
                                 GROUP BY grp ORDER BY grp",
                            )
                            .unwrap();
                        olap += 1;
                    } else {
                        client.execute(&point_read(&mut rng, rows)).unwrap();
                        oltp += 1;
                    }
                }
                (oltp, olap)
            }));
        }
        let t0 = Instant::now();
        std::thread::sleep(measure);
        stop.store(true, Ordering::Relaxed);
        let (mut oltp, mut olap) = (0u64, 0u64);
        for h in handles {
            let (a, b) = h.join().unwrap();
            oltp += a;
            olap += b;
        }
        let secs = t0.elapsed().as_secs_f64();
        println!(
            "{:>6} {:>12.0} {:>12.0} {:>12.0}",
            conns,
            (oltp + olap) as f64 / secs,
            oltp as f64 / secs,
            olap as f64 / secs
        );
        // Core-labeled: this curve's shape depends on the host's core
        // count, so bench-check only compares like against like.
        rep.set(
            &format!("mixed_scaling_c{cores}"),
            &format!("conns{conns}_total_qps"),
            (oltp + olap) as f64 / secs,
        );
    }
    if let Some(path) = imci_bench::report::json_path_arg() {
        rep.write(&path).expect("write bench json");
        println!("\nwrote {path}");
    }
    server.shutdown();
    cluster.shutdown();
}

/// `--idle-conns`: resident memory, active-traffic tail latency, and
/// accept churn with 1,000 idle sessions parked on the reactor.
fn run_idle_conns(smoke: bool) {
    const IDLE: usize = 1_000;
    let mut rep = BenchReport::new(smoke);
    let rows: i64 = if smoke { 2_000 } else { 20_000 };
    let measure = if smoke {
        Duration::from_millis(500)
    } else {
        Duration::from_secs(3)
    };
    let cluster = load_cluster(rows);
    let server = Server::start(
        cluster.clone(),
        ServerConfig {
            workers: 8,
            // Headroom above the parked sessions for the active client
            // and the churn loop's not-yet-reaped closes.
            max_connections: IDLE + 256,
            ..Default::default()
        },
    )
    .unwrap();
    let addr = server.local_addr();
    let stats = server.stats_handle();

    let rss_before_kib = rss_kib();
    let mut parked: Vec<std::net::TcpStream> = Vec::with_capacity(IDLE);
    let t0 = Instant::now();
    for _ in 0..IDLE {
        parked.push(std::net::TcpStream::connect(addr).expect(
            "connect idle session (raise `ulimit -n` above ~2100 \
             for this bench)",
        ));
    }
    // Conns count once the *reactor* registers them, not when connect()
    // returns — wait so the RSS snapshot includes every session.
    while stats.active_sessions.load(Ordering::Relaxed) < IDLE {
        assert!(
            t0.elapsed() < Duration::from_secs(60),
            "sessions never registered"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    let setup = t0.elapsed();
    let rss_idle_kib = rss_kib();

    // Churn connect/close beside the parked sessions: the acceptor and
    // reaper must keep up without stalling the reactor. Paced at
    // ~1k conns/s so the churn is a fixed background load — unthrottled
    // it devours the single CI core and turns the latency percentiles
    // into a scheduler benchmark.
    let stop = Arc::new(AtomicBool::new(false));
    let churner = {
        let stop = stop.clone();
        std::thread::spawn(move || {
            let mut churned = 0u64;
            while !stop.load(Ordering::Relaxed) {
                drop(std::net::TcpStream::connect(addr).unwrap());
                churned += 1;
                std::thread::sleep(Duration::from_millis(1));
            }
            churned
        })
    };

    // One active session drives traffic in two phases: per-statement
    // roundtrips whose tail latency is the price the idle thousand
    // impose on real traffic, then a 32-deep pipeline for the
    // throughput the reactor sustains beside them.
    let mut client = Client::connect(addr).unwrap();
    client.set_consistency(Consistency::Eventual).unwrap();
    let mut rng = StdRng::seed_from_u64(7);
    let mut lat_us: Vec<u64> = Vec::with_capacity(1 << 16);
    let t0 = Instant::now();
    while t0.elapsed() < measure {
        let q0 = Instant::now();
        client.execute(&point_read(&mut rng, rows)).unwrap();
        lat_us.push(q0.elapsed().as_micros() as u64);
    }
    let active_secs = t0.elapsed().as_secs_f64();
    let mut piped = 0u64;
    let t1 = Instant::now();
    while t1.elapsed() < measure {
        for _ in 0..WINDOW {
            client.send(&point_read(&mut rng, rows)).unwrap();
        }
        for _ in 0..WINDOW {
            client.recv().unwrap();
        }
        piped += WINDOW as u64;
    }
    let piped_secs = t1.elapsed().as_secs_f64();
    stop.store(true, Ordering::Relaxed);
    let churned = churner.join().unwrap();

    lat_us.sort_unstable();
    let pct = |p: usize| lat_us[(lat_us.len() * p / 100).min(lat_us.len() - 1)];
    let (p50, p99) = (pct(50), pct(99));
    let active_qps = lat_us.len() as f64 / active_secs;
    let piped_qps = piped as f64 / piped_secs;
    let churn_per_s = churned as f64 / (active_secs + piped_secs);
    let rss_peak_kib = rss_kib();

    println!("idle_conns: {IDLE} parked sessions in {setup:?}, {rows} rows");
    println!(
        "  rss: {:.1} MiB before, {:.1} MiB parked, {:.1} MiB peak ({:.1} KiB/conn)",
        rss_before_kib as f64 / 1024.0,
        rss_idle_kib as f64 / 1024.0,
        rss_peak_kib as f64 / 1024.0,
        (rss_idle_kib.saturating_sub(rss_before_kib)) as f64 / IDLE as f64
    );
    println!(
        "  active session: {active_qps:.0} q/s roundtrip (p50 {p50}µs, p99 {p99}µs), \
         {piped_qps:.0} q/s pipelined-{WINDOW}; churn {churn_per_s:.0} conns/s"
    );

    rep.set("idle_conns", "held_conns", IDLE as f64);
    if rss_peak_kib > 0 {
        rep.set("idle_conns", "rss_mib", rss_peak_kib as f64 / 1024.0);
    }
    rep.set("idle_conns", "active_qps", active_qps);
    rep.set("idle_conns", "pipelined_qps", piped_qps);
    rep.set("idle_conns", "p50_us", p50 as f64);
    rep.set("idle_conns", "p99_us", p99 as f64);
    // Informational (no `per_s` suffix): the churner is deliberately
    // rate-limited, so the count proves liveness, not capacity.
    rep.set("idle_conns", "churned_total", churned as f64);
    if let Some(path) = imci_bench::report::json_path_arg() {
        rep.write(&path).expect("write bench json");
        println!("\nwrote {path}");
    }
    drop(parked);
    server.shutdown();
    cluster.shutdown();
}
