//! `server_throughput`: queries/sec through the full service stack
//! (client → TCP → thread-pool server → proxy routing → RW/RO nodes).
//!
//! Two measurements:
//!
//! 1. **Protocol modes** (1 connection, pure point reads): the same
//!    workload through the v1 text protocol, the v2 binary protocol
//!    one statement per roundtrip, v2 with a 32-deep pipeline, and v2
//!    with `BATCH 32` framing. This isolates the wire-layer overhead
//!    the v2 redesign removes — per-roundtrip syscalls/flushes and
//!    per-cell text formatting (~80µs/query before it).
//! 2. **Mixed workload scaling** (1/4/16 connections, OLTP point reads
//!    and OLAP aggregates): the paper's claim that the stateless proxy
//!    tier scales concurrent mixed traffic by read/write splitting and
//!    RO load-balancing (§6.1) without analytical queries starving
//!    point reads.

use imci_bench::BenchReport;
use imci_cluster::{Cluster, ClusterConfig, Consistency};
use imci_server::{Client, Server, ServerConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const GROUPS: i64 = 16;
/// One OLAP aggregate per this many OLTP point reads.
const OLAP_EVERY: u64 = 20;
/// Pipeline depth / batch size for the protocol-mode comparison.
const WINDOW: usize = 32;

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    RoundtripV1,
    RoundtripV2,
    Pipelined,
    Batched,
}

impl Mode {
    fn name(self) -> &'static str {
        match self {
            Mode::RoundtripV1 => "roundtrip-v1",
            Mode::RoundtripV2 => "roundtrip-v2",
            Mode::Pipelined => "pipelined-32",
            Mode::Batched => "batched-32",
        }
    }
}

fn point_read(rng: &mut StdRng, rows: i64) -> String {
    let id = rng.gen_range(0..rows);
    format!("SELECT note FROM mix WHERE id = {id}")
}

/// Point-read throughput on one connection in the given protocol mode.
fn run_mode(addr: std::net::SocketAddr, mode: Mode, rows: i64, measure: Duration) -> f64 {
    let mut client = match mode {
        Mode::RoundtripV1 => Client::connect_v1(addr).unwrap(),
        _ => Client::connect(addr).unwrap(),
    };
    client.set_consistency(Consistency::Eventual).unwrap();
    let mut rng = StdRng::seed_from_u64(7);
    let mut done = 0u64;
    let t0 = Instant::now();
    while t0.elapsed() < measure {
        match mode {
            Mode::RoundtripV1 | Mode::RoundtripV2 => {
                client.execute(&point_read(&mut rng, rows)).unwrap();
                done += 1;
            }
            Mode::Pipelined => {
                for _ in 0..WINDOW {
                    client.send(&point_read(&mut rng, rows)).unwrap();
                }
                for _ in 0..WINDOW {
                    client.recv().unwrap();
                }
                done += WINDOW as u64;
            }
            Mode::Batched => {
                let stmts: Vec<String> = (0..WINDOW).map(|_| point_read(&mut rng, rows)).collect();
                for r in client.execute_batch(&stmts).unwrap() {
                    r.unwrap();
                }
                done += WINDOW as u64;
            }
        }
    }
    done as f64 / t0.elapsed().as_secs_f64()
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let mut rep = BenchReport::new(smoke);
    let rows: i64 = if smoke { 2_000 } else { 20_000 };
    let measure = if smoke {
        Duration::from_millis(300)
    } else {
        Duration::from_secs(3)
    };
    let conn_counts: &[usize] = if smoke { &[1, 4] } else { &[1, 4, 16] };
    let cluster = Cluster::start(ClusterConfig {
        n_ro: 2,
        group_cap: 4096,
        ..Default::default()
    });
    cluster
        .execute(
            "CREATE TABLE mix (id INT NOT NULL, grp INT, val DOUBLE, note VARCHAR(32),
             PRIMARY KEY(id), KEY COLUMN_INDEX(id, grp, val, note))",
        )
        .unwrap();
    // Bulk-load through the cluster API (batched inserts), then let the
    // ROs catch up before measuring.
    let mut batch = Vec::new();
    for i in 0..rows {
        batch.push(format!(
            "({i}, {}, {}, 'n{}')",
            i % GROUPS,
            i as f64 * 0.5,
            i % 7
        ));
        if batch.len() == 500 {
            cluster
                .execute(&format!("INSERT INTO mix VALUES {}", batch.join(", ")))
                .unwrap();
            batch.clear();
        }
    }
    if !batch.is_empty() {
        cluster
            .execute(&format!("INSERT INTO mix VALUES {}", batch.join(", ")))
            .unwrap();
    }
    assert!(cluster.wait_sync(Duration::from_secs(60)), "RO catch-up");

    let server = Server::start(
        cluster.clone(),
        ServerConfig {
            workers: 32,
            ..Default::default()
        },
    )
    .unwrap();
    let addr = server.local_addr();

    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!("server_throughput: {rows} rows, {measure:?} per point, {cores} core(s)");
    if cores == 1 {
        println!("note: single-core host — expect a flat connection curve; scaling needs cores");
    }

    // ---- 1. protocol modes, pure point reads, one connection ----
    println!("\nprotocol modes (point reads, 1 connection, window={WINDOW}):");
    println!(
        "{:>14} {:>12} {:>10} {:>12}",
        "mode", "queries/s", "µs/query", "vs roundtrip"
    );
    let baseline = run_mode(addr, Mode::RoundtripV2, rows, measure);
    for mode in [
        Mode::RoundtripV1,
        Mode::RoundtripV2,
        Mode::Pipelined,
        Mode::Batched,
    ] {
        let qps = if mode == Mode::RoundtripV2 {
            baseline
        } else {
            run_mode(addr, mode, rows, measure)
        };
        println!(
            "{:>14} {:>12.0} {:>10.1} {:>11.2}x",
            mode.name(),
            qps,
            1e6 / qps,
            qps / baseline
        );
        rep.set(
            "protocol_modes",
            &format!("{}_qps", mode.name().replace('-', "_")),
            qps,
        );
    }

    // ---- 2. mixed workload, connection scaling ----
    println!("\nmixed workload (OLTP:OLAP = {OLAP_EVERY}:1, per-statement roundtrips):");
    println!(
        "{:>6} {:>12} {:>12} {:>12}",
        "conns", "queries/s", "oltp/s", "olap/s"
    );
    for &conns in conn_counts {
        let stop = Arc::new(AtomicBool::new(false));
        let mut handles = Vec::new();
        for t in 0..conns {
            let stop = stop.clone();
            let mut client = Client::connect(addr).unwrap();
            handles.push(std::thread::spawn(move || {
                client.set_consistency(Consistency::Eventual).unwrap();
                let mut rng = StdRng::seed_from_u64(t as u64 + 1);
                let (mut oltp, mut olap) = (0u64, 0u64);
                let mut n = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    n += 1;
                    if n.is_multiple_of(OLAP_EVERY) {
                        client
                            .execute(
                                "SELECT grp, COUNT(*), SUM(val) FROM mix
                                 GROUP BY grp ORDER BY grp",
                            )
                            .unwrap();
                        olap += 1;
                    } else {
                        client.execute(&point_read(&mut rng, rows)).unwrap();
                        oltp += 1;
                    }
                }
                (oltp, olap)
            }));
        }
        let t0 = Instant::now();
        std::thread::sleep(measure);
        stop.store(true, Ordering::Relaxed);
        let (mut oltp, mut olap) = (0u64, 0u64);
        for h in handles {
            let (a, b) = h.join().unwrap();
            oltp += a;
            olap += b;
        }
        let secs = t0.elapsed().as_secs_f64();
        println!(
            "{:>6} {:>12.0} {:>12.0} {:>12.0}",
            conns,
            (oltp + olap) as f64 / secs,
            oltp as f64 / secs,
            olap as f64 / secs
        );
        rep.set(
            "mixed_scaling",
            &format!("conns{conns}_total_qps"),
            (oltp + olap) as f64 / secs,
        );
    }
    if let Some(path) = imci_bench::report::json_path_arg() {
        rep.write(&path).expect("write bench json");
        println!("\nwrote {path}");
    }
    server.shutdown();
    cluster.shutdown();
}
