//! Fig. 11: OLTP throughput loss of propagation methods vs a no-IMCI
//! baseline — reusing REDO vs shipping an extra Binlog.

use imci_bench::env_usize;
use imci_cluster::{Cluster, ClusterConfig};
use imci_wal::PropagationMode;
use polarfs_sim::LatencyProfile;
use rand::{rngs::StdRng, SeedableRng};
use std::sync::Arc;
use std::time::Duration;

fn tput(mode: Option<PropagationMode>, clients: usize, window_ms: u64) -> f64 {
    // mode None = baseline: row-only replica semantics (no IMCI RO).
    let cfg = ClusterConfig {
        n_ro: if mode.is_some() { 1 } else { 0 },
        propagation: mode.unwrap_or(PropagationMode::ReuseRedo),
        latency: LatencyProfile::polarfs_like(),
        group_cap: 8192,
        ..Default::default()
    };
    let cluster = Cluster::start(cfg);
    let wl = Arc::new(imci_workloads::sysbench::Sysbench::setup(&cluster, 4, 200).unwrap());
    let mut warm = StdRng::seed_from_u64(9);
    for _ in 0..200 {
        let _ = wl.insert_one(&cluster, &mut warm);
    }
    let ops = wl.run_clients(&cluster, clients, Duration::from_millis(window_ms), true);
    cluster.shutdown();
    ops as f64 / (window_ms as f64 / 1e3)
}

fn main() {
    println!(
        "# paper: Fig 11 — REDO reuse loses <5%; Binlog loses 24-56%, worse with more clients"
    );
    println!("clients\tbaseline_tps\treuse_redo_tps\tredo_loss_pct\tbinlog_tps\tbinlog_loss_pct");
    let window = env_usize("WINDOW_MS", 1200) as u64;
    for clients in [4usize, 16, 64] {
        let base = tput(None, clients, window);
        let redo = tput(Some(PropagationMode::ReuseRedo), clients, window);
        let binlog = tput(Some(PropagationMode::Binlog), clients, window);
        println!(
            "{clients}\t{base:.0}\t{redo:.0}\t{:.1}\t{binlog:.0}\t{:.1}",
            (1.0 - redo / base) * 100.0,
            (1.0 - binlog / base) * 100.0
        );
    }
}
