//! Fig. 12: visibility delay percentiles under TPC-C-style load.

use imci_bench::{bench_cluster, env_usize, percentile};
use rand::{rngs::StdRng, SeedableRng};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn main() {
    println!("# paper: Fig 12 — VD < 5ms typical, < 30ms at p99.99 under heavy load; grows with thread count");
    let cluster = bench_cluster(1);
    let ch = Arc::new(imci_workloads::chbench::ChBench::setup(&cluster, 1).unwrap());
    assert!(cluster.wait_sync(Duration::from_secs(120)));
    println!("threads\tp50_ms\tp90_ms\tp99_ms\tmax_ms");
    for threads in [2usize, 4, 8, 16] {
        let stop = Arc::new(AtomicBool::new(false));
        let mut handles = Vec::new();
        for t in 0..threads {
            let (c, ch, stop) = (cluster.clone(), ch.clone(), stop.clone());
            handles.push(std::thread::spawn(move || {
                let mut rng = StdRng::seed_from_u64(t as u64 + 100);
                while !stop.load(Ordering::Relaxed) {
                    let _ = ch.new_order(&c, &mut rng);
                }
            }));
        }
        let n = env_usize("VD_SAMPLES", 150);
        // Discard warm-up samples (the paper also collects "in the
        // middle of each experiment to avoid the disturbance caused by
        // system start-up").
        for _ in 0..20 {
            let _ = cluster.measure_visibility_delay();
        }
        let mut samples = Vec::with_capacity(n);
        for _ in 0..n {
            if let Ok(vd) = cluster.measure_visibility_delay() {
                samples.push(vd.as_secs_f64() * 1e3);
            }
        }
        stop.store(true, Ordering::SeqCst);
        for h in handles {
            let _ = h.join();
        }
        println!(
            "{threads}\t{:.3}\t{:.3}\t{:.3}\t{:.3}",
            percentile(&mut samples, 50.0),
            percentile(&mut samples, 90.0),
            percentile(&mut samples, 99.0),
            percentile(&mut samples, 100.0)
        );
    }
    cluster.shutdown();
}
