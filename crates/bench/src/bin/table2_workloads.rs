//! Table 2: aggregate statistics of the synthetic production workloads.

use imci_bench::{bench_cluster, env_f64};
use std::time::Duration;

fn main() {
    println!("# paper: Table 2 — Cust1: 997 tables/11.2 cols/2.0 joins; Cust2: 165/27.2/1.3; Cust3: 681/29.9/1.7; Cust4: 153/13.5/9.0");
    let scale = env_f64("PROD_SCALE", 0.1);
    let cluster = bench_cluster(0);
    for (i, p) in imci_workloads::production::profiles().iter().enumerate() {
        let wl =
            imci_workloads::production::generate(&cluster, p, &format!("s{i}"), scale, i as u64)
                .unwrap();
        println!("{}", imci_workloads::production::table2_stats(&wl));
    }
    let _ = cluster.wait_sync(Duration::from_secs(10));
    cluster.shutdown();
}
