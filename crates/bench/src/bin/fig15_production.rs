//! Fig. 15 + Table 3: production-workload speedups per customer profile.

use imci_bench::{bench_cluster, env_f64, run_query_on};
use imci_sql::EngineChoice;
use std::time::Duration;

fn main() {
    println!("# paper: Fig 15 / Table 3 — speedups from ~1x to >100x; scan-heavy customers (Cust3/4) dominated by >=10x buckets");
    let scale = env_f64("PROD_SCALE", 0.3);
    let cluster = bench_cluster(1);
    let mut all = Vec::new();
    for (i, p) in imci_workloads::production::profiles().iter().enumerate() {
        let wl = imci_workloads::production::generate(
            &cluster,
            p,
            &format!("c{i}"),
            scale,
            99 + i as u64,
        )
        .unwrap();
        assert!(cluster.wait_sync(Duration::from_secs(300)));
        all.push(wl);
    }
    println!("query\trow_ms\tcolumn_ms\tspeedup");
    let mut buckets = vec![[0usize; 5]; all.len()];
    for (wi, wl) in all.iter().enumerate() {
        for (name, sql) in &wl.queries {
            let (tr, n1) = run_query_on(&cluster, sql, EngineChoice::Row);
            let (tc, n2) = run_query_on(&cluster, sql, EngineChoice::Column);
            assert_eq!(n1, n2, "{name}");
            let s = tr.as_secs_f64() / tc.as_secs_f64().max(1e-9);
            let b = if s < 2.0 {
                0
            } else if s < 5.0 {
                1
            } else if s < 10.0 {
                2
            } else if s < 100.0 {
                3
            } else {
                4
            };
            buckets[wi][b] += 1;
            println!(
                "{name}\t{:.2}\t{:.2}\t{s:.1}",
                tr.as_secs_f64() * 1e3,
                tc.as_secs_f64() * 1e3
            );
        }
    }
    println!("## Table 3: distribution of speedups");
    println!("customer\t[1,2)\t[2,5)\t[5,10)\t[10,100)\t[100,inf)");
    for (wl, b) in all.iter().zip(&buckets) {
        let n: usize = b.iter().sum();
        let pct = |x: usize| format!("{:.0}%", 100.0 * x as f64 / n.max(1) as f64);
        println!(
            "{}\t{}\t{}\t{}\t{}\t{}",
            wl.profile.name,
            pct(b[0]),
            pct(b[1]),
            pct(b[2]),
            pct(b[3]),
            pct(b[4])
        );
    }
    cluster.shutdown();
}
