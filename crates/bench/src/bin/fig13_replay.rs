//! Fig. 13: maximum throughput of each replay component vs threads,
//! compared to the RW node's maximum OLTP throughput.

use imci_bench::env_usize;
use imci_common::{ColumnDef, DataType, IndexDef, IndexKind, Rid, Schema, TableId, Value, Vid};
use imci_core::{ColumnIndex, RidLocator};
use imci_wal::{LogWriter, PropagationMode, RedoEntry};
use polarfs_sim::PolarFs;
use rowstore::RowEngine;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn per_second(total: u64, dt: Duration) -> f64 {
    total as f64 / dt.as_secs_f64()
}

fn schema() -> Schema {
    Schema::new(
        TableId(1),
        "t",
        vec![
            ColumnDef::not_null("id", DataType::Int),
            ColumnDef::new("v", DataType::Int),
        ],
        vec![
            IndexDef {
                kind: IndexKind::Primary,
                name: "PRIMARY".into(),
                columns: vec![0],
            },
            IndexDef {
                kind: IndexKind::Column,
                name: "ci".into(),
                columns: vec![0, 1],
            },
        ],
    )
    .unwrap()
}

fn main() {
    println!("# paper: Fig 13 — locator/pack update tput is 30-61x the RW max OLTP tput; parse ~34k/s/thread, commit ~459k/s");
    let window = Duration::from_millis(env_usize("WINDOW_MS", 600) as u64);

    // RW max throughput reference: single-row insert txns, many threads.
    let fs = PolarFs::instant();
    let log = LogWriter::new(fs.clone(), PropagationMode::ReuseRedo);
    let rw = RowEngine::new_rw(fs.clone(), log, 1 << 20);
    rw.create_table("t", schema().columns.clone(), schema().indexes.clone())
        .unwrap();
    let total = Arc::new(AtomicU64::new(0));
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let mut hs = Vec::new();
    for w in 0..8u64 {
        let (rw, total, stop) = (rw.clone(), total.clone(), stop.clone());
        hs.push(std::thread::spawn(move || {
            let mut pk = w as i64 * 100_000_000;
            while !stop.load(Ordering::Relaxed) {
                let mut txn = rw.begin();
                if rw
                    .insert(&mut txn, "t", vec![Value::Int(pk), Value::Int(0)])
                    .is_ok()
                {
                    rw.commit(txn).unwrap();
                    total.fetch_add(1, Ordering::Relaxed);
                }
                pk += 1;
            }
        }));
    }
    std::thread::sleep(window);
    stop.store(true, Ordering::SeqCst);
    for h in hs {
        let _ = h.join();
    }
    let rw_tput = per_second(total.load(Ordering::SeqCst), window);
    println!("# MAX RW OLTP tput (8 writer threads): {rw_tput:.0} txn/s");

    println!("component\tthreads\tops_per_sec\tx_of_rw_max");
    for threads in [1usize, 2, 4, 8] {
        // (1) Update locator.
        let loc = Arc::new(RidLocator::new(64 * 1024));
        let done = Arc::new(AtomicU64::new(0));
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let mut hs = Vec::new();
        for w in 0..threads as u64 {
            let (loc, done, stop) = (loc.clone(), done.clone(), stop.clone());
            hs.push(std::thread::spawn(move || {
                let mut pk = w as i64 * 1_000_000_000;
                while !stop.load(Ordering::Relaxed) {
                    loc.insert(pk, Rid(pk as u64));
                    pk += 1;
                    done.fetch_add(1, Ordering::Relaxed);
                }
            }));
        }
        std::thread::sleep(window);
        stop.store(true, Ordering::SeqCst);
        for h in hs {
            let _ = h.join();
        }
        let v = per_second(done.load(Ordering::SeqCst), window);
        println!("update_locator\t{threads}\t{v:.0}\t{:.1}", v / rw_tput);

        // (2) Update data packs (insert path of the column index).
        let idx = ColumnIndex::for_schema(&schema(), 64 * 1024);
        let done = Arc::new(AtomicU64::new(0));
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let mut hs = Vec::new();
        for w in 0..threads as u64 {
            let (idx, done, stop) = (idx.clone(), done.clone(), stop.clone());
            hs.push(std::thread::spawn(move || {
                let mut pk = w as i64 * 1_000_000_000;
                while !stop.load(Ordering::Relaxed) {
                    let _ = idx.insert(Vid(1), &[Value::Int(pk), Value::Int(0)]);
                    pk += 1;
                    done.fetch_add(1, Ordering::Relaxed);
                }
            }));
        }
        std::thread::sleep(window);
        stop.store(true, Ordering::SeqCst);
        for h in hs {
            let _ = h.join();
        }
        let v = per_second(done.load(Ordering::SeqCst), window);
        println!("update_data_packs\t{threads}\t{v:.0}\t{:.1}", v / rw_tput);
    }

    // (3) Replay on row store (phase 1, page apply) — measured via a
    // replica applying a pre-generated log.
    let fs2 = PolarFs::instant();
    let log2 = LogWriter::new(fs2.clone(), PropagationMode::ReuseRedo);
    let rw2 = RowEngine::new_rw(fs2.clone(), log2, 1 << 20);
    rw2.create_table("t", schema().columns.clone(), schema().indexes.clone())
        .unwrap();
    let mut txn = rw2.begin();
    let n_entries = env_usize("REPLAY_ENTRIES", 100_000);
    for pk in 0..n_entries as i64 {
        rw2.insert(&mut txn, "t", vec![Value::Int(pk), Value::Int(pk)])
            .unwrap();
    }
    rw2.commit(txn).unwrap();
    // No catalog refresh: the CREATE TABLE's DDL record is in the log
    // and registers the table during replay.
    let ro = RowEngine::new_replica(fs2.clone(), 1 << 20);
    let mut reader = imci_wal::LogReader::new(fs2.clone(), 0);
    let entries: Vec<RedoEntry> = reader.read_available();
    let t = Instant::now();
    let mut applied = 0u64;
    for e in &entries {
        if rowstore::apply_entry(&ro, e).unwrap().is_some() {
            applied += 1;
        }
    }
    let v = per_second(applied, t.elapsed());
    println!("replay_on_row_store\t1\t{v:.0}\t{:.1}", v / rw_tput);

    // (4) Physical log parse throughput (decode only).
    let raw = fs2.read_log(imci_wal::REDO_LOG_NAME, 0, usize::MAX / 2);
    let t = Instant::now();
    let mut pos = 0usize;
    let mut parsed = 0u64;
    while let Ok(Some((_e, used))) = RedoEntry::decode(&raw[pos..]) {
        pos += used;
        parsed += 1;
    }
    let v = per_second(parsed, t.elapsed());
    println!("log_parse\t1\t{v:.0}\t{:.1}", v / rw_tput);

    // (5) Batch-commit throughput (watermark advancement).
    let idx = ColumnIndex::for_schema(&schema(), 64 * 1024);
    let t = Instant::now();
    for i in 0..1_000_000u64 {
        idx.advance_visible(Vid(i));
    }
    let v = per_second(1_000_000, t.elapsed());
    println!("commit\t1\t{v:.0}\t{:.1}", v / rw_tput);
}
