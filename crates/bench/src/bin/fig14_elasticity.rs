//! Fig. 14: scale-out elasticity — cluster OLAP throughput and new-node
//! LSN delay over time as RO nodes are added.

use imci_bench::{bench_cluster, env_usize};
use imci_sql::EngineChoice;
use rand::{rngs::StdRng, SeedableRng};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn main() {
    println!("# paper: Fig 14 — new RO serves in ~10s, catches up in ~9s; cluster OLAP tput steps up per node; 2nd node catches up faster (newer checkpoint)");
    let cluster = bench_cluster(1);
    imci_workloads::tpch::load(&cluster, 0.001, 7).unwrap();
    let wl = Arc::new(imci_workloads::sysbench::Sysbench::setup(&cluster, 2, 500).unwrap());
    let host_cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(2);
    assert!(cluster.wait_sync(Duration::from_secs(120)));
    cluster.checkpoint_now().unwrap();

    // background TP load, paced so small hosts' pipelines keep up
    let stop = Arc::new(AtomicBool::new(false));
    let mut handles = Vec::new();
    let tp_threads = (host_cores / 4).max(1) as u64;
    for t in 0..tp_threads {
        let (c, wl, stop) = (cluster.clone(), wl.clone(), stop.clone());
        handles.push(std::thread::spawn(move || {
            let mut rng = StdRng::seed_from_u64(t);
            while !stop.load(Ordering::Relaxed) {
                let _ = wl.insert_one(&c, &mut rng);
                std::thread::sleep(Duration::from_micros(500));
            }
        }));
    }
    // background AP load: TPC-H Q6 in a loop on all RO nodes
    let ap_ops = Arc::new(AtomicU64::new(0));
    let q6 = imci_workloads::tpch::queries()[5].1.clone();
    for _ in 0..(host_cores / 2).max(1) {
        let (c, stop, ops, q) = (cluster.clone(), stop.clone(), ap_ops.clone(), q6.clone());
        handles.push(std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                for node in c.ros.read().iter() {
                    node.query.set_force(Some(EngineChoice::Column));
                }
                if c.execute(&q).is_ok() {
                    ops.fetch_add(1, Ordering::Relaxed);
                }
            }
        }));
    }

    let phase_ms = env_usize("PHASE_MS", 800) as u64;
    let t0 = Instant::now();
    println!("t_ms\tevent\tro_nodes\tolap_qps_window\tmax_lsn_delay");
    let sample = |label: &str, cluster: &imci_cluster::Cluster, ops: &AtomicU64| {
        let before = ops.load(Ordering::SeqCst);
        std::thread::sleep(Duration::from_millis(phase_ms));
        let qps = (ops.load(Ordering::SeqCst) - before) as f64 / (phase_ms as f64 / 1e3);
        let written = cluster.written_lsn();
        let max_delay = cluster
            .ros
            .read()
            .iter()
            .map(|n| written.saturating_sub(n.applied_lsn()))
            .max()
            .unwrap_or(0);
        println!(
            "{}\t{label}\t{}\t{qps:.1}\t{max_delay}",
            t0.elapsed().as_millis(),
            cluster.ros.read().len()
        );
    };
    sample("steady-1-ro", &cluster, &ap_ops);
    let r1 = cluster.scale_out().unwrap();
    println!(
        "{}\tscale-out-No.1 load={}ms catchup={}ms from_ckpt={}\t{}\t-\t-",
        t0.elapsed().as_millis(),
        r1.load_time.as_millis(),
        r1.catchup_time.as_millis(),
        r1.from_checkpoint,
        cluster.ros.read().len()
    );
    sample("steady-2-ro", &cluster, &ap_ops);
    cluster.checkpoint_now().unwrap();
    let r2 = cluster.scale_out().unwrap();
    println!(
        "{}\tscale-out-No.2 load={}ms catchup={}ms from_ckpt={}\t{}\t-\t-",
        t0.elapsed().as_millis(),
        r2.load_time.as_millis(),
        r2.catchup_time.as_millis(),
        r2.from_checkpoint,
        cluster.ros.read().len()
    );
    sample("steady-3-ro", &cluster, &ap_ops);

    stop.store(true, Ordering::SeqCst);
    for h in handles {
        let _ = h.join();
    }
    cluster.shutdown();
}
